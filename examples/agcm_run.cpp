// Config-file-driven model driver: the closest thing to "running the AGCM"
// as a production tool. Reads a key = value config (see configs/*.cfg),
// integrates, prints the run report, and — when the config asks for it —
// records a virtual-time trace (docs/observability.md):
//
//   trace      = true          # per-phase table on stdout
//   trace_json = my_trace.json # Chrome trace (chrome://tracing, Perfetto)
//   trace_csv  = my_trace.csv  # one line per span, for pandas
//
//   $ ./agcm_run ../configs/t3d_240nodes.cfg
#include <cstdio>
#include <string>

#include "core/config_load.hpp"
#include "core/model.hpp"
#include "io/config.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace agcm;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <config-file>\n", argv[0]);
    return 2;
  }

  try {
    const io::Config config = io::Config::from_file(argv[1]);
    const core::RunSpec spec = core::run_spec_from(config);

    for (const std::string& key : config.unused_keys())
      log::warn("config key '{}' was not recognised", key);

    const core::ModelConfig& model = spec.model;
    std::printf("AGCM %dx%dx%d on %s, %dx%d nodes, filter=%s\n", model.nlon,
                model.nlat, model.nlev, model.machine.name.c_str(),
                model.mesh_rows, model.mesh_cols,
                std::string(filter::algorithm_name(model.filter_algorithm))
                    .c_str());

    if (spec.trace) trace::set_enabled(true);
    const core::RunReport report =
        core::run_model(model, spec.steps, spec.warmup_steps);

    std::printf("\nseconds per simulated day (virtual):\n");
    std::printf("  filtering  %10.1f\n", report.filter_per_day());
    std::printf("  dynamics   %10.1f\n", report.dynamics_per_day());
    std::printf("  physics    %10.1f\n", report.physics_per_day());
    std::printf("  total      %10.1f\n", report.total_per_day());
    std::printf("diagnostics: mass drift %.2e, zonal Courant %.3f, "
                "physics imbalance %.1f%% -> %.1f%%\n",
                report.mass_drift_rel, report.max_zonal_courant,
                100.0 * report.physics_imbalance_before,
                100.0 * report.physics_imbalance_after);

    if (spec.trace) {
      const auto& tracer = trace::Tracer::instance();
      print_table(trace::phase_table(trace::aggregate_phases(tracer)));
      if (!spec.trace_json_path.empty()) {
        trace::write_chrome_trace(tracer, spec.trace_json_path);
        std::printf("wrote %s (chrome://tracing)\n",
                    spec.trace_json_path.c_str());
      }
      if (!spec.trace_csv_path.empty()) {
        trace::write_trace_csv(tracer, spec.trace_csv_path);
        std::printf("wrote %s\n", spec.trace_csv_path.c_str());
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
