// Config-file-driven model driver: the closest thing to "running the AGCM"
// as a production tool. Reads a key = value config (see configs/*.cfg),
// integrates, prints the run report, and optionally writes a history file.
//
//   $ ./agcm_run ../configs/t3d_240nodes.cfg
#include <cstdio>
#include <string>

#include "core/model.hpp"
#include "io/config.hpp"
#include "util/logging.hpp"

namespace {

agcm::filter::FilterAlgorithm parse_algorithm(const std::string& name) {
  using agcm::filter::FilterAlgorithm;
  if (name == "convolution-ring") return FilterAlgorithm::kConvolutionRing;
  if (name == "convolution-tree") return FilterAlgorithm::kConvolutionTree;
  if (name == "fft-transpose") return FilterAlgorithm::kFftTranspose;
  if (name == "fft-load-balanced") return FilterAlgorithm::kFftBalanced;
  throw agcm::ConfigError("unknown filter_algorithm '" + name + "'");
}

agcm::dynamics::TimeScheme parse_scheme(const std::string& name) {
  using agcm::dynamics::TimeScheme;
  if (name == "forward-backward") return TimeScheme::kForwardBackward;
  if (name == "leapfrog") return TimeScheme::kLeapfrog;
  throw agcm::ConfigError("unknown time_scheme '" + name + "'");
}

agcm::simnet::MachineProfile parse_machine(const std::string& name) {
  using agcm::simnet::MachineProfile;
  if (name == "paragon") return MachineProfile::intel_paragon();
  if (name == "t3d") return MachineProfile::cray_t3d();
  if (name == "sp2") return MachineProfile::ibm_sp2();
  if (name == "ideal") return MachineProfile::ideal();
  throw agcm::ConfigError("unknown machine '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agcm;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <config-file>\n", argv[0]);
    return 2;
  }

  try {
    const io::Config config = io::Config::from_file(argv[1]);

    core::ModelConfig model;
    model.nlon = config.get_int("nlon", 144);
    model.nlat = config.get_int("nlat", 90);
    model.nlev = config.get_int("nlev", 9);
    model.mesh_rows = config.require_int("mesh_rows");
    model.mesh_cols = config.require_int("mesh_cols");
    model.dt_sec = config.get_double("dt_sec", 450.0);
    model.time_scheme =
        parse_scheme(config.get_string("time_scheme", "forward-backward"));
    model.machine = parse_machine(config.get_string("machine", "t3d"));
    model.filter_algorithm = parse_algorithm(
        config.get_string("filter_algorithm", "fft-load-balanced"));
    model.use_polar_filter = config.get_bool("polar_filter", true);
    model.physics_enabled = config.get_bool("physics", true);
    model.physics_load_balance =
        config.get_bool("physics_load_balance", false);
    model.optimized_advection = config.get_bool("optimized_advection", false);
    model.seed = static_cast<std::uint64_t>(config.get_int("seed", 1996));
    const int steps = config.get_int("steps", 4);
    const int warmup = config.get_int("warmup_steps", 1);

    for (const std::string& key : config.unused_keys())
      log::warn("config key '{}' was not recognised", key);

    std::printf("AGCM %dx%dx%d on %s, %dx%d nodes, filter=%s\n", model.nlon,
                model.nlat, model.nlev, model.machine.name.c_str(),
                model.mesh_rows, model.mesh_cols,
                std::string(filter::algorithm_name(model.filter_algorithm))
                    .c_str());

    const core::RunReport report = core::run_model(model, steps, warmup);

    std::printf("\nseconds per simulated day (virtual):\n");
    std::printf("  filtering  %10.1f\n", report.filter_per_day());
    std::printf("  dynamics   %10.1f\n", report.dynamics_per_day());
    std::printf("  physics    %10.1f\n", report.physics_per_day());
    std::printf("  total      %10.1f\n", report.total_per_day());
    std::printf("diagnostics: mass drift %.2e, zonal Courant %.3f, "
                "physics imbalance %.1f%% -> %.1f%%\n",
                report.mass_drift_rel, report.max_zonal_courant,
                100.0 * report.physics_imbalance_before,
                100.0 * report.physics_imbalance_after);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
