// Quickstart: run the parallel AGCM on a virtual 1990s multicomputer.
//
// Builds the paper's standard configuration — the 2 x 2.5 degree, 9-layer
// grid on an 8x8 node mesh of a virtual Cray T3D — integrates a few steps,
// and prints the per-component cost breakdown plus physical diagnostics.
//
//   $ ./quickstart
#include <cstdio>

#include "core/model.hpp"

int main() {
  using namespace agcm;

  core::ModelConfig config;           // defaults: 144 x 90 x 9 grid
  config.mesh_rows = 8;               // 8 node rows across latitude
  config.mesh_cols = 8;               // 8 node columns across longitude
  config.machine = simnet::MachineProfile::cray_t3d();
  config.filter_algorithm = filter::FilterAlgorithm::kFftBalanced;
  config.physics_load_balance = true;

  std::printf("Running the AGCM on a virtual %s, %dx%d nodes...\n",
              config.machine.name.c_str(), config.mesh_rows,
              config.mesh_cols);

  const core::RunReport report = core::run_model(config, /*steps=*/4,
                                                 /*warmup_steps=*/1);

  std::printf("\nPer-component cost (virtual seconds per simulated day):\n");
  std::printf("  spectral filtering : %8.1f\n", report.filter_per_day());
  std::printf("  ghost exchanges    : %8.1f\n",
              report.per_step.halo * report.steps_per_day);
  std::printf("  finite differences : %8.1f\n",
              report.per_step.fd * report.steps_per_day);
  std::printf("  Dynamics total     : %8.1f\n", report.dynamics_per_day());
  std::printf("  Physics total      : %8.1f\n", report.physics_per_day());
  std::printf("  AGCM total         : %8.1f\n", report.total_per_day());

  std::printf("\nDiagnostics:\n");
  std::printf("  relative mass drift      : %.2e (flux form conserves)\n",
              report.mass_drift_rel);
  std::printf("  max zonal Courant number : %.3f\n", report.max_zonal_courant);
  std::printf("  physics imbalance        : %.1f%% -> %.1f%% (scheme 3)\n",
              100.0 * report.physics_imbalance_before,
              100.0 * report.physics_imbalance_after);
  std::printf("  messages exchanged       : %llu (%.1f MB)\n",
              static_cast<unsigned long long>(report.total_messages),
              static_cast<double>(report.total_bytes) / 1.0e6);
  return 0;
}
