// Campaign driver: expands a campaign .cfg into its scenario matrix, serves
// the experiments on a bounded concurrent worker budget, and streams the
// results to a JSON-lines store (schema agcm-campaign-v1; query it with
// tools/campaign_query.py). See docs/campaign.md.
//
//   $ ./campaign_run ../configs/campaign_smoke.cfg --out results.jsonl \
//        --concurrency 4
//
// With a trained performance model the driver plans admission before
// running anything: cells are ordered cheapest-first by predicted per-day
// virtual cost and, under --budget, only the prefix that fits is run.
//
//   $ ./campaign_run ../configs/campaign_smoke.cfg \
//        --predict PREDICT_MODEL.json --budget 1200 --out results.jsonl
//
// Flags:
//   --out <path>        store file (default: campaign_results.jsonl)
//   --concurrency <N>   experiments in flight at once (default 4)
//   --append            append to the store instead of replacing it
//   --no-wall           omit wall_sec from records (byte-stable store)
//   --list              print the expanded matrix and exit without running
//   --predict <path>    PREDICT_MODEL.json; plan admission and record
//                       predictions alongside actuals
//   --budget <sec>      predicted virtual sec/day cap (requires --predict)
#include <cstdio>
#include <cstring>
#include <string>

#include "campaign/matrix.hpp"
#include "campaign/planner.hpp"
#include "campaign/runner.hpp"
#include "campaign/store.hpp"
#include "io/config.hpp"
#include "perfmodel/predict.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <campaign.cfg> [--out <path>] [--concurrency N] "
               "[--append] [--no-wall] [--list] [--predict <model.json>] "
               "[--budget <sec/day>]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agcm;
  std::string config_path;
  std::string out_path = "campaign_results.jsonl";
  std::string model_path;
  double budget = -1.0;
  bool have_budget = false;
  int concurrency = 4;
  bool append = false;
  bool include_wall = true;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--concurrency" && i + 1 < argc) {
      concurrency = std::atoi(argv[++i]);
    } else if (arg == "--predict" && i + 1 < argc) {
      model_path = argv[++i];
    } else if (arg == "--budget" && i + 1 < argc) {
      budget = std::atof(argv[++i]);
      have_budget = true;
    } else if (arg == "--append") {
      append = true;
    } else if (arg == "--no-wall") {
      include_wall = false;
    } else if (arg == "--list") {
      list_only = true;
    } else if (config_path.empty() && arg[0] != '-') {
      config_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (config_path.empty() || concurrency < 1) return usage(argv[0]);
  if (have_budget && model_path.empty()) {
    std::fprintf(stderr, "error: --budget requires --predict <model.json>\n");
    return 2;
  }

  try {
    const io::Config config = io::Config::from_file(config_path);
    const campaign::Campaign matrix = campaign::campaign_from(config);
    for (const std::string& key : config.unused_keys())
      log::warn("config key '{}' was not recognised", key);

    std::printf("campaign '%s': %zu experiments\n", matrix.name.c_str(),
                matrix.cells.size());
    if (list_only) {
      for (const campaign::Cell& cell : matrix.cells)
        std::printf("  %s  %s\n", cell.config_hash.c_str(),
                    cell.name.c_str());
      return 0;
    }

    campaign::RunnerOptions options;
    options.concurrency = concurrency;

    std::vector<campaign::CellResult> results;
    if (!model_path.empty()) {
      const perfmodel::PredictModel model = perfmodel::load_model(model_path);
      const campaign::AdmissionPlan plan =
          campaign::plan_admission(matrix, model, budget);
      std::printf(
          "planned: %zu admitted, %zu over budget "
          "(predicted %.3f virtual s/day%s)\n",
          plan.admitted.size(), plan.skipped.size(),
          plan.admitted_predicted_per_day_sec,
          have_budget ? ", capped" : "");
      for (const campaign::PlannedCell& cell : plan.skipped)
        std::printf("  skipped %s (predicted %.3f s/day)\n",
                    matrix.cells[cell.index].name.c_str(),
                    cell.predicted_per_day_sec);
      results = campaign::run_planned(matrix, plan, options);
    } else {
      results = campaign::run_campaign(matrix, options);
    }

    campaign::write_store(out_path, matrix.name, results, include_wall,
                          append);
    double total_wall = 0.0;
    for (const campaign::CellResult& result : results)
      total_wall += result.wall_sec;
    std::printf("wrote %zu records to %s (%.2f s of experiment wall time)\n",
                results.size(), out_path.c_str(), total_wall);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
