// History-file utility: inspect or byte-swap AGCM history files from the
// command line — the small tool you want when a checkpoint written on one
// machine must be read on another (the paper's Paragon byte-order story).
//
//   $ ./history_tool info <file>
//   $ ./history_tool swap <in> <out>     # rewrite in the other byte order
//   $ ./history_tool diff <a> <b>        # max |difference| per field
#include <cstdio>
#include <cstring>
#include <string>

#include "io/history.hpp"
#include "util/stats.hpp"

namespace {

int cmd_info(const std::string& path) {
  const agcm::io::HistoryFile h = agcm::io::read_history(path);
  std::printf("%s:\n", path.c_str());
  std::printf("  grid        %d x %d x %d\n", h.nlon, h.nlat, h.nlev);
  std::printf("  time        %.1f s (step %lld)\n", h.time_sec,
              static_cast<long long>(h.step));
  std::printf("  fields      %zu\n", h.fields.size());
  for (const auto& f : h.fields) {
    double lo = f.values.empty() ? 0.0 : f.values[0], hi = lo, sum = 0.0;
    for (double v : f.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    std::printf("    %-8s min %12.4f  max %12.4f  mean %12.4f\n",
                f.name.c_str(), lo, hi,
                f.values.empty() ? 0.0 : sum / static_cast<double>(f.values.size()));
  }
  return 0;
}

int cmd_swap(const std::string& in, const std::string& out) {
  const agcm::io::HistoryFile h = agcm::io::read_history(in);
  agcm::io::write_history(out, h, /*foreign_endian=*/true);
  std::printf("wrote %s in the opposite byte order (readers auto-detect)\n",
              out.c_str());
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const agcm::io::HistoryFile a = agcm::io::read_history(a_path);
  const agcm::io::HistoryFile b = agcm::io::read_history(b_path);
  if (a.nlon != b.nlon || a.nlat != b.nlat || a.nlev != b.nlev) {
    std::fprintf(stderr, "grids differ: %dx%dx%d vs %dx%dx%d\n", a.nlon,
                 a.nlat, a.nlev, b.nlon, b.nlat, b.nlev);
    return 1;
  }
  int status = 0;
  for (const auto& fa : a.fields) {
    const auto* fb = b.find(fa.name);
    if (!fb) {
      std::printf("  %-8s only in %s\n", fa.name.c_str(), a_path.c_str());
      status = 1;
      continue;
    }
    const double d = agcm::max_abs_diff(fa.values, fb->values);
    std::printf("  %-8s max |diff| = %.3e\n", fa.name.c_str(), d);
    if (d != 0.0) status = 1;
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 3 && std::strcmp(argv[1], "info") == 0)
      return cmd_info(argv[2]);
    if (argc == 4 && std::strcmp(argv[1], "swap") == 0)
      return cmd_swap(argv[2], argv[3]);
    if (argc == 4 && std::strcmp(argv[1], "diff") == 0)
      return cmd_diff(argv[2], argv[3]);
  } catch (const agcm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: %s info <file> | swap <in> <out> | diff <a> <b>\n",
               argv[0]);
  return 2;
}
