// A longer "climate" integration with history checkpointing.
//
// Integrates the model for a simulated half-day on a small mesh, writes a
// history (restart) file every quarter day, restarts from the last
// checkpoint, and verifies the restarted trajectory matches — the workflow
// the real AGCM's NetCDF history files support (Section 4 mentions the
// byte-order reversal the Paragon needed; this example writes the
// checkpoint byte-swapped to exercise that path).
//
//   $ ./climate_simulation [workdir]
#include <cstdio>
#include <string>

#include "comm/mesh2d.hpp"
#include "dynamics/dynamics.hpp"
#include "io/history.hpp"
#include "physics/physics.hpp"
#include "simnet/machine.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace agcm;
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";
  const std::string checkpoint = workdir + "/agcm_demo_checkpoint.hist";

  const int nlon = 72, nlat = 46, nlev = 5;
  const int rows = 2, cols = 3;
  const double dt = 450.0;
  const int steps_per_quarter_day = 48;

  simnet::Machine machine(simnet::MachineProfile::cray_t3d());
  machine.set_recv_timeout_ms(600'000);

  double mass_start = 0.0, mass_end = 0.0;
  double theta_mean_end = 0.0;
  double restart_mismatch = -1.0;

  machine.run(rows * cols, [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, rows, cols);
    const grid::LatLonGrid grid(nlon, nlat, nlev);
    const grid::Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());

    dynamics::DynamicsConfig dyn_cfg;
    dyn_cfg.dt_sec = dt;
    dynamics::Dynamics dyn(mesh, decomp, grid, dyn_cfg);
    physics::PhysicsConfig phys_cfg;
    phys_cfg.column.nlev = nlev;
    phys_cfg.column.dt_sec = dt;
    phys_cfg.load_balance = true;
    physics::Physics phys(mesh, decomp, grid, phys_cfg);

    dynamics::State state(box, nlev);
    dynamics::initialize_state(state, grid, box, 2026);
    mass_start = dyn.total_mass(state);

    // Two quarter-days with a checkpoint in between.
    for (int quarter = 0; quarter < 2; ++quarter) {
      for (int s = 0; s < steps_per_quarter_day; ++s) {
        dyn.step(state);
        phys.step(state);
      }
      const io::HistoryFile snapshot =
          io::gather_state(mesh, decomp, grid, state);
      if (world.rank() == 0) {
        // Byte-swapped on purpose: the Paragon scenario.
        io::write_history(checkpoint, snapshot, /*foreign_endian=*/true);
        std::printf("checkpoint written at t = %.2f h (step %lld)\n",
                    state.time_sec / 3600.0,
                    static_cast<long long>(state.step));
      }
      world.barrier();
    }
    mass_end = dyn.total_mass(state);

    // Continue half a quarter more, remembering the trajectory...
    dynamics::State reference = state;
    for (int s = 0; s < steps_per_quarter_day / 2; ++s) {
      dyn.step(reference);
      phys.step(reference);
    }

    // ...then restart from the checkpoint and redo the same stretch. The
    // physics estimator state is rebuilt from scratch, but column physics
    // is deterministic given (state, step), so trajectories must match.
    io::HistoryFile loaded;
    if (world.rank() == 0) loaded = io::read_history(checkpoint);
    dynamics::State restarted(box, nlev);
    io::scatter_state(mesh, decomp, grid, loaded, restarted);
    physics::Physics phys2(mesh, decomp, grid, phys_cfg);
    for (int s = 0; s < steps_per_quarter_day / 2; ++s) {
      dyn.step(restarted);
      phys2.step(restarted);
    }
    double worst = 0.0;
    for (int k = 0; k < nlev; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i)
          worst = std::max(worst, std::abs(reference.theta(i, j, k) -
                                           restarted.theta(i, j, k)));
    restart_mismatch = world.allreduce_max(worst);

    double theta_sum = 0.0;
    for (int j = 0; j < box.nj; ++j)
      for (int i = 0; i < box.ni; ++i) theta_sum += reference.theta(i, j, 0);
    theta_mean_end = world.allreduce_sum(theta_sum) / (nlon * nlat);
  });

  std::printf("\nHalf-day integration complete (%d x %d x %d grid, %dx%d "
              "node mesh).\n", nlon, nlat, nlev, rows, cols);
  std::printf("  relative mass drift      : %.2e\n",
              std::abs(mass_end - mass_start) / mass_start);
  std::printf("  mean surface theta       : %.2f K\n", theta_mean_end);
  std::printf("  restart trajectory error : %.2e K (bitwise restart => 0)\n",
              restart_mismatch);
  std::remove(checkpoint.c_str());
  return restart_mismatch == 0.0 ? 0 : 1;
}
