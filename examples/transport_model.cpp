// A second application built from the library's reusable components — the
// Section 5 claim ("code modules which are reusable and extensible in
// different GCM applications") made concrete: a standalone passive-tracer
// transport model (Williamson et al. test case 1, solid-body rotation of a
// cosine bell) using the grid, halo-exchange, advection and diagnostic
// modules, with no dynamical core at all.
//
//   $ ./transport_model [days]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "comm/mesh2d.hpp"
#include "dynamics/advection.hpp"
#include "dynamics/state.hpp"
#include "grid/halo.hpp"
#include "simnet/machine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace agcm;
  const double revolution_days = argc > 1 ? std::atof(argv[1]) : 12.0;
  const int nlon = 128, nlat = 64, nlev = 1;
  const int rows = 2, cols = 4;

  std::printf("Passive transport (Williamson test 1): cosine bell around "
              "the sphere in %.0f days, %dx%d grid, %dx%d nodes\n\n",
              revolution_days, nlon, nlat, rows, cols);

  simnet::Machine machine(simnet::MachineProfile::cray_t3d());
  machine.set_recv_timeout_ms(600'000);

  struct ErrorRow {
    double t_days, l1, l2, linf, min_val;
  };
  std::vector<ErrorRow> history;

  machine.run(rows * cols, [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, rows, cols);
    const grid::LatLonGrid grid(nlon, nlat, nlev);
    const grid::Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());
    const dynamics::Metrics metrics = dynamics::Metrics::build(grid, box);

    const double omega_rot =
        2.0 * std::numbers::pi / (revolution_days * 86400.0);
    const double bell_radius = grid.planet().radius_m / 3.0;

    auto bell = [&](double lon, double lat, double center_lon) {
      // Great-circle distance to the moving bell centre on the equator.
      const double cosd = std::cos(lat) * std::cos(lon - center_lon);
      const double r = grid.planet().radius_m * std::acos(std::clamp(cosd, -1.0, 1.0));
      return r < bell_radius
                 ? 500.0 * (1.0 + std::cos(std::numbers::pi * r / bell_radius))
                 : 0.0;
    };

    dynamics::State state(box, nlev);
    for (int j = 0; j < box.nj; ++j) {
      const int gj = box.j0 + j;
      for (int i = 0; i < box.ni; ++i) {
        const int gi = box.i0 + i;
        state.h(i, j, 0) = 1.0;  // unit "air mass": pure transport
        state.u(i, j, 0) =
            omega_rot * grid.planet().radius_m * grid.cos_center(gj);
        state.v(i, j, 0) = 0.0;
        state.theta(i, j, 0) =
            bell(grid.lon_center(gi), grid.lat_center(gj), 0.0);
        state.q(i, j, 0) = 0.0;
      }
    }
    grid::Array3D<double> h_new = state.h;

    const double dt = 1200.0;
    const int total_steps =
        static_cast<int>(revolution_days * 86400.0 / dt);
    const int report_every = total_steps / 4;

    auto record = [&](int step) {
      const double t = step * dt;
      const double center = omega_rot * t;
      double l1 = 0.0, l2 = 0.0, linf = 0.0, ref_l1 = 0.0, ref_l2 = 0.0,
             ref_linf = 0.0, min_val = 0.0;
      for (int j = 0; j < box.nj; ++j) {
        const double area = grid.cell_area_m2(box.j0 + j);
        for (int i = 0; i < box.ni; ++i) {
          const double exact =
              bell(grid.lon_center(box.i0 + i), grid.lat_center(box.j0 + j),
                   center);
          const double err = state.theta(i, j, 0) - exact;
          l1 += std::abs(err) * area;
          l2 += err * err * area;
          linf = std::max(linf, std::abs(err));
          ref_l1 += std::abs(exact) * area;
          ref_l2 += exact * exact * area;
          ref_linf = std::max(ref_linf, std::abs(exact));
          min_val = std::min(min_val, state.theta(i, j, 0));
        }
      }
      l1 = world.allreduce_sum(l1) / std::max(1e-30, world.allreduce_sum(ref_l1));
      l2 = std::sqrt(world.allreduce_sum(l2) /
                     std::max(1e-30, world.allreduce_sum(ref_l2)));
      linf = world.allreduce_max(linf) /
             std::max(1e-30, world.allreduce_max(ref_linf));
      min_val = -world.allreduce_max(-min_val);
      if (world.rank() == 0)
        history.push_back({t / 86400.0, l1, l2, linf, min_val});
    };

    record(0);
    for (int s = 1; s <= total_steps; ++s) {
      grid::exchange_halo(mesh, state.theta);
      grid::exchange_halo(mesh, state.h);
      grid::exchange_halo(mesh, state.u);
      grid::exchange_halo(mesh, state.v);
      grid::Array3D<double>* tracers[] = {&state.theta};
      dynamics::advect_tracers_optimized(grid, box, metrics, state.h, h_new,
                                         state.u, state.v, tracers, dt);
      if (s % report_every == 0) record(s);
    }
  });

  Table table("Normalised errors vs the exact translated bell",
              {"day", "l1", "l2", "linf", "min (should stay >= 0)"});
  for (const auto& row : history)
    table.add_row({Table::num(row.t_days, 1), Table::num(row.l1, 3),
                   Table::num(row.l2, 3), Table::num(row.linf, 3),
                   Table::num(row.min_val, 6)});
  print_table(table);
  std::printf(
      "\nFirst-order upwind transport: pronounced diffusion (growing l2) but\n"
      "monotone — no negative tracer anywhere — and exact mass conservation.\n"
      "The entire model is ~100 lines on top of the library's grid, halo,\n"
      "advection and reduction components.\n");
  return 0;
}
