// Demonstrates the three load-balancing schemes of Section 3.4 on the real
// physics workload: the day/night terminator sweeps across the node mesh as
// simulated time advances, and Scheme 3 keeps rebalancing the columns.
//
//   $ ./load_balance_demo
#include <cstdio>
#include <vector>

#include "comm/mesh2d.hpp"
#include "loadbalance/exchange.hpp"
#include "physics/physics.hpp"
#include "simnet/machine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace agcm;
  const int rows = 4, cols = 8;
  const int nlon = 144, nlat = 90, nlev = 9;
  const double dt = 1800.0;  // half-hour physics steps: the sun moves 7.5deg
  const int steps = 8;       // a quarter of a day

  std::printf(
      "Physics load balancing across a simulated quarter day\n"
      "(144x90x9 grid, %dx%d virtual T3D nodes, scheme 3 every step)\n\n",
      rows, cols);

  simnet::Machine machine(simnet::MachineProfile::cray_t3d());
  machine.set_recv_timeout_ms(600'000);

  struct StepStats {
    double hour;
    double imbalance_before;
    double imbalance_after;
    int iterations;
    double balance_ms;
  };
  std::vector<StepStats> history(steps);

  machine.run(rows * cols, [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, rows, cols);
    const grid::LatLonGrid grid(nlon, nlat, nlev);
    const grid::Decomp2D decomp(nlon, nlat, rows, cols);
    const auto box = decomp.box(mesh.coord());

    physics::PhysicsConfig cfg;
    cfg.column.nlev = nlev;
    cfg.column.dt_sec = dt;
    cfg.load_balance = true;
    cfg.lb_options.max_iterations = 2;
    physics::Physics phys(mesh, decomp, grid, cfg);

    dynamics::State state(box, nlev);
    dynamics::initialize_state(state, grid, box, 11);

    for (int s = 0; s < steps; ++s) {
      const double t0 = world.now();
      const auto stats = phys.step(state);
      world.barrier();
      if (world.rank() == 0) {
        history[static_cast<std::size_t>(s)] = {
            state.time_sec / 3600.0, stats.imbalance_before,
            stats.imbalance_after, stats.lb_iterations,
            (world.now() - t0) * 1000.0};
      }
      state.time_sec += dt;
      ++state.step;
    }
  });

  Table table("Scheme-3 balancing as the terminator moves",
              {"sim hour", "imbalance before", "after", "iterations",
               "physics step ms (virtual)"});
  for (const auto& h : history) {
    table.add_row({Table::num(h.hour, 1), Table::pct(h.imbalance_before, 1),
                   Table::pct(h.imbalance_after, 1),
                   std::to_string(h.iterations), Table::num(h.balance_ms, 1)});
  }
  print_table(table);
  std::printf(
      "\nNote the first step: the estimator has no history yet (uniform\n"
      "weights), so the 'before' imbalance reads low; from the second step\n"
      "on, the previous pass's measured cost drives the balancing — the\n"
      "paper's estimation strategy.\n");
  return 0;
}
