// Explores how the same AGCM configuration performs across the virtual
// machines (Paragon, T3D, SP-2) and node meshes — the kind of what-if the
// cost model makes cheap. Prints seconds/simulated-day and parallel
// efficiency for each combination.
//
//   $ ./machine_explorer
#include <cstdio>
#include <vector>

#include "core/model.hpp"
#include "util/table.hpp"

int main() {
  using namespace agcm;

  struct MeshSpec {
    int rows, cols;
  };
  const MeshSpec meshes[] = {{1, 1}, {2, 4}, {4, 8}, {8, 15}};
  const simnet::MachineProfile machines[] = {
      simnet::MachineProfile::intel_paragon(),
      simnet::MachineProfile::cray_t3d(),
      simnet::MachineProfile::ibm_sp2(),
  };

  std::printf("AGCM (96x60x9, load-balanced FFT filter + scheme-3 physics)\n"
              "across virtual machines and node meshes\n\n");

  Table table("seconds/simulated day (parallel efficiency)",
              {"Machine", "1 node", "8 nodes", "32 nodes", "120 nodes"});
  for (const auto& machine : machines) {
    std::vector<std::string> row{machine.name};
    double serial = 0.0;
    for (const auto& mesh : meshes) {
      core::ModelConfig cfg;
      cfg.nlon = 96;
      cfg.nlat = 60;
      cfg.nlev = 9;
      cfg.mesh_rows = mesh.rows;
      cfg.mesh_cols = mesh.cols;
      cfg.machine = machine;
      cfg.physics_load_balance = true;
      const auto report = core::run_model(cfg, 2, 1);
      const double per_day = report.total_per_day();
      const int nodes = mesh.rows * mesh.cols;
      if (nodes == 1) {
        serial = per_day;
        row.push_back(Table::num(per_day, 0));
      } else {
        const double efficiency = serial / (per_day * nodes);
        row.push_back(Table::num(per_day, 1) + " (" +
                      Table::pct(efficiency, 0) + ")");
      }
    }
    table.add_row(row);
  }
  print_table(table);
  std::printf(
      "\nThe SP-2 column is an extension beyond the paper (it mentions SP-2\n"
      "runs but prints no table): fast nodes + slow interconnect = the worst\n"
      "parallel efficiency of the three, exactly the era's folklore.\n");
  return 0;
}
