// Compares the four parallel polar-filter implementations on one mesh:
// correctness (all four must produce the same fields) and cost (virtual
// time, messages, data volume) — a compact tour of the paper's Section 3.
//
//   $ ./filter_comparison [rows cols]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "comm/mesh2d.hpp"
#include "dynamics/dynamics.hpp"
#include "filter/variants.hpp"
#include "simnet/machine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace agcm;
  const int rows = argc > 2 ? std::atoi(argv[1]) : 4;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 8;
  const int nlon = 144, nlat = 90, nlev = 9;

  std::printf("Polar filter comparison: 144x90x9 grid, %dx%d nodes of a "
              "virtual Intel Paragon\n\n", rows, cols);

  const filter::FilterAlgorithm algorithms[] = {
      filter::FilterAlgorithm::kConvolutionRing,
      filter::FilterAlgorithm::kConvolutionTree,
      filter::FilterAlgorithm::kFftTranspose,
      filter::FilterAlgorithm::kFftBalanced,
  };

  Table table("Cost of one filtering pass (all five model variables)",
              {"Algorithm", "virtual ms", "messages", "KB moved",
               "max |diff| vs FFT+LB"});

  // Reference result from the load-balanced FFT variant.
  std::vector<double> reference;
  for (const auto algorithm : algorithms) {
    simnet::Machine machine(simnet::MachineProfile::intel_paragon());
    machine.set_recv_timeout_ms(600'000);
    std::vector<double> u_global(static_cast<std::size_t>(nlon) * nlat * nlev);
    double virtual_sec = 0.0;

    const auto run = machine.run(rows * cols, [&](simnet::RankContext& ctx) {
      comm::Communicator world(ctx);
      comm::Mesh2D mesh(world, rows, cols);
      const grid::LatLonGrid grid(nlon, nlat, nlev);
      const grid::Decomp2D decomp(nlon, nlat, rows, cols);
      const auto box = decomp.box(mesh.coord());
      const filter::FilterBank bank(grid,
                                    dynamics::Dynamics::filtered_variables());
      auto filt = filter::make_filter(algorithm, mesh, decomp, bank);

      dynamics::State state(box, nlev);
      dynamics::initialize_state(state, grid, box, 7);
      grid::Array3D<double>* fields[] = {&state.u, &state.v, &state.h,
                                         &state.theta, &state.q};
      world.barrier();
      if (world.rank() == 0) ctx.network().reset_counters();
      world.barrier();
      const double t0 = world.now();
      filt->apply(fields);
      world.barrier();
      if (world.rank() == 0) virtual_sec = world.now() - t0;

      for (int k = 0; k < nlev; ++k)
        for (int j = 0; j < box.nj; ++j)
          for (int i = 0; i < box.ni; ++i)
            u_global[static_cast<std::size_t>(box.i0 + i) +
                     static_cast<std::size_t>(nlon) *
                         (static_cast<std::size_t>(box.j0 + j) +
                          static_cast<std::size_t>(nlat) * k)] =
                state.u(i, j, k);
    });

    double diff = 0.0;
    if (reference.empty()) reference = u_global;  // first algorithm
    else diff = max_abs_diff(u_global, reference);
    table.add_row({std::string(filter::algorithm_name(algorithm)),
                   Table::num(virtual_sec * 1000.0, 2),
                   std::to_string(run.total_messages),
                   Table::num(static_cast<double>(run.total_bytes) / 1024.0, 0),
                   Table::num(diff, 12)});
  }
  print_table(table);
  std::printf(
      "\nAll four algorithms implement the same mathematical operator\n"
      "(equations (1) == (2)); the differences are pure floating-point\n"
      "rounding. The cost column is the paper's Section 3 story: FFT beats\n"
      "convolution, and the Figure-2 row redistribution beats both.\n");
  return 0;
}
