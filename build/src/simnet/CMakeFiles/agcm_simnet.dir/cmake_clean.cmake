file(REMOVE_RECURSE
  "CMakeFiles/agcm_simnet.dir/machine.cpp.o"
  "CMakeFiles/agcm_simnet.dir/machine.cpp.o.d"
  "CMakeFiles/agcm_simnet.dir/machine_profile.cpp.o"
  "CMakeFiles/agcm_simnet.dir/machine_profile.cpp.o.d"
  "CMakeFiles/agcm_simnet.dir/network.cpp.o"
  "CMakeFiles/agcm_simnet.dir/network.cpp.o.d"
  "libagcm_simnet.a"
  "libagcm_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
