
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/machine.cpp" "src/simnet/CMakeFiles/agcm_simnet.dir/machine.cpp.o" "gcc" "src/simnet/CMakeFiles/agcm_simnet.dir/machine.cpp.o.d"
  "/root/repo/src/simnet/machine_profile.cpp" "src/simnet/CMakeFiles/agcm_simnet.dir/machine_profile.cpp.o" "gcc" "src/simnet/CMakeFiles/agcm_simnet.dir/machine_profile.cpp.o.d"
  "/root/repo/src/simnet/network.cpp" "src/simnet/CMakeFiles/agcm_simnet.dir/network.cpp.o" "gcc" "src/simnet/CMakeFiles/agcm_simnet.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
