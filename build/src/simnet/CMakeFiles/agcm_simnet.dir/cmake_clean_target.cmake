file(REMOVE_RECURSE
  "libagcm_simnet.a"
)
