# Empty dependencies file for agcm_simnet.
# This may be replaced when dependencies are built.
