
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linsolve/distributed.cpp" "src/linsolve/CMakeFiles/agcm_linsolve.dir/distributed.cpp.o" "gcc" "src/linsolve/CMakeFiles/agcm_linsolve.dir/distributed.cpp.o.d"
  "/root/repo/src/linsolve/tridiag.cpp" "src/linsolve/CMakeFiles/agcm_linsolve.dir/tridiag.cpp.o" "gcc" "src/linsolve/CMakeFiles/agcm_linsolve.dir/tridiag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/agcm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/agcm_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
