file(REMOVE_RECURSE
  "CMakeFiles/agcm_linsolve.dir/distributed.cpp.o"
  "CMakeFiles/agcm_linsolve.dir/distributed.cpp.o.d"
  "CMakeFiles/agcm_linsolve.dir/tridiag.cpp.o"
  "CMakeFiles/agcm_linsolve.dir/tridiag.cpp.o.d"
  "libagcm_linsolve.a"
  "libagcm_linsolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_linsolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
