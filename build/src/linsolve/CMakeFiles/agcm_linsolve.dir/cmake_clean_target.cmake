file(REMOVE_RECURSE
  "libagcm_linsolve.a"
)
