# Empty dependencies file for agcm_linsolve.
# This may be replaced when dependencies are built.
