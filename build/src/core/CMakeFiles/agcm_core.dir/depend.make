# Empty dependencies file for agcm_core.
# This may be replaced when dependencies are built.
