file(REMOVE_RECURSE
  "CMakeFiles/agcm_core.dir/model.cpp.o"
  "CMakeFiles/agcm_core.dir/model.cpp.o.d"
  "libagcm_core.a"
  "libagcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
