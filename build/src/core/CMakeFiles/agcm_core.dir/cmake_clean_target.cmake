file(REMOVE_RECURSE
  "libagcm_core.a"
)
