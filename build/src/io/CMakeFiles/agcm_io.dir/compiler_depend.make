# Empty compiler generated dependencies file for agcm_io.
# This may be replaced when dependencies are built.
