file(REMOVE_RECURSE
  "CMakeFiles/agcm_io.dir/config.cpp.o"
  "CMakeFiles/agcm_io.dir/config.cpp.o.d"
  "CMakeFiles/agcm_io.dir/history.cpp.o"
  "CMakeFiles/agcm_io.dir/history.cpp.o.d"
  "libagcm_io.a"
  "libagcm_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
