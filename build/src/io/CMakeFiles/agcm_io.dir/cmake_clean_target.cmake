file(REMOVE_RECURSE
  "libagcm_io.a"
)
