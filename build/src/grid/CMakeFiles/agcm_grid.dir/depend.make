# Empty dependencies file for agcm_grid.
# This may be replaced when dependencies are built.
