file(REMOVE_RECURSE
  "libagcm_grid.a"
)
