file(REMOVE_RECURSE
  "CMakeFiles/agcm_grid.dir/decomp.cpp.o"
  "CMakeFiles/agcm_grid.dir/decomp.cpp.o.d"
  "CMakeFiles/agcm_grid.dir/halo.cpp.o"
  "CMakeFiles/agcm_grid.dir/halo.cpp.o.d"
  "CMakeFiles/agcm_grid.dir/latlon.cpp.o"
  "CMakeFiles/agcm_grid.dir/latlon.cpp.o.d"
  "libagcm_grid.a"
  "libagcm_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
