file(REMOVE_RECURSE
  "libagcm_comm.a"
)
