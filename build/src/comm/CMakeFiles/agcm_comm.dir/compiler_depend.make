# Empty compiler generated dependencies file for agcm_comm.
# This may be replaced when dependencies are built.
