file(REMOVE_RECURSE
  "CMakeFiles/agcm_comm.dir/communicator.cpp.o"
  "CMakeFiles/agcm_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/agcm_comm.dir/mesh2d.cpp.o"
  "CMakeFiles/agcm_comm.dir/mesh2d.cpp.o.d"
  "libagcm_comm.a"
  "libagcm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
