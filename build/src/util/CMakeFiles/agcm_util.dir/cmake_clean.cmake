file(REMOVE_RECURSE
  "CMakeFiles/agcm_util.dir/error.cpp.o"
  "CMakeFiles/agcm_util.dir/error.cpp.o.d"
  "CMakeFiles/agcm_util.dir/logging.cpp.o"
  "CMakeFiles/agcm_util.dir/logging.cpp.o.d"
  "CMakeFiles/agcm_util.dir/stats.cpp.o"
  "CMakeFiles/agcm_util.dir/stats.cpp.o.d"
  "CMakeFiles/agcm_util.dir/table.cpp.o"
  "CMakeFiles/agcm_util.dir/table.cpp.o.d"
  "libagcm_util.a"
  "libagcm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
