file(REMOVE_RECURSE
  "libagcm_util.a"
)
