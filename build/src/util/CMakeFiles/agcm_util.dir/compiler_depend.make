# Empty compiler generated dependencies file for agcm_util.
# This may be replaced when dependencies are built.
