# Empty compiler generated dependencies file for agcm_singlenode.
# This may be replaced when dependencies are built.
