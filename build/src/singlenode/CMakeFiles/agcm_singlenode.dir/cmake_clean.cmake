file(REMOVE_RECURSE
  "CMakeFiles/agcm_singlenode.dir/miniblas.cpp.o"
  "CMakeFiles/agcm_singlenode.dir/miniblas.cpp.o.d"
  "CMakeFiles/agcm_singlenode.dir/pointwise.cpp.o"
  "CMakeFiles/agcm_singlenode.dir/pointwise.cpp.o.d"
  "CMakeFiles/agcm_singlenode.dir/stencil.cpp.o"
  "CMakeFiles/agcm_singlenode.dir/stencil.cpp.o.d"
  "libagcm_singlenode.a"
  "libagcm_singlenode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_singlenode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
