
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/singlenode/miniblas.cpp" "src/singlenode/CMakeFiles/agcm_singlenode.dir/miniblas.cpp.o" "gcc" "src/singlenode/CMakeFiles/agcm_singlenode.dir/miniblas.cpp.o.d"
  "/root/repo/src/singlenode/pointwise.cpp" "src/singlenode/CMakeFiles/agcm_singlenode.dir/pointwise.cpp.o" "gcc" "src/singlenode/CMakeFiles/agcm_singlenode.dir/pointwise.cpp.o.d"
  "/root/repo/src/singlenode/stencil.cpp" "src/singlenode/CMakeFiles/agcm_singlenode.dir/stencil.cpp.o" "gcc" "src/singlenode/CMakeFiles/agcm_singlenode.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/agcm_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/agcm_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/agcm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
