file(REMOVE_RECURSE
  "libagcm_singlenode.a"
)
