file(REMOVE_RECURSE
  "CMakeFiles/agcm_fft.dir/dft_ref.cpp.o"
  "CMakeFiles/agcm_fft.dir/dft_ref.cpp.o.d"
  "CMakeFiles/agcm_fft.dir/fft.cpp.o"
  "CMakeFiles/agcm_fft.dir/fft.cpp.o.d"
  "libagcm_fft.a"
  "libagcm_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
