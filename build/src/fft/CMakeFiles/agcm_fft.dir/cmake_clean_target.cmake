file(REMOVE_RECURSE
  "libagcm_fft.a"
)
