# Empty compiler generated dependencies file for agcm_fft.
# This may be replaced when dependencies are built.
