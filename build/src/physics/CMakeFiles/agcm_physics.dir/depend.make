# Empty dependencies file for agcm_physics.
# This may be replaced when dependencies are built.
