file(REMOVE_RECURSE
  "libagcm_physics.a"
)
