file(REMOVE_RECURSE
  "CMakeFiles/agcm_physics.dir/column.cpp.o"
  "CMakeFiles/agcm_physics.dir/column.cpp.o.d"
  "CMakeFiles/agcm_physics.dir/physics.cpp.o"
  "CMakeFiles/agcm_physics.dir/physics.cpp.o.d"
  "libagcm_physics.a"
  "libagcm_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
