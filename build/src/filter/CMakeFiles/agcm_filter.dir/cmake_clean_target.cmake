file(REMOVE_RECURSE
  "libagcm_filter.a"
)
