file(REMOVE_RECURSE
  "CMakeFiles/agcm_filter.dir/bank.cpp.o"
  "CMakeFiles/agcm_filter.dir/bank.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/conv_ring.cpp.o"
  "CMakeFiles/agcm_filter.dir/conv_ring.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/conv_tree.cpp.o"
  "CMakeFiles/agcm_filter.dir/conv_tree.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/fft_balanced.cpp.o"
  "CMakeFiles/agcm_filter.dir/fft_balanced.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/fft_transpose.cpp.o"
  "CMakeFiles/agcm_filter.dir/fft_transpose.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/implicit_zonal.cpp.o"
  "CMakeFiles/agcm_filter.dir/implicit_zonal.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/parallel.cpp.o"
  "CMakeFiles/agcm_filter.dir/parallel.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/plan.cpp.o"
  "CMakeFiles/agcm_filter.dir/plan.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/response.cpp.o"
  "CMakeFiles/agcm_filter.dir/response.cpp.o.d"
  "CMakeFiles/agcm_filter.dir/serial.cpp.o"
  "CMakeFiles/agcm_filter.dir/serial.cpp.o.d"
  "libagcm_filter.a"
  "libagcm_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
