
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/bank.cpp" "src/filter/CMakeFiles/agcm_filter.dir/bank.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/bank.cpp.o.d"
  "/root/repo/src/filter/conv_ring.cpp" "src/filter/CMakeFiles/agcm_filter.dir/conv_ring.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/conv_ring.cpp.o.d"
  "/root/repo/src/filter/conv_tree.cpp" "src/filter/CMakeFiles/agcm_filter.dir/conv_tree.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/conv_tree.cpp.o.d"
  "/root/repo/src/filter/fft_balanced.cpp" "src/filter/CMakeFiles/agcm_filter.dir/fft_balanced.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/fft_balanced.cpp.o.d"
  "/root/repo/src/filter/fft_transpose.cpp" "src/filter/CMakeFiles/agcm_filter.dir/fft_transpose.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/fft_transpose.cpp.o.d"
  "/root/repo/src/filter/implicit_zonal.cpp" "src/filter/CMakeFiles/agcm_filter.dir/implicit_zonal.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/implicit_zonal.cpp.o.d"
  "/root/repo/src/filter/parallel.cpp" "src/filter/CMakeFiles/agcm_filter.dir/parallel.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/parallel.cpp.o.d"
  "/root/repo/src/filter/plan.cpp" "src/filter/CMakeFiles/agcm_filter.dir/plan.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/plan.cpp.o.d"
  "/root/repo/src/filter/response.cpp" "src/filter/CMakeFiles/agcm_filter.dir/response.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/response.cpp.o.d"
  "/root/repo/src/filter/serial.cpp" "src/filter/CMakeFiles/agcm_filter.dir/serial.cpp.o" "gcc" "src/filter/CMakeFiles/agcm_filter.dir/serial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/agcm_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/agcm_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linsolve/CMakeFiles/agcm_linsolve.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/agcm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/agcm_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
