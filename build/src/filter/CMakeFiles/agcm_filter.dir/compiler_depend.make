# Empty compiler generated dependencies file for agcm_filter.
# This may be replaced when dependencies are built.
