# Empty dependencies file for agcm_dynamics.
# This may be replaced when dependencies are built.
