file(REMOVE_RECURSE
  "libagcm_dynamics.a"
)
