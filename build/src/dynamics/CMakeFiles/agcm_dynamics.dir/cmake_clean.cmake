file(REMOVE_RECURSE
  "CMakeFiles/agcm_dynamics.dir/advection.cpp.o"
  "CMakeFiles/agcm_dynamics.dir/advection.cpp.o.d"
  "CMakeFiles/agcm_dynamics.dir/dynamics.cpp.o"
  "CMakeFiles/agcm_dynamics.dir/dynamics.cpp.o.d"
  "CMakeFiles/agcm_dynamics.dir/state.cpp.o"
  "CMakeFiles/agcm_dynamics.dir/state.cpp.o.d"
  "libagcm_dynamics.a"
  "libagcm_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
