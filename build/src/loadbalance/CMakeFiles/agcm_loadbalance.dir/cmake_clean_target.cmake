file(REMOVE_RECURSE
  "libagcm_loadbalance.a"
)
