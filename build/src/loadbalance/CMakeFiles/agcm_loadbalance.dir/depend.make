# Empty dependencies file for agcm_loadbalance.
# This may be replaced when dependencies are built.
