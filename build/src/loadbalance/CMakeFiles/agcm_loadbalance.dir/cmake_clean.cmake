file(REMOVE_RECURSE
  "CMakeFiles/agcm_loadbalance.dir/exchange.cpp.o"
  "CMakeFiles/agcm_loadbalance.dir/exchange.cpp.o.d"
  "CMakeFiles/agcm_loadbalance.dir/planner.cpp.o"
  "CMakeFiles/agcm_loadbalance.dir/planner.cpp.o.d"
  "CMakeFiles/agcm_loadbalance.dir/schemes.cpp.o"
  "CMakeFiles/agcm_loadbalance.dir/schemes.cpp.o.d"
  "libagcm_loadbalance.a"
  "libagcm_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
