
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loadbalance/exchange.cpp" "src/loadbalance/CMakeFiles/agcm_loadbalance.dir/exchange.cpp.o" "gcc" "src/loadbalance/CMakeFiles/agcm_loadbalance.dir/exchange.cpp.o.d"
  "/root/repo/src/loadbalance/planner.cpp" "src/loadbalance/CMakeFiles/agcm_loadbalance.dir/planner.cpp.o" "gcc" "src/loadbalance/CMakeFiles/agcm_loadbalance.dir/planner.cpp.o.d"
  "/root/repo/src/loadbalance/schemes.cpp" "src/loadbalance/CMakeFiles/agcm_loadbalance.dir/schemes.cpp.o" "gcc" "src/loadbalance/CMakeFiles/agcm_loadbalance.dir/schemes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/agcm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/agcm_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
