# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_simnet "/root/repo/build/tests/test_simnet")
set_tests_properties(test_simnet PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_comm "/root/repo/build/tests/test_comm")
set_tests_properties(test_comm PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_grid "/root/repo/build/tests/test_grid")
set_tests_properties(test_grid PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fft "/root/repo/build/tests/test_fft")
set_tests_properties(test_fft PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_filter "/root/repo/build/tests/test_filter")
set_tests_properties(test_filter PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_linsolve "/root/repo/build/tests/test_linsolve")
set_tests_properties(test_linsolve PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_loadbalance "/root/repo/build/tests/test_loadbalance")
set_tests_properties(test_loadbalance PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dynamics "/root/repo/build/tests/test_dynamics")
set_tests_properties(test_dynamics PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_physics "/root/repo/build/tests/test_physics")
set_tests_properties(test_physics PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_singlenode "/root/repo/build/tests/test_singlenode")
set_tests_properties(test_singlenode PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_io "/root/repo/build/tests/test_io")
set_tests_properties(test_io PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;agcm_test;/root/repo/tests/CMakeLists.txt;0;")
