file(REMOVE_RECURSE
  "CMakeFiles/test_loadbalance.dir/test_loadbalance.cpp.o"
  "CMakeFiles/test_loadbalance.dir/test_loadbalance.cpp.o.d"
  "test_loadbalance"
  "test_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
