# Empty compiler generated dependencies file for test_linsolve.
# This may be replaced when dependencies are built.
