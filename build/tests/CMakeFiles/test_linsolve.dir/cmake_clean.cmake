file(REMOVE_RECURSE
  "CMakeFiles/test_linsolve.dir/test_linsolve.cpp.o"
  "CMakeFiles/test_linsolve.dir/test_linsolve.cpp.o.d"
  "test_linsolve"
  "test_linsolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linsolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
