file(REMOVE_RECURSE
  "CMakeFiles/test_singlenode.dir/test_singlenode.cpp.o"
  "CMakeFiles/test_singlenode.dir/test_singlenode.cpp.o.d"
  "test_singlenode"
  "test_singlenode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_singlenode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
