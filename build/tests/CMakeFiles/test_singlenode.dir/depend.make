# Empty dependencies file for test_singlenode.
# This may be replaced when dependencies are built.
