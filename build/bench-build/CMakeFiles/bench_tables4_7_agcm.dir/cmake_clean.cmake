file(REMOVE_RECURSE
  "../bench/bench_tables4_7_agcm"
  "../bench/bench_tables4_7_agcm.pdb"
  "CMakeFiles/bench_tables4_7_agcm.dir/bench_tables4_7_agcm.cpp.o"
  "CMakeFiles/bench_tables4_7_agcm.dir/bench_tables4_7_agcm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables4_7_agcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
