# Empty dependencies file for bench_tables4_7_agcm.
# This may be replaced when dependencies are built.
