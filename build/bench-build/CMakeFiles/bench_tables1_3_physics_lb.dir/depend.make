# Empty dependencies file for bench_tables1_3_physics_lb.
# This may be replaced when dependencies are built.
