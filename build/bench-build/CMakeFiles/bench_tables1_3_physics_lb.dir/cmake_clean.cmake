file(REMOVE_RECURSE
  "../bench/bench_tables1_3_physics_lb"
  "../bench/bench_tables1_3_physics_lb.pdb"
  "CMakeFiles/bench_tables1_3_physics_lb.dir/bench_tables1_3_physics_lb.cpp.o"
  "CMakeFiles/bench_tables1_3_physics_lb.dir/bench_tables1_3_physics_lb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables1_3_physics_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
