file(REMOVE_RECURSE
  "../bench/bench_advection_opt"
  "../bench/bench_advection_opt.pdb"
  "CMakeFiles/bench_advection_opt.dir/bench_advection_opt.cpp.o"
  "CMakeFiles/bench_advection_opt.dir/bench_advection_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_advection_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
