# Empty dependencies file for bench_advection_opt.
# This may be replaced when dependencies are built.
