file(REMOVE_RECURSE
  "../bench/bench_stencil_layout"
  "../bench/bench_stencil_layout.pdb"
  "CMakeFiles/bench_stencil_layout.dir/bench_stencil_layout.cpp.o"
  "CMakeFiles/bench_stencil_layout.dir/bench_stencil_layout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stencil_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
