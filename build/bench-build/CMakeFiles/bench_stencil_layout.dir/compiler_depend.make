# Empty compiler generated dependencies file for bench_stencil_layout.
# This may be replaced when dependencies are built.
