# Empty dependencies file for bench_tables8_11_filtering.
# This may be replaced when dependencies are built.
