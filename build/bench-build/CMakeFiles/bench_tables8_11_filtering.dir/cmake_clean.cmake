file(REMOVE_RECURSE
  "../bench/bench_tables8_11_filtering"
  "../bench/bench_tables8_11_filtering.pdb"
  "CMakeFiles/bench_tables8_11_filtering.dir/bench_tables8_11_filtering.cpp.o"
  "CMakeFiles/bench_tables8_11_filtering.dir/bench_tables8_11_filtering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables8_11_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
