file(REMOVE_RECURSE
  "../bench/bench_pointwise_vm"
  "../bench/bench_pointwise_vm.pdb"
  "CMakeFiles/bench_pointwise_vm.dir/bench_pointwise_vm.cpp.o"
  "CMakeFiles/bench_pointwise_vm.dir/bench_pointwise_vm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pointwise_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
