# Empty dependencies file for bench_pointwise_vm.
# This may be replaced when dependencies are built.
