
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_pointwise_vm.cpp" "bench-build/CMakeFiles/bench_pointwise_vm.dir/bench_pointwise_vm.cpp.o" "gcc" "bench-build/CMakeFiles/bench_pointwise_vm.dir/bench_pointwise_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/singlenode/CMakeFiles/agcm_singlenode.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/agcm_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/agcm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/agcm_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
