file(REMOVE_RECURSE
  "../bench/bench_resolution_scaling"
  "../bench/bench_resolution_scaling.pdb"
  "CMakeFiles/bench_resolution_scaling.dir/bench_resolution_scaling.cpp.o"
  "CMakeFiles/bench_resolution_scaling.dir/bench_resolution_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resolution_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
