# Empty compiler generated dependencies file for bench_resolution_scaling.
# This may be replaced when dependencies are built.
