# Empty compiler generated dependencies file for agcm_run.
# This may be replaced when dependencies are built.
