file(REMOVE_RECURSE
  "CMakeFiles/agcm_run.dir/agcm_run.cpp.o"
  "CMakeFiles/agcm_run.dir/agcm_run.cpp.o.d"
  "agcm_run"
  "agcm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agcm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
