
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/load_balance_demo.cpp" "examples/CMakeFiles/load_balance_demo.dir/load_balance_demo.cpp.o" "gcc" "examples/CMakeFiles/load_balance_demo.dir/load_balance_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/agcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/agcm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/singlenode/CMakeFiles/agcm_singlenode.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/agcm_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/agcm_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/agcm_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/loadbalance/CMakeFiles/agcm_loadbalance.dir/DependInfo.cmake"
  "/root/repo/build/src/linsolve/CMakeFiles/agcm_linsolve.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/agcm_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/agcm_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/agcm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/agcm_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
