# Empty compiler generated dependencies file for load_balance_demo.
# This may be replaced when dependencies are built.
