# Empty compiler generated dependencies file for climate_simulation.
# This may be replaced when dependencies are built.
