file(REMOVE_RECURSE
  "CMakeFiles/climate_simulation.dir/climate_simulation.cpp.o"
  "CMakeFiles/climate_simulation.dir/climate_simulation.cpp.o.d"
  "climate_simulation"
  "climate_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
