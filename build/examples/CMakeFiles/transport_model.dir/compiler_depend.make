# Empty compiler generated dependencies file for transport_model.
# This may be replaced when dependencies are built.
