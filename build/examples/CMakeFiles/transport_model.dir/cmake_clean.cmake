file(REMOVE_RECURSE
  "CMakeFiles/transport_model.dir/transport_model.cpp.o"
  "CMakeFiles/transport_model.dir/transport_model.cpp.o.d"
  "transport_model"
  "transport_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
