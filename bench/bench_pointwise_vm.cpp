// Microbenchmark of the Section 3.4 "pointwise vector-multiply" kernel
// (equation (4)): naive modulo indexing vs the paper's recursive/tiled form
// vs tiled + 4-way unrolling. Google-benchmark, host CPU.
//
// The paper's argument: much of the AGCM's local computation has the shape
// C(i,j) = A(i,j,s) * B(i), which no BLAS-1 routine covers; an optimized
// a (.) b routine would lift those loops the way dcopy/dscal/daxpy lifted
// the simpler ones. The tiled/unrolled variants quantify what such a
// routine buys over the naive loop nest.
#include <benchmark/benchmark.h>

#include <vector>

#include "singlenode/miniblas.hpp"
#include "singlenode/pointwise.hpp"
#include "util/rng.hpp"

namespace agcm::singlenode {
namespace {

struct Operands {
  std::vector<double> a, b, out;
};

Operands make_operands(std::int64_t n, std::int64_t m) {
  Operands op;
  Rng rng(static_cast<std::uint64_t>(n * 31 + m));
  op.a.resize(static_cast<std::size_t>(n));
  op.b.resize(static_cast<std::size_t>(m));
  op.out.resize(static_cast<std::size_t>(n));
  for (double& v : op.a) v = rng.uniform(-1.0, 1.0);
  for (double& v : op.b) v = rng.uniform(-1.0, 1.0);
  return op;
}

void BM_PointwiseNaive(benchmark::State& state) {
  auto op = make_operands(state.range(0), state.range(1));
  for (auto _ : state) {
    pointwise_multiply_naive(op.a, op.b, op.out);
    benchmark::DoNotOptimize(op.out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PointwiseTiled(benchmark::State& state) {
  auto op = make_operands(state.range(0), state.range(1));
  for (auto _ : state) {
    pointwise_multiply_tiled(op.a, op.b, op.out);
    benchmark::DoNotOptimize(op.out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PointwiseUnrolled(benchmark::State& state) {
  auto op = make_operands(state.range(0), state.range(1));
  for (auto _ : state) {
    pointwise_multiply_unrolled(op.a, op.b, op.out);
    benchmark::DoNotOptimize(op.out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// (n, m) pairs: the AGCM shape is n = whole-field, m = one line (144) or
// one column (9 / 15 layers).
void shapes(benchmark::internal::Benchmark* b) {
  b->Args({144 * 90, 144})
      ->Args({144 * 90 * 9, 144})
      ->Args({144 * 90 * 9, 9})
      ->Args({144 * 90 * 15, 15})
      ->Args({1 << 16, 16});
}

BENCHMARK(BM_PointwiseNaive)->Apply(shapes);
BENCHMARK(BM_PointwiseTiled)->Apply(shapes);
BENCHMARK(BM_PointwiseUnrolled)->Apply(shapes);

// The mini-BLAS routines the paper substituted for hand-coded loops.
void BM_DaxpyPlain(benchmark::State& state) {
  auto op = make_operands(state.range(0), state.range(0));
  for (auto _ : state) {
    daxpy(1.0001, op.a, op.b);
    benchmark::DoNotOptimize(op.b.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DaxpyUnrolled(benchmark::State& state) {
  auto op = make_operands(state.range(0), state.range(0));
  for (auto _ : state) {
    daxpy_unrolled(1.0001, op.a, op.b);
    benchmark::DoNotOptimize(op.b.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_DaxpyPlain)->Arg(144 * 90)->Arg(144 * 90 * 9);
BENCHMARK(BM_DaxpyUnrolled)->Arg(144 * 90)->Arg(144 * 90 * 9);

}  // namespace
}  // namespace agcm::singlenode

BENCHMARK_MAIN();
