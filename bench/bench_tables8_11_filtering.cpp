// Reproduces Tables 8-11: total filtering times (seconds/simulated day) for
// the three filter module generations — convolution (the original code),
// FFT without load balance (Section 3.2), FFT with load balance
// (Section 3.3) — on the Paragon and T3D virtual machines for the 9- and
// 15-layer models.
//
// Also prints the derived metrics the paper quotes in Section 4: the
// 240-vs-16-node scaling of the load-balanced FFT filter (4.74 for 9
// layers / 32% parallel efficiency; 5.87 / 39% for 15 layers) and the
// ~5x speedup of the new module over convolution on 240 nodes.
#include <array>
#include <vector>

#include "bench_common.hpp"
#include "comm/mesh2d.hpp"
#include "dynamics/dynamics.hpp"
#include "filter/variants.hpp"
#include "simnet/machine.hpp"

namespace agcm {
namespace {

using bench::NodeMesh;
using bench::print_header;
using bench::print_note;

constexpr double kStepsPerDay = 192.0;

/// Measures one filter variant: max-over-ranks virtual seconds per apply,
/// scaled to seconds/simulated day.
double measure_filter(const simnet::MachineProfile& machine_profile,
                      int nlev, filter::FilterAlgorithm algorithm,
                      NodeMesh mesh_spec) {
  simnet::Machine machine(machine_profile);
  machine.set_recv_timeout_ms(600'000);
  std::vector<double> per_rank(static_cast<std::size_t>(mesh_spec.nodes()));

  machine.run(mesh_spec.nodes(), [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, mesh_spec.rows, mesh_spec.cols);
    const grid::LatLonGrid grid(144, 90, nlev);
    const grid::Decomp2D decomp(144, 90, mesh_spec.rows, mesh_spec.cols);
    const auto box = decomp.box(mesh.coord());

    const filter::FilterBank bank(grid,
                                  dynamics::Dynamics::filtered_variables());
    auto filter = filter::make_filter(algorithm, mesh, decomp, bank);

    dynamics::State state(box, nlev);
    dynamics::initialize_state(state, grid, box, 1996);
    grid::Array3D<double>* fields[] = {&state.u, &state.v, &state.h,
                                       &state.theta, &state.q};

    // One warmup apply, then two timed applies bounded by barriers so the
    // row-level load imbalance lands in the filter account — the paper's
    // component timings work the same way.
    filter->apply(fields);
    world.barrier();
    const double t0 = world.now();
    const int timed = 2;
    for (int s = 0; s < timed; ++s) {
      filter->apply(fields);
      world.barrier();
    }
    per_rank[static_cast<std::size_t>(world.rank())] =
        (world.now() - t0) / timed;
  });

  double worst = 0.0;
  for (double t : per_rank) worst = std::max(worst, t);
  return worst * kStepsPerDay;
}

struct PaperRow {
  NodeMesh mesh;
  double conv, fft, fft_lb;
};

struct Measured {
  double conv = 0.0, fft = 0.0, fft_lb = 0.0;
};

std::vector<Measured> run_table(const std::string& title,
                                const simnet::MachineProfile& machine,
                                int nlev,
                                const std::vector<PaperRow>& rows) {
  Table table(title, {"Node mesh", "Convolution (paper/meas)",
                      "FFT no LB (paper/meas)", "FFT + LB (paper/meas)"});
  std::vector<Measured> measured;
  for (const PaperRow& row : rows) {
    Measured m;
    m.conv = measure_filter(machine, nlev,
                            filter::FilterAlgorithm::kConvolutionRing,
                            row.mesh);
    m.fft = measure_filter(machine, nlev,
                           filter::FilterAlgorithm::kFftTranspose, row.mesh);
    m.fft_lb = measure_filter(machine, nlev,
                              filter::FilterAlgorithm::kFftBalanced, row.mesh);
    table.add_row({row.mesh.label(), Table::paper_vs(row.conv, m.conv, 1),
                   Table::paper_vs(row.fft, m.fft, 1),
                   Table::paper_vs(row.fft_lb, m.fft_lb, 1)});
    measured.push_back(m);
  }
  bench::emit_table(table);
  return measured;
}

void derived_metrics(const std::string& label,
                     const std::vector<Measured>& m, double paper_scaling,
                     double paper_efficiency, double paper_conv_ratio) {
  // Row order: 4x4(16), 4x8(32), 8x8(64), 4x30(120), 8x30(240).
  const Measured& n16 = m.front();
  const Measured& n240 = m.back();
  const double scaling = n16.fft_lb / n240.fft_lb;
  const double efficiency = scaling / 15.0;  // 240/16 node ratio
  const double conv_ratio = n240.conv / n240.fft_lb;
  std::printf(
      "%s derived metrics (paper / measured):\n"
      "  LB-FFT scaling 240 vs 16 nodes : %.2f / %.2f\n"
      "  LB-FFT parallel efficiency      : %.0f%% / %.0f%%\n"
      "  convolution vs LB-FFT at 8x30  : %.1fx / %.1fx\n\n",
      label.c_str(), paper_scaling, scaling, 100.0 * paper_efficiency,
      100.0 * efficiency, paper_conv_ratio, conv_ratio);
  std::fflush(stdout);
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "tables8_11_filtering");
  bench::JsonReport report(opts);
  bench::g_report = &report;

  print_header("Tables 8-11: total filtering times (seconds/simulated day)");
  print_note(
      "Columns: convolution (old module), FFT after row transpose (no load\n"
      "balance), and the load-balanced FFT module. Paper / measured.\n");

  const std::vector<PaperRow> t8 = {{{4, 4}, 309.5, 111.4, 87.7},
                                    {{4, 8}, 240.0, 88.0, 53.7},
                                    {{8, 8}, 189.5, 66.4, 38.2},
                                    {{4, 30}, 99.6, 43.7, 22.2},
                                    {{8, 30}, 90.0, 37.5, 18.5}};
  const std::vector<PaperRow> t9 = {{{4, 4}, 123.5, 44.6, 35.1},
                                    {{4, 8}, 96.0, 35.2, 21.5},
                                    {{8, 8}, 75.8, 26.4, 15.3},
                                    {{4, 30}, 39.6, 17.5, 8.9},
                                    {{8, 30}, 36.0, 15.0, 7.4}};
  const std::vector<PaperRow> t10 = {{{4, 4}, 802.0, 304.0, 221.0},
                                     {{4, 8}, 566.0, 205.0, 118.0},
                                     {{8, 8}, 422.0, 150.0, 85.0},
                                     {{4, 30}, 217.0, 96.0, 49.0},
                                     {{8, 30}, 188.0, 81.0, 37.0}};
  const std::vector<PaperRow> t11 = {{{4, 4}, 320.0, 121.0, 88.0},
                                     {{4, 8}, 226.0, 82.0, 47.0},
                                     {{8, 8}, 168.0, 60.0, 34.0},
                                     {{4, 30}, 86.0, 38.0, 19.0},
                                     {{8, 30}, 75.0, 32.0, 15.0}};

  const auto m8 = run_table(
      "Table 8: Intel Paragon, 2x2.5x9 grid",
      simnet::MachineProfile::intel_paragon(), 9, t8);
  const auto m9 = run_table("Table 9: Cray T3D, 2x2.5x9 grid",
                            simnet::MachineProfile::cray_t3d(), 9, t9);
  const auto m10 = run_table(
      "Table 10: Intel Paragon, 2x2.5x15 grid",
      simnet::MachineProfile::intel_paragon(), 15, t10);
  const auto m11 = run_table("Table 11: Cray T3D, 2x2.5x15 grid",
                             simnet::MachineProfile::cray_t3d(), 15, t11);

  derived_metrics("9-layer (Paragon)", m8, 4.74, 0.32, 90.0 / 18.5);
  derived_metrics("9-layer (T3D)", m9, 4.74, 0.32, 36.0 / 7.4);
  derived_metrics("15-layer (Paragon)", m10, 5.87, 0.39, 188.0 / 37.0);
  derived_metrics("15-layer (T3D)", m11, 5.87, 0.39, 75.0 / 15.0);
  report.finish();
  return 0;
}
