// Shared helpers for the benchmark harness.
//
// Besides the stopwatch/printing helpers every bench always had, this header
// provides the machine-readable side of the harness (see
// docs/observability.md):
//
//  * BenchOptions — uniform command line for every bench_* binary:
//        bench_foo [config.cfg] [--json[=path]] [--no-json]
//                  [--trace[=path]] [--csv=path]
//    plus the AGCM_BENCH_JSON / AGCM_TRACE environment overrides used by CI.
//  * JsonReport — collects every printed table (plus arbitrary extra
//    fields) and writes a deterministic `BENCH_<name>.json` next to the
//    binary, so the paper-vs-measured numbers are diffable across runs
//    without scraping stdout.
//  * emit_table — print a util/table AND record it in the report.
//
// The JSON files are deterministic: object keys keep insertion order and
// numbers use shortest-exact formatting, so two identical runs produce
// byte-identical artefacts (CI diffs them to prove virtual-time
// reproducibility).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/config_load.hpp"
#include "core/model.hpp"
#include "kernels/simd/dispatch.hpp"
#include "trace/export.hpp"
#include "trace/json.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "util/table.hpp"

namespace agcm::bench {

/// Wall-clock stopwatch for the host-time kernel benches.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

inline void print_note(const std::string& note) {
  std::printf("%s\n", note.c_str());
  std::fflush(stdout);
}

/// A paper node mesh (rows partition latitude, cols partition longitude).
struct NodeMesh {
  int rows;
  int cols;
  std::string label() const {
    return std::to_string(rows) + "x" + std::to_string(cols);
  }
  int nodes() const { return rows * cols; }
};

/// Uniform bench command line; see the header comment for the grammar.
struct BenchOptions {
  std::string bench_name;
  std::string config_path;  ///< optional positional argument
  bool write_json = true;
  std::string json_path;    ///< default "BENCH_<name>.json"
  bool trace = false;
  std::string trace_path;   ///< default "TRACE_<name>.json"
  std::string csv_path;     ///< empty = no CSV

  static BenchOptions parse(int argc, char** argv, std::string bench_name) {
    BenchOptions opts;
    opts.bench_name = std::move(bench_name);
    opts.json_path = "BENCH_" + opts.bench_name + ".json";
    opts.trace_path = "TRACE_" + opts.bench_name + ".json";

    if (const char* env = std::getenv("AGCM_BENCH_JSON")) {
      if (std::strcmp(env, "0") == 0) {
        opts.write_json = false;
      } else if (std::strcmp(env, "1") != 0) {
        opts.json_path = env;
      }
    }
    if (const char* env = std::getenv("AGCM_TRACE")) {
      if (std::strcmp(env, "0") != 0) {
        opts.trace = true;
        if (std::strcmp(env, "1") != 0) opts.trace_path = env;
      }
    }

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--no-json") {
        opts.write_json = false;
      } else if (arg == "--json") {
        opts.write_json = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        opts.write_json = true;
        opts.json_path = arg.substr(7);
      } else if (arg == "--trace") {
        opts.trace = true;
      } else if (arg.rfind("--trace=", 0) == 0) {
        opts.trace = true;
        opts.trace_path = arg.substr(8);
      } else if (arg.rfind("--csv=", 0) == 0) {
        opts.csv_path = arg.substr(6);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: bench_%s [config.cfg] [--json[=path]] [--no-json]\n"
            "       [--trace[=path]] [--csv=path]\n",
            opts.bench_name.c_str());
        std::exit(0);
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        std::exit(2);
      } else {
        opts.config_path = arg;
      }
    }
    if (opts.trace) trace::set_enabled(true);
    return opts;
  }
};

/// Host CPU features and the resolved SIMD dispatch decision, as a JSON
/// object for the `simd_dispatch` metadata block every bench report
/// carries. Host-dependent by nature — tools/perf_diff.py ignores it.
inline trace::JsonValue simd_dispatch_json() {
  const simd::DispatchInfo info = simd::info();
  trace::JsonValue out = trace::JsonValue::object();
  out.set("active_tier", std::string(simd::tier_name(info.active)));
  out.set("detected_tier", std::string(simd::tier_name(info.detected)));
  out.set("env_override", info.env_override);
  if (info.env_override) out.set("env_value", info.env_value);
  out.set("built_avx2", info.built_avx2);
  out.set("built_avx512", info.built_avx512);
  trace::JsonValue feats = trace::JsonValue::array();
  for (const std::string& f : info.cpu_features) feats.push_back(f);
  out.set("cpu_features", std::move(feats));
  trace::JsonValue demoted = trace::JsonValue::array();
  for (const std::string& f : info.demoted_families) demoted.push_back(f);
  out.set("demoted_families", std::move(demoted));
  return out;
}

/// Structured mirror of a bench's stdout: the tables it printed, optional
/// extra fields, and (when tracing) the per-phase aggregate + metrics.
class JsonReport {
 public:
  explicit JsonReport(BenchOptions opts) : opts_(std::move(opts)) {
    root_ = trace::JsonValue::object();
    root_.set("bench", opts_.bench_name);
    root_.set("schema", "agcm-bench-v1");
    if (!opts_.config_path.empty()) root_.set("config", opts_.config_path);
    root_.set("simd_dispatch", simd_dispatch_json());
    tables_ = trace::JsonValue::array();
  }

  const BenchOptions& options() const { return opts_; }

  /// Records one table: {"title", "headers", "rows": [[cell,...],...]}.
  void add_table(const Table& table) {
    trace::JsonValue t = trace::JsonValue::object();
    t.set("title", table.title());
    trace::JsonValue headers = trace::JsonValue::array();
    for (const std::string& h : table.headers()) headers.push_back(h);
    t.set("headers", std::move(headers));
    trace::JsonValue rows = trace::JsonValue::array();
    for (const auto& row : table.row_cells()) {
      trace::JsonValue cells = trace::JsonValue::array();
      for (const std::string& c : row) cells.push_back(c);
      rows.push_back(std::move(cells));
    }
    t.set("rows", std::move(rows));
    tables_.push_back(std::move(t));
  }

  /// Adds/overwrites an arbitrary top-level field.
  void set(std::string_view key, trace::JsonValue value) {
    root_.set(key, std::move(value));
  }

  /// Snapshots the tracer's per-phase aggregate into the report.
  void add_phases() {
    root_.set("phases",
              trace::phases_json(
                  trace::aggregate_phases(trace::Tracer::instance())));
  }

  /// Snapshots the metrics registry (counters/gauges/distributions).
  void add_metrics() {
    root_.set("metrics", trace::MetricsRegistry::instance().to_json());
  }

  /// Serialises the report (tables last, so hand-set fields lead).
  trace::JsonValue to_json() const {
    trace::JsonValue out = root_;
    out.set("tables", tables_);
    return out;
  }

  /// Writes BENCH_<name>.json (unless --no-json) and, when tracing was on,
  /// the Chrome trace and optional CSV. Prints what it wrote.
  void finish() {
    if (opts_.trace) {
      add_phases();
      add_metrics();
      trace::write_chrome_trace(trace::Tracer::instance(), opts_.trace_path);
      std::printf("wrote %s (chrome://tracing)\n", opts_.trace_path.c_str());
      if (!opts_.csv_path.empty()) {
        trace::write_trace_csv(trace::Tracer::instance(), opts_.csv_path);
        std::printf("wrote %s\n", opts_.csv_path.c_str());
      }
    }
    if (opts_.write_json) {
      trace::write_text_file(opts_.json_path, to_json().dump_pretty() + "\n");
      std::printf("wrote %s\n", opts_.json_path.c_str());
    }
    std::fflush(stdout);
  }

 private:
  BenchOptions opts_;
  trace::JsonValue root_;
  trace::JsonValue tables_;
};

/// Prints the table to stdout and records it in the report.
inline void emit_table(JsonReport& report, const Table& table) {
  print_table(table);
  report.add_table(table);
}

/// Current report for benches whose table-printing helpers predate the
/// report plumbing; set by main, used by the one-argument emit_table.
inline JsonReport* g_report = nullptr;

/// Prints the table and, when a report is active, records it there too.
inline void emit_table(const Table& table) {
  print_table(table);
  if (g_report != nullptr) g_report->add_table(table);
}

}  // namespace agcm::bench
