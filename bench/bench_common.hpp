// Shared helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "core/model.hpp"
#include "util/table.hpp"

namespace agcm::bench {

/// Wall-clock stopwatch for the host-time kernel benches.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

inline void print_note(const std::string& note) {
  std::printf("%s\n", note.c_str());
  std::fflush(stdout);
}

/// A paper node mesh (rows partition latitude, cols partition longitude).
struct NodeMesh {
  int rows;
  int cols;
  std::string label() const {
    return std::to_string(rows) + "x" + std::to_string(cols);
  }
  int nodes() const { return rows * cols; }
};

}  // namespace agcm::bench
