// Ablation benches for the design choices DESIGN.md calls out:
//
//  1. Ring vs tree convolution filtering (Section 2 cites the tradeoff:
//     the ring sends more messages, the tree moves more data) — measured
//     as actual message counts / volumes / virtual time on one mesh.
//  2. FFT-transpose vs load-balanced FFT across mesh heights: the taller
//     the mesh, the more idle equatorial rows the Figure-2 redistribution
//     recovers.
//  3. The one-time setup cost of the load-balanced filter plan vs problem
//     size ("its cost is also nearly independent of AGCM problem size").
//  4. Scheme 1 vs Scheme 2 vs Scheme 3 load balancing: achieved imbalance
//     vs message count and moved volume (the paper's Figures 4-6 argument).
#include <vector>

#include "bench_common.hpp"
#include "comm/mesh2d.hpp"
#include "dynamics/dynamics.hpp"
#include "filter/variants.hpp"
#include "loadbalance/exchange.hpp"
#include "simnet/machine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace agcm {
namespace {

using bench::NodeMesh;
using bench::print_header;
using bench::print_note;

struct FilterCosts {
  double virtual_sec = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double setup_sec = 0.0;
};

FilterCosts measure_filter(filter::FilterAlgorithm algorithm,
                           NodeMesh mesh_spec, int nlon, int nlat, int nlev) {
  simnet::Machine machine(simnet::MachineProfile::intel_paragon());
  machine.set_recv_timeout_ms(600'000);
  FilterCosts costs;
  std::vector<double> per_rank(static_cast<std::size_t>(mesh_spec.nodes()));
  std::vector<double> setup(static_cast<std::size_t>(mesh_spec.nodes()));

  const auto result = machine.run(mesh_spec.nodes(), [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, mesh_spec.rows, mesh_spec.cols);
    const grid::LatLonGrid grid(nlon, nlat, nlev);
    const grid::Decomp2D decomp(nlon, nlat, mesh_spec.rows, mesh_spec.cols);
    const auto box = decomp.box(mesh.coord());
    const filter::FilterBank bank(grid,
                                  dynamics::Dynamics::filtered_variables());
    const double s0 = world.now();
    auto filt = filter::make_filter(algorithm, mesh, decomp, bank);
    setup[static_cast<std::size_t>(world.rank())] = world.now() - s0;

    dynamics::State state(box, nlev);
    dynamics::initialize_state(state, grid, box, 1);
    grid::Array3D<double>* fields[] = {&state.u, &state.v, &state.h,
                                       &state.theta, &state.q};
    // Reset traffic counters after setup so only apply() traffic counts.
    // The reset must be quiescent: a barrier-sandwiched reset races against
    // barrier stragglers (the binomial broadcast's forwarded messages and
    // the next reduce's leaf sends land before or after the reset depending
    // on thread timing), which made the messages column wobble by up to
    // ~2(P-1) once the transport got fast enough to lose the race. Instead
    // rank 0 resets while every other rank is provably blocked between its
    // READY send and the START recv, so no message can straddle the reset:
    // the counted traffic is exactly the P-1 START releases, the clock-
    // realigning barrier below, apply(), and the closing barrier —
    // deterministic under any interleaving. The barrier after the gate
    // re-aligns all virtual clocks, and apply()'s virtual duration is
    // invariant under a uniform shift of the synchronized start time, so
    // the virtual s/apply column is unchanged.
    constexpr int kReady = 3101, kStart = 3102;
    if (world.rank() == 0) {
      for (int r = 1; r < world.size(); ++r) (void)world.recv_value<int>(r, kReady);
      ctx.network().reset_counters();
      for (int r = 1; r < world.size(); ++r) world.send_value<int>(r, kStart, 1);
    } else {
      world.send_value<int>(0, kReady, 1);
      (void)world.recv_value<int>(0, kStart);
    }
    world.barrier();
    const double t0 = world.now();
    filt->apply(fields);
    world.barrier();
    per_rank[static_cast<std::size_t>(world.rank())] = world.now() - t0;
  });

  for (double t : per_rank) costs.virtual_sec = std::max(costs.virtual_sec, t);
  for (double t : setup) costs.setup_sec = std::max(costs.setup_sec, t);
  costs.messages = result.total_messages;
  costs.bytes = result.total_bytes;
  return costs;
}

/// Ring-vs-tree message ratio at the 4x8 mesh (ring sends more messages,
/// tree moves more bytes); recorded in the report summary.
struct RingTreeSummary {
  double msg_ratio = 0.0;    ///< ring messages / tree messages
  bool tree_more_bytes = false;
};

RingTreeSummary ring_vs_tree() {
  Table table(
      "Ablation 1: convolution filtering, ring vs tree (Paragon, 144x90x9)",
      {"Mesh", "Variant", "virtual s/apply", "messages", "MB moved"});
  RingTreeSummary summary;
  for (NodeMesh mesh : {NodeMesh{4, 8}, NodeMesh{4, 16}}) {
    FilterCosts ring_costs, tree_costs;
    for (auto [alg, name] :
         {std::pair{filter::FilterAlgorithm::kConvolutionRing, "ring"},
          std::pair{filter::FilterAlgorithm::kConvolutionTree, "tree"}}) {
      const FilterCosts c = measure_filter(alg, mesh, 144, 90, 9);
      if (alg == filter::FilterAlgorithm::kConvolutionRing) ring_costs = c;
      else tree_costs = c;
      table.add_row({mesh.label(), name, Table::num(c.virtual_sec, 4),
                     std::to_string(c.messages),
                     Table::num(static_cast<double>(c.bytes) / 1.0e6, 2)});
    }
    if (mesh.rows == 4 && mesh.cols == 8) {
      summary.msg_ratio = static_cast<double>(ring_costs.messages) /
                          static_cast<double>(tree_costs.messages);
      summary.tree_more_bytes = tree_costs.bytes > ring_costs.bytes;
    }
  }
  bench::emit_table(table);
  print_note(
      "Expected shape (Section 2): the ring needs ~(P-1) messages per node\n"
      "per variable but ships only chunk-sized payloads; the tree halves the\n"
      "message count but moves whole lines (larger volume).\n");
  return summary;
}

/// Load-balance gain at the shortest and tallest mesh; recorded in the
/// report summary (the gain must grow with the number of processor rows).
struct LbGainSummary {
  double gain_short = 0.0;  ///< 2x8 mesh
  double gain_tall = 0.0;   ///< 12x8 mesh
};

LbGainSummary balanced_vs_plain() {
  Table table(
      "Ablation 2: FFT-transpose vs load-balanced FFT across mesh heights",
      {"Mesh", "FFT no LB s/apply", "FFT+LB s/apply", "gain"});
  LbGainSummary summary;
  for (NodeMesh mesh :
       {NodeMesh{2, 8}, NodeMesh{4, 8}, NodeMesh{8, 8}, NodeMesh{12, 8}}) {
    const FilterCosts plain =
        measure_filter(filter::FilterAlgorithm::kFftTranspose, mesh, 144, 90, 9);
    const FilterCosts lb =
        measure_filter(filter::FilterAlgorithm::kFftBalanced, mesh, 144, 90, 9);
    const double gain = plain.virtual_sec / lb.virtual_sec;
    if (mesh.rows == 2) summary.gain_short = gain;
    if (mesh.rows == 12) summary.gain_tall = gain;
    table.add_row({mesh.label(), Table::num(plain.virtual_sec, 4),
                   Table::num(lb.virtual_sec, 4),
                   Table::num(gain, 2) + "x"});
  }
  bench::emit_table(table);
  print_note(
      "Expected shape: the gain grows with the number of processor rows —\n"
      "more equatorial rows idle without the Figure-2 redistribution.\n");
  return summary;
}

void setup_cost() {
  Table table(
      "Ablation 3: one-time setup cost of the load-balanced filter plan",
      {"Grid", "Layers", "setup virtual s", "one apply virtual s"});
  for (auto [nlon, nlat, nlev] :
       {std::tuple{72, 46, 9}, std::tuple{144, 90, 9},
        std::tuple{144, 90, 15}, std::tuple{288, 180, 9}}) {
    const FilterCosts c = measure_filter(filter::FilterAlgorithm::kFftBalanced,
                                         {4, 8}, nlon, nlat, nlev);
    table.add_row({std::to_string(nlon) + "x" + std::to_string(nlat),
                   std::to_string(nlev), Table::num(c.setup_sec, 5),
                   Table::num(c.virtual_sec, 5)});
  }
  bench::emit_table(table);
  print_note(
      "Paper: setup 'is done only once, and its cost is also nearly\n"
      "independent of AGCM problem size' — it grows far slower than the\n"
      "per-step filtering work.\n");
}

void implicit_vs_spectral() {
  Table table(
      "Ablation 5 (extension): implicit zonal diffusion vs spectral filter",
      {"Mesh", "Variant", "virtual s/apply", "messages", "MB moved"});
  for (NodeMesh mesh : {NodeMesh{4, 4}, NodeMesh{4, 8}}) {
    for (auto [alg, name] :
         {std::pair{filter::FilterAlgorithm::kFftBalanced, "fft-load-balanced"},
          std::pair{filter::FilterAlgorithm::kImplicitZonal,
                    "implicit-zonal"}}) {
      const FilterCosts c = measure_filter(alg, mesh, 144, 90, 9);
      table.add_row({mesh.label(), name, Table::num(c.virtual_sec, 4),
                     std::to_string(c.messages),
                     Table::num(static_cast<double>(c.bytes) / 1.0e6, 2)});
    }
  }
  bench::emit_table(table);
  print_note(
      "The implicit operator needs no transpose and moves ~3x fewer bytes,\n"
      "but even with all lines batched into one distributed solve it stays\n"
      "root-serialised (the reduced interface systems are solved on one\n"
      "node) and keeps the filter's latitudinal load imbalance — the\n"
      "transpose + local FFT wins, which is exactly the design point the\n"
      "paper picked.\n");
}

void scheme_comparison() {
  Table table(
      "Ablation 4: load-balancing schemes (16 nodes, day/night-like loads)",
      {"Scheme", "imbalance before", "after", "messages", "items moved"});
  const int p = 16;
  for (int scheme = 1; scheme <= 3; ++scheme) {
    simnet::Machine machine(simnet::MachineProfile::intel_paragon());
    machine.set_recv_timeout_ms(600'000);
    double before = 0.0, after = 0.0;
    std::vector<double> moved(static_cast<std::size_t>(p));
    const auto result = machine.run(p, [&](simnet::RankContext& ctx) {
      comm::Communicator world(ctx);
      // Day/night-style loads: half the ranks ~3x heavier, 80 items each.
      Rng rng(static_cast<std::uint64_t>(world.rank()) * 7 + 3);
      const double base = world.rank() < p / 2 ? 3.0 : 1.0;
      std::vector<lb::Item> items(80);
      std::vector<double> payloads(80 * 18);
      for (int q = 0; q < 80; ++q)
        items[static_cast<std::size_t>(q)] = {
            static_cast<std::uint64_t>(world.rank() * 1000 + q),
            base * rng.uniform(0.8, 1.2)};
      lb::BalanceResult r;
      switch (scheme) {
        case 1: r = lb::balance_cyclic(world, items, payloads, 18); break;
        case 2:
          r = lb::balance_sorted_greedy(world, items, payloads, 18);
          break;
        default: {
          lb::PairwiseOptions options;
          options.max_iterations = 2;
          r = lb::balance_pairwise(world, items, payloads, 18, options);
        }
      }
      int received = 0;
      for (const auto& origin : r.held_origins)
        if (origin.rank != world.rank()) ++received;
      moved[static_cast<std::size_t>(world.rank())] = received;
      if (world.rank() == 0) {
        before = r.imbalance_before;
        after = r.imbalance_after;
      }
    });
    const char* names[] = {"", "1: cyclic shuffle", "2: sorted greedy",
                           "3: pairwise x2"};
    table.add_row({names[scheme], Table::pct(before, 1), Table::pct(after, 1),
                   std::to_string(result.total_messages),
                   Table::num(sum(moved), 0)});
  }
  bench::emit_table(table);
  print_note(
      "Expected shape (Figures 4-6): scheme 1 balances well but moves\n"
      "(N-1)/N of all data with O(N^2) messages; scheme 2 moves the least\n"
      "but needs global item metadata; scheme 3 gets close to scheme 2's\n"
      "quality with only load exchanges plus pairwise transfers.");
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "ablation_comm");
  bench::JsonReport report(opts);
  bench::g_report = &report;
  print_header("Ablation benches: communication structure and setup costs");
  const RingTreeSummary rt = ring_vs_tree();
  const LbGainSummary lb_gain = balanced_vs_plain();
  setup_cost();
  implicit_vs_spectral();
  scheme_comparison();
  // Machine-readable summary of the two headline ablations (validated by
  // tools/check_bench_json.py); everything is virtual-time deterministic.
  report.set("ring_vs_tree_msg_ratio", rt.msg_ratio);
  report.set("tree_more_bytes_than_ring", rt.tree_more_bytes);
  report.set("lb_gain_short_mesh", lb_gain.gain_short);
  report.set("lb_gain_tall_mesh", lb_gain.gain_tall);
  report.set("lb_gain_grows_with_rows",
             lb_gain.gain_tall > lb_gain.gain_short);
  report.finish();
  return 0;
}
