// FFT kernel microbenchmark: host time of the polar-filter FFT paths.
//
// Compares, at the AGCM line lengths nlon in {72, 144, 288}:
//   * seed-recursive-pair — the ORIGINAL recursive engine (fft/recursive_ref)
//     driving the seed's pair-filter structure (per-call heap scratch,
//     split/merge through materialised spectra). This is the baseline the
//     iterative engine replaced.
//   * iterative-single   — filter_line_fft, one line per complex transform.
//   * iterative-pair     — filter_line_pair_fft, two lines per transform
//     with the fused in-spectrum response multiply.
//   * iterative-batched  — filter_lines_fft, the pair-packing batched
//     driver the parallel variants call (same-response pairing fast path).
//
// Reported per path: host ns per grid point, and the FROZEN virtual-clock
// flops the path charges per batch (which, by design, is identical for
// every FFT path — host optimisation never moves the paper's numbers).
//
// The headline acceptance numbers land as top-level JSON fields:
//   seed_ns_per_point_n144, batched_ns_per_point_n144, speedup_n144
// (ISSUE 2 requires speedup_n144 >= 3).
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fft/fft.hpp"
#include "fft/recursive_ref.hpp"
#include "fft/workspace.hpp"
#include "filter/bank.hpp"
#include "filter/serial.hpp"
#include "grid/latlon.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace agcm {
namespace {

using bench::Stopwatch;
using fft::Complex;

/// Lines per batch: a representative per-node share (e.g. nlev layers of a
/// few variables at a couple of latitudes). Odd, so the trailing
/// single-line path is exercised too.
constexpr int kBatchLines = 15;

struct PathResult {
  std::string name;
  double ns_per_point = 0.0;
  double virtual_flops = 0.0;  ///< frozen charge per batch
  double checksum = 0.0;       ///< defeats dead-code elimination; printed
};

/// The seed's pair filter, verbatim structure: recursive engine,
/// materialised spectra, per-call allocations.
void seed_filter_pair(const fft::RecursiveFftPlan& plan, std::span<double> a,
                      std::span<double> b, std::span<const double> s_a,
                      std::span<const double> s_b) {
  const auto n = static_cast<std::size_t>(plan.size());
  std::vector<Complex> sa(n), sb(n);
  plan.forward_real_pair(a, b, sa, sb);
  for (std::size_t k = 0; k < n; ++k) {
    sa[k] *= s_a[k];
    sb[k] *= s_b[k];
  }
  plan.inverse_to_real_pair(sa, sb, a, b);
}

void seed_filter_single(const fft::RecursiveFftPlan& plan,
                        std::span<double> line, std::span<const double> s) {
  const auto n = static_cast<std::size_t>(plan.size());
  std::vector<Complex> spectrum = plan.forward_real(line);
  for (std::size_t k = 0; k < n; ++k) spectrum[k] *= s[k];
  plan.inverse_to_real(spectrum, line);
}

double batch_virtual_flops(int n, std::size_t count) {
  double flops = 0.0;
  std::size_t p = 0;
  for (; p + 1 < count; p += 2) flops += filter::fft_filter_pair_flops(n);
  if (p < count) flops += filter::fft_filter_flops(n);
  return flops;
}

double sum(std::span<const double> data) {
  double s = 0.0;
  for (double v : data) s += v;
  return s;
}

/// Runs `body(data)` `reps` times over a fresh copy of `base` and returns
/// ns per grid point plus a checksum of the final state.
template <typename Body>
PathResult time_path(const std::string& name, std::span<const double> base,
                     int n, int reps, double virtual_flops, Body&& body) {
  std::vector<double> data(base.begin(), base.end());
  body(std::span<double>(data));  // warm-up (workspace growth, caches)
  std::copy(base.begin(), base.end(), data.begin());

  Stopwatch watch;
  for (int r = 0; r < reps; ++r) body(std::span<double>(data));
  const double sec = watch.seconds();

  PathResult out;
  out.name = name;
  const double points =
      static_cast<double>(reps) * static_cast<double>(base.size());
  out.ns_per_point = sec * 1e9 / points;
  out.virtual_flops = virtual_flops;
  out.checksum = sum(data);
  (void)n;
  return out;
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  bench::BenchOptions opts =
      bench::BenchOptions::parse(argc, argv, "fft_kernel");
  bench::JsonReport report(opts);
  bench::g_report = &report;

  bench::print_header(
      "FFT kernel microbench: seed recursive engine vs iterative engine\n"
      "(host ns/point; virtual-clock flops are FROZEN and path-independent)");

  Table table("Polar-filter FFT paths",
              {"nlon", "path", "reps", "ns/point", "Mpoints/s",
               "virtual flops/batch"});

  double seed_144 = 0.0;
  double batched_144 = 0.0;

  for (int nlon : {72, 144, 288}) {
    // A realistic response workload: one strongly and one weakly filtered
    // variable on an AGCM-shaped grid; the batch takes the first
    // kBatchLines global lines (several layers, a few latitudes).
    const grid::LatLonGrid grid(nlon, 90, 5);
    const filter::FilterBank bank(grid,
                                  {{"u", filter::FilterKind::kStrong},
                                   {"t", filter::FilterKind::kWeak}});
    const auto& all = bank.lines();
    const std::vector<filter::LineKey> batch(all.begin(),
                                             all.begin() + kBatchLines);
    const auto un = static_cast<std::size_t>(nlon);

    Rng rng(42 + static_cast<std::uint64_t>(nlon));
    std::vector<double> base(batch.size() * un);
    for (double& v : base) v = rng.uniform(-1.0, 1.0);

    const fft::RecursiveFftPlan seed_plan(nlon);
    const fft::FftPlan& plan = fft::FftWorkspace::local().plan(nlon);
    const double vflops = batch_virtual_flops(nlon, batch.size());

    // Reps sized for a few hundred ms per path at every length.
    const int reps =
        std::max(200, static_cast<int>(6.0e6 / static_cast<double>(un) /
                                       static_cast<double>(batch.size())));

    auto line_of = [&](std::span<double> data, std::size_t i) {
      return data.subspan(i * un, un);
    };
    auto resp = [&](std::size_t i) {
      return bank.response(batch[i].var, batch[i].j);
    };

    std::vector<PathResult> results;
    results.push_back(time_path(
        "seed-recursive-pair", base, nlon, reps, vflops,
        [&](std::span<double> data) {
          std::size_t p = 0;
          for (; p + 1 < batch.size(); p += 2) {
            seed_filter_pair(seed_plan, line_of(data, p), line_of(data, p + 1),
                             resp(p), resp(p + 1));
          }
          if (p < batch.size())
            seed_filter_single(seed_plan, line_of(data, p), resp(p));
        }));
    results.push_back(time_path(
        "iterative-single", base, nlon, reps,
        static_cast<double>(batch.size()) * filter::fft_filter_flops(nlon),
        [&](std::span<double> data) {
          for (std::size_t i = 0; i < batch.size(); ++i)
            filter::filter_line_fft(plan, line_of(data, i), resp(i));
        }));
    results.push_back(time_path(
        "iterative-pair", base, nlon, reps, vflops,
        [&](std::span<double> data) {
          std::size_t p = 0;
          for (; p + 1 < batch.size(); p += 2) {
            filter::filter_line_pair_fft(plan, line_of(data, p),
                                         line_of(data, p + 1), resp(p),
                                         resp(p + 1));
          }
          if (p < batch.size())
            filter::filter_line_fft(plan, line_of(data, p), resp(p));
        }));
    results.push_back(time_path(
        "iterative-batched", base, nlon, reps, vflops,
        [&](std::span<double> data) {
          filter::filter_lines_fft(plan, bank, batch, data);
        }));

    for (const PathResult& r : results) {
      table.add_row({std::to_string(nlon), r.name, std::to_string(reps),
                     Table::num(r.ns_per_point, 2),
                     Table::num(1e3 / r.ns_per_point, 1),
                     Table::num(r.virtual_flops, 0)});
      if (nlon == 144) {
        if (r.name == "seed-recursive-pair") seed_144 = r.ns_per_point;
        if (r.name == "iterative-batched") batched_144 = r.ns_per_point;
      }
    }

    // Cross-path sanity: every path must converge to (nearly) the same
    // filtered field; a large drift would mean a path is wrong.
    for (std::size_t i = 1; i < results.size(); ++i) {
      const double ref = results[0].checksum;
      const double drift = std::abs(results[i].checksum - ref) /
                           std::max(1.0, std::abs(ref));
      if (drift > 1e-6) {
        std::fprintf(stderr, "checksum drift on %s at nlon=%d: %g vs %g\n",
                     results[i].name.c_str(), nlon, results[i].checksum, ref);
        return 1;
      }
    }
  }

  bench::emit_table(report, table);

  const double speedup = seed_144 / batched_144;
  bench::print_note("headline (nlon=144): seed " +
                    Table::num(seed_144, 2) + " ns/point, batched " +
                    Table::num(batched_144, 2) + " ns/point, speedup " +
                    Table::num(speedup, 2) + "x (acceptance: >= 3x)");

  report.set("seed_ns_per_point_n144", seed_144);
  report.set("batched_ns_per_point_n144", batched_144);
  report.set("speedup_n144", speedup);
  report.finish();
  return 0;
}
