// SIMD dispatch backend: per-tier host speed and cross-tier correctness
// (docs/kernels.md, "Runtime SIMD dispatch").
//
// For every tier the host can run (scalar always; AVX2/AVX-512 when built
// and supported), this bench forces the dispatch table to that tier and
// measures the five kernel families against the forced-scalar engine —
// the PR 4 baseline the intrinsics are supposed to beat:
//
//  * advection — gated on the row-sweep composite (flux_row +
//    advect_update_row over an L2-resident tile, 64-byte-aligned rows like
//    production Array3D storage): that is the dispatched kernel code
//    itself. The full advect_tracers_optimized engine (paper grid
//    144x90x9, four tracers) is also timed, informationally — at full-grid
//    working sets it is bandwidth-bound and the ISA matters less;
//  * pointwise — the Section 3.4 operator at an L1-resident shape with
//    aligned buffers (n=1152, m=144; larger shapes are bandwidth-bound and
//    would measure the memory bus, not the ISA — see docs/kernels.md);
//  * stencil   — the separate-fields Laplace engine (informational);
//  * miniblas  — daxpy (bitwise) and ddot (reduction, ulp-bounded);
//  * longwave + FFT — the opt-in reduction-family entry points
//    (longwave_sweep_simd, FftPlan::forward_simd at n=1024 and n=144),
//    ulp-bounded vs their scalar twins, plus a forced-scalar bitwise
//    identity check (tier scalar must be the scalar code exactly).
//
// Every trial restarts from a fresh copy of the same initial state
// (best-of-N min time, the bench_kernel_engine convention).
//
// Acceptance gates (exit 1 on failure, recorded in the BENCH JSON):
//   * contracted families (advection, pointwise, stencil, daxpy) BITWISE
//     identical to their scalar references on every checked tier;
//   * reduction families within kMaxUlp of scalar, and bitwise under a
//     forced-scalar tier;
//   * when the active tier is a SIMD tier: advection and pointwise at the
//     active tier >= 1.5x the forced-scalar engine. Skipped (with a note)
//     when the resolved tier is scalar — e.g. the AGCM_SIMD=scalar CI leg.
//
// `--check-only` skips all timing and emits only deterministic fields so
// CI's determinism fence can byte-compare two runs on the same host.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dynamics/advection.hpp"
#include "dynamics/advection_seed_ref.hpp"
#include "dynamics/state.hpp"
#include "fft/fft.hpp"
#include "kernels/column_kernels.hpp"
#include "kernels/simd/dispatch.hpp"
#include "kernels/stencil_kernels.hpp"
#include "singlenode/miniblas.hpp"
#include "singlenode/pointwise.hpp"
#include "singlenode/stencil.hpp"
#include "util/aligned.hpp"
#include "util/table.hpp"

namespace {

using agcm::Table;
using agcm::bench::Stopwatch;
using agcm::grid::Array3D;
namespace simd = agcm::simd;

/// 64-byte-aligned storage, the production Array3D layout — unaligned
/// 256/512-bit accesses split across cache lines cost the SIMD tiers most
/// of their ALU advantage on store-bound kernels.
template <class T>
using AlignedVec = std::vector<T, agcm::util::AlignedAllocator<T, 64>>;

bool g_check_only = false;

bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// ULP distance between two doubles (monotone bit-pattern trick); NaN or
/// infinity anywhere maps to a huge distance so gates fail loudly.
double ulp_diff(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) return 1e30;
  auto ordered = [](double x) {
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof(u));
    return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
  };
  const std::uint64_t ua = ordered(a), ub = ordered(b);
  return static_cast<double>(ua > ub ? ua - ub : ub - ua);
}

double max_ulp(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, ulp_diff(a[i], b[i]));
  return worst;
}

/// Deterministic dyadic test data (the dispatch self-check's LCG), so every
/// run — and every tier — sees identical input bits.
void fill_det(std::span<double> v, unsigned seed, double base) {
  unsigned s = seed;
  for (double& x : v) {
    s = s * 1664525u + 1013904223u;
    x = base + (static_cast<double>(s >> 8) * 0x1p-24 - 0.5) * 0.125;
  }
}

/// Forces `tier` for the duration of a scope.
class ForcedTier {
 public:
  explicit ForcedTier(simd::Tier tier) { simd::force_tier(tier); }
  ~ForcedTier() { simd::reset_tier(); }
  ForcedTier(const ForcedTier&) = delete;
  ForcedTier& operator=(const ForcedTier&) = delete;
};

struct PathResult {
  double seconds = 0.0;        ///< best timed block (0 in check-only)
  std::vector<double> fields;  ///< final bytes, for bit/ulp compare
};

// --- advection (production engine, forced tier) -----------------------------

PathResult run_advection(simd::Tier tier, bool seed_ref, int reps,
                         int trials) {
  using namespace agcm::dynamics;
  const agcm::grid::LatLonGrid grid = agcm::grid::LatLonGrid::paper_9layer();
  const agcm::grid::LocalBox box{0, grid.nlon(), 0, grid.nlat()};
  const Metrics metrics = Metrics::build(grid, box);

  State init(box, grid.nlev());
  initialize_state(init, grid, box, 1996);
  const Array3D<double> h_new = init.h;

  const ForcedTier forced(tier);
  PathResult out;
  State state;
  Array3D<double> t3, t4;
  for (int t = 0; t < trials; ++t) {
    state = init;  // identical work every trial
    t3 = init.theta;  // four tracers: the fused update pass dominates,
    t4 = init.q;      // as it does under a production tracer load
    Array3D<double>* tracers[] = {&state.theta, &state.q, &t3, &t4};
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      if (seed_ref) {
        advect_tracers_optimized_seed_ref(grid, box, metrics, state.h, h_new,
                                          state.u, state.v, tracers, 450.0);
      } else {
        advect_tracers_optimized(grid, box, metrics, state.h, h_new, state.u,
                                 state.v, tracers, 450.0);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  for (const Array3D<double>* f : {&state.theta, &state.q, &t3, &t4}) {
    const auto raw = f->raw();
    out.fields.insert(out.fields.end(), raw.begin(), raw.end());
  }
  return out;
}

// --- advection row sweep (the dispatched kernels themselves) ----------------

/// The engine's inner sweep over an L2-resident tile: per row one y-flux,
/// one x-flux (shifted-pointer form), then four tracer updates. Rows are
/// 64-byte aligned (stride 160, interior at +8 doubles). This is the gate
/// shape: same kernel code as production, small enough that the ISA — not
/// the memory bus — is what's measured.
PathResult run_advect_rows(simd::Tier tier, int reps, int trials) {
  constexpr int kNi = 144, kNj = 16, kGhost = 2;
  constexpr int kStride = 160;   // kNi + 16: keeps row starts aligned
  constexpr int kInterior = 8;   // left pad (>= ghost), 64-byte multiple
  constexpr int kTracers = 4;
  const std::size_t field = static_cast<std::size_t>(kStride) *
                            (kNj + 2 * kGhost + 1);
  const std::size_t base =
      static_cast<std::size_t>(kGhost) * kStride + kInterior;
  auto row = [&](AlignedVec<double>& f, int j) {
    return f.data() + base + static_cast<std::size_t>(j) * kStride;
  };
  AlignedVec<double> h(field), hn(field), u(field), v(field), fx(field),
      fy(field);
  std::vector<AlignedVec<double>> c(kTracers, AlignedVec<double>(field));
  std::vector<AlignedVec<double>> up(kTracers, AlignedVec<double>(field));
  fill_det(h, 131u, 1.0);
  fill_det(hn, 137u, 1.0);
  fill_det(u, 139u, 0.0);
  fill_det(v, 149u, 0.0);
  for (int t = 0; t < kTracers; ++t)
    fill_det(c[static_cast<std::size_t>(t)], 151u + static_cast<unsigned>(t),
             1.0);

  const ForcedTier forced(tier);
  const simd::KernelOps& ops = simd::ops();
  PathResult out;
  for (int t = 0; t < trials; ++t) {
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      for (int j = -1; j < kNj; ++j)
        ops.flux_row(kNi, 0.5, row(v, j), row(h, j), row(h, j + 1),
                     row(fy, j));
      for (int j = 0; j < kNj; ++j)
        ops.flux_row(kNi + 1, 0.75, row(u, j) - 1, row(h, j) - 1, row(h, j),
                     row(fx, j) - 1);
      for (int tr = 0; tr < kTracers; ++tr) {
        const auto utr = static_cast<std::size_t>(tr);
        for (int j = 0; j < kNj; ++j)
          ops.advect_update_row(kNi, 0.01, row(fx, j), row(fy, j),
                                row(fy, j - 1), row(c[utr], j),
                                row(c[utr], j - 1), row(c[utr], j + 1),
                                row(h, j), row(hn, j), row(up[utr], j));
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  for (const AlignedVec<double>& f : up)
    out.fields.insert(out.fields.end(), f.begin(), f.end());
  return out;
}

// --- pointwise (Section 3.4 operator, L1-resident aligned shape) ------------

PathResult run_pointwise(simd::Tier tier, bool dispatch, int reps,
                         int trials) {
  using namespace agcm::singlenode;
  constexpr std::size_t kN = 1152, kM = 144;
  AlignedVec<double> a(kN), b(kM), out_v(kN);
  fill_det(a, 11u, 1.0);
  fill_det(b, 23u, 2.0);

  const ForcedTier forced(tier);
  PathResult out;
  for (int t = 0; t < trials; ++t) {
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      if (dispatch) {
        pointwise_multiply_dispatch(a, b, out_v);
      } else {
        pointwise_multiply_unrolled(a, b, out_v);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  out.fields.assign(out_v.begin(), out_v.end());
  return out;
}

// --- stencil (separate-fields Laplace engine) -------------------------------

PathResult run_stencil(simd::Tier tier, bool engine, int reps, int trials) {
  using namespace agcm::singlenode;
  SeparateFields sep(8, 32);  // the paper's 32^3 experiment, m=8
  const ForcedTier forced(tier);
  PathResult out;
  std::vector<double> r;
  for (int t = 0; t < trials; ++t) {
    const Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
      if (engine) {
        agcm::kernels::laplace_sum_separate_engine(sep, r);
      } else {
        laplace_sum_separate(sep, r);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  out.fields = r;
  return out;
}

// --- miniblas ---------------------------------------------------------------

PathResult run_daxpy(simd::Tier tier, bool dispatch, int reps, int trials) {
  using namespace agcm::singlenode;
  constexpr std::size_t kN = 8192;
  std::vector<double> x(kN), y0(kN), y(kN);
  fill_det(x, 31u, 1.0);
  fill_det(y0, 47u, 2.0);

  const ForcedTier forced(tier);
  PathResult out;
  for (int t = 0; t < trials; ++t) {
    y = y0;  // identical work every trial
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      if (dispatch) {
        daxpy_dispatch(0x1.8p-10, x, y);
      } else {
        daxpy(0x1.8p-10, x, y);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  out.fields = y;
  return out;
}

PathResult run_ddot(simd::Tier tier, bool dispatch, int reps, int trials) {
  using namespace agcm::singlenode;
  constexpr std::size_t kN = 8192;
  std::vector<double> x(kN), y(kN);
  fill_det(x, 59u, 1.0);
  fill_det(y, 71u, -1.0);

  const ForcedTier forced(tier);
  PathResult out;
  double acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    acc = 0.0;
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      acc += dispatch ? ddot_dispatch(x, y) : ddot(x, y);
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  out.fields = {acc / reps};
  return out;
}

// --- longwave (opt-in reduction family) -------------------------------------

PathResult run_longwave(simd::Tier tier, bool dispatch, int nlev, int reps,
                        int trials) {
  using namespace agcm::kernels;
  std::vector<double> emis(static_cast<std::size_t>(nlev));
  fill_longwave_emissivity(emis.data(), nlev);
  std::vector<double> theta0(static_cast<std::size_t>(nlev));
  fill_det(theta0, 83u, 290.0);

  const ForcedTier forced(tier);
  PathResult out;
  std::vector<double> theta;
  for (int t = 0; t < trials; ++t) {
    theta = theta0;  // identical work every trial
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      if (dispatch) {
        longwave_sweep_simd(theta.data(), nlev, emis.data(), 450.0);
      } else {
        longwave_sweep(theta.data(), nlev, emis.data(), 450.0);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  out.fields = theta;
  return out;
}

// --- FFT (opt-in reduction family) ------------------------------------------

PathResult run_fft(simd::Tier tier, bool dispatch, int n, int reps,
                   int trials) {
  using agcm::fft::Complex;
  const agcm::fft::FftPlan plan(n);
  std::vector<double> re(static_cast<std::size_t>(n)),
      im(static_cast<std::size_t>(n));
  fill_det(re, 97u, 0.0);
  fill_det(im, 113u, 0.0);
  std::vector<Complex> init(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    init[static_cast<std::size_t>(i)] = {re[static_cast<std::size_t>(i)],
                                         im[static_cast<std::size_t>(i)]};

  const ForcedTier forced(tier);
  PathResult out;
  std::vector<Complex> data;
  for (int t = 0; t < trials; ++t) {
    data = init;  // fresh input every trial (transform is in place)
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      if (dispatch) {
        plan.forward_simd(data);
        plan.inverse_simd(data);
      } else {
        plan.forward(data);
        plan.inverse(data);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  // One final forward so the compared bits are a spectrum, not a round trip.
  plan.forward(data);
  out.fields.reserve(2 * static_cast<std::size_t>(n));
  for (const Complex& c : data) {
    out.fields.push_back(c.real());
    out.fields.push_back(c.imag());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --check-only before the common parser sees it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-only") == 0) {
      g_check_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  auto opts = agcm::bench::BenchOptions::parse(
      static_cast<int>(args.size()), args.data(), "simd_dispatch");
  agcm::bench::JsonReport report(opts);
  agcm::bench::print_header(
      g_check_only
          ? "SIMD dispatch: cross-tier correctness (no timing)"
          : "SIMD dispatch: per-tier host speed and correctness");

  constexpr double kSpeedGate = 1.5;  // active tier vs forced-scalar engine
  constexpr double kMaxUlp = 16.0;    // longwave/fft vs scalar
  // ddot reassociates a length-8192 sum into lanes; the sequential-vs-lane
  // difference scales with n*eps of the term magnitudes (thousands of ulp
  // worst case), so its bound is orders looser than the per-point families.
  constexpr double kMaxUlpDot = 512.0;

  const simd::Tier active = simd::active_tier();
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  for (simd::Tier t : {simd::Tier::kAvx2, simd::Tier::kAvx512})
    if (simd::tier_supported(t)) tiers.push_back(t);

  const int rows_reps = g_check_only ? 1 : 400;
  const int adv_reps = g_check_only ? 1 : 6;
  const int pw_reps = g_check_only ? 1 : 8000;
  const int sten_reps = g_check_only ? 1 : 4;
  const int blas_reps = g_check_only ? 1 : 4000;
  const int lw_reps = g_check_only ? 1 : 8000;
  const int fft_reps = g_check_only ? 1 : 1000;
  const int trials = g_check_only ? 1 : 7;

  // Scalar-tier references (and, for advection, the seed implementation).
  const PathResult rows_scalar =
      run_advect_rows(simd::Tier::kScalar, rows_reps, trials);
  const PathResult adv_seed =
      run_advection(simd::Tier::kScalar, true, adv_reps, trials);
  const PathResult pw_scalar =
      run_pointwise(simd::Tier::kScalar, false, pw_reps, trials);
  const PathResult sten_seed =
      run_stencil(simd::Tier::kScalar, false, sten_reps, trials);
  const PathResult blas_scalar =
      run_daxpy(simd::Tier::kScalar, false, blas_reps, trials);
  const PathResult dot_scalar =
      run_ddot(simd::Tier::kScalar, false, blas_reps, trials);
  const PathResult lw_scalar =
      run_longwave(simd::Tier::kScalar, false, 64, lw_reps, trials);
  const PathResult fft_scalar =
      run_fft(simd::Tier::kScalar, false, 1024, fft_reps, trials);
  const PathResult fft144_scalar =
      run_fft(simd::Tier::kScalar, false, 144, fft_reps, trials);

  // Forced-scalar dispatch must be the scalar code exactly (bitwise), even
  // for the reduction families — equal-work short runs on both sides.
  const bool forced_scalar_bits =
      bitwise_equal(run_longwave(simd::Tier::kScalar, false, 64, 3, 1).fields,
                    run_longwave(simd::Tier::kScalar, true, 64, 3, 1).fields) &&
      bitwise_equal(run_fft(simd::Tier::kScalar, false, 1024, 2, 1).fields,
                    run_fft(simd::Tier::kScalar, true, 1024, 2, 1).fields) &&
      bitwise_equal(run_fft(simd::Tier::kScalar, false, 144, 2, 1).fields,
                    run_fft(simd::Tier::kScalar, true, 144, 2, 1).fields);

  // Per-tier runs: bitwise for the contracted families, ulp for reductions.
  bool adv_bits = true, pw_bits = true, sten_bits = true, daxpy_bits = true;
  double ddot_worst = 0.0, lw_worst = 0.0, fft_worst = 0.0;
  struct TierRow {
    simd::Tier tier;
    double rows_ms, adv_ms, pw_ms, sten_ms, daxpy_ms, ddot_ms, lw_ms, fft_ms;
  };
  std::vector<TierRow> rows;
  for (simd::Tier tier : tiers) {
    const PathResult advr = run_advect_rows(tier, rows_reps, trials);
    const PathResult adv = run_advection(tier, false, adv_reps, trials);
    const PathResult pw = run_pointwise(tier, true, pw_reps, trials);
    const PathResult sten = run_stencil(tier, true, sten_reps, trials);
    const PathResult axp = run_daxpy(tier, true, blas_reps, trials);
    const PathResult dot = run_ddot(tier, true, blas_reps, trials);
    const PathResult lw = run_longwave(tier, true, 64, lw_reps, trials);
    const PathResult fft1k = run_fft(tier, true, 1024, fft_reps, trials);
    const PathResult fft144 = run_fft(tier, true, 144, fft_reps, trials);

    adv_bits = adv_bits && bitwise_equal(rows_scalar.fields, advr.fields) &&
               bitwise_equal(adv_seed.fields, adv.fields);
    pw_bits = pw_bits && bitwise_equal(pw_scalar.fields, pw.fields);
    sten_bits = sten_bits && bitwise_equal(sten_seed.fields, sten.fields);
    daxpy_bits = daxpy_bits && bitwise_equal(blas_scalar.fields, axp.fields);
    ddot_worst =
        std::max(ddot_worst, max_ulp(dot_scalar.fields, dot.fields));
    lw_worst = std::max(lw_worst, max_ulp(lw_scalar.fields, lw.fields));
    fft_worst =
        std::max(fft_worst, max_ulp(fft_scalar.fields, fft1k.fields));
    fft_worst =
        std::max(fft_worst, max_ulp(fft144_scalar.fields, fft144.fields));

    rows.push_back({tier, advr.seconds * 1e3, adv.seconds * 1e3,
                    pw.seconds * 1e3, sten.seconds * 1e3, axp.seconds * 1e3,
                    dot.seconds * 1e3, lw.seconds * 1e3, fft1k.seconds * 1e3});
  }

  const bool correctness = adv_bits && pw_bits && sten_bits && daxpy_bits &&
                           forced_scalar_bits && ddot_worst <= kMaxUlpDot &&
                           lw_worst <= kMaxUlp && fft_worst <= kMaxUlp;

  Table bits("Cross-tier correctness vs scalar references",
             {"Family", "Contract", "Result"});
  auto verdict = [](bool ok) { return ok ? "identical" : "MISMATCH"; };
  bits.add_row({"advection (rows + engine vs seed)", "bitwise",
                verdict(adv_bits)});
  bits.add_row({"pointwise", "bitwise", verdict(pw_bits)});
  bits.add_row({"stencil separate", "bitwise", verdict(sten_bits)});
  bits.add_row({"daxpy", "bitwise", verdict(daxpy_bits)});
  bits.add_row({"forced-scalar longwave+fft", "bitwise",
                verdict(forced_scalar_bits)});
  bits.add_row({"ddot", "<= " + Table::num(kMaxUlpDot, 0) + " ulp",
                Table::num(ddot_worst, 1) + " ulp"});
  bits.add_row({"longwave", "<= " + Table::num(kMaxUlp, 0) + " ulp",
                Table::num(lw_worst, 1) + " ulp"});
  bits.add_row({"fft fwd (1024, 144)", "<= " + Table::num(kMaxUlp, 0) + " ulp",
                Table::num(fft_worst, 1) + " ulp"});
  agcm::bench::emit_table(report, bits);

  report.set("mode", g_check_only ? "check-only" : "full");
  report.set("active_tier", std::string(simd::tier_name(active)));
  report.set("detected_tier",
             std::string(simd::tier_name(simd::info().detected)));
  report.set("tiers_checked", static_cast<double>(tiers.size()));
  report.set("advection_bitwise_identical", adv_bits);
  report.set("pointwise_bitwise_identical", pw_bits);
  report.set("stencil_bitwise_identical", sten_bits);
  report.set("daxpy_bitwise_identical", daxpy_bits);
  report.set("forced_scalar_bitwise_identical", forced_scalar_bits);
  report.set("ddot_max_ulp", ddot_worst);
  report.set("longwave_max_ulp", lw_worst);
  report.set("fft_max_ulp", fft_worst);
  report.set("gate_speedup_min", kSpeedGate);

  bool gates = correctness;
  if (!g_check_only) {
    Table speed("Per-tier best-of-" + std::to_string(trials) +
                    " host time (ms; speedup vs forced-scalar engine)",
                {"Tier", "Advect rows", "Advect engine", "Pointwise",
                 "Stencil", "daxpy", "ddot", "Longwave", "FFT 1024"});
    const TierRow& base = rows.front();
    auto cell = [&](double ms, double base_ms) {
      return Table::num(ms, 3) + " (" + Table::num(base_ms / ms, 2) + "x)";
    };
    for (const TierRow& r : rows) {
      speed.add_row({simd::tier_name(r.tier), cell(r.rows_ms, base.rows_ms),
                     cell(r.adv_ms, base.adv_ms), cell(r.pw_ms, base.pw_ms),
                     cell(r.sten_ms, base.sten_ms),
                     cell(r.daxpy_ms, base.daxpy_ms),
                     cell(r.ddot_ms, base.ddot_ms), cell(r.lw_ms, base.lw_ms),
                     cell(r.fft_ms, base.fft_ms)});
    }
    agcm::bench::emit_table(report, speed);

    if (active == simd::Tier::kScalar) {
      agcm::bench::print_note(
          "speed gates skipped: resolved tier is scalar (no SIMD tier "
          "built/supported, or AGCM_SIMD=scalar)");
      report.set("speed_gates_skipped", true);
    } else {
      double adv_speedup = 0.0, pw_speedup = 0.0;
      for (const TierRow& r : rows) {
        if (r.tier == active) {
          adv_speedup = base.rows_ms / r.rows_ms;
          pw_speedup = base.pw_ms / r.pw_ms;
        }
      }
      report.set("advection_speedup", adv_speedup);
      report.set("pointwise_speedup", pw_speedup);
      const bool speed_ok =
          adv_speedup >= kSpeedGate && pw_speedup >= kSpeedGate;
      if (!speed_ok) {
        std::fprintf(stderr,
                     "speedup gate failed at tier %s: advection rows %.2fx, "
                     "pointwise %.2fx (both >= %.1fx required)\n",
                     simd::tier_name(active), adv_speedup, pw_speedup,
                     kSpeedGate);
      }
      gates = gates && speed_ok;
    }
  }
  if (!correctness) {
    std::fprintf(stderr, "cross-tier correctness check failed\n");
  }

  agcm::bench::print_note(
      g_check_only
          ? "check-only: deterministic fields only (no host timings)"
          : "gates: advection and pointwise >= " + Table::num(kSpeedGate, 1) +
                "x scalar at the active tier; all contracted families "
                "bitwise; reductions <= " +
                Table::num(kMaxUlp, 0) + " ulp");

  report.set("gates_passed", gates);
  report.finish();
  return gates ? 0 : 1;
}
