// Campaign serving throughput: experiments/sec with concurrent Machines and
// process-wide shared immutable caches, versus the historical mode — one
// experiment at a time, every cache cold (each cell re-deriving its FFT
// plans, FilterBank kernel spectra and emissivity tables from scratch).
//
// The matrix is a 32-cell sweep (4 machines x 2 resolutions x 2 LB schemes
// x 2 physics regimes, convolution-partitioned filtering) chosen so the
// immutable setup a sweep repays per cell — O(nlon^2) kernel spectra per
// filtered row, partition FFTs, plans — dominates the per-cell step cost,
// which is exactly the regime ROADMAP item 3 targets: serving many small
// what-if experiments, not one long integration.
//
// Gates (exit code 1 on miss):
//  * throughput: concurrent shared-cache serving >= 3x experiments/sec over
//    sequential cold-cache on the same matrix,
//  * determinism fence: the results store (wall-clock fields excluded) is
//    byte-identical across two concurrent runs AND byte-identical to the
//    sequential cold-cache store — i.e. cache sharing and concurrency are
//    invisible in the results, cell for cell.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "campaign/matrix.hpp"
#include "campaign/runner.hpp"
#include "campaign/store.hpp"
#include "io/config.hpp"
#include "util/shared_cache.hpp"
#include "util/table.hpp"

namespace {

using agcm::Table;

constexpr double kSpeedupGate = 3.0;

// The gate matrix, in the campaign dialect itself (the same expansion path
// production campaigns use). Small steps, 1x1 mesh: per-cell virtual
// results still exercise filter + physics + LB end to end, but host time
// is dominated by what the caches amortise.
constexpr const char* kMatrixCfg = R"(campaign = throughput-gate
mesh_rows = 1
mesh_cols = 1
steps = 1
warmup_steps = 0
dt_sec = 450
filter_algorithm = convolution-partitioned
sweep_machines = paragon, t3d, sp2, ideal
sweep_resolutions = 192x94x2, 240x120x2
sweep_lb_schemes = none, pairwise
sweep_physics_regimes = equinox, june-solstice
)";

/// Sequential cold-cache serving: caches disabled for the duration, and
/// any previously published entries dropped before every cell — each
/// experiment rebuilds all immutable state, as every bench did before the
/// campaign engine.
std::vector<agcm::campaign::CellResult> run_cold(
    const agcm::campaign::Campaign& matrix) {
  agcm::util::SharedCaches::ScopedEnable off(false);
  std::vector<agcm::campaign::CellResult> results;
  results.reserve(matrix.cells.size());
  for (const agcm::campaign::Cell& cell : matrix.cells) {
    agcm::util::SharedCaches::clear_all();
    agcm::campaign::Campaign one;
    one.name = matrix.name;
    one.cells.push_back(cell);
    agcm::campaign::RunnerOptions options;
    options.concurrency = 1;
    std::vector<agcm::campaign::CellResult> r =
        agcm::campaign::run_campaign(one, options);
    results.push_back(std::move(r.front()));
  }
  return results;
}

std::vector<agcm::campaign::CellResult> run_concurrent(
    const agcm::campaign::Campaign& matrix, int concurrency) {
  agcm::util::SharedCaches::ScopedEnable on(true);
  agcm::campaign::RunnerOptions options;
  options.concurrency = concurrency;
  return agcm::campaign::run_campaign(matrix, options);
}

}  // namespace

int main(int argc, char** argv) {
  agcm::bench::JsonReport report(agcm::bench::BenchOptions::parse(
      argc, argv, "campaign_throughput"));
  agcm::bench::print_header(
      "Campaign serving throughput: concurrent + shared caches vs "
      "sequential cold-cache");

  const agcm::campaign::Campaign matrix =
      agcm::campaign::campaign_from(agcm::io::Config::from_string(kMatrixCfg));
  const auto ncells = static_cast<double>(matrix.cells.size());
  const int concurrency = std::clamp(
      static_cast<int>(std::thread::hardware_concurrency()), 2, 8);
  agcm::bench::print_note("matrix: " + std::to_string(matrix.cells.size()) +
                          " experiments; concurrency " +
                          std::to_string(concurrency));

  // Sequential cold-cache baseline.
  const agcm::bench::Stopwatch cold_sw;
  const std::vector<agcm::campaign::CellResult> cold = run_cold(matrix);
  const double cold_sec = cold_sw.seconds();

  // Concurrent shared-cache serving (caches start empty: the run pays its
  // own first-build costs).
  agcm::util::SharedCaches::clear_all();
  const agcm::bench::Stopwatch warm_sw;
  const std::vector<agcm::campaign::CellResult> warm =
      run_concurrent(matrix, concurrency);
  const double warm_sec = warm_sw.seconds();

  // Second concurrent run for the run-to-run determinism fence.
  const std::vector<agcm::campaign::CellResult> warm2 =
      run_concurrent(matrix, concurrency);

  const std::string store_cold =
      agcm::campaign::store_lines(matrix.name, cold, /*include_wall=*/false);
  const std::string store_warm =
      agcm::campaign::store_lines(matrix.name, warm, /*include_wall=*/false);
  const std::string store_warm2 =
      agcm::campaign::store_lines(matrix.name, warm2, /*include_wall=*/false);

  const bool repeat_identical = store_warm == store_warm2;
  const bool matches_standalone = store_warm == store_cold;

  const double cold_eps = ncells / cold_sec;
  const double warm_eps = ncells / warm_sec;
  const double speedup = warm_eps / cold_eps;

  Table table("Campaign serving (" + std::to_string(matrix.cells.size()) +
                  " experiments)",
              {"Mode", "Wall s", "exp/s", "Speedup"});
  table.add_row({"sequential, cold caches", Table::num(cold_sec, 3),
                 Table::num(cold_eps, 1), "1.0"});
  table.add_row({"concurrent x" + std::to_string(concurrency) +
                     ", shared caches",
                 Table::num(warm_sec, 3), Table::num(warm_eps, 1),
                 Table::num(speedup, 2)});
  agcm::bench::emit_table(report, table);

  Table caches("Shared-cache population after the concurrent run",
               {"Cache", "Hits", "Misses"});
  for (const agcm::util::SharedCacheInfo& info :
       agcm::util::SharedCaches::stats()) {
    caches.add_row({info.name, std::to_string(info.stats.hits),
                    std::to_string(info.stats.misses)});
  }
  agcm::bench::emit_table(report, caches);

  agcm::bench::print_note(
      "gate: concurrent shared >= " + Table::num(kSpeedupGate, 1) +
      "x sequential cold (got " + Table::num(speedup, 2) + "x); store " +
      (repeat_identical ? "byte-identical across runs" : "DIVERGED") +
      ", standalone cross-check " +
      (matches_standalone ? "byte-identical" : "DIVERGED"));

  report.set("cells", static_cast<int>(matrix.cells.size()));
  report.set("concurrency", concurrency);
  report.set("wall_cold_sec", cold_sec);
  report.set("wall_concurrent_sec", warm_sec);
  report.set("throughput_cold_eps", cold_eps);
  report.set("throughput_concurrent_eps", warm_eps);
  report.set("speedup", speedup);
  report.set("gate_speedup_min", kSpeedupGate);
  report.set("store_deterministic", repeat_identical);
  report.set("store_matches_standalone", matches_standalone);

  bool ok = true;
  if (speedup < kSpeedupGate) {
    std::fprintf(stderr, "throughput gate failed: %.2fx (>= %.1fx required)\n",
                 speedup, kSpeedupGate);
    ok = false;
  }
  if (!repeat_identical) {
    std::fprintf(stderr, "store diverged between two concurrent runs\n");
    ok = false;
  }
  if (!matches_standalone) {
    std::fprintf(stderr,
                 "concurrent store diverged from sequential cold-cache "
                 "(standalone) store\n");
    ok = false;
  }
  report.set("gates_passed", ok);
  report.finish();
  return ok ? 0 : 1;
}
