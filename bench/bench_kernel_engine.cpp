// Host-side speed of the vectorized single-node kernel engine vs the seed
// implementations it replaced (docs/kernels.md).
//
// Three kernel families, each compared seed-vs-engine on identical inputs:
//
//  * advection — dynamics::advect_tracers_optimized_seed_ref (per-element
//    Array3D accesses, per-call scratch allocation) vs the production path,
//    which now routes through kernels::advect_tracers_engine (FieldView
//    raw-pointer rows, k-over-j tiles, 4-wide unrolling, KernelWorkspace
//    scratch). Full paper grid, 144x90x9, two tracers.
//  * physics   — physics::step_column_seed_ref (per-pair emissivity
//    recomputation, per-call band vectors and Thomas copies) vs the
//    production step_column (distance-indexed emissivity table, unrolled
//    pair sweep, in-place workspace Thomas solves). A day/night field of
//    columns at the paper's 9 levels.
//  * stencil   — the Section 3.4 Laplace layout experiment's seed loops vs
//    the peeled/unrolled engines (informational; no gate).
//
// Every trial restarts from a fresh copy of the same initial state, so all
// timed blocks do identical work and best-of-N min-time is a like-for-like
// estimator (the bench_comm_transport convention).
//
// Acceptance gates (exit code 1 on failure, recorded in the BENCH JSON):
//   advection_speedup >= 2.0, physics_speedup >= 1.3,
//   and every seed/engine pair must be BITWISE identical.
//
// `--check-only` skips all timing and emits only the deterministic fields
// (checksums, bitwise verdicts, gate constants) so CI's determinism fence
// can byte-compare two runs — host timings are inherently noisy and are
// excluded from that mode.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dynamics/advection.hpp"
#include "kernels/simd/dispatch.hpp"
#include "dynamics/advection_seed_ref.hpp"
#include "dynamics/state.hpp"
#include "kernels/stencil_kernels.hpp"
#include "kernels/workspace.hpp"
#include "physics/column.hpp"
#include "physics/column_seed_ref.hpp"
#include "singlenode/stencil.hpp"
#include "util/table.hpp"

namespace {

using agcm::Table;
using agcm::bench::Stopwatch;
using agcm::grid::Array3D;

bool g_check_only = false;

/// Exact byte comparison of two double sequences.
bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double sum(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

struct PathResult {
  double seconds = 0.0;           ///< best timed block (0 in check-only)
  double checksum = 0.0;          ///< of the final fields
  std::vector<double> fields;     ///< final field bytes, for bit-compare
};

// --- advection --------------------------------------------------------------

PathResult run_advection(bool engine, int reps, int trials) {
  using namespace agcm::dynamics;
  const agcm::grid::LatLonGrid grid = agcm::grid::LatLonGrid::paper_9layer();
  const agcm::grid::LocalBox box{0, grid.nlon(), 0, grid.nlat()};
  const Metrics metrics = Metrics::build(grid, box);

  State init(box, grid.nlev());
  initialize_state(init, grid, box, 1996);
  const Array3D<double> h_new = init.h;

  PathResult out;
  State state;
  for (int t = 0; t < trials; ++t) {
    state = init;  // identical work every trial
    Array3D<double>* tracers[] = {&state.theta, &state.q};
    const Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      if (engine) {
        advect_tracers_optimized(grid, box, metrics, state.h, h_new, state.u,
                                 state.v, tracers, 450.0);
      } else {
        advect_tracers_optimized_seed_ref(grid, box, metrics, state.h, h_new,
                                          state.u, state.v, tracers, 450.0);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  const auto theta = state.theta.raw();
  const auto q = state.q.raw();
  out.fields.assign(theta.begin(), theta.end());
  out.fields.insert(out.fields.end(), q.begin(), q.end());
  out.checksum = sum(out.fields);
  return out;
}

// --- physics columns --------------------------------------------------------

struct ColumnField {
  // A 48x24 day/night field of columns at the paper's 9 levels; some
  // columns start convectively unstable so the adjustment loop iterates.
  static constexpr int kNi = 48, kNj = 24;
  agcm::physics::ColumnParams params;
  std::vector<double> theta, q;
  std::vector<double> lat, lon;

  ColumnField() {
    const int nlev = params.nlev;
    const auto ncols = static_cast<std::size_t>(kNi) * kNj;
    theta.resize(ncols * static_cast<std::size_t>(nlev));
    q.resize(ncols * static_cast<std::size_t>(nlev));
    lat.resize(ncols);
    lon.resize(ncols);
    std::size_t c = 0;
    for (int j = 0; j < kNj; ++j) {
      for (int i = 0; i < kNi; ++i, ++c) {
        lat[c] = (-80.0 + 160.0 * j / (kNj - 1)) * std::numbers::pi / 180.0;
        lon[c] = 2.0 * std::numbers::pi * i / kNi;
        double* th = theta.data() + c * static_cast<std::size_t>(nlev);
        double* qv = q.data() + c * static_cast<std::size_t>(nlev);
        for (int k = 0; k < nlev; ++k) {
          // Stable lapse with an unstable kink in every third column.
          th[k] = 285.0 + 0.8 * k +
                  ((i + j) % 3 == 0 ? -1.1 * ((k % 3 == 1) ? 1.0 : 0.0) : 0.0) +
                  0.05 * std::sin(0.7 * (c + static_cast<std::size_t>(k)));
          qv[k] = 0.012 * std::exp(-0.35 * k) *
                  (1.0 + 0.2 * std::cos(lat[c]) * std::sin(lon[c]));
        }
      }
    }
  }
};

PathResult run_physics(bool engine, const ColumnField& init, int steps,
                       int trials) {
  using namespace agcm::physics;
  const int nlev = init.params.nlev;
  const auto ncols = static_cast<std::size_t>(ColumnField::kNi) *
                     ColumnField::kNj;
  PathResult out;
  std::vector<double> theta, q;
  double totals = 0.0;  // flops + precip + iters, folded into the checksum
  for (int t = 0; t < trials; ++t) {
    theta = init.theta;  // identical work every trial
    q = init.q;
    totals = 0.0;
    const Stopwatch sw;
    for (int s = 0; s < steps; ++s) {
      const double time_sec = s * init.params.dt_sec;
      for (std::size_t c = 0; c < ncols; ++c) {
        const std::span<double> th(
            theta.data() + c * static_cast<std::size_t>(nlev),
            static_cast<std::size_t>(nlev));
        const std::span<double> qv(
            q.data() + c * static_cast<std::size_t>(nlev),
            static_cast<std::size_t>(nlev));
        const ColumnResult r =
            engine ? step_column(init.params, c, s, init.lat[c], init.lon[c],
                                 time_sec, th, qv)
                   : step_column_seed_ref(init.params, c, s, init.lat[c],
                                          init.lon[c], time_sec, th, qv);
        totals += r.flops + r.precipitation +
                  static_cast<double>(r.convection_iters);
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  out.fields = theta;
  out.fields.insert(out.fields.end(), q.begin(), q.end());
  out.fields.push_back(totals);  // ColumnResult totals must match too
  out.checksum = sum(out.fields);
  return out;
}

// --- stencil ----------------------------------------------------------------

PathResult run_stencil(bool engine, bool block, int reps, int trials) {
  using namespace agcm::singlenode;
  constexpr int kM = 8, kN = 32;  // the paper's 32^3 experiment
  SeparateFields sep(kM, kN);
  const BlockFields blk = BlockFields::from_separate(sep);
  PathResult out;
  std::vector<double> r;
  for (int t = 0; t < trials; ++t) {
    const Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
      if (block) {
        if (engine) {
          agcm::kernels::laplace_sum_block_engine(blk, r);
        } else {
          laplace_sum_block(blk, r);
        }
      } else {
        if (engine) {
          agcm::kernels::laplace_sum_separate_engine(sep, r);
        } else {
          laplace_sum_separate(sep, r);
        }
      }
    }
    const double sec = sw.seconds();
    if (t == 0 || sec < out.seconds) out.seconds = sec;
  }
  out.fields = r;
  out.checksum = sum(out.fields);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --check-only before the common parser sees it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-only") == 0) {
      g_check_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  auto opts = agcm::bench::BenchOptions::parse(
      static_cast<int>(args.size()), args.data(), "kernel_engine");
  agcm::bench::JsonReport report(opts);
  agcm::bench::print_header(
      g_check_only
          ? "Kernel engine vs seed: bitwise cross-check (no timing)"
          : "Kernel engine vs seed: host speed and bitwise cross-check");

  constexpr double kAdvectionGate = 2.0;
  constexpr double kPhysicsGate = 1.3;
  // In check-only mode one short trial per path: enough to cover every
  // kernel (multiple steps so workspaces are warm), fully deterministic.
  const int adv_reps = g_check_only ? 2 : 6;
  const int adv_trials = g_check_only ? 1 : 7;
  const int phys_steps = g_check_only ? 2 : 4;
  const int phys_trials = g_check_only ? 1 : 7;
  const int sten_reps = g_check_only ? 1 : 4;
  const int sten_trials = g_check_only ? 1 : 7;

  const PathResult adv_seed = run_advection(false, adv_reps, adv_trials);
  const ColumnField columns;
  const PathResult phys_seed =
      run_physics(false, columns, phys_steps, phys_trials);
  const PathResult sep_seed = run_stencil(false, false, sten_reps, sten_trials);
  const PathResult blk_seed = run_stencil(false, true, sten_reps, sten_trials);

  // Check-only mode runs the engine paths once per supported SIMD dispatch
  // tier (scalar always), so the bitwise verdicts — and CI's determinism
  // fence — cover every tier the host can execute. Full mode times the
  // resolved tier only.
  std::vector<agcm::simd::Tier> tiers;
  if (g_check_only) {
    tiers.push_back(agcm::simd::Tier::kScalar);
    for (agcm::simd::Tier t :
         {agcm::simd::Tier::kAvx2, agcm::simd::Tier::kAvx512}) {
      if (agcm::simd::tier_supported(t)) tiers.push_back(t);
    }
  } else {
    tiers.push_back(agcm::simd::active_tier());
  }

  bool adv_bits = true, phys_bits = true, sep_bits = true, blk_bits = true;
  PathResult adv_eng, phys_eng, sep_eng, blk_eng;
  for (agcm::simd::Tier tier : tiers) {
    agcm::simd::force_tier(tier);
    adv_eng = run_advection(true, adv_reps, adv_trials);
    phys_eng = run_physics(true, columns, phys_steps, phys_trials);
    sep_eng = run_stencil(true, false, sten_reps, sten_trials);
    blk_eng = run_stencil(true, true, sten_reps, sten_trials);
    adv_bits = adv_bits && bitwise_equal(adv_seed.fields, adv_eng.fields);
    phys_bits = phys_bits && bitwise_equal(phys_seed.fields, phys_eng.fields);
    sep_bits = sep_bits && bitwise_equal(sep_seed.fields, sep_eng.fields);
    blk_bits = blk_bits && bitwise_equal(blk_seed.fields, blk_eng.fields);
  }
  agcm::simd::reset_tier();
  const bool all_bits = adv_bits && phys_bits && sep_bits && blk_bits;

  report.set("mode", g_check_only ? "check-only" : "full");
  report.set("simd_tiers_checked", static_cast<double>(tiers.size()));
  report.set("advection_bitwise_identical", adv_bits);
  report.set("physics_bitwise_identical", phys_bits);
  report.set("stencil_separate_bitwise_identical", sep_bits);
  report.set("stencil_block_bitwise_identical", blk_bits);
  report.set("advection_checksum", adv_eng.checksum);
  report.set("physics_checksum", phys_eng.checksum);
  report.set("stencil_separate_checksum", sep_eng.checksum);
  report.set("stencil_block_checksum", blk_eng.checksum);
  report.set("gate_advection_speedup_min", kAdvectionGate);
  report.set("gate_physics_speedup_min", kPhysicsGate);

  Table bits("Seed vs engine: bitwise identity of results",
             {"Kernel", "Seed checksum", "Engine checksum", "Bitwise"});
  auto add_bits = [&](const char* name, const PathResult& s,
                      const PathResult& e, bool same) {
    bits.add_row({name, Table::num(s.checksum, 6), Table::num(e.checksum, 6),
                  same ? "identical" : "MISMATCH"});
  };
  add_bits("advection (144x90x9, 2 tracers)", adv_seed, adv_eng, adv_bits);
  add_bits("physics columns (48x24 x 9 lev)", phys_seed, phys_eng, phys_bits);
  add_bits("stencil separate (m=8, 32^3)", sep_seed, sep_eng, sep_bits);
  add_bits("stencil block (m=8, 32^3)", blk_seed, blk_eng, blk_bits);
  agcm::bench::emit_table(report, bits);

  bool gates = all_bits;
  if (!g_check_only) {
    const double adv_speedup = adv_seed.seconds / adv_eng.seconds;
    const double phys_speedup = phys_seed.seconds / phys_eng.seconds;
    const double sep_speedup = sep_seed.seconds / sep_eng.seconds;
    const double blk_speedup = blk_seed.seconds / blk_eng.seconds;

    Table speed("Seed vs engine: best-of-" + std::to_string(adv_trials) +
                    " host time",
                {"Kernel", "Seed ms", "Engine ms", "Speedup", "Gate"});
    auto add_speed = [&](const char* name, const PathResult& s,
                         const PathResult& e, double speedup, double gate) {
      speed.add_row({name, Table::num(s.seconds * 1e3, 2),
                     Table::num(e.seconds * 1e3, 2),
                     Table::num(speedup, 2) + "x",
                     gate > 0.0 ? ">= " + Table::num(gate, 1) + "x" : "-"});
    };
    add_speed("advection", adv_seed, adv_eng, adv_speedup, kAdvectionGate);
    add_speed("physics columns", phys_seed, phys_eng, phys_speedup,
              kPhysicsGate);
    add_speed("stencil separate", sep_seed, sep_eng, sep_speedup, 0.0);
    add_speed("stencil block", blk_seed, blk_eng, blk_speedup, 0.0);
    agcm::bench::emit_table(report, speed);

    report.set("advection_speedup", adv_speedup);
    report.set("physics_speedup", phys_speedup);
    report.set("stencil_separate_speedup", sep_speedup);
    report.set("stencil_block_speedup", blk_speedup);

    const bool speed_ok =
        adv_speedup >= kAdvectionGate && phys_speedup >= kPhysicsGate;
    if (!speed_ok) {
      std::fprintf(stderr,
                   "speedup gate failed: advection %.2fx (>= %.1fx), "
                   "physics %.2fx (>= %.1fx)\n",
                   adv_speedup, kAdvectionGate, phys_speedup, kPhysicsGate);
    }
    gates = gates && speed_ok;
  }
  if (!all_bits) {
    std::fprintf(stderr, "bitwise mismatch between seed and engine paths\n");
  }

  agcm::bench::print_note(
      g_check_only
          ? "check-only: deterministic fields only (no host timings)"
          : "gates: advection >= " + Table::num(kAdvectionGate, 1) +
                "x, physics >= " + Table::num(kPhysicsGate, 1) +
                "x, all kernels bitwise identical");

  report.set("gates_passed", gates);
  report.finish();
  return gates ? 0 : 1;
}
