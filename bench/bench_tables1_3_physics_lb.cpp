// Reproduces Tables 1-3: load-balancing simulation for the Physics
// component with the 2 x 2.5 x 9 grid on Cray T3D node arrays of
// 8x8 (64), 9x14 (126) and 14x18 (252) nodes.
//
// Exactly like the paper's experiment, the loads are *measured* (virtual)
// physics times from a real pass of the physics component — "a timing on
// the previous pass of physics ... was used as an estimate for the current
// physics computing load" — and Scheme 3 (sorted pairwise exchange) is then
// applied twice, evaluating the resulting distribution "without actually
// moving the data arrays around".
#include <vector>

#include "bench_common.hpp"
#include "comm/mesh2d.hpp"
#include "loadbalance/schemes.hpp"
#include "physics/physics.hpp"
#include "simnet/machine.hpp"
#include "util/stats.hpp"

namespace agcm {
namespace {

using bench::NodeMesh;
using bench::print_header;
using bench::print_note;

struct PaperTable {
  std::string title;
  NodeMesh mesh;
  // {max load, min load, imbalance} before, after 1st, after 2nd.
  double rows[3][3];
};

/// Runs the physics component for a few steps on the T3D virtual machine
/// and returns every rank's measured per-column costs (virtual seconds).
lb::ItemLists measure_physics_loads(NodeMesh mesh_spec) {
  const auto profile = simnet::MachineProfile::cray_t3d();
  simnet::Machine machine(profile);
  machine.set_recv_timeout_ms(600'000);
  lb::ItemLists lists(static_cast<std::size_t>(mesh_spec.nodes()));

  machine.run(mesh_spec.nodes(), [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, mesh_spec.rows, mesh_spec.cols);
    const grid::LatLonGrid grid(144, 90, 9);
    const grid::Decomp2D decomp(144, 90, mesh_spec.rows, mesh_spec.cols);
    const auto box = decomp.box(mesh.coord());

    physics::PhysicsConfig cfg;
    cfg.column.nlev = 9;
    cfg.column.seed = 1996;
    physics::Physics phys(mesh, decomp, grid, cfg);
    dynamics::State state(box, 9);
    dynamics::initialize_state(state, grid, box, 1996);

    // Two passes: the second one's measured costs become the load estimate
    // (mid-morning over the Pacific, i.e. a generic instant).
    for (int s = 0; s < 2; ++s) {
      phys.step(state);
      state.time_sec += 450.0;
      ++state.step;
    }

    auto& mine = lists[static_cast<std::size_t>(world.rank())];
    const auto costs = phys.column_cost_estimates();
    for (std::size_t c = 0; c < costs.size(); ++c) {
      const auto id =
          static_cast<std::uint64_t>(world.rank()) * 100000 + c;
      mine.push_back({id, costs[c] / profile.flops_per_sec});
    }
  });
  return lists;
}

void run_table(const PaperTable& spec) {
  const lb::ItemLists items = measure_physics_loads(spec.mesh);

  lb::PairwiseOptions options;
  options.max_iterations = 2;
  options.tolerance = 0.02;
  const lb::PairwiseResult result = lb::plan_pairwise(items, options);

  // Reconstruct per-stage distributions to report max/min like the paper.
  // Stage 0 = original; stages 1..2 come from replaying the planner with
  // fewer iterations.
  Table table(spec.title,
              {"Code status", "Max load s (paper/meas)",
               "Min load s (paper/meas)", "% imbalance (paper/meas)"});
  const char* labels[3] = {"Before load-balancing", "After first iteration",
                           "After second iteration"};
  for (int stage = 0; stage < 3; ++stage) {
    std::vector<double> loads;
    if (stage == 0) {
      loads = lb::loads_of(items);
    } else {
      lb::PairwiseOptions staged = options;
      staged.max_iterations = stage;
      loads = lb::loads_after(items, lb::plan_pairwise(items, staged).dest);
    }
    table.add_row(
        {labels[stage],
         Table::paper_vs(spec.rows[stage][0], max_value(loads), 2),
         Table::paper_vs(spec.rows[stage][1], min_value(loads), 2),
         Table::pct(spec.rows[stage][2]) + " / " +
             Table::pct(load_imbalance(loads), 1)});
  }
  bench::emit_table(table);
  (void)result;
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "tables1_3_physics_lb");
  bench::JsonReport report(opts);
  bench::g_report = &report;

  print_header(
      "Tables 1-3: Scheme-3 load-balancing simulation for AGCM/Physics "
      "(Cray T3D, 2x2.5x9 grid)");
  print_note(
      "Loads are measured virtual physics times per node; Scheme 3 (sorted\n"
      "pairwise exchange) is applied twice, without moving the field data —\n"
      "the paper's own evaluation methodology. Absolute seconds depend on\n"
      "how much physics one pass contains; the imbalance percentages are\n"
      "the comparable shape.\n");

  const PaperTable tables[] = {
      {"Table 1: 8x8 node array (64 nodes)",
       {8, 8},
       {{11.00, 4.90, 0.37}, {7.70, 6.20, 0.09}, {7.10, 6.30, 0.06}}},
      {"Table 2: 9x14 node array (126 nodes)",
       {9, 14},
       {{5.20, 2.50, 0.35}, {4.00, 3.14, 0.12}, {3.52, 3.22, 0.05}}},
      {"Table 3: 14x18 node array (252 nodes)",
       {14, 18},
       {{3.34, 1.12, 0.48}, {2.20, 1.70, 0.125}, {1.92, 1.80, 0.06}}},
  };
  for (const PaperTable& t : tables) run_table(t);

  print_note(
      "Paper conclusion to check: two pairwise iterations reduce the\n"
      "percentage of load imbalance from 35-48% to 5-6%.");
  report.finish();
  return 0;
}
