// Scaling-model sweep: fits Extra-P-style performance models to the
// paper's three headline scaling claims and gates on the result.
//
//  Sweep A (resolution): on a fixed 1x4 T3D mesh, sweep the zonal
//    resolution nlon in {48..288} with nlat/nlev fixed, so the filtered
//    line count is constant and the per-phase virtual cost isolates the
//    per-line complexity. The convolution filter must fit ~x^2 and the
//    FFT spectral stage ("filter.fft-lines") must fit ~x*log2(x) — and
//    the convolution exponent must asymptotically dominate the FFT one,
//    which is the paper's entire argument for the filter rewrite
//    (Section 3.2, Tables 8-11). The partitioned overlap-save backend
//    ("filter.partition-lines", docs/filter.md) rides the same sweep and
//    must land in a quasi-linear class that convolution also dominates.
//
//  Sweep B (ranks): with nlon fixed at 144, sweep the mesh width P in
//    {2..16} and fit the per-rank *message count* of the FFT filter
//    against P: the line transpose exchanges with (P-1) partners in each
//    direction, so messages per rank must grow ~linearly in P. (The
//    transpose's per-rank *time* is not monotone in P at this size —
//    per-rank bytes shrink like 1/P while the message count grows — so
//    the message count is the clean observable for the latency-side
//    claim the paper makes about transpose scaling.)
//
//  Sweep C (imbalance): re-runs the Tables 1-3 physics load-balance
//    pipeline on the 8x8 T3D mesh and gates the paper's conclusion:
//    imbalance starts around 35-48% and two Scheme-3 pairwise iterations
//    push it to ~5-6% (we gate before >= 25%, after <= 8%).
//
// All inputs to the fits are virtual seconds from the deterministic
// multicomputer, the fits themselves are pure arithmetic, and both
// artefacts (BENCH_scaling_model.json, PERF_MODEL.json) are
// insertion-ordered with shortest-exact numbers — so byte-identical
// across runs, and diffed against committed baselines by
// tools/perf_diff.py in CI.
//
// The bench is self-gating: any failed verdict or gate exits non-zero
// after writing the artefacts, so CI catches a complexity-class
// regression (say, the FFT filter silently degrading to quadratic) as a
// red build, not as a number nobody reads.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/mesh2d.hpp"
#include "dynamics/dynamics.hpp"
#include "filter/variants.hpp"
#include "loadbalance/schemes.hpp"
#include "perfmodel/report.hpp"
#include "physics/physics.hpp"
#include "simnet/machine.hpp"
#include "trace/stream_sink.hpp"
#include "util/stats.hpp"

namespace agcm {
namespace {

using bench::print_header;
using bench::print_note;

constexpr int kSweepNlev = 4;   ///< filter sweeps (thin: isolates per-line cost)
constexpr int kSweepNlat = 90;  ///< fixed so the filtered line count is fixed
constexpr int kTimedApplies = 2;

/// Per-phase max-over-ranks virtual seconds for one sweep cell.
using PhaseSeconds = std::map<std::string, double>;

struct FilterCell {
  PhaseSeconds phases;       ///< per-apply max-rank virtual seconds
  double max_rank_msgs = 0;  ///< max-over-ranks comm.messages_sent, per apply
};

/// Runs one filter sweep cell on a 1 x `cols` T3D mesh and returns the
/// per-phase max-rank times (per timed apply) for the requested
/// algorithms, plus the per-rank message count from the comm counters.
/// The tracer and metrics registry are cycled per cell and the trace is
/// drained into `sink`, so memory stays bounded no matter how long the
/// sweep is.
FilterCell run_filter_cell(int nlon, int cols,
                           const std::vector<filter::FilterAlgorithm>& algos,
                           trace::StreamingTraceSink& sink) {
  const auto profile = simnet::MachineProfile::cray_t3d();
  simnet::Machine machine(profile);
  machine.set_recv_timeout_ms(600'000);
  trace::Tracer::instance().begin_run(cols);
  trace::MetricsRegistry::instance().reset();

  machine.run(cols, [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, 1, cols);
    const grid::LatLonGrid grid(nlon, kSweepNlat, kSweepNlev);
    const grid::Decomp2D decomp(nlon, kSweepNlat, 1, cols);
    const auto box = decomp.box(mesh.coord());

    const filter::FilterBank bank(grid,
                                  dynamics::Dynamics::filtered_variables());
    dynamics::State state(box, kSweepNlev);
    dynamics::initialize_state(state, grid, box, 1996);
    grid::Array3D<double>* fields[] = {&state.u, &state.v, &state.h,
                                       &state.theta, &state.q};

    for (const filter::FilterAlgorithm algo : algos) {
      auto filter = filter::make_filter(algo, mesh, decomp, bank);
      // Warm apply outside tracing? No: tracing is on for the whole cell,
      // and every rank does the same number of applies, so the per-apply
      // division below stays exact. Warm-up only matters for host timing.
      filter->apply(fields);
      world.barrier();
      for (int s = 0; s < kTimedApplies; ++s) {
        filter->apply(fields);
        world.barrier();
      }
    }
  });

  FilterCell out;
  const auto phases = trace::aggregate_phases(trace::Tracer::instance());
  for (const auto& phase : phases) {
    // 1 warm + kTimedApplies applies were traced; report per-apply cost.
    out.phases[phase.name] = phase.max_rank_sec / (1.0 + kTimedApplies);
  }
  for (const auto& [rank, count] :
       trace::MetricsRegistry::instance().per_rank("comm.messages_sent")) {
    (void)rank;
    out.max_rank_msgs =
        std::max(out.max_rank_msgs, count / (1.0 + kTimedApplies));
  }
  sink.drain(trace::Tracer::instance());
  return out;
}

/// Tables 1-3 methodology on the 8x8 T3D mesh: measured physics column
/// costs, Scheme-3 pairwise exchange, imbalance before / after two
/// iterations.
struct ImbalanceResult {
  double before = 0.0;
  double after = 0.0;
  int iterations = 0;
};

ImbalanceResult run_imbalance_cell() {
  const auto profile = simnet::MachineProfile::cray_t3d();
  simnet::Machine machine(profile);
  machine.set_recv_timeout_ms(600'000);
  const int rows = 8, cols = 8;
  lb::ItemLists lists(static_cast<std::size_t>(rows * cols));

  machine.run(rows * cols, [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, rows, cols);
    const grid::LatLonGrid grid(144, 90, 9);
    const grid::Decomp2D decomp(144, 90, rows, cols);
    const auto box = decomp.box(mesh.coord());

    physics::PhysicsConfig cfg;
    cfg.column.nlev = 9;
    cfg.column.seed = 1996;
    physics::Physics phys(mesh, decomp, grid, cfg);
    dynamics::State state(box, 9);
    dynamics::initialize_state(state, grid, box, 1996);
    for (int s = 0; s < 2; ++s) {
      phys.step(state);
      state.time_sec += 450.0;
      ++state.step;
    }

    auto& mine = lists[static_cast<std::size_t>(world.rank())];
    const auto costs = phys.column_cost_estimates();
    for (std::size_t c = 0; c < costs.size(); ++c) {
      const auto id = static_cast<std::uint64_t>(world.rank()) * 100000 + c;
      mine.push_back({id, costs[c] / profile.flops_per_sec});
    }
  });

  lb::PairwiseOptions options;
  options.max_iterations = 2;
  options.tolerance = 0.02;
  const lb::PairwiseResult plan = lb::plan_pairwise(lists, options);

  ImbalanceResult result;
  result.before = load_imbalance(lb::loads_of(lists));
  result.after = load_imbalance(lb::loads_after(lists, plan.dest));
  result.iterations = plan.iterations;
  return result;
}

Table series_table(const perfmodel::PhaseModel& model) {
  Table table("Scaling series: " + model.series.phase + " vs " +
                  model.series.parameter,
              {model.series.parameter, model.series.metric, "model(x)"});
  for (std::size_t i = 0; i < model.series.x.size(); ++i) {
    table.add_row({Table::num(model.series.x[i], 0),
                   Table::num(model.series.y[i], 9),
                   Table::num(model.fit.evaluate(model.series.x[i]), 9)});
  }
  return table;
}

void print_fit(const perfmodel::PhaseModel& model) {
  std::printf("  %-28s -> %-18s (r2 %.4f, cv_rmse %.3e) [%s] %s\n",
              model.series.phase.c_str(), model.fit.label().c_str(),
              model.fit.r2, model.fit.cv_rmse,
              model.verdict.pass ? "PASS" : "FAIL",
              model.verdict.reason.c_str());
  std::fflush(stdout);
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "scaling_model");
  // This bench IS the tracing consumer: phase aggregates feed the fits, so
  // tracing is always on and the trace streams to disk through the
  // bounded-memory sink instead of JsonReport's end-of-run exporter.
  trace::set_enabled(true);
  const std::string trace_path = opts.trace_path;
  opts.trace = false;
  bench::JsonReport report(opts);
  bench::g_report = &report;
  trace::MetricsRegistry::instance().reset();

  std::string perf_model_path = "PERF_MODEL.json";
  if (const char* env = std::getenv("AGCM_PERF_MODEL")) perf_model_path = env;

  print_header(
      "Scaling-model sweep: Extra-P-style per-phase performance models");
  print_note(
      "Fits y = c0 + c1 * x^a * log2(x)^b over a PMNF hypothesis grid to\n"
      "per-phase virtual times from (resolution, ranks) sweeps, then gates\n"
      "the paper's complexity claims: conv filter ~x^2, FFT stage\n"
      "~x*log2(x) (and asymptotically dominated by conv), transpose ~x in\n"
      "ranks, physics imbalance <= 8% after two pairwise iterations.\n");

  trace::StreamingTraceSink sink(trace_path);
  sink.begin(256);  // thread metadata up to the largest cell (P=256 sweep B)

  perfmodel::ModelReport model_report("scaling_model");
  {
    trace::JsonValue cfg = trace::JsonValue::object();
    cfg.set("machine", "cray_t3d");
    cfg.set("sweep_nlon", trace::JsonValue::array());
    model_report.set_config("machine", "cray_t3d");
    model_report.set_config("nlat", kSweepNlat);
    model_report.set_config("nlev", kSweepNlev);
    model_report.set_config("timed_applies", kTimedApplies);
  }

  // --- Sweep A: resolution ---------------------------------------------------
  const std::vector<int> nlons = {48, 72, 96, 144, 216, 288};
  perfmodel::Series conv_series{"filter.convolution-ring", "nlon",
                                "max_rank_sec", {}, {}};
  perfmodel::Series fft_series{"filter.fft-lines", "nlon", "max_rank_sec",
                               {}, {}};
  perfmodel::Series partition_series{"filter.partition-lines", "nlon",
                                     "max_rank_sec", {}, {}};
  for (const int nlon : nlons) {
    const FilterCell cell = run_filter_cell(
        nlon, 4,
        {filter::FilterAlgorithm::kConvolutionRing,
         filter::FilterAlgorithm::kFftTranspose,
         filter::FilterAlgorithm::kConvolutionPartitioned},
        sink);
    conv_series.add(nlon, cell.phases.at("filter.convolution-ring"));
    fft_series.add(nlon, cell.phases.at("filter.fft-lines"));
    partition_series.add(nlon, cell.phases.at("filter.partition-lines"));
    std::printf(
        "  nlon %3d: conv %.6f s  fft-lines %.6f s  partition-lines %.6f s  "
        "(per apply)\n",
        nlon, conv_series.y.back(), fft_series.y.back(),
        partition_series.y.back());
  }
  std::printf("\n");

  // Note the window admits b = 1 at the low end of the exponent range:
  // over a 6x sweep the grid neighbours x^2 and x^1.75 * log2(x) are
  // numerically aliased (both fit with r2 ~ 1), and leave-one-out CV may
  // legitimately pick either. The domination gate below still requires
  // the convolution class to beat the FFT class by >= 0.5 in the power
  // exponent, so the claim being enforced is unchanged.
  perfmodel::Expectation conv_expect;
  conv_expect.expected = "~ x^2 (per-line convolution, Section 3.2)";
  conv_expect.min_a = 1.75;
  conv_expect.max_a = 2.25;
  conv_expect.min_b = 0;
  conv_expect.max_b = 1;
  conv_expect.min_r2 = 0.97;

  perfmodel::Expectation fft_expect;
  fft_expect.expected = "~ x log2(x) (spectral filtering, Section 3.2)";
  fft_expect.min_a = 0.75;
  fft_expect.max_a = 1.25;
  fft_expect.min_b = 0;
  fft_expect.max_b = 2;
  fft_expect.min_r2 = 0.97;

  // The partitioned backend at L = nlon: the auto-selected block grows
  // roughly with nlon, so the optimum cost stays in the quasi-linear
  // x*log class — the window admits the same grid neighbourhood as the
  // whole-line FFT, just shifted by the block-selection staircase.
  perfmodel::Expectation partition_expect;
  partition_expect.expected =
      "~ x log2(x) (partitioned overlap-save, docs/filter.md)";
  partition_expect.min_a = 0.5;
  partition_expect.max_a = 1.5;
  partition_expect.min_b = 0;
  partition_expect.max_b = 2;
  partition_expect.min_r2 = 0.97;

  perfmodel::PhaseModel conv_model =
      perfmodel::analyze(std::move(conv_series), conv_expect);
  perfmodel::PhaseModel fft_model =
      perfmodel::analyze(std::move(fft_series), fft_expect);
  perfmodel::PhaseModel partition_model =
      perfmodel::analyze(std::move(partition_series), partition_expect);

  // --- Sweep B: ranks --------------------------------------------------------
  // Two decades of P (2 -> 256), feasible only because the fiber-scheduled
  // machine (docs/simnet.md) runs hundreds of virtual ranks without
  // hundreds of OS threads. nlon = 288 keeps >= 1 zonal column per rank at
  // the widest cell (uneven 2/1-column boxes at P = 256 are exercised
  // deliberately).
  const std::vector<int> widths = {2, 4, 8, 16, 32, 64, 128, 256};
  perfmodel::Series transpose_series{"filter.fft-transpose", "ranks",
                                     "max_rank_messages", {}, {}};
  for (const int cols : widths) {
    const FilterCell cell = run_filter_cell(
        288, cols, {filter::FilterAlgorithm::kFftTranspose}, sink);
    transpose_series.add(cols, cell.max_rank_msgs);
    std::printf(
        "  ranks %2d: transpose %.6f s, %.1f messages/rank (per apply)\n",
        cols, cell.phases.at("filter.transpose"), cell.max_rank_msgs);
  }
  std::printf("\n");

  perfmodel::Expectation transpose_expect;
  transpose_expect.expected =
      "~ x messages per rank ((P-1) transpose partners, Section 3.2)";
  transpose_expect.min_a = 0.75;
  transpose_expect.max_a = 1.25;
  transpose_expect.min_b = 0;
  transpose_expect.max_b = 1;
  transpose_expect.min_r2 = 0.97;

  perfmodel::PhaseModel transpose_model =
      perfmodel::analyze(std::move(transpose_series), transpose_expect);

  print_note("Fitted models:");
  print_fit(conv_model);
  print_fit(fft_model);
  print_fit(partition_model);
  print_fit(transpose_model);
  std::printf("\n");

  // --- Sweep C: physics load imbalance --------------------------------------
  const ImbalanceResult imbalance = run_imbalance_cell();
  std::printf(
      "  physics imbalance (8x8 T3D): before %.1f%%, after two pairwise "
      "iterations %.1f%% (%d iterations run)\n\n",
      100.0 * imbalance.before, 100.0 * imbalance.after,
      imbalance.iterations);

  // --- Gates -----------------------------------------------------------------
  const bool conv_dominates =
      perfmodel::dominates(conv_model.fit.hyp, fft_model.fit.hyp) &&
      conv_model.fit.hyp.a >= fft_model.fit.hyp.a + 0.5;
  const bool conv_dominates_partition =
      perfmodel::dominates(conv_model.fit.hyp, partition_model.fit.hyp) &&
      conv_model.fit.hyp.a >= partition_model.fit.hyp.a + 0.5;
  const bool imbalance_before_ok = imbalance.before >= 0.25;
  const bool imbalance_after_ok = imbalance.after <= 0.08;

  model_report.add_phase(conv_model);
  model_report.add_phase(fft_model);
  model_report.add_phase(partition_model);
  model_report.add_phase(transpose_model);
  model_report.add_gate(
      "conv_dominates_fft", conv_dominates,
      "convolution class " + conv_model.fit.label() +
          " must asymptotically dominate FFT class " + fft_model.fit.label() +
          " by >= 0.5 in the power exponent");
  model_report.add_gate(
      "conv_dominates_partition", conv_dominates_partition,
      "convolution class " + conv_model.fit.label() +
          " must asymptotically dominate the partitioned overlap-save class " +
          partition_model.fit.label() + " by >= 0.5 in the power exponent");
  model_report.add_gate(
      "imbalance_before", imbalance_before_ok,
      "pre-LB physics imbalance must be >= 25% (paper: 35-48%)");
  model_report.add_gate(
      "imbalance_after", imbalance_after_ok,
      "post-LB physics imbalance must be <= 8% (paper: 5-6%)");
  model_report.write(perf_model_path);
  std::printf("wrote %s\n", perf_model_path.c_str());

  // Close the streamed trace before the report (so both artefacts exist
  // even if the gate below fails the process).
  sink.close();
  std::printf("wrote %s (chrome://tracing, %zu spans streamed)\n",
              trace_path.c_str(), sink.spans_written());

  // Structured mirror in BENCH_scaling_model.json (the fields
  // tools/check_bench_json.py and tools/perf_diff.py key on).
  report.set("perf_model_path", perf_model_path);
  report.set("fit_conv_exponent_a", conv_model.fit.hyp.a);
  report.set("fit_conv_log_power_b", conv_model.fit.hyp.b);
  report.set("fit_fft_exponent_a", fft_model.fit.hyp.a);
  report.set("fit_fft_log_power_b", fft_model.fit.hyp.b);
  report.set("fit_partition_exponent_a", partition_model.fit.hyp.a);
  report.set("fit_partition_log_power_b", partition_model.fit.hyp.b);
  report.set("fit_transpose_exponent_a", transpose_model.fit.hyp.a);
  report.set("fit_transpose_log_power_b", transpose_model.fit.hyp.b);
  report.set("conv_dominates_fft", conv_dominates);
  report.set("conv_dominates_partition", conv_dominates_partition);
  report.set("imbalance_before", imbalance.before);
  report.set("imbalance_after", imbalance.after);
  report.set("all_pass", model_report.all_pass());
  report.set("perf_model", model_report.to_json());

  // Rebuild the metrics snapshot from the sweep series (the registry was
  // cycled per cell above): the distributions exercise the log-binned
  // histogram percentiles (p50/p95/p99) in a deterministic artefact.
  trace::MetricsRegistry::instance().reset();
  for (const double v : conv_model.series.y)
    trace::MetricsRegistry::instance().observe("scaling.conv_cell_sec", v);
  for (const double v : fft_model.series.y)
    trace::MetricsRegistry::instance().observe("scaling.fft_cell_sec", v);
  for (const double v : partition_model.series.y)
    trace::MetricsRegistry::instance().observe("scaling.partition_cell_sec",
                                               v);
  for (const double v : transpose_model.series.y)
    trace::MetricsRegistry::instance().observe("scaling.transpose_cell_msgs",
                                               v);
  report.add_metrics();

  bench::emit_table(series_table(conv_model));
  bench::emit_table(series_table(fft_model));
  bench::emit_table(series_table(partition_model));
  bench::emit_table(series_table(transpose_model));
  report.finish();

  if (!model_report.all_pass()) {
    std::fprintf(stderr,
                 "scaling-model gate FAILED: see PERF_MODEL verdicts above\n");
    return 1;
  }
  print_note("scaling-model gate PASSED: all verdicts and gates hold.");
  return 0;
}
