// Host-side throughput of the simnet rank schedulers: thread-per-rank vs
// the M:N fiber scheduler (docs/simnet.md).
//
// The workload is deliberately message-dominated — per virtual timestep
// each rank does a ring shift plus a binomial reduce-and-broadcast tree on
// p2p messages, with only a token virtual compute charge — because that is
// the regime where the host cost of a virtual machine lives: every recv
// parks the rank, so the scheduler's park/wake mechanism is exercised
// ~3P times per step. Under thread-per-rank every park is an OS context
// switch + futex wake across P oversubscribed threads; under the fiber
// scheduler it is a user-space context switch on a worker pool sized to
// the actual cores.
//
// Measurements:
//  * P=64 shoot-out, both backends, best-of-N wall clock — gated: the
//    fiber backend must be >= 4x faster (exit code 1 otherwise).
//  * Correctness fence: per-rank virtual finish times of the two backends
//    must be bit-identical at P=64 (the scheduler moves host execution
//    around, never virtual time).
//  * Fiber scaling sweep P = 64..1024: the P=1024 multi-step run is the
//    paper-scale demonstration (240-node Table 4 sweeps fit with room to
//    spare) and must complete.
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "simnet/machine.hpp"
#include "util/table.hpp"

namespace {

using agcm::Table;
using agcm::simnet::Buffer;
using agcm::simnet::Machine;
using agcm::simnet::MachineProfile;
using agcm::simnet::RankContext;
using agcm::simnet::RunResult;
using agcm::simnet::SimBackend;

/// One virtual timestep: token ring + binomial reduce-to-0 + broadcast.
/// ~3P messages per step, and nearly every recv parks the rank: the baton
/// pass is strictly sequential (exactly one rank runnable at a time), so
/// each hop is one park + one wake on the host — the classic ring
/// benchmark for scheduler switch latency.
void step(RankContext& ctx, int s) {
  const int rank = ctx.rank();
  const int n = ctx.nranks();
  // Tags are reused across steps, as real field exchanges do: per-channel
  // FIFO makes the matching unambiguous, and the mailbox's channel table
  // stays small instead of growing a fresh channel per step.
  constexpr std::int64_t base = 0;
  (void)s;
  double payload[32] = {static_cast<double>(rank)};
  const auto bytes = std::as_bytes(std::span<const double>(payload));

  ctx.clock().compute(64.0);  // token compute so wait/compute both appear

  // Token circulation: rank 0 injects the baton, everyone else blocks for
  // it and relays it onward; rank 0 finally absorbs it.
  if (rank == 0) {
    ctx.send_bytes(1 % n, base, bytes);
    (void)ctx.recv_bytes(n - 1, base);
  } else {
    (void)ctx.recv_bytes(rank - 1, base);
    ctx.send_bytes((rank + 1) % n, base, bytes);
  }

  // Binomial reduce to rank 0 ...
  for (int stride = 1; stride < n; stride *= 2) {
    if (rank % (2 * stride) == stride) {
      ctx.send_bytes(rank - stride, base + 1, bytes);
      break;
    }
    if (rank % (2 * stride) == 0 && rank + stride < n) {
      (void)ctx.recv_bytes(rank + stride, base + 1);
    }
  }
  // ... and broadcast back down the same tree.
  int up = 1;
  while (up < n) up *= 2;
  for (int stride = up / 2; stride >= 1; stride /= 2) {
    if (rank % (2 * stride) == stride) {
      (void)ctx.recv_bytes(rank - stride, base + 2);
    } else if (rank % (2 * stride) == 0 && rank + stride < n) {
      ctx.send_bytes(rank + stride, base + 2, bytes);
    }
  }
}

struct Timed {
  double best_ms = 0.0;
  RunResult result;
};

Timed time_run(SimBackend backend, int nranks, int steps, int trials,
               int workers = 0) {
  Machine machine(MachineProfile::cray_t3d());
  machine.set_backend(backend);
  if (workers > 0) machine.set_workers(workers);
  Timed out;
  for (int t = 0; t < trials; ++t) {
    const agcm::bench::Stopwatch sw;
    RunResult r = machine.run(nranks, [steps](RankContext& ctx) {
      for (int s = 0; s < steps; ++s) step(ctx, s);
    });
    const double ms = sw.seconds() * 1e3;
    if (t == 0 || ms < out.best_ms) out.best_ms = ms;
    out.result = std::move(r);
  }
  return out;
}

bool virtual_times_match(const RunResult& a, const RunResult& b) {
  if (a.finish_times.size() != b.finish_times.size()) return false;
  for (std::size_t r = 0; r < a.finish_times.size(); ++r) {
    if (a.finish_times[r] != b.finish_times[r]) return false;  // exact
  }
  return a.total_messages == b.total_messages &&
         a.total_bytes == b.total_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = agcm::bench::BenchOptions::parse(argc, argv, "simnet_sched");
  agcm::bench::JsonReport report(opts);
  agcm::bench::print_header(
      "Simnet rank scheduling: thread-per-rank vs M:N fiber scheduler");

  constexpr int kGateRanks = 64;
  constexpr int kSteps = 30;  // enough steps that steady-state park/wake
                              // cost dominates per-run machine setup
  constexpr int kTrials = 5;
  constexpr double kSpeedupGate = 4.0;

  // P=64 shoot-out (best-of-N wall clock; host noise is one-sided). The
  // baton makes the workload sequential — at most one rank is runnable —
  // so the fiber side is pinned to ONE worker: that is the right pool for
  // the workload, and it keeps the measurement machine-independent (with
  // a core-count pool, every hop would wake a *sleeping* worker — futex +
  // cross-core handoff — and the gate would measure the host's core
  // topology instead of the scheduler mechanism).
  const Timed threads =
      time_run(SimBackend::kThreads, kGateRanks, kSteps, kTrials);
  const Timed fibers =
      time_run(SimBackend::kFibers, kGateRanks, kSteps, kTrials,
               /*workers=*/1);
  const double speedup = threads.best_ms / fibers.best_ms;
  const bool times_match = virtual_times_match(threads.result, fibers.result);

  // Fiber scaling sweep up to the paper-scale P=1024 demonstration.
  Table table("Scheduler wall clock (message-dominated step, best of " +
                  std::to_string(kTrials) + ")",
              {"P", "Backend", "Steps", "Wall ms", "ms/step", "Virtual s"});
  auto add_row = [&](int p, const char* backend, const Timed& t, int steps) {
    table.add_row({std::to_string(p), backend, std::to_string(steps),
                   Table::num(t.best_ms, 2), Table::num(t.best_ms / steps, 3),
                   Table::num(t.result.makespan(), 4)});
  };
  add_row(kGateRanks, "threads", threads, kSteps);
  add_row(kGateRanks, "fibers", fibers, kSteps);

  bool sweep_ok = true;
  double p1024_ms = 0.0;
  for (const int p : {256, 1024}) {
    const int steps = p >= 1024 ? 5 : kSteps;
    const Timed t = time_run(SimBackend::kFibers, p, steps, /*trials=*/1);
    add_row(p, "fibers", t, steps);
    sweep_ok = sweep_ok && t.result.finish_times.size() ==
                               static_cast<std::size_t>(p);
    if (p == 1024) p1024_ms = t.best_ms;
  }
  agcm::bench::emit_table(report, table);

  agcm::bench::print_note(
      "gate: fibers >= " + Table::num(kSpeedupGate, 1) + "x threads at P=" +
      std::to_string(kGateRanks) + " (got " + Table::num(speedup, 2) +
      "x); virtual times " + (times_match ? "bit-identical" : "DIVERGED"));

  report.set("p64_threads_ms", threads.best_ms);
  report.set("p64_fibers_ms", fibers.best_ms);
  report.set("p64_speedup", speedup);
  report.set("gate_speedup_min", kSpeedupGate);
  report.set("virtual_times_match", times_match);
  report.set("p1024_wall_ms", p1024_ms);
  report.set("p1024_completed", sweep_ok);

  bool ok = true;
  if (!times_match) {
    std::fprintf(stderr,
                 "virtual times diverged between thread and fiber backends\n");
    ok = false;
  }
  if (speedup < kSpeedupGate) {
    std::fprintf(stderr, "speedup gate failed: %.2fx (>= %.1fx required)\n",
                 speedup, kSpeedupGate);
    ok = false;
  }
  if (!sweep_ok) {
    std::fprintf(stderr, "fiber scaling sweep did not complete\n");
    ok = false;
  }
  report.set("gates_passed", ok);
  report.finish();
  return ok ? 0 : 1;
}
