// Three-way polar-filter crossover study + self-gates for the partitioned
// overlap-save streaming backend (src/filter/partition.hpp,
// docs/filter.md). Extends the Tables 8-11 conv-vs-FFT study with the
// third contender:
//
//  1. Block-size selection metadata and the deterministic cost model,
//     three ways (direct conv / whole-line FFT / partitioned OLS) across
//     resolutions, with both model-level crossover points.
//  2. Partitioned-vs-direct equivalence sweep at awkward shapes, reported
//     as a max-ulp envelope (mirrors tests/test_filter_partition.cpp).
//  3. The Tables 8-11 methodology re-run three-way in virtual time on the
//     1x4 T3D mesh: conv-ring vs fft-transpose vs conv-partitioned per
//     apply, per resolution — the published crossover table.
//  4. A PMNF fit (src/perfmodel/) of the streaming cost series — fixed
//     kernel length, growing period — which must select a <= x*log-class
//     model with r2 > 0.999 (the backend's bounded-latency linear-cost
//     claim; the conv ~x^1.75-2 domination verdict lives in
//     bench_scaling_model, which fits both backends from virtual time).
//  5. Host-measured speedup gate: the partitioned engine must beat direct
//     convolution by >= 1.5x at long responses (nlon >= 576). Skipped
//     under --check-only, where the JSON carries only deterministic
//     fields and must be byte-identical run to run (CI determinism
//     fence).
//
// Self-gating: any failed gate exits non-zero after writing the JSON.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/mesh2d.hpp"
#include "dynamics/dynamics.hpp"
#include "filter/partition.hpp"
#include "filter/serial.hpp"
#include "filter/variants.hpp"
#include "perfmodel/report.hpp"
#include "simnet/machine.hpp"
#include "util/rng.hpp"

namespace agcm {
namespace {

using bench::print_header;
using bench::print_note;

bool g_check_only = false;

constexpr double kGateSpeedupMin = 1.5;   ///< host gate vs direct conv
constexpr double kUlpEnvelope = 4096.0;   ///< equivalence envelope (ulps)
constexpr int kSweepNlat = 90;            ///< matches bench_scaling_model
constexpr int kSweepNlev = 4;
constexpr int kTimedApplies = 1;          ///< per cell, after 1 warm apply

double conv_model(int n) { return filter::convolution_filter_flops(n); }
double fft_model(int n) { return filter::fft_filter_flops(n); }
double partition_model(int n) {
  return filter::PartitionPlan::make(n, n).flops();
}

// --- Part 1: cost model, three ways ---------------------------------------

/// Smallest scanned n from which `lhs` stays strictly cheaper than `rhs`
/// for the rest of the scan range (0 if it never does).
int crossover_scan(double (*lhs)(int), double (*rhs)(int)) {
  int crossover = 0;
  for (int n = 16; n <= 2304; n += 16) {
    if (lhs(n) < rhs(n)) {
      if (crossover == 0) crossover = n;
    } else {
      crossover = 0;
    }
  }
  return crossover;
}

// --- Part 2: equivalence sweep --------------------------------------------

double max_abs(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double ulp_diff(double a, double b, double scale) {
  const double ulp =
      std::nextafter(scale, std::numeric_limits<double>::infinity()) - scale;
  return std::abs(a - b) / ulp;
}

/// One equivalence case: random kernel/line, streaming engine vs direct
/// reference, max deviation in ulps of the reference magnitude.
double equivalence_case(std::uint64_t seed, int n, int taps, int block) {
  Rng rng(seed);
  std::vector<double> kernel(static_cast<std::size_t>(taps));
  for (double& x : kernel) x = rng.uniform(-0.5, 0.5);
  std::vector<double> line(static_cast<std::size_t>(n));
  for (double& x : line) x = rng.uniform(-1.0, 1.0);
  std::vector<double> reference = line;
  filter::convolve_circular_direct(kernel, reference);

  const filter::PartitionedKernel pk(kernel, n, block);
  filter::filter_line_partition(pk, line);

  const double scale = std::max(1.0, max_abs(reference));
  double worst = 0.0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    worst = std::max(worst, ulp_diff(line[i], reference[i], scale));
  }
  return worst;
}

// --- Part 3: three-way virtual-time study ---------------------------------

/// Per-apply max-rank virtual seconds of the whole filter phase for each
/// algorithm, Tables 8-11 methodology (1 x cols T3D mesh).
std::map<std::string, double> run_virtual_cell(
    int nlon, int cols, const std::vector<filter::FilterAlgorithm>& algos) {
  simnet::Machine machine(simnet::MachineProfile::cray_t3d());
  machine.set_recv_timeout_ms(600'000);
  trace::Tracer::instance().begin_run(cols);

  machine.run(cols, [&](simnet::RankContext& ctx) {
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, 1, cols);
    const grid::LatLonGrid grid(nlon, kSweepNlat, kSweepNlev);
    const grid::Decomp2D decomp(nlon, kSweepNlat, 1, cols);
    const auto box = decomp.box(mesh.coord());

    const filter::FilterBank bank(grid,
                                  dynamics::Dynamics::filtered_variables());
    dynamics::State state(box, kSweepNlev);
    dynamics::initialize_state(state, grid, box, 1996);
    grid::Array3D<double>* fields[] = {&state.u, &state.v, &state.h,
                                       &state.theta, &state.q};

    for (const filter::FilterAlgorithm algo : algos) {
      auto filter = filter::make_filter(algo, mesh, decomp, bank);
      filter->apply(fields);  // warm apply (traced; divided out below)
      world.barrier();
      for (int s = 0; s < kTimedApplies; ++s) {
        filter->apply(fields);
        world.barrier();
      }
    }
  });

  std::map<std::string, double> out;
  for (const auto& phase : trace::aggregate_phases(trace::Tracer::instance()))
    out[phase.name] = phase.max_rank_sec / (1.0 + kTimedApplies);
  return out;
}

// --- Part 5: host-measured speedup gate -----------------------------------

/// Best-of-trials host seconds for `reps` calls of `fn`.
template <typename Fn>
double best_host_seconds(int trials, int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    bench::Stopwatch sw;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, sw.seconds() / reps);
  }
  return best;
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  // --check-only: deterministic fields only (no host timings), for the CI
  // byte-identity determinism fence. Strip before the common parser.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-only") == 0) {
      g_check_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  auto opts = bench::BenchOptions::parse(static_cast<int>(args.size()),
                                         args.data(), "filter_partition");
  bench::JsonReport report(opts);
  bench::g_report = &report;
  report.set("mode", std::string(g_check_only ? "check-only" : "full"));

  print_header(
      "Partitioned overlap-save filtering: three-way crossover + gates");
  print_note(
      "Direct convolution (O(n^2) per line) vs whole-line FFT (O(n log n))\n"
      "vs uniform-partitioned overlap-save (block FFTs of length 2B against\n"
      "cached kernel partitions). Gates: partitioned == direct within the\n"
      "ulp envelope, a <= x*log-class PMNF fit with r2 > 0.999, and (full\n"
      "mode) >= 1.5x measured over direct convolution at nlon >= 576.\n");

  bool all_gates = true;

  // --- Part 1: block-size selection and the cost model three ways ----------
  {
    Table table("Cost model, three ways (L = nlon; partitioned B auto)",
                {"nlon", "B", "2B", "P", "hops", "conv flops", "fft flops",
                 "partition flops", "model winner"});
    for (int n : {48, 96, 144, 288, 576, 1152, 2304}) {
      const filter::PartitionPlan plan = filter::PartitionPlan::make(n, n);
      const double conv = conv_model(n);
      const double fft = fft_model(n);
      const double part = partition_model(n);
      const char* winner = conv <= fft && conv <= part ? "conv"
                           : fft <= part              ? "fft"
                                                      : "partition";
      table.add_row({Table::num(n, 0), Table::num(plan.block, 0),
                     Table::num(plan.fft_size, 0), Table::num(plan.nparts, 0),
                     Table::num(plan.nblocks, 0), Table::num(conv, 0),
                     Table::num(fft, 0), Table::num(part, 0), winner});
    }
    bench::emit_table(table);
  }

  const filter::PartitionPlan plan144 = filter::PartitionPlan::make(144, 144);
  const filter::PartitionPlan plan576 = filter::PartitionPlan::make(576, 576);
  report.set("block_nlon144", plan144.block);
  report.set("block_nlon576", plan576.block);
  report.set("fft_size_nlon576", plan576.fft_size);
  report.set("nparts_nlon576", plan576.nparts);
  report.set("nblocks_nlon576", plan576.nblocks);

  const int cross_part_conv = crossover_scan(partition_model, conv_model);
  const int cross_fft_conv = crossover_scan(fft_model, conv_model);
  std::printf(
      "  model crossovers vs direct convolution: fft from nlon %d, "
      "partitioned from nlon %d\n\n",
      cross_fft_conv, cross_part_conv);
  report.set("model_crossover_fft_vs_conv_nlon", cross_fft_conv);
  report.set("model_crossover_partition_vs_conv_nlon", cross_part_conv);
  // The headline claim: the partitioned model must win from 576 on (the
  // paper's largest filtering study resolution is 144; 576 is the "long
  // response" regime the gate targets).
  const bool crossover_ok = cross_part_conv > 0 && cross_part_conv <= 576;
  if (!crossover_ok) all_gates = false;

  // --- Part 2: equivalence sweep (deterministic) ---------------------------
  {
    struct Case {
      int n, taps, block;
    };
    const Case cases[] = {
        {5, 3, 0},      {7, 7, 0},      {17, 40, 0},   {31, 8, 16},
        {33, 20, 16},   {47, 20, 16},   {48, 48, 16},  {97, 97, 0},
        {144, 144, 0},  {144, 300, 0},  {149, 149, 0}, {144, 144, 36},
        {576, 576, 0},  {576, 900, 0},
    };
    double worst = 0.0;
    int count = 0;
    for (const Case& c : cases) {
      const std::uint64_t seed =
          0x9e3779b97f4a7c15ULL ^
          static_cast<std::uint64_t>(c.n * 1000003 + c.taps * 101 + c.block);
      worst = std::max(worst, equivalence_case(seed, c.n, c.taps, c.block));
      ++count;
    }
    const bool equiv_pass = worst < kUlpEnvelope;
    std::printf(
        "  equivalence sweep: %d awkward-shape cases, max deviation %.1f "
        "ulps (envelope %.0f) [%s]\n\n",
        count, worst, kUlpEnvelope, equiv_pass ? "PASS" : "FAIL");
    report.set("equiv_cases", count);
    report.set("equiv_max_ulp", worst);
    report.set("equiv_ulp_envelope", kUlpEnvelope);
    report.set("equiv_pass", equiv_pass);
    if (!equiv_pass) all_gates = false;
  }

  // --- Part 3: three-way virtual-time crossover (Tables 8-11 extended) -----
  double virtual_speedup_576 = 0.0;
  {
    trace::set_enabled(true);
    Table table(
        "Three-way filter study, 1x4 T3D mesh (virtual s/apply, "
        "max rank)",
        {"nlon", "conv-ring", "fft-transpose", "conv-partitioned",
         "partitioned/conv", "winner"});
    for (int nlon : {96, 144, 288, 576}) {
      const auto phases = run_virtual_cell(
          nlon, 4,
          {filter::FilterAlgorithm::kConvolutionRing,
           filter::FilterAlgorithm::kFftTranspose,
           filter::FilterAlgorithm::kConvolutionPartitioned});
      const double conv = phases.at("filter.convolution-ring");
      const double fft = phases.at("filter.fft-transpose");
      const double part = phases.at("filter.convolution-partitioned");
      const double speedup = conv / part;
      const char* winner = conv <= fft && conv <= part ? "conv-ring"
                           : fft <= part              ? "fft-transpose"
                                                      : "partitioned";
      if (nlon == 576) virtual_speedup_576 = speedup;
      table.add_row({Table::num(nlon, 0), Table::num(conv, 6),
                     Table::num(fft, 6), Table::num(part, 6),
                     Table::num(speedup, 2), winner});
    }
    trace::set_enabled(false);
    bench::emit_table(table);
  }
  const bool virtual_gate = virtual_speedup_576 >= kGateSpeedupMin;
  std::printf(
      "  virtual-time speedup over conv-ring at nlon 576: %.2fx (gate >= "
      "%.1fx) [%s]\n\n",
      virtual_speedup_576, kGateSpeedupMin, virtual_gate ? "PASS" : "FAIL");
  report.set("virtual_partition_vs_conv_speedup_nlon576", virtual_speedup_576);
  report.set("partition_wins_three_way_at_nlon576", virtual_gate);
  if (!virtual_gate) all_gates = false;

  // --- Part 4: PMNF fit of the streaming cost series -----------------------
  {
    // The streaming claim: with the kernel length fixed (L = 144 taps,
    // B = 64 forced so the small-FFT core is pinned), the per-line cost
    // must be linear in the period — the bounded-latency property that
    // distinguishes this backend from the whole-line FFT. The series is
    // the deterministic cost model the virtual clock charges; the class
    // windows are enforced by the perfmodel verdict.
    perfmodel::Series series{"filter.partition-stream", "period",
                             "model_flops", {}, {}};
    for (int x = 576; x <= 4608; x += 576) {
      series.add(x, filter::PartitionPlan::make(x, 144, 64).flops());
    }
    perfmodel::Expectation expect;
    expect.expected =
        "~ x (streaming OLS: fixed L and B, cost linear in the period)";
    expect.min_a = 0.75;
    expect.max_a = 1.0;
    expect.min_b = 0;
    expect.max_b = 1;
    expect.min_r2 = 0.999;
    const perfmodel::PhaseModel model =
        perfmodel::analyze(std::move(series), expect);
    std::printf("  PMNF fit %s -> %s (r2 %.6f) [%s] %s\n\n",
                model.series.phase.c_str(), model.fit.label().c_str(),
                model.fit.r2, model.verdict.pass ? "PASS" : "FAIL",
                model.verdict.reason.c_str());
    report.set("fit_partition_exponent_a", model.fit.hyp.a);
    report.set("fit_partition_log_power_b", model.fit.hyp.b);
    report.set("fit_partition_r2", model.fit.r2);
    report.set("fit_partition_pass", model.verdict.pass);
    if (!model.verdict.pass) all_gates = false;
  }

  // --- Part 5: host-measured speedup gate (full mode only) -----------------
  report.set("gate_speedup_min", kGateSpeedupMin);
  if (!g_check_only) {
    Table table("Host time per line, direct conv vs partitioned (L = nlon)",
                {"nlon", "conv ms", "partitioned ms", "speedup", "gate"});
    bool host_pass = true;
    for (int n : {288, 576, 1152}) {
      Rng rng(2026);
      std::vector<double> kernel(static_cast<std::size_t>(n));
      for (double& x : kernel) x = rng.uniform(-0.5, 0.5);
      std::vector<double> line(static_cast<std::size_t>(n));
      for (double& x : line) x = rng.uniform(-1.0, 1.0);
      const filter::PartitionedKernel pk(kernel, n);

      // Warm both paths (workspace growth), then best-of-5.
      filter::filter_line_convolution(line, kernel);
      filter::filter_line_partition(pk, line);
      const double conv_sec = best_host_seconds(
          5, 8, [&] { filter::filter_line_convolution(line, kernel); });
      const double part_sec = best_host_seconds(
          5, 8, [&] { filter::filter_line_partition(pk, line); });
      const double speedup = conv_sec / part_sec;
      const bool gated = n >= 576;
      const bool pass = !gated || speedup >= kGateSpeedupMin;
      if (!pass) host_pass = false;
      table.add_row({Table::num(n, 0), Table::num(conv_sec * 1e3, 4),
                     Table::num(part_sec * 1e3, 4), Table::num(speedup, 2),
                     gated ? (pass ? "PASS" : "FAIL") : "-"});
      if (n == 576) report.set("host_speedup_nlon576", speedup);
      if (n == 1152) report.set("host_speedup_nlon1152", speedup);
    }
    bench::emit_table(table);
    report.set("host_gate_pass", host_pass);
    if (!host_pass) all_gates = false;
  }

  report.set("gates_passed", all_gates);
  report.finish();

  if (!all_gates) {
    std::fprintf(stderr, "filter-partition gate FAILED (see above)\n");
    return 1;
  }
  print_note("filter-partition gates PASSED.");
  return 0;
}
