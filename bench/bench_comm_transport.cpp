// Host-side throughput of the simnet transport: seed copy path vs the
// zero-copy pooled path (docs/transport.md).
//
// Two traffic patterns, each driven over a real 4-rank Network in a single
// host thread (sends are buffered, so all-sends-then-all-recvs needs no
// threads — the measurement isolates pack/copy/unpack cost from scheduler
// noise):
//
//  * halo      — the dynamics ghost exchange: i-strips east/west and
//                j-strips north/south on a 2x2 torus, every iteration.
//  * transpose — the filter row-transpose: each rank scatters per-
//                destination line chunks and gathers whole lines.
//
// The "legacy" path replicates the seed implementation verbatim: fresh
// std::vector staging, element-wise push_back packing, span send (copy into
// the wire buffer), recv copied out into another vector, element-wise
// unpack. The "pooled" path is the code the library now runs: strips packed
// once by memcpy runs straight into a pool-acquired wire buffer, the buffer
// moved into the network, and the received payload unpacked in place.
//
// Acceptance gates (exit code 1 on failure, recorded in the BENCH JSON):
//   halo_speedup >= 2.0, transpose_speedup >= 1.5.
// Both paths must also produce bit-identical field contents (checksummed).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "grid/array3d.hpp"
#include "grid/halo.hpp"
#include "simnet/machine.hpp"
#include "util/table.hpp"

namespace {

using agcm::Table;
using agcm::grid::Array3D;
using agcm::simnet::Buffer;
using agcm::simnet::MachineProfile;
using agcm::simnet::Network;
using agcm::simnet::RankContext;

constexpr int kRanks = 4;  // 2x2 torus
constexpr int kTagEast = 1, kTagWest = 2, kTagNorth = 3, kTagSouth = 4;
constexpr int kTagChunk = 7;

std::span<const std::byte> as_bytes(std::span<const double> v) {
  return std::as_bytes(v);
}

// --- halo pattern -----------------------------------------------------------

struct HaloWorld {
  // 2x2 torus: rank = row*2 + col; both directions periodic so every rank
  // moves the same traffic (this is a throughput pattern, not the physical
  // boundary condition).
  static int east(int r) { return (r / 2) * 2 + ((r % 2) + 1) % 2; }
  static int north(int r) { return ((r / 2 + 1) % 2) * 2 + r % 2; }

  explicit HaloWorld(int ni, int nj, int nk) {
    fields.reserve(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      fields.emplace_back(ni, nj, nk, /*ghost=*/1);
      auto raw = fields.back().raw();
      for (std::size_t x = 0; x < raw.size(); ++x)
        raw[x] = 0.25 * static_cast<double>(r + 1) +
                 1e-6 * static_cast<double>(x % 9973);
    }
  }

  double checksum() const {
    double sum = 0.0;
    for (const auto& f : fields)
      for (double v : f.raw()) sum += v;
    return sum;
  }

  std::vector<Array3D<double>> fields;
};

/// Seed implementation of the halo pattern: element-wise vector packing and
/// copy-in/copy-out transport (what exchange_halo did before the pooled
/// transport landed).
void halo_iteration_legacy(std::vector<RankContext*>& ctx, HaloWorld& w) {
  const int g = 1;
  for (int r = 0; r < kRanks; ++r) {
    Array3D<double>& f = w.fields[static_cast<std::size_t>(r)];
    auto pack_i = [&](int i_begin) {
      std::vector<double> buf;
      buf.reserve(static_cast<std::size_t>(g) *
                  static_cast<std::size_t>(f.nj()) *
                  static_cast<std::size_t>(f.nk()));
      for (int k = 0; k < f.nk(); ++k)
        for (int j = 0; j < f.nj(); ++j)
          for (int di = 0; di < g; ++di) buf.push_back(f.at(i_begin + di, j, k));
      return buf;
    };
    auto pack_j = [&](int j_begin) {
      std::vector<double> buf;
      buf.reserve(static_cast<std::size_t>(g) *
                  static_cast<std::size_t>(f.ni() + 2 * g) *
                  static_cast<std::size_t>(f.nk()));
      for (int k = 0; k < f.nk(); ++k)
        for (int dj = 0; dj < g; ++dj)
          for (int i = -g; i < f.ni() + g; ++i)
            buf.push_back(f.at(i, j_begin + dj, k));
      return buf;
    };
    const auto east_edge = pack_i(f.ni() - g);
    const auto west_edge = pack_i(0);
    const auto north_edge = pack_j(f.nj() - g);
    const auto south_edge = pack_j(0);
    ctx[static_cast<std::size_t>(r)]->send_bytes(HaloWorld::east(r), kTagEast,
                                                 as_bytes(east_edge));
    ctx[static_cast<std::size_t>(r)]->send_bytes(HaloWorld::east(r), kTagWest,
                                                 as_bytes(west_edge));
    ctx[static_cast<std::size_t>(r)]->send_bytes(HaloWorld::north(r), kTagNorth,
                                                 as_bytes(north_edge));
    ctx[static_cast<std::size_t>(r)]->send_bytes(HaloWorld::north(r), kTagSouth,
                                                 as_bytes(south_edge));
  }
  for (int r = 0; r < kRanks; ++r) {
    Array3D<double>& f = w.fields[static_cast<std::size_t>(r)];
    auto recv_into = [&](int src, int tag, std::vector<double>& out) {
      const Buffer bytes = ctx[static_cast<std::size_t>(r)]->recv_bytes(src, tag);
      out.resize(bytes.size() / sizeof(double));
      std::memcpy(out.data(), bytes.data(), bytes.size());
    };
    std::vector<double> from_west, from_east, from_south, from_north;
    recv_into(HaloWorld::east(r), kTagEast, from_west);
    recv_into(HaloWorld::east(r), kTagWest, from_east);
    recv_into(HaloWorld::north(r), kTagNorth, from_south);
    recv_into(HaloWorld::north(r), kTagSouth, from_north);
    auto unpack_i = [&](int i_begin, std::span<const double> buf) {
      std::size_t pos = 0;
      for (int k = 0; k < f.nk(); ++k)
        for (int j = 0; j < f.nj(); ++j)
          for (int di = 0; di < g; ++di) f.at(i_begin + di, j, k) = buf[pos++];
    };
    auto unpack_j = [&](int j_begin, std::span<const double> buf) {
      std::size_t pos = 0;
      for (int k = 0; k < f.nk(); ++k)
        for (int dj = 0; dj < g; ++dj)
          for (int i = -g; i < f.ni() + g; ++i)
            f.at(i, j_begin + dj, k) = buf[pos++];
    };
    unpack_i(-g, from_west);
    unpack_i(f.ni(), from_east);
    unpack_j(-g, from_south);
    unpack_j(f.nj(), from_north);
  }
}

/// Pooled zero-copy halo pattern: the library's strip programs pack straight
/// into acquired wire buffers; received payloads are unpacked in place.
void halo_iteration_pooled(std::vector<RankContext*>& ctx, HaloWorld& w) {
  using agcm::grid::i_strip_elems;
  using agcm::grid::j_strip_elems;
  const int g = 1;
  for (int r = 0; r < kRanks; ++r) {
    Array3D<double>& f = w.fields[static_cast<std::size_t>(r)];
    RankContext& c = *ctx[static_cast<std::size_t>(r)];
    const std::size_t ib = i_strip_elems(f, g) * sizeof(double);
    const std::size_t jb = j_strip_elems(f, g, g) * sizeof(double);
    auto send_i = [&](int i_begin, int dst, int tag) {
      Buffer buf = c.acquire_buffer(ib);
      agcm::grid::pack_i_strip(
          f, i_begin, g,
          {reinterpret_cast<double*>(buf.data()), ib / sizeof(double)});
      c.send_bytes(dst, tag, std::move(buf));
    };
    auto send_j = [&](int j_begin, int dst, int tag) {
      Buffer buf = c.acquire_buffer(jb);
      agcm::grid::pack_j_strip(
          f, j_begin, g, g,
          {reinterpret_cast<double*>(buf.data()), jb / sizeof(double)});
      c.send_bytes(dst, tag, std::move(buf));
    };
    send_i(f.ni() - g, HaloWorld::east(r), kTagEast);
    send_i(0, HaloWorld::east(r), kTagWest);
    send_j(f.nj() - g, HaloWorld::north(r), kTagNorth);
    send_j(0, HaloWorld::north(r), kTagSouth);
  }
  for (int r = 0; r < kRanks; ++r) {
    Array3D<double>& f = w.fields[static_cast<std::size_t>(r)];
    RankContext& c = *ctx[static_cast<std::size_t>(r)];
    auto recv_i = [&](int src, int tag, int i_begin) {
      const Buffer bytes = c.recv_bytes(src, tag);
      agcm::grid::unpack_i_strip(
          f, i_begin, g,
          {reinterpret_cast<const double*>(bytes.data()),
           bytes.size() / sizeof(double)});
    };
    auto recv_j = [&](int src, int tag, int j_begin) {
      const Buffer bytes = c.recv_bytes(src, tag);
      agcm::grid::unpack_j_strip(
          f, j_begin, g, g,
          {reinterpret_cast<const double*>(bytes.data()),
           bytes.size() / sizeof(double)});
    };
    recv_i(HaloWorld::east(r), kTagEast, -g);
    recv_i(HaloWorld::east(r), kTagWest, f.ni());
    recv_j(HaloWorld::north(r), kTagNorth, -g);
    recv_j(HaloWorld::north(r), kTagSouth, f.nj());
  }
}

// --- transpose pattern ------------------------------------------------------

struct TransposeWorld {
  // Each rank holds `nlines` chunk rows of width `ni`; line q belongs to
  // rank q % kRanks after the transpose (the RowTransposePlan convention).
  TransposeWorld(int nlines_, int ni_)
      : nlines(nlines_), ni(ni_), nlon(ni_ * kRanks) {
    chunks.resize(static_cast<std::size_t>(kRanks));
    full.resize(static_cast<std::size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) {
      auto& c = chunks[static_cast<std::size_t>(r)];
      c.resize(static_cast<std::size_t>(nlines) * static_cast<std::size_t>(ni));
      for (std::size_t x = 0; x < c.size(); ++x)
        c[x] = static_cast<double>(r + 1) + 1e-7 * static_cast<double>(x);
      full[static_cast<std::size_t>(r)].assign(
          static_cast<std::size_t>(nlines / kRanks) *
              static_cast<std::size_t>(nlon),
          0.0);
    }
  }

  double checksum() const {
    double sum = 0.0;
    for (const auto& f : full)
      for (double v : f) sum += v;
    return sum;
  }

  int nlines, ni, nlon;
  std::vector<std::vector<double>> chunks;  ///< per rank, nlines x ni
  std::vector<std::vector<double>> full;    ///< per rank, owned lines x nlon
};

/// Seed transpose: staging send vector built with insert, per-destination
/// span sends (copied into the wire), receive copied out into a vector,
/// then assembled into whole lines — the historical alltoallv data path.
void transpose_iteration_legacy(std::vector<RankContext*>& ctx,
                                TransposeWorld& w) {
  const auto ni = static_cast<std::size_t>(w.ni);
  const std::size_t owned = static_cast<std::size_t>(w.nlines / kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const auto& chunks = w.chunks[static_cast<std::size_t>(r)];
    for (int d = 0; d < kRanks; ++d) {
      std::vector<double> send_buf;
      send_buf.reserve(owned * ni);
      for (std::size_t q = static_cast<std::size_t>(d);
           q < static_cast<std::size_t>(w.nlines);
           q += static_cast<std::size_t>(kRanks)) {
        send_buf.insert(send_buf.end(), chunks.begin() + static_cast<std::ptrdiff_t>(q * ni),
                        chunks.begin() + static_cast<std::ptrdiff_t>((q + 1) * ni));
      }
      ctx[static_cast<std::size_t>(r)]->send_bytes(d, kTagChunk,
                                                   as_bytes(send_buf));
    }
  }
  for (int r = 0; r < kRanks; ++r) {
    auto& full = w.full[static_cast<std::size_t>(r)];
    for (int s = 0; s < kRanks; ++s) {
      const Buffer bytes = ctx[static_cast<std::size_t>(r)]->recv_bytes(s, kTagChunk);
      std::vector<double> recv_buf(bytes.size() / sizeof(double));
      std::memcpy(recv_buf.data(), bytes.data(), bytes.size());
      for (std::size_t p = 0; p < owned; ++p) {
        std::copy(recv_buf.begin() + static_cast<std::ptrdiff_t>(p * ni),
                  recv_buf.begin() + static_cast<std::ptrdiff_t>((p + 1) * ni),
                  full.begin() + static_cast<std::ptrdiff_t>(
                                     p * static_cast<std::size_t>(w.nlon) +
                                     static_cast<std::size_t>(s) * ni));
      }
    }
  }
}

/// Pooled transpose: per-destination chunks packed straight into the wire
/// buffer; received slices scattered in place into the whole-line buffer.
void transpose_iteration_pooled(std::vector<RankContext*>& ctx,
                                TransposeWorld& w) {
  const auto ni = static_cast<std::size_t>(w.ni);
  const std::size_t owned = static_cast<std::size_t>(w.nlines / kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const auto& chunks = w.chunks[static_cast<std::size_t>(r)];
    RankContext& c = *ctx[static_cast<std::size_t>(r)];
    for (int d = 0; d < kRanks; ++d) {
      Buffer buf = c.acquire_buffer(owned * ni * sizeof(double));
      double* out = reinterpret_cast<double*>(buf.data());
      for (std::size_t q = static_cast<std::size_t>(d);
           q < static_cast<std::size_t>(w.nlines);
           q += static_cast<std::size_t>(kRanks)) {
        std::memcpy(out, chunks.data() + q * ni, ni * sizeof(double));
        out += ni;
      }
      c.send_bytes(d, kTagChunk, std::move(buf));
    }
  }
  for (int r = 0; r < kRanks; ++r) {
    auto& full = w.full[static_cast<std::size_t>(r)];
    RankContext& c = *ctx[static_cast<std::size_t>(r)];
    for (int s = 0; s < kRanks; ++s) {
      const Buffer bytes = c.recv_bytes(s, kTagChunk);
      const double* in = reinterpret_cast<const double*>(bytes.data());
      for (std::size_t p = 0; p < owned; ++p) {
        std::memcpy(full.data() + p * static_cast<std::size_t>(w.nlon) +
                        static_cast<std::size_t>(s) * ni,
                    in + p * ni, ni * sizeof(double));
      }
    }
  }
}

// --- driver -----------------------------------------------------------------

struct PatternResult {
  double seconds = 0.0;     ///< best timed block
  double mb_per_s = 0.0;    ///< per-block bytes / best block time
  double checksum = 0.0;
  std::uint64_t bytes = 0;  ///< total across all timed blocks
  double block_mb = 0.0;    ///< bytes moved by one timed block, in MB
};

/// Times `trials` blocks of `reps` iterations and scores the pattern by its
/// *best* block (minimum wall time). Host throughput on a shared machine is
/// one-sided noise — scheduler preemption and cache pollution only ever slow
/// a block down — so the minimum is the low-variance estimator of the
/// machine's capability, and the CI speedup gates stay stable even when the
/// runner is busy. Byte counters accumulate across all timed blocks; the
/// throughput uses the per-block share.
template <typename World, typename Iteration>
PatternResult run_pattern(Iteration&& iteration, World& world, int warmup,
                          int reps, int trials) {
  Network network(kRanks);
  const MachineProfile profile = MachineProfile::ideal();
  std::vector<std::unique_ptr<RankContext>> storage;
  std::vector<RankContext*> ctx;
  for (int r = 0; r < kRanks; ++r) {
    storage.push_back(std::make_unique<RankContext>(r, network, profile));
    ctx.push_back(storage.back().get());
  }
  for (int i = 0; i < warmup; ++i) iteration(ctx, world);
  network.reset_counters();
  double best = 0.0;
  for (int t = 0; t < trials; ++t) {
    const agcm::bench::Stopwatch sw;
    for (int i = 0; i < reps; ++i) iteration(ctx, world);
    const double sec = sw.seconds();
    if (t == 0 || sec < best) best = sec;
  }
  PatternResult out;
  out.seconds = best;
  out.bytes = network.total_bytes();
  const double block_bytes =
      static_cast<double>(out.bytes) / static_cast<double>(trials);
  out.block_mb = block_bytes / 1.0e6;
  out.mb_per_s = out.block_mb / std::max(out.seconds, 1e-12);
  out.checksum = world.checksum();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = agcm::bench::BenchOptions::parse(argc, argv, "comm_transport");
  agcm::bench::JsonReport report(opts);
  agcm::bench::print_header(
      "Transport throughput: seed copy path vs zero-copy pooled path");

  constexpr int kWarmup = 10;
  constexpr int kReps = 60;
  constexpr int kTrials = 7;  // best-of-7 blocks of kReps iterations
  constexpr double kHaloGate = 2.0;
  constexpr double kTransposeGate = 1.5;

  // Halo pattern: longitude-dominant local block (the AGCM layout: longitude
  // is the long unit-stride axis), ghost width 1.
  PatternResult halo_legacy, halo_pooled;
  {
    HaloWorld w(512, 32, 8);
    halo_legacy = run_pattern(halo_iteration_legacy, w, kWarmup, kReps, kTrials);
  }
  {
    HaloWorld w(512, 32, 8);
    halo_pooled = run_pattern(halo_iteration_pooled, w, kWarmup, kReps, kTrials);
  }

  // Transpose pattern: 128 lines of nlon=512 per rank (the filter shape).
  PatternResult tr_legacy, tr_pooled;
  {
    TransposeWorld w(128, 128);
    tr_legacy = run_pattern(transpose_iteration_legacy, w, kWarmup, kReps, kTrials);
  }
  {
    TransposeWorld w(128, 128);
    tr_pooled = run_pattern(transpose_iteration_pooled, w, kWarmup, kReps, kTrials);
  }

  const double halo_speedup = halo_pooled.mb_per_s / halo_legacy.mb_per_s;
  const double tr_speedup = tr_pooled.mb_per_s / tr_legacy.mb_per_s;

  Table table("Host transport throughput (4 virtual ranks, single thread)",
              {"Pattern", "Path", "MB/block", "Best block ms", "MB/s",
               "Speedup"});
  auto add = [&](const char* pattern, const char* path, const PatternResult& r,
                 double speedup) {
    table.add_row({pattern, path, Table::num(r.block_mb, 1),
                   Table::num(r.seconds * 1e3, 2), Table::num(r.mb_per_s, 1),
                   speedup > 0.0 ? Table::num(speedup, 2) + "x" : "-"});
  };
  add("halo", "seed-copy", halo_legacy, 0.0);
  add("halo", "pooled-zero-copy", halo_pooled, halo_speedup);
  add("transpose", "seed-copy", tr_legacy, 0.0);
  add("transpose", "pooled-zero-copy", tr_pooled, tr_speedup);
  agcm::bench::emit_table(report, table);

  agcm::bench::print_note(
      "gates: halo >= " + Table::num(kHaloGate, 1) + "x (got " +
      Table::num(halo_speedup, 2) + "x), transpose >= " +
      Table::num(kTransposeGate, 1) + "x (got " + Table::num(tr_speedup, 2) +
      "x)");

  report.set("halo_mb_per_s_seed", halo_legacy.mb_per_s);
  report.set("halo_mb_per_s_pooled", halo_pooled.mb_per_s);
  report.set("halo_speedup", halo_speedup);
  report.set("transpose_mb_per_s_seed", tr_legacy.mb_per_s);
  report.set("transpose_mb_per_s_pooled", tr_pooled.mb_per_s);
  report.set("transpose_speedup", tr_speedup);
  report.set("gate_halo_speedup_min", kHaloGate);
  report.set("gate_transpose_speedup_min", kTransposeGate);

  // Cross-path correctness: identical traffic and bit-identical results.
  bool ok = true;
  if (halo_legacy.bytes != halo_pooled.bytes ||
      tr_legacy.bytes != tr_pooled.bytes) {
    std::fprintf(stderr, "traffic mismatch between paths\n");
    ok = false;
  }
  if (halo_legacy.checksum != halo_pooled.checksum ||
      tr_legacy.checksum != tr_pooled.checksum) {
    std::fprintf(stderr, "checksum drift between copy and zero-copy paths\n");
    ok = false;
  }
  const bool gates = halo_speedup >= kHaloGate && tr_speedup >= kTransposeGate;
  if (!gates) {
    std::fprintf(stderr,
                 "speedup gate failed: halo %.2fx (>= %.1fx), "
                 "transpose %.2fx (>= %.1fx)\n",
                 halo_speedup, kHaloGate, tr_speedup, kTransposeGate);
  }
  report.set("gates_passed", gates && ok);
  report.finish();
  return gates && ok ? 0 : 1;
}
