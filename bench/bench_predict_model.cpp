// Compositional prediction harness: trains the whole-application
// performance model (perfmodel/predict.hpp) on a designed simnet sweep and
// gates it on held-out configurations it never saw.
//
//  Training: {Paragon, T3D} x three resolutions x four node meshes x four
//    filter backends with physics on (load balancing off), plus
//    load-balanced fft-load-balanced cells on the multi-rank meshes so the
//    lb-on physics trees have signal. Every run is 2 timed steps after one
//    warmup on the deterministic multicomputer, served through the
//    campaign runner (concurrency does not affect virtual times).
//
//  Holdout: configurations off the training grid along every axis the
//    model claims to generalise over — an untrained resolution (144x90),
//    untrained mesh shapes (1x8, 4x1, 4x2, 2x4), an untrained machine
//    (IBM SP-2, exercising the machine-aware drivers), and lb-on cells.
//
//  Gates (the ISSUE's acceptance bars): >= 8 holdout runs, median
//    whole-step relative error < 10%, max < 25%. Any failure exits
//    non-zero after writing the artefacts.
//
// Artefacts: PREDICT_MODEL.json (schema agcm-predict-v1; the machines
// table, the fitted per-phase composition trees, the holdout table with
// both predicted and actual component times, and the gate verdicts) plus
// the usual BENCH_predict_model.json mirror. Both are insertion-ordered
// with shortest-exact numbers, so byte-identical across runs — CI diffs
// them against committed baselines via tools/perf_diff.py and re-runs the
// bench to prove byte-identity. tools/predict.py --selftest re-evaluates
// the holdout block with its pure-Python mirror of the drivers.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "campaign/matrix.hpp"
#include "campaign/runner.hpp"
#include "core/whatif.hpp"
#include "filter/variants.hpp"
#include "perfmodel/predict.hpp"

namespace agcm {
namespace {

using bench::print_header;
using bench::print_note;

constexpr int kSteps = 2;
constexpr int kWarmup = 1;

struct Resolution {
  int nlon, nlat, nlev;
};

struct Mesh {
  int rows, cols;
};

core::ModelConfig make_config(const simnet::MachineProfile& machine,
                              Resolution res, Mesh mesh,
                              filter::FilterAlgorithm algo, bool lb) {
  core::ModelConfig config;
  config.nlon = res.nlon;
  config.nlat = res.nlat;
  config.nlev = res.nlev;
  config.mesh_rows = mesh.rows;
  config.mesh_cols = mesh.cols;
  config.filter_algorithm = algo;
  config.physics_load_balance = lb;
  config.lb_options.max_iterations = 2;
  config.machine = machine;
  return config;
}

std::string cell_name(const core::ModelConfig& config) {
  std::string name = config.machine.name;
  name += "/" + std::to_string(config.nlon) + "x" +
          std::to_string(config.nlat) + "x" + std::to_string(config.nlev);
  name += "/" + std::to_string(config.mesh_rows) + "x" +
          std::to_string(config.mesh_cols);
  name += "/" + std::string(filter::algorithm_name(config.filter_algorithm));
  name += config.physics_load_balance ? "/lb" : "/nolb";
  return name;
}

/// Runs every config through the campaign runner (4 in flight) and returns
/// the reports in input order.
std::vector<core::RunReport> run_all(
    const std::vector<core::ModelConfig>& configs) {
  campaign::Campaign batch;
  batch.name = "predict_model";
  batch.cells.reserve(configs.size());
  for (const core::ModelConfig& config : configs) {
    core::RunSpec spec;
    spec.model = config;
    spec.steps = kSteps;
    spec.warmup_steps = kWarmup;
    batch.cells.push_back(campaign::make_cell(cell_name(config), spec));
  }
  campaign::RunnerOptions options;
  options.concurrency = 4;
  const std::vector<campaign::CellResult> results =
      campaign::run_campaign(batch, options);
  std::vector<core::RunReport> reports;
  reports.reserve(results.size());
  for (const campaign::CellResult& result : results)
    reports.push_back(result.report);
  return reports;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "predict_model");
  bench::JsonReport report(opts);
  bench::g_report = &report;

  std::string model_path = "PREDICT_MODEL.json";
  if (const char* env = std::getenv("AGCM_PREDICT_MODEL")) model_path = env;

  print_header(
      "Compositional prediction: train per-phase trees, validate on "
      "held-out configurations");
  print_note(
      "Trains one composition tree per (phase, selector) on a simnet sweep\n"
      "and gates whole-step prediction on holdout runs off the training\n"
      "grid (untested resolution, mesh shapes, machine, and lb setting):\n"
      "median relative error < 10%, max < 25%, >= 8 holdouts.\n");

  // --- Training matrix -------------------------------------------------------
  const std::vector<simnet::MachineProfile> train_machines = {
      simnet::MachineProfile::intel_paragon(),
      simnet::MachineProfile::cray_t3d()};
  const std::vector<Resolution> train_resolutions = {
      {48, 30, 4}, {72, 46, 5}, {96, 64, 5}};
  const std::vector<Mesh> train_meshes = {{1, 1}, {1, 2}, {2, 2}, {2, 4}};
  const std::vector<filter::FilterAlgorithm> train_backends = {
      filter::FilterAlgorithm::kFftTranspose,
      filter::FilterAlgorithm::kFftBalanced,
      filter::FilterAlgorithm::kConvolutionRing,
      filter::FilterAlgorithm::kConvolutionPartitioned};

  std::vector<core::ModelConfig> train_configs;
  for (const auto& machine : train_machines)
    for (const Resolution res : train_resolutions)
      for (const Mesh mesh : train_meshes)
        for (const filter::FilterAlgorithm algo : train_backends)
          train_configs.push_back(make_config(machine, res, mesh, algo, false));
  // lb-on cells (multi-rank only: one rank has no exchange partner).
  for (const auto& machine : train_machines)
    for (const Resolution res : train_resolutions)
      for (const Mesh mesh : train_meshes)
        if (mesh.rows * mesh.cols > 1)
          train_configs.push_back(make_config(
              machine, res, mesh, filter::FilterAlgorithm::kFftBalanced, true));

  std::printf("  training: %zu runs (%d timed steps each)\n",
              train_configs.size(), kSteps);
  const std::vector<core::RunReport> train_reports = run_all(train_configs);

  std::vector<perfmodel::Observation> observations;
  observations.reserve(train_configs.size());
  for (std::size_t i = 0; i < train_configs.size(); ++i)
    observations.push_back(
        core::observation_from(train_configs[i], train_reports[i]));

  perfmodel::PredictModel model = perfmodel::train_model(observations);

  // The machines table is built from the training observations; register
  // the remaining factory profiles too so the serialised model can answer
  // what-if questions about machines the sweep never ran (the drivers
  // carry the scalars, the fitted weights are machine-free).
  for (const auto& profile :
       {simnet::MachineProfile::intel_paragon(),
        simnet::MachineProfile::cray_t3d(), simnet::MachineProfile::ibm_sp2(),
        simnet::MachineProfile::ideal()}) {
    bool known = false;
    for (const auto& [name, scalars] : model.machines)
      if (name == profile.name) known = true;
    if (known) continue;
    perfmodel::MachineScalars scalars;
    scalars.flops_per_sec = profile.flops_per_sec;
    scalars.mem_bytes_per_sec = profile.mem_bytes_per_sec;
    scalars.msg_latency_sec = profile.msg_latency_sec;
    scalars.link_bytes_per_sec = profile.link_bytes_per_sec;
    scalars.send_overhead_sec = profile.send_overhead_sec;
    scalars.recv_overhead_sec = profile.recv_overhead_sec;
    scalars.loop_startup_elems = profile.loop_startup_elems;
    model.machines.emplace_back(profile.name, scalars);
  }
  std::sort(model.machines.begin(), model.machines.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  print_note("\nFitted phase predictors:");
  for (const perfmodel::PhasePredictor& p : model.phases)
    std::printf("  %-16s %-26s r2 %.4f  rmse %.3e  (%d obs, %d terms)\n",
                p.phase.c_str(),
                p.selector.empty() ? "-" : p.selector.c_str(), p.r2, p.rmse,
                p.n_train, p.terms_used);
  std::printf("\n");

  // --- Holdout ---------------------------------------------------------------
  const auto paragon = simnet::MachineProfile::intel_paragon();
  const auto t3d = simnet::MachineProfile::cray_t3d();
  const auto sp2 = simnet::MachineProfile::ibm_sp2();
  const Resolution r144{144, 90, 5};
  const Resolution r96{96, 64, 5};
  const Resolution r72{72, 46, 5};

  const std::vector<core::ModelConfig> holdout_configs = {
      // Untrained resolution (144x90), trained machines.
      make_config(paragon, r144, {1, 4}, filter::FilterAlgorithm::kFftBalanced,
                  false),
      make_config(t3d, r144, {2, 2}, filter::FilterAlgorithm::kFftTranspose,
                  false),
      make_config(t3d, r144, {1, 2},
                  filter::FilterAlgorithm::kConvolutionPartitioned, false),
      // Untrained mesh shapes at trained resolutions.
      make_config(paragon, r72, {1, 8},
                  filter::FilterAlgorithm::kConvolutionRing, false),
      make_config(t3d, r96, {1, 8}, filter::FilterAlgorithm::kFftBalanced,
                  false),
      make_config(paragon, r96, {4, 1}, filter::FilterAlgorithm::kFftTranspose,
                  false),
      // Untrained machine: the drivers carry the machine scalars, so the
      // fitted weights must transfer to the SP-2 unseen.
      make_config(sp2, r72, {2, 2}, filter::FilterAlgorithm::kFftTranspose,
                  false),
      make_config(sp2, r96, {1, 4},
                  filter::FilterAlgorithm::kConvolutionPartitioned, false),
      // Load balancing on, untrained meshes / resolution.
      make_config(paragon, r144, {2, 4}, filter::FilterAlgorithm::kFftBalanced,
                  true),
      make_config(t3d, r72, {4, 2}, filter::FilterAlgorithm::kFftBalanced,
                  true),
  };

  std::printf("  holdout: %zu runs\n\n", holdout_configs.size());
  const std::vector<core::RunReport> holdout_reports =
      run_all(holdout_configs);

  Table table("Holdout validation: predicted vs actual per-step total",
              {"configuration", "actual_sec", "predicted_sec", "rel_err"});
  trace::JsonValue holdout_json = trace::JsonValue::array();
  std::vector<double> errors;
  for (std::size_t i = 0; i < holdout_configs.size(); ++i) {
    const core::ModelConfig& config = holdout_configs[i];
    const core::RunReport& run = holdout_reports[i];
    const perfmodel::Observation obs = core::observation_from(config, run);
    const perfmodel::Prediction predicted =
        core::predict_config(model, config);
    const double actual = obs.actual.total();
    const double rel =
        actual > 0.0 ? std::abs(predicted.total() - actual) / actual : 0.0;
    errors.push_back(rel);

    table.add_row({cell_name(config), Table::num(actual, 6),
                   Table::num(predicted.total(), 6), Table::num(rel, 4)});

    trace::JsonValue entry = trace::JsonValue::object();
    entry.set("name", cell_name(config));
    entry.set("point", perfmodel::point_json(obs.point));
    entry.set("filter_enabled", obs.filter_enabled);
    entry.set("physics_enabled", obs.physics_enabled);
    entry.set("actual", perfmodel::prediction_json(obs.actual));
    entry.set("predicted", perfmodel::prediction_json(predicted));
    entry.set("rel_error", rel);
    holdout_json.push_back(std::move(entry));
  }
  bench::emit_table(table);

  const double median_err = median(errors);
  const double max_err =
      errors.empty() ? 0.0 : *std::max_element(errors.begin(), errors.end());
  std::printf("\n  holdout error: median %.2f%%, max %.2f%% over %zu runs\n\n",
              100.0 * median_err, 100.0 * max_err, errors.size());

  // --- Gates -----------------------------------------------------------------
  struct Gate {
    std::string name;
    bool pass;
    std::string detail;
  };
  const std::vector<Gate> gates = {
      {"holdout_count", errors.size() >= 8,
       "at least 8 held-out configurations (" + std::to_string(errors.size()) +
           " run)"},
      {"median_rel_error", median_err < 0.10,
       "median whole-step relative error < 10%"},
      {"max_rel_error", max_err < 0.25,
       "max whole-step relative error < 25%"},
  };
  bool all_pass = true;
  for (const Gate& gate : gates) {
    all_pass = all_pass && gate.pass;
    std::printf("  gate %-18s [%s] %s\n", gate.name.c_str(),
                gate.pass ? "PASS" : "FAIL", gate.detail.c_str());
  }
  std::printf("\n");

  // --- PREDICT_MODEL.json ----------------------------------------------------
  trace::JsonValue doc = perfmodel::model_to_json(model);
  trace::JsonValue training = trace::JsonValue::object();
  training.set("runs", static_cast<std::int64_t>(train_configs.size()));
  training.set("steps", kSteps);
  training.set("warmup_steps", kWarmup);
  doc.set("training", training);
  doc.set("holdout", holdout_json);
  trace::JsonValue gates_json = trace::JsonValue::array();
  for (const Gate& gate : gates) {
    trace::JsonValue g = trace::JsonValue::object();
    g.set("name", gate.name);
    g.set("pass", gate.pass);
    g.set("detail", gate.detail);
    gates_json.push_back(std::move(g));
  }
  doc.set("gates", gates_json);
  doc.set("median_rel_error", median_err);
  doc.set("max_rel_error", max_err);
  doc.set("all_pass", all_pass);
  trace::write_text_file(model_path, doc.dump_pretty() + "\n");
  std::printf("wrote %s\n", model_path.c_str());

  // Structured mirror (the fields tools/check_bench_json.py and
  // tools/perf_diff.py key on).
  report.set("predict_model_path", model_path);
  report.set("n_train", static_cast<std::int64_t>(train_configs.size()));
  report.set("n_holdout", static_cast<std::int64_t>(errors.size()));
  report.set("median_rel_error", median_err);
  report.set("max_rel_error", max_err);
  report.set("all_pass", all_pass);
  report.set("predict_model", doc);
  report.finish();

  if (!all_pass) {
    std::fprintf(stderr,
                 "predict-model gate FAILED: see gate verdicts above\n");
    return 1;
  }
  print_note("predict-model gate PASSED: all verdicts and gates hold.");
  return 0;
}
