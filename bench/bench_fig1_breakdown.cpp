// Reproduces Figure 1: execution-time breakdown of the major components in
// the (original, convolution-filtered) parallel UCLA AGCM code.
//
//   AGCM main body -> Dynamics : 72% of time on 16 nodes, 86% on 240 nodes
//   Dynamics -> spectral filtering : 36% on 16 nodes, 49% on 240 nodes
//
// The growing filter share is the scalability bottleneck the paper attacks.
// For contrast, the same breakdown is printed for the new load-balanced FFT
// module ("the filtering cost dropped from 49% of the cost of doing the
// Dynamics part to about 21%" on 240 nodes, Section 3.4).
//
// Config mode: `bench_fig1_breakdown ../configs/small_demo.cfg` runs the
// configured model twice with tracing enabled and
//   * writes TRACE_fig1_breakdown.json (Chrome trace) and
//     BENCH_fig1_breakdown.json (per-phase aggregate + tables),
//   * checks that each rank's "model.rank" span carries a compute/overhead/
//     wait split bitwise equal to the TimeBreakdown simnet reports for that
//     rank, and
//   * checks the two runs' virtual times are bit-identical.
// A nonzero exit code means one of those invariants broke — CI runs this.
#include <cmath>
#include <cstring>

#include "bench_common.hpp"

namespace agcm {
namespace {

using bench::NodeMesh;
using bench::print_header;
using bench::print_note;

struct PaperPoint {
  NodeMesh mesh;
  double dynamics_share;  ///< Dynamics / main body
  double filter_share;    ///< filtering / Dynamics
};

void run_breakdown(bench::JsonReport& report, const std::string& title,
                   filter::FilterAlgorithm algorithm,
                   std::span<const PaperPoint> points, bool have_paper) {
  Table table(title,
              {"Node mesh", "Dynamics/main body (paper/meas)",
               "Filtering/Dynamics (paper/meas)", "Filter s/day",
               "Dynamics s/day", "Physics s/day"});
  for (const PaperPoint& point : points) {
    core::ModelConfig cfg;
    cfg.mesh_rows = point.mesh.rows;
    cfg.mesh_cols = point.mesh.cols;
    cfg.filter_algorithm = algorithm;
    cfg.physics_load_balance = false;
    const auto run = core::run_model(cfg, 2, 1);
    const double dyn_share = run.dynamics_per_day() / run.total_per_day();
    const double filt_share = run.filter_per_day() / run.dynamics_per_day();
    auto share_cell = [&](double paper, double measured) {
      return have_paper
                 ? Table::pct(paper) + " / " + Table::pct(measured)
                 : std::string("-    / ") + Table::pct(measured);
    };
    table.add_row({point.mesh.label(),
                   share_cell(point.dynamics_share, dyn_share),
                   share_cell(point.filter_share, filt_share),
                   Table::num(run.filter_per_day(), 1),
                   Table::num(run.dynamics_per_day(), 1),
                   Table::num(run.physics_per_day(), 1)});
  }
  bench::emit_table(report, table);
}

int paper_mode(bench::JsonReport& report) {
  print_header("Figure 1: execution-time breakdown of the AGCM main body");
  print_note(
      "Intel Paragon virtual machine, 144x90x9 grid, convolution filter —\n"
      "the original code Figure 1 profiles. Shares are fractions of\n"
      "seconds/simulated-day costs.\n");

  const PaperPoint paper_points[] = {
      {{4, 4}, 0.72, 0.36},
      {{8, 30}, 0.86, 0.49},
  };
  run_breakdown(report, "Figure 1 (original code: convolution filtering)",
                filter::FilterAlgorithm::kConvolutionRing, paper_points,
                /*have_paper=*/true);

  print_note(
      "Same breakdown with the new load-balanced FFT module (Section 3.4\n"
      "reports the filter share of Dynamics dropping to ~21% on 240 nodes):\n");
  const PaperPoint new_points[] = {
      {{4, 4}, 0.0, 0.0},
      {{8, 30}, 0.0, 0.21},
  };
  run_breakdown(report, "Figure 1 counterpart (new code: load-balanced FFT)",
                filter::FilterAlgorithm::kFftBalanced, new_points,
                /*have_paper=*/false);
  report.finish();
  return 0;
}

/// Bitwise double equality (the check really is "same bits", not "close").
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

int config_mode(bench::JsonReport& report) {
  const auto& opts = report.options();
  const core::RunSpec spec = core::run_spec_from_file(opts.config_path);
  trace::set_enabled(true);

  print_header("Traced breakdown of " + opts.config_path);

  // --- run 1: traced --------------------------------------------------------
  const core::RunReport run1 =
      core::run_model(spec.model, spec.steps, spec.warmup_steps);
  const std::vector<trace::SpanRecord> spans =
      trace::Tracer::instance().spans();
  const auto phases = trace::aggregate_phases(trace::Tracer::instance());
  print_table(trace::phase_table(phases));
  report.add_table(trace::phase_table(phases));

  int failures = 0;

  // (a) Each rank's whole-program "model.rank" span must carry exactly the
  //     TimeBreakdown simnet accounted for that rank.
  int model_rank_spans = 0;
  for (const trace::SpanRecord& s : spans) {
    if (s.name != "model.rank") continue;
    ++model_rank_spans;
    const auto& machine_view =
        run1.rank_breakdowns[static_cast<std::size_t>(s.rank)];
    if (!same_bits(s.split.compute, machine_view.compute) ||
        !same_bits(s.split.overhead, machine_view.overhead) ||
        !same_bits(s.split.wait, machine_view.wait)) {
      std::printf("FAIL rank %d: span split {%.17g, %.17g, %.17g} != "
                  "machine breakdown {%.17g, %.17g, %.17g}\n",
                  s.rank, s.split.compute, s.split.overhead, s.split.wait,
                  machine_view.compute, machine_view.overhead,
                  machine_view.wait);
      ++failures;
    }
  }
  if (model_rank_spans != spec.model.nranks()) {
    std::printf("FAIL: expected %d model.rank spans, traced %d\n",
                spec.model.nranks(), model_rank_spans);
    ++failures;
  }
  if (failures == 0) {
    print_note("OK: every model.rank span split matches simnet's "
               "TimeBreakdown bitwise (" +
               std::to_string(model_rank_spans) + " ranks)");
  }

  const std::string trace1 = trace::chrome_trace_json(trace::Tracer::instance());
  trace::write_text_file(opts.trace_path, trace1);
  std::printf("wrote %s (chrome://tracing)\n", opts.trace_path.c_str());

  // --- run 2: identical, for the determinism check --------------------------
  const core::RunReport run2 =
      core::run_model(spec.model, spec.steps, spec.warmup_steps);
  const std::string trace2 = trace::chrome_trace_json(trace::Tracer::instance());
  for (std::size_t r = 0; r < run1.rank_breakdowns.size(); ++r) {
    const auto& a = run1.rank_breakdowns[r];
    const auto& b = run2.rank_breakdowns[r];
    if (!same_bits(a.compute, b.compute) ||
        !same_bits(a.overhead, b.overhead) || !same_bits(a.wait, b.wait)) {
      std::printf("FAIL: rank %zu virtual time differs between runs\n", r);
      ++failures;
    }
  }
  if (trace1 != trace2) {
    print_note("FAIL: Chrome trace JSON differs between identical runs");
    ++failures;
  } else {
    print_note("OK: two identical runs produced byte-identical traces");
  }

  // --- report ---------------------------------------------------------------
  report.add_phases();
  report.add_metrics();
  trace::JsonValue times = trace::JsonValue::object();
  times.set("filter_per_day_sec", run1.filter_per_day());
  times.set("dynamics_per_day_sec", run1.dynamics_per_day());
  times.set("physics_per_day_sec", run1.physics_per_day());
  times.set("total_per_day_sec", run1.total_per_day());
  report.set("component_times", std::move(times));
  report.set("validation_failures", failures);
  if (report.options().write_json) {
    trace::write_text_file(report.options().json_path,
                           report.to_json().dump_pretty() + "\n");
    std::printf("wrote %s\n", report.options().json_path.c_str());
  }

  std::printf("\nseconds per simulated day (virtual): filter %.1f, "
              "dynamics %.1f, physics %.1f, total %.1f\n",
              run1.filter_per_day(), run1.dynamics_per_day(),
              run1.physics_per_day(), run1.total_per_day());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "fig1_breakdown");
  bench::JsonReport report(opts);
  try {
    if (!opts.config_path.empty()) return config_mode(report);
    return paper_mode(report);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
