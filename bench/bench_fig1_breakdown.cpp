// Reproduces Figure 1: execution-time breakdown of the major components in
// the (original, convolution-filtered) parallel UCLA AGCM code.
//
//   AGCM main body -> Dynamics : 72% of time on 16 nodes, 86% on 240 nodes
//   Dynamics -> spectral filtering : 36% on 16 nodes, 49% on 240 nodes
//
// The growing filter share is the scalability bottleneck the paper attacks.
// For contrast, the same breakdown is printed for the new load-balanced FFT
// module ("the filtering cost dropped from 49% of the cost of doing the
// Dynamics part to about 21%" on 240 nodes, Section 3.4).
#include "bench_common.hpp"

namespace agcm {
namespace {

using bench::NodeMesh;
using bench::print_header;
using bench::print_note;

struct PaperPoint {
  NodeMesh mesh;
  double dynamics_share;  ///< Dynamics / main body
  double filter_share;    ///< filtering / Dynamics
};

void run_breakdown(const std::string& title,
                   filter::FilterAlgorithm algorithm,
                   std::span<const PaperPoint> points, bool have_paper) {
  Table table(title,
              {"Node mesh", "Dynamics/main body (paper/meas)",
               "Filtering/Dynamics (paper/meas)", "Filter s/day",
               "Dynamics s/day", "Physics s/day"});
  for (const PaperPoint& point : points) {
    core::ModelConfig cfg;
    cfg.mesh_rows = point.mesh.rows;
    cfg.mesh_cols = point.mesh.cols;
    cfg.filter_algorithm = algorithm;
    cfg.physics_load_balance = false;
    const auto report = core::run_model(cfg, 2, 1);
    const double dyn_share =
        report.dynamics_per_day() / report.total_per_day();
    const double filt_share =
        report.filter_per_day() / report.dynamics_per_day();
    auto share_cell = [&](double paper, double measured) {
      return have_paper
                 ? Table::pct(paper) + " / " + Table::pct(measured)
                 : std::string("-    / ") + Table::pct(measured);
    };
    table.add_row({point.mesh.label(),
                   share_cell(point.dynamics_share, dyn_share),
                   share_cell(point.filter_share, filt_share),
                   Table::num(report.filter_per_day(), 1),
                   Table::num(report.dynamics_per_day(), 1),
                   Table::num(report.physics_per_day(), 1)});
  }
  print_table(table);
}

}  // namespace
}  // namespace agcm

int main() {
  using namespace agcm;

  print_header("Figure 1: execution-time breakdown of the AGCM main body");
  print_note(
      "Intel Paragon virtual machine, 144x90x9 grid, convolution filter —\n"
      "the original code Figure 1 profiles. Shares are fractions of\n"
      "seconds/simulated-day costs.\n");

  const PaperPoint paper_points[] = {
      {{4, 4}, 0.72, 0.36},
      {{8, 30}, 0.86, 0.49},
  };
  run_breakdown("Figure 1 (original code: convolution filtering)",
                filter::FilterAlgorithm::kConvolutionRing, paper_points,
                /*have_paper=*/true);

  print_note(
      "Same breakdown with the new load-balanced FFT module (Section 3.4\n"
      "reports the filter share of Dynamics dropping to ~21% on 240 nodes):\n");
  const PaperPoint new_points[] = {
      {{4, 4}, 0.0, 0.0},
      {{8, 30}, 0.0, 0.21},
  };
  run_breakdown("Figure 1 counterpart (new code: load-balanced FFT)",
                filter::FilterAlgorithm::kFftBalanced, new_points,
                /*have_paper=*/false);
  return 0;
}
