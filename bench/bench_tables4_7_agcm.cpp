// Reproduces Tables 4-7: AGCM timings (seconds/simulated day) with the old
// (convolution) and new (load-balanced FFT) filtering modules on the Intel
// Paragon and Cray T3D virtual machines, 2 x 2.5 x 9 resolution.
//
// "In comparison to the old AGCM code, the Dynamics component in the new
// code is a little more than twice as fast on 240 nodes. The scaling of the
// entire code also improved significantly."
#include <vector>

#include "bench_common.hpp"

namespace agcm {
namespace {

using bench::NodeMesh;

struct PaperRow {
  NodeMesh mesh;
  double dynamics;
  double speedup;
  double total;
};

struct TableSpec {
  std::string title;
  simnet::MachineProfile machine;
  filter::FilterAlgorithm algorithm;
  std::vector<PaperRow> rows;
};

void run_table(const TableSpec& spec) {
  Table table(spec.title, {"Node mesh", "Dynamics (paper/meas)",
                           "Dyn speedup (paper/meas)",
                           "Total (paper/meas)"});
  double serial_dynamics = 0.0;
  for (const PaperRow& row : spec.rows) {
    core::ModelConfig cfg;
    cfg.mesh_rows = row.mesh.rows;
    cfg.mesh_cols = row.mesh.cols;
    cfg.machine = spec.machine;
    cfg.filter_algorithm = spec.algorithm;
    cfg.physics_load_balance = false;  // Tables 4-7 predate the physics LB
    const core::RunReport report = core::run_model(cfg, /*steps=*/2,
                                                   /*warmup_steps=*/1);
    const double dynamics = report.dynamics_per_day();
    if (row.mesh.nodes() == 1) serial_dynamics = dynamics;
    const double speedup =
        serial_dynamics > 0.0 ? serial_dynamics / dynamics : 1.0;
    table.add_row({row.mesh.label(),
                   Table::paper_vs(row.dynamics, dynamics, 1),
                   Table::paper_vs(row.speedup, speedup, 1),
                   Table::paper_vs(row.total, report.total_per_day(), 1)});
  }
  bench::emit_table(table);
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "tables4_7_agcm");
  bench::JsonReport report(opts);
  bench::g_report = &report;
  using agcm::bench::print_header;
  using agcm::bench::print_note;

  print_header(
      "Tables 4-7: AGCM timings (seconds/simulated day), 2x2.5deg, 9 layers");
  print_note(
      "Each cell shows <paper value> / <measured on the virtual machine>.\n"
      "Timed over 2 steps after 1 warmup step; scaled by 192 steps/day.\n");

  const std::vector<PaperRow> paragon_old = {
      {{1, 1}, 8702.0, 1.0, 14010.0},
      {{4, 4}, 848.5, 10.3, 1177.0},
      {{8, 8}, 366.0, 23.8, 443.5},
      {{8, 30}, 186.0, 46.8, 216.0},
  };
  const std::vector<PaperRow> paragon_new = {
      {{1, 1}, 8075.0, 1.0, 11225.0},
      {{4, 4}, 639.0, 12.6, 992.6},
      {{8, 8}, 207.5, 38.9, 306.0},
      {{8, 30}, 87.2, 92.6, 119.0},
  };
  const std::vector<PaperRow> t3d_old = {
      {{1, 1}, 3480.0, 1.0, 5600.0},
      {{4, 4}, 339.0, 11.3, 470.0},
      {{8, 8}, 146.0, 26.3, 177.0},
      {{8, 30}, 74.0, 51.9, 87.5},
  };
  const std::vector<PaperRow> t3d_new = {
      {{1, 1}, 3230.0, 1.0, 4990.0},
      {{4, 4}, 256.0, 12.6, 397.0},
      {{8, 8}, 83.0, 38.9, 122.0},
      {{8, 30}, 35.0, 92.3, 48.0},
  };

  run_table({"Table 4: old (convolution) filtering module, Intel Paragon",
             simnet::MachineProfile::intel_paragon(),
             filter::FilterAlgorithm::kConvolutionRing, paragon_old});
  run_table({"Table 5: new (load-balanced FFT) filtering module, Intel Paragon",
             simnet::MachineProfile::intel_paragon(),
             filter::FilterAlgorithm::kFftBalanced, paragon_new});
  run_table({"Table 6: old (convolution) filtering module, Cray T3D",
             simnet::MachineProfile::cray_t3d(),
             filter::FilterAlgorithm::kConvolutionRing, t3d_old});
  run_table({"Table 7: new (load-balanced FFT) filtering module, Cray T3D",
             simnet::MachineProfile::cray_t3d(),
             filter::FilterAlgorithm::kFftBalanced, t3d_new});

  print_note(
      "Headline checks (paper Section 4): the new Dynamics should be a bit\n"
      "more than 2x faster than the old on 240 nodes, and the T3D should run\n"
      "~2.5x faster than the Paragon.");
  report.finish();
  return 0;
}
