// Reproduces the Section 3.4 cache-layout experiment: a seven-point Laplace
// stencil applied to several discrete fields, separate arrays vs one block
// array f(m, idim, jdim, kdim).
//
// Paper: "When data arrays of the size 32x32x32 ... are used, our test code
// evaluating a seven-point Laplace stencil applied to several discrete
// fields showed a speed-up a factor of 5 over the use of separate arrays on
// the Intel Paragon, and a speed-up factor of 2.6 was achieved on Cray T3D."
//
// Two measurements are reported:
//   * the virtual-machine model (anchored to the paper's own ratios — this
//     is the 1990s-cache story), swept over field counts and sizes,
//   * real wall-clock on the host CPU (modern caches are far larger, so the
//     measured gap is smaller but the block layout should still not lose).
#include <vector>

#include "bench_common.hpp"
#include "singlenode/stencil.hpp"

namespace agcm {
namespace {

using bench::print_header;
using bench::print_note;
using bench::Stopwatch;
using namespace singlenode;

void virtual_model_table(bench::JsonReport& report) {
  const auto paragon = simnet::MachineProfile::intel_paragon();
  const auto t3d = simnet::MachineProfile::cray_t3d();
  Table table(
      "Virtual-machine model: block-array speedup over separate arrays",
      {"m fields", "n^3", "Paragon sep eff", "Paragon blk eff",
       "Paragon speedup", "T3D speedup"});
  for (int n : {16, 32, 64}) {
    for (int m : {2, 4, 8, 12, 16}) {
      const double sp = stencil_virtual_time_separate(paragon, m, n) /
                        stencil_virtual_time_block(paragon, m, n);
      const double st = stencil_virtual_time_separate(t3d, m, n) /
                        stencil_virtual_time_block(t3d, m, n);
      table.add_row({std::to_string(m), std::to_string(n) + "^3",
                     Table::num(stencil_cache_efficiency_separate(paragon, m, n), 2),
                     Table::num(stencil_cache_efficiency_block(paragon, m, n), 2),
                     Table::num(sp, 2), Table::num(st, 2)});
    }
  }
  bench::emit_table(table);
  const double anchor_p = stencil_virtual_time_separate(paragon, 12, 32) /
                          stencil_virtual_time_block(paragon, 12, 32);
  const double anchor_t = stencil_virtual_time_separate(t3d, 12, 32) /
                          stencil_virtual_time_block(t3d, 12, 32);
  std::printf("Paper anchor at m=12, 32^3: Paragon 5.0 / %.2f, "
              "T3D 2.6 / %.2f (paper/model)\n\n",
              anchor_p, anchor_t);
  // Machine-readable anchors (validated by tools/check_bench_json.py):
  // the virtual model is deterministic, so these are exact across runs.
  report.set("paper_anchor_paragon", 5.0);
  report.set("paper_anchor_t3d", 2.6);
  report.set("anchor_speedup_paragon", anchor_p);
  report.set("anchor_speedup_t3d", anchor_t);
}

void host_wallclock_table() {
  Table table("Host wall-clock (modern CPU; expect a much smaller gap)",
              {"m fields", "n^3", "separate ms", "block ms", "speedup"});
  for (int n : {16, 32}) {
    for (int m : {4, 12}) {
      const SeparateFields sep(m, n);
      const BlockFields block = BlockFields::from_separate(sep);
      std::vector<double> out;
      const int reps = n <= 16 ? 60 : 12;
      // Warmup.
      laplace_sum_separate(sep, out);
      laplace_sum_block(block, out);
      Stopwatch t_sep;
      for (int r = 0; r < reps; ++r) laplace_sum_separate(sep, out);
      const double sep_ms = t_sep.seconds() * 1000.0 / reps;
      Stopwatch t_blk;
      for (int r = 0; r < reps; ++r) laplace_sum_block(block, out);
      const double blk_ms = t_blk.seconds() * 1000.0 / reps;
      table.add_row({std::to_string(m), std::to_string(n) + "^3",
                     Table::num(sep_ms, 3), Table::num(blk_ms, 3),
                     Table::num(sep_ms / blk_ms, 2)});
    }
  }
  bench::emit_table(table);
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "stencil_layout");
  bench::JsonReport report(opts);
  bench::g_report = &report;
  print_header(
      "Section 3.4: seven-point Laplace stencil, separate vs block arrays");
  virtual_model_table(report);
  host_wallclock_table();
  print_note(
      "Paper context: the block array won the isolated stencil test but\n"
      "showed *no advantage inside the real advection routine*, whose many\n"
      "loops reference varying subsets of the fields — see\n"
      "bench_advection_opt for that experiment.");
  report.finish();
  return 0;
}
