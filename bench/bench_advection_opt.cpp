// Reproduces the Section 3.4 advection-routine optimization experiment:
// eliminating redundant calculations in nested loops, hoisting invariants
// and fusing the per-tracer passes.
//
// Paper: "When applying these strategies to the advection routine, we were
// able to reduce its execution time on a single Cray T3D node by about 35%."
//
// Reported here: the virtual-machine cost model for the Paragon and the
// T3D, the real host wall-clock of the two implementations, and the impact
// on a full model step (the routine is only part of Dynamics).
#include <vector>

#include "bench_common.hpp"
#include "dynamics/advection.hpp"
#include "dynamics/state.hpp"

namespace agcm {
namespace {

using bench::print_header;
using bench::print_note;
using bench::Stopwatch;
using namespace dynamics;

struct Variant {
  const char* name;
  KernelCost cost;
  double host_ms;
};

Variant measure(bool optimized, const grid::LatLonGrid& grid,
                const grid::LocalBox& box, const Metrics& metrics, int reps) {
  State state(box, grid.nlev());
  initialize_state(state, grid, box, 1996);
  grid::Array3D<double> h_new = state.h;
  grid::Array3D<double>* tracers[] = {&state.theta, &state.q};

  KernelCost cost{};
  Stopwatch timer;
  for (int r = 0; r < reps; ++r) {
    cost = optimized
               ? advect_tracers_optimized(grid, box, metrics, state.h, h_new,
                                          state.u, state.v, tracers, 450.0)
               : advect_tracers_baseline(grid, box, metrics, state.h, h_new,
                                         state.u, state.v, tracers, 450.0);
  }
  return {optimized ? "optimized" : "baseline", cost,
          timer.seconds() * 1000.0 / reps};
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "advection_opt");
  bench::JsonReport report(opts);
  bench::g_report = &report;
  print_header("Section 3.4: advection routine single-node optimization");

  const grid::LatLonGrid grid = grid::LatLonGrid::paper_9layer();
  const grid::LocalBox box{0, grid.nlon(), 0, grid.nlat()};
  const Metrics metrics = Metrics::build(grid, box);

  const Variant baseline = measure(false, grid, box, metrics, 4);
  const Variant optimized = measure(true, grid, box, metrics, 4);

  const auto paragon = simnet::MachineProfile::intel_paragon();
  const auto t3d = simnet::MachineProfile::cray_t3d();

  Table table("Advection routine, full 144x90x9 grid on one node",
              {"Variant", "model flops", "model cache eff", "T3D virtual s",
               "Paragon virtual s", "host ms"});
  for (const Variant& v : {baseline, optimized}) {
    table.add_row(
        {v.name, Table::num(v.cost.flops / 1.0e6, 2) + "M",
         Table::num(v.cost.cache_efficiency, 2),
         Table::num(t3d.compute_time(v.cost.flops, v.cost.cache_efficiency), 3),
         Table::num(paragon.compute_time(v.cost.flops, v.cost.cache_efficiency), 3),
         Table::num(v.host_ms, 2)});
  }
  bench::emit_table(table);

  const double t_base =
      t3d.compute_time(baseline.cost.flops, baseline.cost.cache_efficiency);
  const double t_opt =
      t3d.compute_time(optimized.cost.flops, optimized.cost.cache_efficiency);
  std::printf(
      "Execution-time reduction on one T3D node: paper ~35%%, model %.0f%%, "
      "host wall-clock %.0f%%\n\n",
      100.0 * (1.0 - t_opt / t_base),
      100.0 * (1.0 - optimized.host_ms / baseline.host_ms));
  print_note(
      "The two variants produce bit-identical fields (verified by the test\n"
      "suite); only redundant work and loop structure differ.\n"
      "\n"
      "Note the host column: on a modern CPU the 'optimized' variant can\n"
      "LOSE, because it stores the mass fluxes to memory and reloads them\n"
      "while the 'redundant' variant recomputes them in registers — thirty\n"
      "years later the flop/byte tradeoff has flipped, which is exactly why\n"
      "the paper's virtual machines are needed to reproduce its numbers.");
  report.finish();
  return 0;
}
