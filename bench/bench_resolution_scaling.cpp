// Tests the paper's forward-looking prediction (Section 4): "We would
// expect even better scaling be achieved for the parallel filtering as well
// as for the overall AGCM code for higher horizontal and vertical
// resolution versions."
//
// The same 8x8 (and 4x30) node meshes are run at three horizontal
// resolutions (4x5, 2x2.5, 1x1.25 degrees) and two vertical resolutions;
// parallel efficiency relative to the 1-node run of the same resolution
// should improve monotonically with resolution.
#include <vector>

#include "bench_common.hpp"

namespace agcm {
namespace {

using bench::NodeMesh;
using bench::print_header;
using bench::print_note;

struct Resolution {
  const char* label;
  int nlon, nlat, nlev;
};

double seconds_per_day(const Resolution& res, NodeMesh mesh) {
  core::ModelConfig cfg;
  cfg.nlon = res.nlon;
  cfg.nlat = res.nlat;
  cfg.nlev = res.nlev;
  cfg.mesh_rows = mesh.rows;
  cfg.mesh_cols = mesh.cols;
  cfg.machine = simnet::MachineProfile::cray_t3d();
  cfg.filter_algorithm = filter::FilterAlgorithm::kFftBalanced;
  const auto report = core::run_model(cfg, 2, 1);
  return report.total_per_day();
}

}  // namespace
}  // namespace agcm

int main(int argc, char** argv) {
  using namespace agcm;
  auto opts = bench::BenchOptions::parse(argc, argv, "resolution_scaling");
  bench::JsonReport report(opts);
  bench::g_report = &report;

  print_header(
      "Section 4 prediction: scaling improves with model resolution");
  print_note(
      "Cray T3D virtual machine, load-balanced FFT module. Efficiency =\n"
      "T(1 node) / (nodes * T(mesh)).\n");

  const Resolution resolutions[] = {
      {"4 x 5 deg, 9L", 72, 46, 9},
      {"2 x 2.5 deg, 9L", 144, 90, 9},
      {"2 x 2.5 deg, 15L", 144, 90, 15},
      {"1 x 1.25 deg, 9L", 288, 180, 9},
  };

  Table table("Parallel efficiency of the whole AGCM by resolution",
              {"Resolution", "1-node s/day", "8x8 s/day", "8x8 efficiency"});
  std::vector<double> efficiencies;
  for (const Resolution& res : resolutions) {
    const double serial = seconds_per_day(res, {1, 1});
    const double par = seconds_per_day(res, {8, 8});
    const double eff = serial / (64.0 * par);
    efficiencies.push_back(eff);
    table.add_row({res.label, Table::num(serial, 0), Table::num(par, 1),
                   Table::pct(eff, 1)});
  }
  bench::emit_table(table);
  // Machine-readable summary of the Section 4 prediction (validated by
  // tools/check_bench_json.py): coarsest vs finest 9-layer efficiency and
  // whether the predicted improvement actually holds in the model.
  report.set("eff_coarsest", efficiencies.front());
  report.set("eff_finest", efficiencies.back());
  report.set("eff_improves_with_resolution",
             efficiencies.back() > efficiencies.front());
  print_note(
      "Expected shape: efficiency rises down the table — more local work\n"
      "per ghost point and per filtered line as resolution grows, both\n"
      "horizontally and vertically (the paper's 15-layer observation).");
  report.finish();
  return 0;
}
