// Collective load balancing: moves real item payloads between ranks.
//
// balance_pairwise implements the paper's adopted Scheme 3 end-to-end, with
// the communication structure of the original: per iteration, only the
// per-rank *total loads* are exchanged globally (one double each); the
// actual item movement is pairwise between sorted partners. Scheme 1 and 2
// executors live in exchange.hpp (they need global item metadata — which is
// exactly the bookkeeping overhead the paper criticises them for).
#pragma once

#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "loadbalance/schemes.hpp"

namespace agcm::lb {

/// Where a held item originally lived (so results can be returned).
struct Origin {
  int rank = 0;
  int index = 0;  ///< index within the original owner's item list
};

/// Result of a collective balancing operation. The held_* vectors describe
/// the items this rank must now process, in a stable order.
struct BalanceResult {
  std::vector<Item> held_items;
  std::vector<Origin> held_origins;
  std::vector<double> held_payloads;  ///< doubles_per_item per held item
  double imbalance_before = 0.0;      ///< (max-avg)/avg of estimated loads
  double imbalance_after = 0.0;
  int iterations = 0;
  std::vector<double> imbalance_history;  ///< [0]=before, [i]=after iter i
};

/// Scheme 3 (iterative sorted pairwise exchange), collective. `my_items`
/// carry the estimated weights; `my_payloads` holds doubles_per_item
/// contiguous doubles per item.
BalanceResult balance_pairwise(const comm::Communicator& comm,
                               std::span<const Item> my_items,
                               std::span<const double> my_payloads,
                               int doubles_per_item,
                               PairwiseOptions options = {});

/// Routes per-item results back to the items' original owners. `held` and
/// the BalanceResult must come from the same balancing call;
/// `held_results` holds doubles_per_result contiguous doubles per held
/// item, ordered like held_items. Returns my original items' results in
/// original item order. Collective.
std::vector<double> return_to_owners(const comm::Communicator& comm,
                                     const BalanceResult& held,
                                     std::span<const double> held_results,
                                     int doubles_per_result,
                                     int my_item_count);

}  // namespace agcm::lb
