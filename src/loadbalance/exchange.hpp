// Executors for load-balancing Schemes 1 and 2 plus the generic migration
// primitive they share. Scheme 3 has its own iterative executor in
// planner.hpp.
#pragma once

#include <span>

#include "loadbalance/planner.hpp"
#include "loadbalance/schemes.hpp"

namespace agcm::lb {

/// Moves items to the destinations in `my_dest` (one destination per local
/// item) with a single personalised all-to-all. Collective. The returned
/// held set is ordered: kept items first (original order), then received
/// items grouped by source rank.
BalanceResult execute_migration(const comm::Communicator& comm,
                                std::span<const Item> my_items,
                                std::span<const double> my_payloads,
                                int doubles_per_item,
                                std::span<const int> my_dest);

/// Scheme 1 (Figure 4): cyclic shuffle — item q of rank r moves to rank
/// (r + q) mod N. Needs no load information at all, but costs O(N^2)
/// messages in aggregate.
BalanceResult balance_cyclic(const comm::Communicator& comm,
                             std::span<const Item> my_items,
                             std::span<const double> my_payloads,
                             int doubles_per_item);

/// Scheme 2 (Figure 5): sorted greedy surplus moves. Requires global item
/// metadata on every rank (the allgather is the "number of global
/// communications and a substantial amount of local bookkeeping" the paper
/// criticises), then executes the moves with O(N) transfers.
BalanceResult balance_sorted_greedy(const comm::Communicator& comm,
                                    std::span<const Item> my_items,
                                    std::span<const double> my_payloads,
                                    int doubles_per_item);

}  // namespace agcm::lb
