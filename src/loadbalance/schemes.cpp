#include "loadbalance/schemes.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace agcm::lb {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNone: return "none";
    case Scheme::kCyclic: return "cyclic";
    case Scheme::kSortedGreedy: return "sorted-greedy";
    case Scheme::kPairwise: return "pairwise";
  }
  return "none";
}

namespace {

/// Reference to one item inside an ItemLists structure.
struct ItemRef {
  std::size_t src;  ///< original owner rank
  std::size_t q;    ///< index within that rank's list
};

/// Greedy selection of items *currently assigned to* `holder` (wherever
/// they originally lived) approximating `target` total weight. Items are
/// considered heaviest-first; an item is taken while the shipped total
/// stays at or below target (plus one closing item if it brings us strictly
/// closer to the target).
std::vector<ItemRef> pick_items(const ItemLists& items, const DestLists& dest,
                                int holder, double target) {
  std::vector<ItemRef> candidates;
  for (std::size_t r = 0; r < items.size(); ++r)
    for (std::size_t q = 0; q < items[r].size(); ++q)
      if (dest[r][q] == holder) candidates.push_back({r, q});
  std::sort(candidates.begin(), candidates.end(),
            [&](const ItemRef& a, const ItemRef& b) {
              const double wa = items[a.src][a.q].weight;
              const double wb = items[b.src][b.q].weight;
              if (wa != wb) return wa > wb;
              return a.src != b.src ? a.src < b.src : a.q < b.q;
            });
  std::vector<ItemRef> picked;
  double shipped = 0.0;
  for (const ItemRef& ref : candidates) {
    const double w = items[ref.src][ref.q].weight;
    if (shipped + w <= target) {
      picked.push_back(ref);
      shipped += w;
    } else if (shipped + w - target < target - shipped) {
      // Overshooting by less than the remaining gap: take it and stop.
      picked.push_back(ref);
      break;
    }
  }
  return picked;
}

}  // namespace

std::vector<double> loads_of(const ItemLists& items) {
  std::vector<double> loads(items.size(), 0.0);
  for (std::size_t r = 0; r < items.size(); ++r)
    for (const Item& item : items[r]) loads[r] += item.weight;
  return loads;
}

std::vector<double> loads_after(const ItemLists& items,
                                const DestLists& dest) {
  AGCM_ASSERT(items.size() == dest.size());
  std::vector<double> loads(items.size(), 0.0);
  for (std::size_t r = 0; r < items.size(); ++r) {
    AGCM_ASSERT(items[r].size() == dest[r].size());
    for (std::size_t q = 0; q < items[r].size(); ++q) {
      const int d = dest[r][q];
      AGCM_ASSERT(d >= 0 && d < static_cast<int>(items.size()));
      loads[static_cast<std::size_t>(d)] += items[r][q].weight;
    }
  }
  return loads;
}

DestLists plan_cyclic(const ItemLists& items) {
  const int p = static_cast<int>(items.size());
  DestLists dest(items.size());
  for (std::size_t r = 0; r < items.size(); ++r) {
    dest[r].resize(items[r].size());
    for (std::size_t q = 0; q < items[r].size(); ++q) {
      // "each processor divides its local data into N pieces, sends N-1
      // pieces to other processors" (Figure 4): round-robin by index.
      dest[r][q] = static_cast<int>((r + q) % static_cast<std::size_t>(p));
    }
  }
  return dest;
}

DestLists plan_sorted_greedy(const ItemLists& items) {
  const int p = static_cast<int>(items.size());
  DestLists dest(items.size());
  for (std::size_t r = 0; r < items.size(); ++r)
    dest[r].assign(items[r].size(), static_cast<int>(r));

  std::vector<double> loads = loads_of(items);
  const double avg = mean(loads);

  // "All the nodes are then assigned a new node id through a sorting of all
  // local loads" (Figure 5B). Surpluses flow from the most overloaded rank
  // to the most underloaded ones, each transfer sized to fill the
  // receiver's deficit (or exhaust the sender's surplus).
  std::vector<int> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return loads[static_cast<std::size_t>(a)] != loads[static_cast<std::size_t>(b)]
               ? loads[static_cast<std::size_t>(a)] > loads[static_cast<std::size_t>(b)]
               : a < b;
  });

  int hi = 0;
  int lo = p - 1;
  std::vector<double> current = loads;
  const double eps = 1.0e-12 * std::max(1.0, avg);
  while (hi < lo) {
    const auto heavy = static_cast<std::size_t>(order[static_cast<std::size_t>(hi)]);
    const auto light = static_cast<std::size_t>(order[static_cast<std::size_t>(lo)]);
    const double surplus = current[heavy] - avg;
    const double deficit = avg - current[light];
    if (surplus <= eps) {
      ++hi;
      continue;
    }
    if (deficit <= eps) {
      --lo;
      continue;
    }
    const double amount = std::min(surplus, deficit);
    const auto picked =
        pick_items(items, dest, static_cast<int>(heavy), amount);
    double moved = 0.0;
    for (const auto& ref : picked) {
      dest[ref.src][ref.q] = static_cast<int>(light);
      moved += items[ref.src][ref.q].weight;
    }
    current[heavy] -= moved;
    current[light] += moved;
    if (moved == 0.0) {
      // Item granularity too coarse for the smaller residual: close out the
      // side that is nearer to the average, so the other side can still be
      // matched against a different partner.
      if (deficit <= surplus) --lo;
      else ++hi;
      continue;
    }
    if (current[heavy] <= avg + eps) ++hi;
    if (current[light] >= avg - eps) --lo;
  }
  return dest;
}

PairwiseResult plan_pairwise(const ItemLists& items,
                             PairwiseOptions options) {
  const int p = static_cast<int>(items.size());
  PairwiseResult result;
  result.dest.resize(items.size());
  for (std::size_t r = 0; r < items.size(); ++r)
    result.dest[r].assign(items[r].size(), static_cast<int>(r));

  std::vector<double> current = loads_of(items);
  result.imbalance_history.push_back(load_imbalance(current));

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // "The data load is sorted and a rank is assigned to each processor...
    // a pairwise data exchange between processors with rank i and rank
    // N - i + 1 is initiated" (Figure 6).
    std::vector<int> order(items.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return current[static_cast<std::size_t>(a)] != current[static_cast<std::size_t>(b)]
                 ? current[static_cast<std::size_t>(a)] > current[static_cast<std::size_t>(b)]
                 : a < b;
    });

    bool any_move = false;
    for (int i = 0; i < p / 2; ++i) {
      const auto heavy = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
      const auto light =
          static_cast<std::size_t>(order[static_cast<std::size_t>(p - 1 - i)]);
      const double gap = current[heavy] - current[light];
      // "A pairwise data exchange is only needed when the load difference
      // in the pair of nodes exceeds some tolerance."
      if (gap <= options.tolerance * std::max(1.0e-300, current[heavy]))
        continue;
      const auto picked =
          pick_items(items, result.dest, static_cast<int>(heavy), gap / 2.0);
      double moved = 0.0;
      for (const auto& ref : picked) {
        result.dest[ref.src][ref.q] = static_cast<int>(light);
        moved += items[ref.src][ref.q].weight;
      }
      current[heavy] -= moved;
      current[light] += moved;
      if (moved > 0.0) any_move = true;
    }
    result.iterations = iter + 1;
    result.imbalance_history.push_back(load_imbalance(current));
    if (!any_move) break;
  }
  return result;
}

}  // namespace agcm::lb
