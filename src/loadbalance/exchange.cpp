#include "loadbalance/exchange.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace agcm::lb {

BalanceResult execute_migration(const comm::Communicator& comm,
                                std::span<const Item> my_items,
                                std::span<const double> my_payloads,
                                int doubles_per_item,
                                std::span<const int> my_dest) {
  const int p = comm.size();
  const int me = comm.rank();
  AGCM_ASSERT(my_dest.size() == my_items.size());
  AGCM_ASSERT(my_payloads.size() ==
              my_items.size() * static_cast<std::size_t>(doubles_per_item));

  BalanceResult result;
  const std::vector<int> ones(static_cast<std::size_t>(p), 1);

  // Pre-balance loads for the statistics.
  {
    double my_load = 0.0;
    for (const Item& item : my_items) my_load += item.weight;
    const auto loads = comm.allgatherv<double>(
        std::span<const double>(&my_load, 1), ones);
    result.imbalance_before = load_imbalance(loads);
    result.imbalance_history.push_back(result.imbalance_before);
  }

  // Keep my items that stay; group outgoing ones by destination.
  std::vector<std::vector<std::size_t>> outgoing(static_cast<std::size_t>(p));
  for (std::size_t q = 0; q < my_items.size(); ++q) {
    const int d = my_dest[q];
    AGCM_ASSERT(d >= 0 && d < p);
    if (d == me) {
      result.held_items.push_back(my_items[q]);
      result.held_origins.push_back({me, static_cast<int>(q)});
      const auto off = q * static_cast<std::size_t>(doubles_per_item);
      result.held_payloads.insert(
          result.held_payloads.end(),
          my_payloads.begin() + static_cast<std::ptrdiff_t>(off),
          my_payloads.begin() +
              static_cast<std::ptrdiff_t>(
                  off + static_cast<std::size_t>(doubles_per_item)));
    } else {
      outgoing[static_cast<std::size_t>(d)].push_back(q);
    }
  }

  std::vector<int> send_counts(static_cast<std::size_t>(p), 0);
  std::vector<Item> send_items;
  std::vector<Origin> send_origins;
  for (int r = 0; r < p; ++r) {
    for (std::size_t q : outgoing[static_cast<std::size_t>(r)]) {
      send_items.push_back(my_items[q]);
      send_origins.push_back({me, static_cast<int>(q)});
    }
    send_counts[static_cast<std::size_t>(r)] =
        static_cast<int>(outgoing[static_cast<std::size_t>(r)].size());
  }

  // Exchange per-pair item counts, then the items/origins/payloads.
  std::vector<int> one_each(static_cast<std::size_t>(p), 1);
  const std::vector<int> recv_counts =
      comm.alltoallv<int>(send_counts, one_each, one_each);

  const auto items = comm.alltoallv<Item>(send_items, send_counts, recv_counts);
  const auto origins =
      comm.alltoallv<Origin>(send_origins, send_counts, recv_counts);

  result.held_items.insert(result.held_items.end(), items.begin(), items.end());
  result.held_origins.insert(result.held_origins.end(), origins.begin(),
                             origins.end());

  // Payloads go over the pooled zero-copy engine: each destination's item
  // payloads are gathered straight from `my_payloads` into the wire buffer
  // (no send staging vector) and received blocks land directly in their
  // final held_payloads position. The message schedule, sizes and tag are
  // identical to the historical alltoallv<double>, so virtual-time outputs
  // (Tables 1-3) are unchanged.
  const auto dpi = static_cast<std::size_t>(doubles_per_item);
  std::vector<std::size_t> send_bytes(static_cast<std::size_t>(p));
  std::vector<std::size_t> recv_bytes(static_cast<std::size_t>(p));
  std::vector<std::size_t> recv_off(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    send_bytes[ur] = outgoing[ur].size() * dpi * sizeof(double);
    recv_bytes[ur] =
        static_cast<std::size_t>(recv_counts[ur]) * dpi * sizeof(double);
    recv_off[ur + 1] = recv_off[ur] + recv_bytes[ur] / sizeof(double);
  }
  const std::size_t kept_doubles = result.held_payloads.size();
  result.held_payloads.resize(kept_doubles + recv_off.back());
  comm.alltoallv_packed(
      send_bytes, recv_bytes,
      [&](int dst, comm::PackedWriter& w) {
        for (std::size_t q : outgoing[static_cast<std::size_t>(dst)]) {
          w.write<double>(my_payloads.subspan(q * dpi, dpi));
        }
      },
      [&](int src, comm::PackedReader& rd) {
        const auto us = static_cast<std::size_t>(src);
        rd.read<double>(std::span<double>(result.held_payloads)
                            .subspan(kept_doubles + recv_off[us],
                                     recv_bytes[us] / sizeof(double)));
      });

  {
    double my_load = 0.0;
    for (const Item& item : result.held_items) my_load += item.weight;
    const auto loads = comm.allgatherv<double>(
        std::span<const double>(&my_load, 1), ones);
    result.imbalance_after = load_imbalance(loads);
    result.imbalance_history.push_back(result.imbalance_after);
  }
  result.iterations = 1;
  return result;
}

BalanceResult balance_cyclic(const comm::Communicator& comm,
                             std::span<const Item> my_items,
                             std::span<const double> my_payloads,
                             int doubles_per_item) {
  const int p = comm.size();
  std::vector<int> dest(my_items.size());
  for (std::size_t q = 0; q < my_items.size(); ++q)
    dest[q] = static_cast<int>(
        (static_cast<std::size_t>(comm.rank()) + q) % static_cast<std::size_t>(p));
  return execute_migration(comm, my_items, my_payloads, doubles_per_item,
                           dest);
}

BalanceResult balance_sorted_greedy(const comm::Communicator& comm,
                                    std::span<const Item> my_items,
                                    std::span<const double> my_payloads,
                                    int doubles_per_item) {
  const int p = comm.size();
  // Global item metadata on every rank — Scheme 2's overhead.
  const int my_count = static_cast<int>(my_items.size());
  const std::vector<int> ones(static_cast<std::size_t>(p), 1);
  const std::vector<int> counts = comm.allgatherv<int>(
      std::span<const int>(&my_count, 1), ones);
  const std::vector<Item> all_items = comm.allgatherv<Item>(my_items, counts);

  ItemLists lists(static_cast<std::size_t>(p));
  std::size_t pos = 0;
  for (int r = 0; r < p; ++r) {
    const auto n = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
    lists[static_cast<std::size_t>(r)].assign(
        all_items.begin() + static_cast<std::ptrdiff_t>(pos),
        all_items.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
  }
  const DestLists dest = plan_sorted_greedy(lists);
  // Bookkeeping cost: the whole plan is recomputed on every node.
  comm.charge_flops(30.0 * static_cast<double>(all_items.size()));
  return execute_migration(comm, my_items, my_payloads, doubles_per_item,
                           dest[static_cast<std::size_t>(comm.rank())]);
}

}  // namespace agcm::lb
