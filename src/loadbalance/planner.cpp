#include "loadbalance/planner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace agcm::lb {

namespace {

constexpr int kTagItems = 410;
constexpr int kTagOrigins = 411;
constexpr int kTagPayloads = 412;

/// Greedy heaviest-first pick of held items approximating `target` weight
/// (same policy as the pure planner in schemes.cpp).
std::vector<std::size_t> pick_held(const std::vector<Item>& held,
                                   double target) {
  std::vector<std::size_t> order(held.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return held[a].weight != held[b].weight ? held[a].weight > held[b].weight
                                            : a < b;
  });
  std::vector<std::size_t> picked;
  double shipped = 0.0;
  for (std::size_t q : order) {
    const double w = held[q].weight;
    if (shipped + w <= target) {
      picked.push_back(q);
      shipped += w;
    } else if (shipped + w - target < target - shipped) {
      picked.push_back(q);
      break;
    }
  }
  return picked;
}

}  // namespace

BalanceResult balance_pairwise(const comm::Communicator& comm,
                               std::span<const Item> my_items,
                               std::span<const double> my_payloads,
                               int doubles_per_item,
                               PairwiseOptions options) {
  const int p = comm.size();
  const int me = comm.rank();
  AGCM_ASSERT(my_payloads.size() ==
              my_items.size() * static_cast<std::size_t>(doubles_per_item));

  BalanceResult result;
  result.held_items.assign(my_items.begin(), my_items.end());
  result.held_payloads.assign(my_payloads.begin(), my_payloads.end());
  result.held_origins.resize(my_items.size());
  for (std::size_t q = 0; q < my_items.size(); ++q)
    result.held_origins[q] = {me, static_cast<int>(q)};

  const std::vector<int> ones(static_cast<std::size_t>(p), 1);

  for (int iter = 0; iter <= options.max_iterations; ++iter) {
    // Exchange only the total loads (one double per rank) — the cheap part
    // of Scheme 3.
    double my_load = 0.0;
    for (const Item& item : result.held_items) my_load += item.weight;
    const std::vector<double> loads = comm.allgatherv<double>(
        std::span<const double>(&my_load, 1), ones);

    const double imbalance = load_imbalance(loads);
    result.imbalance_history.push_back(imbalance);
    if (iter == 0) result.imbalance_before = imbalance;
    result.imbalance_after = imbalance;
    if (trace::enabled()) {
      // Per-iteration imbalance, visible as a counter track in the Chrome
      // trace and as a gauge/distribution in the metrics registry.
      trace::Tracer::instance().counter(me, "lb.imbalance",
                                        comm.now(), imbalance);
      trace::MetricsRegistry::instance().set_gauge("lb.imbalance", me,
                                                   imbalance);
      trace::MetricsRegistry::instance().observe("lb.imbalance", imbalance);
    }
    if (iter == options.max_iterations) break;
    if (imbalance <= options.tolerance) break;

    // Sort ranks by load (descending); pair position i with position
    // p-1-i. Deterministic, computed identically everywhere.
    std::vector<int> order(static_cast<std::size_t>(p));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double la = loads[static_cast<std::size_t>(a)];
      const double lb = loads[static_cast<std::size_t>(b)];
      return la != lb ? la > lb : a < b;
    });
    comm.charge_flops(static_cast<double>(p) *
                      std::log2(std::max(2.0, static_cast<double>(p))));

    int my_pos = -1;
    for (int i = 0; i < p; ++i)
      if (order[static_cast<std::size_t>(i)] == me) my_pos = i;
    AGCM_ASSERT(my_pos >= 0);
    const int partner_pos = p - 1 - my_pos;
    if (partner_pos == my_pos) {
      result.iterations = iter + 1;
      continue;  // odd rank count: the median rank sits out
    }
    const int partner = order[static_cast<std::size_t>(partner_pos)];
    const double gap = std::abs(loads[static_cast<std::size_t>(me)] -
                                loads[static_cast<std::size_t>(partner)]);
    const double heavier = std::max(loads[static_cast<std::size_t>(me)],
                                    loads[static_cast<std::size_t>(partner)]);
    const bool exchange_needed =
        gap > options.tolerance * std::max(1.0e-300, heavier);

    if (my_pos < partner_pos) {
      // I am the heavier side: pick and ship.
      std::vector<std::size_t> picked;
      if (exchange_needed)
        picked = pick_held(result.held_items, gap / 2.0);
      std::vector<Item> ship_items;
      std::vector<Origin> ship_origins;
      std::vector<double> ship_payloads;
      std::vector<char> keep(result.held_items.size(), 1);
      for (std::size_t q : picked) {
        keep[q] = 0;
        ship_items.push_back(result.held_items[q]);
        ship_origins.push_back(result.held_origins[q]);
        const auto off = q * static_cast<std::size_t>(doubles_per_item);
        ship_payloads.insert(
            ship_payloads.end(),
            result.held_payloads.begin() + static_cast<std::ptrdiff_t>(off),
            result.held_payloads.begin() +
                static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(
                                                      doubles_per_item)));
      }
      if (trace::enabled() && !picked.empty()) {
        trace::MetricsRegistry::instance().add(
            "lb.items_moved", me, static_cast<double>(picked.size()));
      }
      comm.send<Item>(partner, kTagItems, ship_items);
      comm.send<Origin>(partner, kTagOrigins, ship_origins);
      comm.send<double>(partner, kTagPayloads, ship_payloads);
      // Compact the kept items.
      std::vector<Item> new_items;
      std::vector<Origin> new_origins;
      std::vector<double> new_payloads;
      for (std::size_t q = 0; q < result.held_items.size(); ++q) {
        if (!keep[q]) continue;
        new_items.push_back(result.held_items[q]);
        new_origins.push_back(result.held_origins[q]);
        const auto off = q * static_cast<std::size_t>(doubles_per_item);
        new_payloads.insert(
            new_payloads.end(),
            result.held_payloads.begin() + static_cast<std::ptrdiff_t>(off),
            result.held_payloads.begin() +
                static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(
                                                      doubles_per_item)));
      }
      result.held_items = std::move(new_items);
      result.held_origins = std::move(new_origins);
      result.held_payloads = std::move(new_payloads);
    } else {
      // I am the lighter side: receive (possibly empty) shipments.
      const auto items = comm.recv_any_size<Item>(partner, kTagItems);
      const auto origins = comm.recv_any_size<Origin>(partner, kTagOrigins);
      const auto payloads = comm.recv_any_size<double>(partner, kTagPayloads);
      AGCM_ASSERT(items.size() == origins.size());
      AGCM_ASSERT(payloads.size() ==
                  items.size() * static_cast<std::size_t>(doubles_per_item));
      result.held_items.insert(result.held_items.end(), items.begin(),
                               items.end());
      result.held_origins.insert(result.held_origins.end(), origins.begin(),
                                 origins.end());
      result.held_payloads.insert(result.held_payloads.end(),
                                  payloads.begin(), payloads.end());
    }
    result.iterations = iter + 1;
  }
  return result;
}

std::vector<double> return_to_owners(const comm::Communicator& comm,
                                     const BalanceResult& held,
                                     std::span<const double> held_results,
                                     int doubles_per_result,
                                     int my_item_count) {
  const int p = comm.size();
  AGCM_ASSERT(held_results.size() ==
              held.held_items.size() *
                  static_cast<std::size_t>(doubles_per_result));

  // Group held results by origin rank.
  std::vector<std::vector<std::size_t>> by_owner(static_cast<std::size_t>(p));
  for (std::size_t q = 0; q < held.held_origins.size(); ++q)
    by_owner[static_cast<std::size_t>(held.held_origins[q].rank)].push_back(q);

  std::vector<int> send_idx_counts(static_cast<std::size_t>(p), 0);
  std::vector<int> send_data_counts(static_cast<std::size_t>(p), 0);
  std::vector<int> send_indices;
  std::vector<double> send_data;
  for (int r = 0; r < p; ++r) {
    for (std::size_t q : by_owner[static_cast<std::size_t>(r)]) {
      send_indices.push_back(held.held_origins[q].index);
      const auto off = q * static_cast<std::size_t>(doubles_per_result);
      send_data.insert(
          send_data.end(),
          held_results.begin() + static_cast<std::ptrdiff_t>(off),
          held_results.begin() +
              static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(
                                                    doubles_per_result)));
    }
    send_idx_counts[static_cast<std::size_t>(r)] =
        static_cast<int>(by_owner[static_cast<std::size_t>(r)].size());
    send_data_counts[static_cast<std::size_t>(r)] =
        send_idx_counts[static_cast<std::size_t>(r)] * doubles_per_result;
  }

  // Every rank must know how many items come back from each peer: exchange
  // the counts first (p ints), then the indices and the data.
  const std::vector<int> ones(static_cast<std::size_t>(p), 1);
  std::vector<int> flat_counts;
  for (int r = 0; r < p; ++r)
    flat_counts.push_back(send_idx_counts[static_cast<std::size_t>(r)]);
  // alltoall of one int per pair:
  std::vector<int> one_each(static_cast<std::size_t>(p), 1);
  const std::vector<int> recv_idx_counts =
      comm.alltoallv<int>(flat_counts, one_each, one_each);

  std::vector<int> recv_data_counts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    recv_data_counts[static_cast<std::size_t>(r)] =
        recv_idx_counts[static_cast<std::size_t>(r)] * doubles_per_result;

  const std::vector<int> indices =
      comm.alltoallv<int>(send_indices, send_idx_counts, recv_idx_counts);
  const std::vector<double> data =
      comm.alltoallv<double>(send_data, send_data_counts, recv_data_counts);

  AGCM_ASSERT(static_cast<int>(indices.size()) == my_item_count);
  std::vector<double> out(static_cast<std::size_t>(my_item_count) *
                          static_cast<std::size_t>(doubles_per_result));
  for (std::size_t n = 0; n < indices.size(); ++n) {
    const auto idx = static_cast<std::size_t>(indices[n]);
    AGCM_ASSERT(idx < static_cast<std::size_t>(my_item_count));
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(
                                 n * static_cast<std::size_t>(doubles_per_result)),
              data.begin() + static_cast<std::ptrdiff_t>(
                                 (n + 1) * static_cast<std::size_t>(doubles_per_result)),
              out.begin() + static_cast<std::ptrdiff_t>(
                                idx * static_cast<std::size_t>(doubles_per_result)));
  }
  return out;
}

}  // namespace agcm::lb
