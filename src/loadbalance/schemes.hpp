// The three load-balancing schemes analysed in the paper (Section 3.4).
//
// All three are expressed here as *pure planners*: given every rank's work
// items (id + estimated weight), produce each item's destination rank. The
// planners are deterministic and run identically on every node from
// allgathered weights (see planner.hpp for the collective wrapper), which
// mirrors how the original schemes made global decisions from exchanged
// load summaries.
//
//   Scheme 1 (Figure 4)  cyclic data shuffling: every processor splits its
//       local items into N pieces and scatters them round-robin. Guarantees
//       balance when local load is spatially uniform; costs O(N^2)
//       messages.
//   Scheme 2 (Figure 5)  sorted greedy moves: ranks are sorted by load,
//       overloaded ranks ship their surplus directly to underloaded ones.
//       O(N) transfers but heavy bookkeeping per application.
//   Scheme 3 (Figure 6)  iterative sorted pairwise exchange — the adopted
//       scheme: sort ranks by load, pair rank i with rank N-i+1, move
//       ~half the difference within each pair; repeat until the imbalance
//       falls below a tolerance. Cheap (pairwise messages only) and
//       convergent; Tables 1-3 show two iterations reduce the measured
//       physics imbalance from 37-48% to 5-6%.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace agcm::lb {

/// The paper's load-balancing schemes as a first-class configuration axis
/// (the campaign matrix sweeps this; core/config_load parses the names).
enum class Scheme {
  kNone,          ///< no balancing: every rank keeps its own columns
  kCyclic,        ///< Scheme 1: cyclic all-to-all shuffle (Figure 4)
  kSortedGreedy,  ///< Scheme 2: sorted greedy surplus moves (Figure 5)
  kPairwise,      ///< Scheme 3: iterative sorted pairwise exchange (Figure 6)
};

/// Canonical config-file name: "none", "cyclic", "sorted-greedy",
/// "pairwise".
const char* scheme_name(Scheme scheme);

/// One unit of migratable work (e.g. one grid column of Physics).
struct Item {
  std::uint64_t id = 0;   ///< caller-defined identity (stable across moves)
  double weight = 0.0;    ///< estimated cost (seconds or flops)
};

/// Per-rank item lists: items[r] are rank r's local items.
using ItemLists = std::vector<std::vector<Item>>;

/// Destination assignment: dest[r][q] is the new owner of items[r][q].
using DestLists = std::vector<std::vector<int>>;

/// Per-rank total loads implied by an assignment.
std::vector<double> loads_after(const ItemLists& items, const DestLists& dest);

/// Per-rank total loads of the original distribution.
std::vector<double> loads_of(const ItemLists& items);

/// Scheme 1: cyclic shuffle. Item q of rank r goes to rank (r + q) mod N.
DestLists plan_cyclic(const ItemLists& items);

/// Scheme 2: sorted greedy surplus moves toward the global average.
DestLists plan_sorted_greedy(const ItemLists& items);

/// Scheme 3 options and result.
struct PairwiseOptions {
  int max_iterations = 2;    ///< the paper applies the scheme twice
  double tolerance = 0.02;   ///< skip a pair whose relative gap is below this
};

struct PairwiseResult {
  DestLists dest;
  int iterations = 0;                      ///< iterations actually performed
  std::vector<double> imbalance_history;   ///< [0]=before, [i]=after iter i
};

/// Scheme 3: iterative sorted pairwise exchange.
PairwiseResult plan_pairwise(const ItemLists& items, PairwiseOptions options = {});

}  // namespace agcm::lb
