#include "perfmodel/predict.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace agcm::perfmodel {

double PhasePredictor::evaluate_at(const Point& point) const {
  return c0 + evaluate(tree, point);
}

const PhasePredictor* PredictModel::find(const std::string& phase,
                                         const std::string& selector) const {
  for (const PhasePredictor& p : phases)
    if (p.phase == phase && p.selector == selector) return &p;
  return nullptr;
}

Node phase_skeleton(const std::string& phase, const std::string& selector) {
  if (phase == "fd") {
    // Finite-difference dynamics: pure local compute. The startup-aware
    // term carries the short-loop penalty that made narrow blocks slow on
    // the i860/21064 (Section 3.1); the plain and 2-D terms let the fit
    // split per-point from per-column work.
    return sequence({leaf("points_startup_sec"), leaf("points_sec"),
                     leaf("plane_sec"), leaf("mem_points_sec")});
  }
  if (phase == "halo") {
    // Boundary exchange: per-message overheads, wire bytes, pack compute.
    return sequence({leaf("halo_msgs_sec"), leaf("halo_bytes_sec"),
                     leaf("halo_pack_sec")});
  }
  if (phase == "physics_compute") {
    // Max-rank column physics. The sunlit-fraction term models the
    // day/night radiation imbalance the barriers realise (Tables 1-3);
    // after balancing the mean term dominates. Both selectors share the
    // regressor set and the fit picks the mixture.
    return sequence({leaf("physics_mean_sec"), leaf("physics_sunlit_max_sec"),
                     leaf("points_sec")});
  }
  if (phase == "physics_balance") {
    // LB Scheme 3: lb_rounds pairwise exchange rounds of messages and
    // migrated column state.
    return pairwise("lb_rounds",
                    {leaf("msg_overhead_sec"), leaf("pair_bytes_sec")});
  }
  if (phase != "filter")
    throw std::invalid_argument("unknown phase '" + phase + "'");

  // Filter skeletons mirror each backend's parallel structure
  // (docs/filter.md). Leaves the backend lacks fit to weight 0.
  if (selector == "fft-transpose") {
    return sequence({transpose("mesh_cols", {leaf("msg_overhead_sec"),
                                             leaf("seg_bytes_row_sec")}),
                     leaf("fft_lines_row_sec"), leaf("lin_lines_row_sec")});
  }
  if (selector == "fft-load-balanced") {
    // Figure 2 redistribution along the mesh rows, then the within-row
    // line transpose and balanced whole-line FFTs.
    return sequence({ring("mesh_rows", {leaf("msg_overhead_sec"),
                                        leaf("line_bytes_bal_sec")}),
                     transpose("mesh_cols", {leaf("msg_overhead_sec"),
                                             leaf("seg_bytes_row_sec")}),
                     leaf("fft_lines_bal_sec"), leaf("lin_lines_bal_sec")});
  }
  if (selector == "convolution-ring") {
    // (P-1) ring hops, each moving a segment and convolving it locally.
    return sequence({ring("mesh_cols", {leaf("msg_overhead_sec"),
                                        leaf("seg_bytes_row_sec"),
                                        leaf("conv_seg_row_sec")}),
                     leaf("conv_seg_row_sec"), leaf("lin_lines_row_sec")});
  }
  if (selector == "convolution-tree") {
    return sequence({tree("mesh_cols", {leaf("msg_overhead_sec"),
                                        leaf("seg_bytes_row_sec")}),
                     leaf("conv_seg_row_sec"), leaf("conv_row_sec"),
                     leaf("lin_lines_row_sec")});
  }
  if (selector == "convolution-partitioned") {
    // Overlap-save block convolution: quasi-linear spectral work plus the
    // same within-row exchange pattern as the ring.
    return sequence({ring("mesh_cols", {leaf("msg_overhead_sec"),
                                        leaf("seg_bytes_row_sec")}),
                     leaf("fft_lines_row_sec"), leaf("lin_lines_row_sec"),
                     leaf("conv_seg_row_sec")});
  }
  if (selector == "implicit-zonal") {
    return sequence({ring("mesh_cols", {leaf("msg_overhead_sec"),
                                        leaf("seg_bytes_row_sec")}),
                     leaf("lin_lines_row_sec"), leaf("fft_lines_row_sec")});
  }
  throw std::invalid_argument("no filter skeleton for backend '" + selector +
                              "'");
}

namespace {

double component_of(const Observation& obs, const std::string& phase) {
  if (phase == "filter") return obs.actual.filter;
  if (phase == "halo") return obs.actual.halo;
  if (phase == "fd") return obs.actual.fd;
  if (phase == "physics_compute") return obs.actual.physics_compute;
  return obs.actual.physics_balance;
}

std::string lb_selector(bool lb_enabled) {
  return lb_enabled ? "lb-on" : "lb-off";
}

}  // namespace

PredictModel train_model(const std::vector<Observation>& observations) {
  PredictModel model;

  // Machines table: first observation per profile name wins (scalars are
  // identical for equal names by construction); sorted for determinism.
  for (const Observation& obs : observations) {
    const Point& p = obs.point;
    bool known = false;
    for (const auto& [name, scalars] : model.machines)
      if (name == p.machine) known = true;
    if (known) continue;
    MachineScalars scalars;
    scalars.flops_per_sec = p.flops_per_sec;
    scalars.mem_bytes_per_sec = p.mem_bytes_per_sec;
    scalars.msg_latency_sec = p.msg_latency_sec;
    scalars.link_bytes_per_sec = p.link_bytes_per_sec;
    scalars.send_overhead_sec = p.send_overhead_sec;
    scalars.recv_overhead_sec = p.recv_overhead_sec;
    scalars.loop_startup_elems = p.loop_startup_elems;
    model.machines.emplace_back(p.machine, scalars);
  }
  std::sort(model.machines.begin(), model.machines.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Group observations per (phase, selector). std::map keeps group order
  // deterministic (sorted keys), independent of observation order.
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const Observation& obs = observations[i];
    groups[{"fd", ""}].push_back(i);
    if (obs.point.ranks() > 1) groups[{"halo", ""}].push_back(i);
    if (obs.filter_enabled)
      groups[{"filter", obs.point.filter_backend}].push_back(i);
    if (obs.physics_enabled) {
      groups[{"physics_compute", lb_selector(obs.point.lb_enabled)}].push_back(
          i);
      // One rank has no exchange partner: balance is structurally zero
      // there (mirrored in predict()), so those points carry no signal.
      if (obs.point.lb_enabled && obs.point.ranks() > 1)
        groups[{"physics_balance", "lb-on"}].push_back(i);
    }
  }

  for (const auto& [key, indices] : groups) {
    if (indices.size() < 3) continue;  // underdetermined; skip the group
    PhasePredictor predictor;
    predictor.phase = key.first;
    predictor.selector = key.second;
    predictor.tree = phase_skeleton(key.first, key.second);
    std::vector<Point> points;
    std::vector<double> y;
    points.reserve(indices.size());
    y.reserve(indices.size());
    for (const std::size_t i : indices) {
      points.push_back(observations[i].point);
      y.push_back(component_of(observations[i], key.first));
    }
    const CompositeFit fit = fit_composite(predictor.tree, points, y);
    predictor.c0 = fit.c0;
    predictor.r2 = fit.r2;
    predictor.rmse = fit.rmse;
    predictor.n_train = static_cast<int>(indices.size());
    predictor.terms_used = fit.terms_used;
    model.phases.push_back(std::move(predictor));
  }

  if (model.phases.empty())
    throw std::invalid_argument(
        "train_model: no (phase, selector) group has >= 3 observations");
  return model;
}

namespace {

double require_phase(const PredictModel& model, const std::string& phase,
                     const std::string& selector, const Point& point) {
  const PhasePredictor* predictor = model.find(phase, selector);
  if (!predictor)
    throw std::invalid_argument("model has no predictor for phase '" + phase +
                                "' selector '" + selector + "'");
  // Predictions are times: clamp the intercept-dominated corner at zero.
  return std::max(predictor->evaluate_at(point), 0.0);
}

}  // namespace

Prediction predict(const PredictModel& model, const Point& point,
                   bool filter_enabled, bool physics_enabled) {
  Prediction out;
  out.fd = require_phase(model, "fd", "", point);
  out.halo =
      point.ranks() > 1 ? require_phase(model, "halo", "", point) : 0.0;
  if (filter_enabled)
    out.filter = require_phase(model, "filter", point.filter_backend, point);
  if (physics_enabled) {
    out.physics_compute = require_phase(model, "physics_compute",
                                        lb_selector(point.lb_enabled), point);
    if (point.lb_enabled && point.ranks() > 1)
      out.physics_balance =
          require_phase(model, "physics_balance", "lb-on", point);
  }
  return out;
}

trace::JsonValue model_to_json(const PredictModel& model) {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("schema", kPredictSchema);

  trace::JsonValue machines = trace::JsonValue::object();
  for (const auto& [name, s] : model.machines) {
    trace::JsonValue m = trace::JsonValue::object();
    m.set("flops_per_sec", s.flops_per_sec);
    m.set("mem_bytes_per_sec", s.mem_bytes_per_sec);
    m.set("msg_latency_sec", s.msg_latency_sec);
    m.set("link_bytes_per_sec", s.link_bytes_per_sec);
    m.set("send_overhead_sec", s.send_overhead_sec);
    m.set("recv_overhead_sec", s.recv_overhead_sec);
    m.set("loop_startup_elems", s.loop_startup_elems);
    machines.set(name, m);
  }
  doc.set("machines", machines);

  trace::JsonValue phases = trace::JsonValue::array();
  for (const PhasePredictor& p : model.phases) {
    trace::JsonValue entry = trace::JsonValue::object();
    entry.set("phase", p.phase);
    entry.set("selector", p.selector);
    entry.set("c0", p.c0);
    entry.set("r2", p.r2);
    entry.set("rmse", p.rmse);
    entry.set("n_train", p.n_train);
    entry.set("terms_used", p.terms_used);
    entry.set("tree", node_json(p.tree));
    phases.push_back(entry);
  }
  doc.set("phases", phases);
  return doc;
}

PredictModel model_from_json(const trace::JsonValue& doc) {
  const trace::JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != kPredictSchema)
    throw std::invalid_argument("predict model JSON: schema is not '" +
                                std::string(kPredictSchema) + "'");

  PredictModel model;
  const trace::JsonValue* machines = doc.find("machines");
  if (!machines || !machines->is_object())
    throw std::invalid_argument("predict model JSON: missing machines table");
  for (const auto& [name, m] : machines->members()) {
    const auto scalar = [&](const char* key) {
      const trace::JsonValue* v = m.find(key);
      if (!v || !v->is_number())
        throw std::invalid_argument(
            std::string("predict model JSON: machine '") + name +
            "' missing '" + key + "'");
      return v->as_number();
    };
    MachineScalars s;
    s.flops_per_sec = scalar("flops_per_sec");
    s.mem_bytes_per_sec = scalar("mem_bytes_per_sec");
    s.msg_latency_sec = scalar("msg_latency_sec");
    s.link_bytes_per_sec = scalar("link_bytes_per_sec");
    s.send_overhead_sec = scalar("send_overhead_sec");
    s.recv_overhead_sec = scalar("recv_overhead_sec");
    s.loop_startup_elems = scalar("loop_startup_elems");
    model.machines.emplace_back(name, s);
  }

  const trace::JsonValue* phases = doc.find("phases");
  if (!phases || !phases->is_array())
    throw std::invalid_argument("predict model JSON: missing phases array");
  for (const trace::JsonValue& entry : phases->items()) {
    PhasePredictor p;
    const auto str = [&](const char* key) {
      const trace::JsonValue* v = entry.find(key);
      if (!v || !v->is_string())
        throw std::invalid_argument(
            std::string("predict model JSON: phase entry missing '") + key +
            "'");
      return v->as_string();
    };
    const auto num = [&](const char* key) {
      const trace::JsonValue* v = entry.find(key);
      if (!v || !v->is_number())
        throw std::invalid_argument(
            std::string("predict model JSON: phase entry missing '") + key +
            "'");
      return v->as_number();
    };
    p.phase = str("phase");
    p.selector = str("selector");
    p.c0 = num("c0");
    p.r2 = num("r2");
    p.rmse = num("rmse");
    p.n_train = static_cast<int>(num("n_train"));
    p.terms_used = static_cast<int>(num("terms_used"));
    const trace::JsonValue* tree = entry.find("tree");
    if (!tree)
      throw std::invalid_argument(
          "predict model JSON: phase entry missing 'tree'");
    p.tree = node_from_json(*tree);
    model.phases.push_back(std::move(p));
  }
  return model;
}

PredictModel load_model(const std::string& path) {
  std::string error;
  const std::optional<trace::JsonValue> doc =
      trace::JsonValue::parse(trace::read_text_file(path), &error);
  if (!doc)
    throw std::invalid_argument("cannot parse predict model '" + path +
                                "': " + error);
  return model_from_json(*doc);
}

trace::JsonValue prediction_json(const Prediction& p) {
  trace::JsonValue v = trace::JsonValue::object();
  v.set("filter_per_step_sec", p.filter);
  v.set("halo_per_step_sec", p.halo);
  v.set("fd_per_step_sec", p.fd);
  v.set("physics_compute_per_step_sec", p.physics_compute);
  v.set("physics_balance_per_step_sec", p.physics_balance);
  v.set("total_per_step_sec", p.total());
  return v;
}

}  // namespace agcm::perfmodel
