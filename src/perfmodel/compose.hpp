// Compositional performance models: structure operators over per-phase
// cost terms.
//
// PR 5's PMNF fits (model.hpp) answer "how does ONE phase scale along ONE
// parameter axis?". The paper's actual deliverable is bigger: a model of
// the whole code, assembled from per-phase formulas along the program's
// parallel skeleton, that predicts total step time at configurations never
// run (Tables 1-11 are exactly such compositions). This header provides
// the algebra for that assembly:
//
//   * A `Point` — the full prediction coordinate: mesh shape, resolution,
//     machine scalars, filter backend, load-balance setting. Machine
//     dependence lives INSIDE the cost drivers (each driver is a
//     seconds-scale closed form over the point's machine scalars), so one
//     fitted model predicts across machines.
//   * Named `drivers` — closed-form per-phase cost shapes (compute terms
//     with the profile's loop-startup model, per-message overheads,
//     per-byte wire terms, exact filtered-line counts mirroring
//     filter/response.cpp). A fit only chooses their weights.
//   * A `Node` tree of structure operators mirroring the skeleton:
//       sequence   — phases separated by barriers add;
//       concurrent — co-scheduled branches cost their max;
//       ring       — (e-1) neighbour hops (convolution-ring filter);
//       tree       — ceil(log2 e) hops (binomial broadcast/reduce);
//       transpose  — (e-1) messages + (e-1)/e of the volume per rank
//                    (the distributed-FFT line transpose, Section 3.2);
//       pairwise   — e exchange rounds (LB Scheme 3).
//     Leaves carry a driver, an optional PMNF hypothesis transform
//     phi(x) = x^a log2(x)^b (model.hpp), and a fitted weight.
//   * A joint non-negative least-squares fit: a tree without `concurrent`
//     is linear in its leaf weights, so one solve fits all leaves of a
//     phase simultaneously against training observations (drop-and-refit
//     keeps every weight >= 0, same admissibility rule as model.cpp).
//
// Everything is pure arithmetic over the inputs: deterministic, no global
// state, no host timing. JSON round-trips through trace::JsonValue so a
// fitted tree is a portable artefact (PREDICT_MODEL.json, schema
// agcm-predict-v1) that tools/predict.py can re-evaluate out of process.
#pragma once

#include <string>
#include <vector>

#include "perfmodel/model.hpp"
#include "trace/json.hpp"

namespace agcm::perfmodel {

/// One prediction coordinate: everything a driver may consult. The machine
/// scalars duplicate simnet::MachineProfile's message/compute parameters on
/// purpose — perfmodel sits below simnet in the layering, and carrying the
/// scalars keeps a serialised model self-contained for out-of-process
/// evaluation.
struct Point {
  int nlon = 144;
  int nlat = 90;
  int nlev = 9;
  int mesh_rows = 1;
  int mesh_cols = 1;

  /// Pairwise-exchange rounds charged by the `pairwise` operator (the LB
  /// scheme's max_iterations; 0 when balancing is off).
  int lb_rounds = 0;
  bool lb_enabled = false;

  std::string machine;         ///< profile name (key into the model's table)
  std::string filter_backend;  ///< filter::algorithm_name token

  // Machine scalars (simnet::MachineProfile subset the drivers use).
  double flops_per_sec = 1.0e9;
  double mem_bytes_per_sec = 1.0e9;
  double msg_latency_sec = 0.0;
  double link_bytes_per_sec = 1.0e9;
  double send_overhead_sec = 0.0;
  double recv_overhead_sec = 0.0;
  double loop_startup_elems = 0.0;

  int ranks() const { return mesh_rows * mesh_cols; }
};

/// Serialises / parses a Point (flat object, insertion-ordered keys).
trace::JsonValue point_json(const Point& point);
Point point_from_json(const trace::JsonValue& value);

/// Evaluates the named closed-form cost driver at `point`; throws
/// std::invalid_argument for an unknown name. All drivers return
/// non-negative values; time-like drivers are in virtual seconds.
double driver_value(const std::string& name, const Point& point);

/// All driver names, in a fixed documentation order.
std::vector<std::string> driver_names();

/// Evaluates a named extent (the e in the operator multiplicities):
/// "ranks", "mesh_rows", "mesh_cols", or "lb_rounds".
double extent_value(const std::string& name, const Point& point);

/// Hop-count closed forms the structured operators apply (exposed so tests
/// can pin them): ring = e-1, tree = ceil(log2 e) (0 for e <= 1),
/// pairwise = e (the extent is the round count).
double ring_hops(double extent);
double tree_hops(double extent);
double pairwise_rounds(double extent);

/// One node of a composition tree.
struct Node {
  enum class Op {
    kLeaf,
    kSequence,
    kConcurrent,
    kRing,
    kTree,
    kTranspose,
    kPairwise,
  };

  Op op = Op::kLeaf;

  // Leaf payload: weight * basis(hyp, driver(point)). The default
  // hypothesis (a=1, b=0) makes the leaf linear in its driver; other
  // hypotheses lift a PMNF-fitted single-parameter law into the tree.
  std::string driver;
  Hypothesis hyp{1.0, 0};
  double weight = 1.0;

  // Structured payload: extent name for ring/tree/transpose/pairwise.
  std::string extent;
  std::vector<Node> children;
};

/// Leaf and operator factories (values, so trees compose as expressions).
Node leaf(std::string driver, double weight = 1.0, Hypothesis hyp = {1.0, 0});
Node sequence(std::vector<Node> children);
Node concurrent(std::vector<Node> children);
Node ring(std::string extent, std::vector<Node> children);
Node tree(std::string extent, std::vector<Node> children);
/// Transpose: children[0] is the per-partner message cost, multiplied by
/// (e-1); children[1..] are per-rank volume costs, multiplied by (e-1)/e
/// (each of the e partners keeps 1/e of the data, the rest crosses the
/// wire — Section 3.2's transpose accounting).
Node transpose(std::string extent, std::vector<Node> children);
Node pairwise(std::string extent, std::vector<Node> children);

/// Evaluates the tree at `point` (virtual seconds).
double evaluate(const Node& node, const Point& point);

/// Serialises / parses a tree. Parsing throws std::invalid_argument on a
/// malformed document (unknown op, missing fields).
trace::JsonValue node_json(const Node& node);
Node node_from_json(const trace::JsonValue& value);

/// The leaves of `node` in depth-first order (the coefficient order used
/// by fit_composite).
std::vector<const Node*> collect_leaves(const Node& node);

/// Per-leaf linear weights at `point`: evaluate(node, point) equals
/// dot(terms, leaf_weights) when every leaf weight is 1. Throws
/// std::invalid_argument if the tree contains a `concurrent` node (max is
/// not linear in the leaf weights).
std::vector<double> linear_terms(const Node& node, const Point& point);

/// Joint non-negative least-squares over a tree's leaf weights.
struct CompositeFit {
  double c0 = 0.0;    ///< fitted intercept (>= 0; 0 when dropped)
  double r2 = 0.0;    ///< in-sample coefficient of determination
  double rmse = 0.0;  ///< in-sample root-mean-square residual
  int terms_used = 0; ///< leaves with non-zero fitted weight
};

/// Fits y ~ c0 + sum_j w_j * term_j(point) with w_j >= 0, c0 >= 0 (terms
/// from linear_terms), writing the fitted weights into the tree's leaves.
/// Dropped regressors (negative in the unconstrained solve, or collinear)
/// refit with weight 0. Requires points.size() == y.size() >= 2; throws
/// std::invalid_argument otherwise.
CompositeFit fit_composite(Node& node, const std::vector<Point>& points,
                           const std::vector<double>& y);

}  // namespace agcm::perfmodel
