// Whole-application performance prediction: per-phase composition trees
// (compose.hpp) trained on simnet observations and evaluated at untested
// configurations.
//
// A PredictModel holds one fitted composition tree per (phase, selector)
// pair — filter trees are keyed by the backend token, the physics trees by
// whether load balancing is on — plus a table of known machine profiles so
// a serialised model is self-contained. predict() assembles the paper's
// five component times at any Point and the whole-step total is their sum
// (the component boundaries are barriers, so phases compose by
// `sequence`).
//
// The serialised form is PREDICT_MODEL.json, schema `agcm-predict-v1`
// (docs/perfmodel.md): deterministic insertion-ordered JSON, written by
// bench_predict_model, consumed by the tools/predict.py what-if CLI and
// the campaign admission planner (campaign/planner.hpp).
#pragma once

#include <string>
#include <vector>

#include "perfmodel/compose.hpp"

namespace agcm::perfmodel {

inline constexpr const char* kPredictSchema = "agcm-predict-v1";

/// The machine scalars a serialised model carries per known profile (the
/// subset of simnet::MachineProfile the drivers consult).
struct MachineScalars {
  double flops_per_sec = 1.0e9;
  double mem_bytes_per_sec = 1.0e9;
  double msg_latency_sec = 0.0;
  double link_bytes_per_sec = 1.0e9;
  double send_overhead_sec = 0.0;
  double recv_overhead_sec = 0.0;
  double loop_startup_elems = 0.0;
};

/// One fitted phase model: a composition tree with fitted leaf weights,
/// an intercept, and the fit statistics. `selector` scopes it: the filter
/// backend token for "filter", "lb-on"/"lb-off" for the physics phases,
/// empty for the unconditional phases (halo, fd).
struct PhasePredictor {
  std::string phase;
  std::string selector;
  Node tree;
  double c0 = 0.0;
  double r2 = 0.0;
  double rmse = 0.0;
  int n_train = 0;
  int terms_used = 0;

  double evaluate_at(const Point& point) const;
};

struct PredictModel {
  /// Known machine profiles by name (sorted by name in the serialised
  /// form); lets tools rebuild a Point from a config token without
  /// duplicating profile constants.
  std::vector<std::pair<std::string, MachineScalars>> machines;
  std::vector<PhasePredictor> phases;

  /// The predictor for (phase, selector), or nullptr.
  const PhasePredictor* find(const std::string& phase,
                             const std::string& selector) const;
};

/// Per-step component prediction (virtual seconds), mirroring
/// core::ComponentTimes without the core dependency.
struct Prediction {
  double filter = 0.0;
  double halo = 0.0;
  double fd = 0.0;
  double physics_compute = 0.0;
  double physics_balance = 0.0;

  double total() const {
    return filter + halo + fd + physics_compute + physics_balance;
  }
};

/// One training/validation observation: a point and the five measured
/// per-step component times (max over ranks, as run_model reports them).
struct Observation {
  Point point;
  Prediction actual;
  bool filter_enabled = true;
  bool physics_enabled = true;
};

/// The untrained skeleton tree for a phase (exposed for tests): filter
/// skeletons mirror each backend's communication structure, fd/halo are
/// flat driver sums, physics_balance is the Scheme-3 pairwise exchange.
/// Throws std::invalid_argument for an unknown filter backend.
Node phase_skeleton(const std::string& phase, const std::string& selector);

/// Fits one predictor per (phase, selector) group present in the
/// observations (>= 3 samples per group required; smaller groups are
/// skipped). Throws std::invalid_argument when nothing is trainable.
PredictModel train_model(const std::vector<Observation>& observations);

/// Predicts the five per-step component times at `point`. `filter_enabled`
/// / `physics_enabled` zero the corresponding phases; otherwise a missing
/// (phase, selector) predictor throws std::invalid_argument (e.g. a filter
/// backend the model was never trained on).
Prediction predict(const PredictModel& model, const Point& point,
                   bool filter_enabled = true, bool physics_enabled = true);

/// Serialisation. model_from_json accepts a full PREDICT_MODEL.json
/// document (extra blocks — training, holdout, gates — are ignored) and
/// throws std::invalid_argument on malformed input.
trace::JsonValue model_to_json(const PredictModel& model);
PredictModel model_from_json(const trace::JsonValue& value);

/// Reads and parses a PREDICT_MODEL.json file; throws on I/O or parse
/// errors.
PredictModel load_model(const std::string& path);

/// {"filter_per_step_sec": ..., ..., "total_per_step_sec": ...} — the
/// block both the campaign store and the bench holdout entries embed.
trace::JsonValue prediction_json(const Prediction& prediction);

}  // namespace agcm::perfmodel
