// Assembling fitted phase models into the PERF_MODEL.json artefact.
//
// model.hpp turns one (x, y) series into a fitted complexity class; this
// layer carries the rest of the paper-checking pipeline: a Series names
// which tracer phase was measured against which scale parameter, an
// Expectation states the paper's claim as an acceptance window over the
// fitted exponents, check_fit renders a deterministic verdict, and
// ModelReport collects the lot — plus free-form scalar gates like the
// physics imbalance bound — into one insertion-ordered JSON document that
// the CI sentinel (tools/perf_diff.py) byte-compares against a committed
// baseline.
//
// Verdict strings are fully deterministic (built from grid-discrete
// exponents and pre-rounded thresholds only), so a verdict flips exactly
// when the selected complexity class flips — never because a continuous
// coefficient wiggled in its last bits.
#pragma once

#include <string>
#include <vector>

#include "perfmodel/model.hpp"
#include "trace/json.hpp"

namespace agcm::perfmodel {

/// A measured scaling series: phase cost y (virtual seconds) against one
/// scale parameter x (e.g. "nlon" or "ranks").
struct Series {
  std::string phase;      ///< tracer phase name, e.g. "filter.fft-transpose"
  std::string parameter;  ///< what x is, e.g. "nlon"
  std::string metric;     ///< what y is, e.g. "max_rank_sec"
  std::vector<double> x;
  std::vector<double> y;

  void add(double xi, double yi) {
    x.push_back(xi);
    y.push_back(yi);
  }
};

/// The paper's claim about a phase, as an acceptance window over the
/// fitted model: exponent a in [min_a, max_a], log power b in
/// [min_b, max_b], in-sample R^2 >= min_r2.
struct Expectation {
  std::string expected;  ///< human-readable claim, e.g. "~ x^2 (conv filter)"
  double min_a = 0.0;
  double max_a = 3.0;
  int min_b = 0;
  int max_b = 2;
  double min_r2 = 0.97;
};

struct Verdict {
  bool pass = false;
  std::string reason;  ///< deterministic explanation either way
};

/// Checks a fitted model against an expectation window.
Verdict check_fit(const FitResult& fit, const Expectation& expectation);

/// One fully analysed phase: the measured series, the selected model, the
/// expectation it was held to and the verdict.
struct PhaseModel {
  Series series;
  FitResult fit;
  Expectation expectation;
  Verdict verdict;
};

/// Fits the series (default grid) and checks it: the one-call pipeline.
PhaseModel analyze(Series series, Expectation expectation);

trace::JsonValue series_json(const Series& series);
trace::JsonValue phase_model_json(const PhaseModel& model);

/// The PERF_MODEL.json document builder. Key order is insertion order
/// throughout, so the serialised artefact is byte-stable.
class ModelReport {
 public:
  explicit ModelReport(std::string name);

  /// Records a sweep-configuration fact (machine profile, mesh, ...).
  void set_config(std::string_view key, trace::JsonValue value);

  void add_phase(PhaseModel model);

  /// Records a scalar pass/fail gate that is not a curve fit (e.g. the
  /// post-LB imbalance bound, or conv-dominates-fft).
  void add_gate(std::string_view name, bool pass, std::string_view detail);

  /// True when every phase verdict and every gate passed.
  bool all_pass() const;

  const std::vector<PhaseModel>& phases() const { return phases_; }

  /// {"report": name, "schema": "agcm-perfmodel-v1", "config": {...},
  ///  "phases": [...], "gates": [...], "all_pass": bool}
  trace::JsonValue to_json() const;

  /// Pretty-printed to_json() + trailing newline, written atomically via
  /// trace::write_text_file.
  void write(const std::string& path) const;

 private:
  struct Gate {
    std::string name;
    bool pass = false;
    std::string detail;
  };

  std::string name_;
  trace::JsonValue config_ = trace::JsonValue::object();
  std::vector<PhaseModel> phases_;
  std::vector<Gate> gates_;
};

}  // namespace agcm::perfmodel
