#include "perfmodel/model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace agcm::perfmodel {

double basis(const Hypothesis& hyp, double x) {
  double phi = 1.0;
  if (hyp.a != 0.0) phi *= std::pow(x, hyp.a);
  if (hyp.b != 0) {
    const double lg = x > 1.0 ? std::log2(x) : 0.0;
    double lp = lg;
    for (int i = 1; i < hyp.b; ++i) lp *= lg;
    phi *= lp;
  }
  return phi;
}

bool dominates(const Hypothesis& lhs, const Hypothesis& rhs) {
  if (lhs.a != rhs.a) return lhs.a > rhs.a;
  return lhs.b > rhs.b;
}

std::string complexity_label(const Hypothesis& hyp) {
  if (hyp.a == 0.0 && hyp.b == 0) return "1";
  std::string out;
  if (hyp.a != 0.0) {
    out = "x";
    if (hyp.a != 1.0) {
      // Grid exponents are multiples of 0.25; print the shortest exact form.
      std::string repr = trace::JsonValue::number_repr(hyp.a);
      out += "^" + repr;
    }
  }
  if (hyp.b != 0) {
    if (!out.empty()) out += " * ";
    out += "log2(x)";
    if (hyp.b != 1) out += "^" + std::to_string(hyp.b);
  }
  return out;
}

std::vector<Hypothesis> default_grid() {
  std::vector<Hypothesis> grid;
  for (int ia = 0; ia <= 12; ++ia) {        // a = 0, 0.25, ..., 3.0
    for (int b = 0; b <= 2; ++b) {
      grid.push_back({static_cast<double>(ia) * 0.25, b});
    }
  }
  return grid;
}

double FitResult::evaluate(double x) const { return c0 + c1 * basis(hyp, x); }

namespace {

struct LinearFit {
  double c0 = 0.0;
  double c1 = 0.0;
};

/// Solves the 2x2 normal equations for y = c0 + c1 * phi. Returns nullopt
/// on a (near-)singular system, i.e. when phi is constant over the sample.
std::optional<LinearFit> solve_normal(const std::vector<double>& phi,
                                      const std::vector<double>& y,
                                      bool constant_only) {
  const auto n = static_cast<double>(phi.size());
  double sum_phi = 0.0, sum_phi2 = 0.0, sum_y = 0.0, sum_phiy = 0.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    sum_phi += phi[i];
    sum_phi2 += phi[i] * phi[i];
    sum_y += y[i];
    sum_phiy += phi[i] * y[i];
  }
  if (constant_only) return LinearFit{sum_y / n, 0.0};
  const double det = n * sum_phi2 - sum_phi * sum_phi;
  // Relative singularity test: det is O(n * sum_phi2) for well-spread phi.
  if (!(det > 1e-12 * n * sum_phi2)) return std::nullopt;
  LinearFit fit;
  fit.c1 = (n * sum_phiy - sum_phi * sum_y) / det;
  fit.c0 = (sum_y - fit.c1 * sum_phi) / n;
  return fit;
}

}  // namespace

std::optional<FitResult> fit_hypothesis(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        const Hypothesis& hyp) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  const bool constant_only = hyp.a == 0.0 && hyp.b == 0;

  std::vector<double> phi(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) phi[i] = basis(hyp, x[i]);

  const std::optional<LinearFit> full = solve_normal(phi, y, constant_only);
  if (!full) return std::nullopt;
  if (!constant_only && full->c1 < 0.0) return std::nullopt;

  FitResult fit;
  fit.hyp = hyp;
  fit.c0 = full->c0;
  fit.c1 = full->c1;

  // In-sample residuals -> RMSE and R^2.
  const auto n = static_cast<double>(x.size());
  double mean_y = 0.0;
  for (const double v : y) mean_y += v;
  mean_y /= n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double resid = y[i] - (full->c0 + full->c1 * phi[i]);
    ss_res += resid * resid;
    const double dev = y[i] - mean_y;
    ss_tot += dev * dev;
  }
  fit.rmse = std::sqrt(ss_res / n);
  if (ss_tot > 0.0) {
    fit.r2 = 1.0 - ss_res / ss_tot;
  } else {
    // Constant series: perfect iff the model reproduces it.
    fit.r2 = ss_res == 0.0 ? 1.0 : 0.0;
  }

  // Leave-one-out cross-validation: refit on n-1 points, score the
  // held-out residual. n is tiny (a sweep has <= ~10 cells), so the naive
  // refit loop is the clear choice over the hat-matrix shortcut.
  double cv_ss = 0.0;
  std::size_t cv_n = 0;
  std::vector<double> phi_loo(x.size() - 1), y_loo(x.size() - 1);
  for (std::size_t hold = 0; hold < x.size(); ++hold) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (i == hold) continue;
      phi_loo[k] = phi[i];
      y_loo[k] = y[i];
      ++k;
    }
    const std::optional<LinearFit> loo =
        solve_normal(phi_loo, y_loo, constant_only);
    if (!loo) return std::nullopt;  // hypothesis unstable under CV: reject
    const double resid = y[hold] - (loo->c0 + loo->c1 * phi[hold]);
    cv_ss += resid * resid;
    ++cv_n;
  }
  fit.cv_rmse = std::sqrt(cv_ss / static_cast<double>(cv_n));
  return fit;
}

FitResult fit_model(const std::vector<double>& x,
                    const std::vector<double>& y) {
  return fit_model(x, y, default_grid());
}

FitResult fit_model(const std::vector<double>& x, const std::vector<double>& y,
                    const std::vector<Hypothesis>& grid) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_model: x/y size mismatch");
  }
  if (x.size() < 3) {
    throw std::invalid_argument("fit_model: need >= 3 points");
  }
  for (const double v : x) {
    if (!(v > 0.0)) {
      throw std::invalid_argument("fit_model: x must be strictly positive");
    }
  }

  std::optional<FitResult> best;
  // Complexity-ascending scan with strict improvement: ties keep the
  // asymptotically smaller hypothesis, so the selection is deterministic
  // and never over-fits a simple series with a fancier class.
  for (const Hypothesis& hyp : grid) {
    const std::optional<FitResult> fit = fit_hypothesis(x, y, hyp);
    if (!fit) continue;
    if (!best || fit->cv_rmse < best->cv_rmse) best = fit;
  }
  if (!best) {
    throw std::invalid_argument(
        "fit_model: no hypothesis admissible for the data");
  }
  return *best;
}

trace::JsonValue fit_json(const FitResult& fit) {
  trace::JsonValue out = trace::JsonValue::object();
  out.set("complexity", fit.label());
  out.set("exponent_a", fit.hyp.a);
  out.set("log_power_b", fit.hyp.b);
  out.set("c0", fit.c0);
  out.set("c1", fit.c1);
  out.set("r2", fit.r2);
  out.set("rmse", fit.rmse);
  out.set("cv_rmse", fit.cv_rmse);
  return out;
}

}  // namespace agcm::perfmodel
