#include "perfmodel/compose.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace agcm::perfmodel {

namespace {

// The polar-filter structure constants the line-count drivers mirror
// (filter/response.cpp cutoffs; dynamics::Dynamics::filtered_variables
// filters u, v, h strongly and theta, q weakly). They are fixed properties
// of the modelled code, restated here because perfmodel sits below the
// filter layer.
constexpr double kStrongCutoffDeg = 45.0;
constexpr double kWeakCutoffDeg = 60.0;
constexpr int kStrongVars = 3;
constexpr int kWeakVars = 2;

int ceil_div(int a, int b) { return (a + b - 1) / b; }

/// Partition1D's block rule: the first n % p blocks get one extra point.
int block_start(int n, int p, int b) {
  const int base = n / p, rem = n % p;
  return b * base + std::min(b, rem);
}
int block_size(int n, int p, int b) {
  const int base = n / p, rem = n % p;
  return base + (b < rem ? 1 : 0);
}

/// grid::LatLonGrid::lat_center(j) in degrees, same operation order so the
/// poleward test below agrees bit-for-bit with grid/latlon.cpp (and with
/// the mirror in tools/predict.py).
double lat_center_deg(int j, int nlat) {
  const double dlat = std::numbers::pi / nlat;
  const double lat = -0.5 * std::numbers::pi + (j + 0.5) * dlat;
  return lat * 180.0 / std::numbers::pi;
}

bool poleward(int j, int nlat, double cutoff_deg) {
  return std::abs(lat_center_deg(j, nlat)) >= cutoff_deg;
}

/// Filtered latitude rows with centre poleward of `cutoff` inside global
/// row range [j0, j0+nj).
int filtered_rows_in(int j0, int nj, int nlat, double cutoff_deg) {
  int rows = 0;
  for (int j = j0; j < j0 + nj; ++j)
    if (poleward(j, nlat, cutoff_deg)) ++rows;
  return rows;
}

/// Filtered (variable, latitude, level) lines whose row lives in
/// [j0, j0+nj): strong variables above 45 deg, weak above 60 deg.
double filtered_lines_in(int j0, int nj, const Point& p) {
  return static_cast<double>(p.nlev) *
         (kStrongVars * filtered_rows_in(j0, nj, p.nlat, kStrongCutoffDeg) +
          kWeakVars * filtered_rows_in(j0, nj, p.nlat, kWeakCutoffDeg));
}

/// Max over mesh-row latitude bands of the filtered line count — the
/// busiest processor row before any load balancing.
double filtered_lines_row_max(const Point& p) {
  double best = 0.0;
  for (int r = 0; r < p.mesh_rows; ++r) {
    best = std::max(best, filtered_lines_in(block_start(p.nlat, p.mesh_rows, r),
                                            block_size(p.nlat, p.mesh_rows, r),
                                            p));
  }
  return best;
}

double filtered_lines_total(const Point& p) {
  return filtered_lines_in(0, p.nlat, p);
}

/// Machine-wide balanced share of the filtered lines (the fft-load-balanced
/// backend's Figure-2 redistribution target).
double filtered_lines_balanced(const Point& p) {
  const double total = filtered_lines_total(p);
  return std::ceil(total / p.ranks());
}

double loop_efficiency(double n, double startup) {
  if (startup <= 0.0) return 1.0;
  return n / (n + startup);
}

}  // namespace

trace::JsonValue point_json(const Point& p) {
  trace::JsonValue v = trace::JsonValue::object();
  v.set("nlon", p.nlon);
  v.set("nlat", p.nlat);
  v.set("nlev", p.nlev);
  v.set("mesh_rows", p.mesh_rows);
  v.set("mesh_cols", p.mesh_cols);
  v.set("lb_rounds", p.lb_rounds);
  v.set("lb_enabled", p.lb_enabled);
  v.set("machine", p.machine);
  v.set("filter_backend", p.filter_backend);
  v.set("flops_per_sec", p.flops_per_sec);
  v.set("mem_bytes_per_sec", p.mem_bytes_per_sec);
  v.set("msg_latency_sec", p.msg_latency_sec);
  v.set("link_bytes_per_sec", p.link_bytes_per_sec);
  v.set("send_overhead_sec", p.send_overhead_sec);
  v.set("recv_overhead_sec", p.recv_overhead_sec);
  v.set("loop_startup_elems", p.loop_startup_elems);
  return v;
}

namespace {

double need_number(const trace::JsonValue& v, const char* key) {
  const trace::JsonValue* m = v.find(key);
  if (!m || !m->is_number())
    throw std::invalid_argument(std::string("point/node JSON: missing number '") +
                                key + "'");
  return m->as_number();
}

std::string need_string(const trace::JsonValue& v, const char* key) {
  const trace::JsonValue* m = v.find(key);
  if (!m || !m->is_string())
    throw std::invalid_argument(std::string("point/node JSON: missing string '") +
                                key + "'");
  return m->as_string();
}

}  // namespace

Point point_from_json(const trace::JsonValue& v) {
  Point p;
  p.nlon = static_cast<int>(need_number(v, "nlon"));
  p.nlat = static_cast<int>(need_number(v, "nlat"));
  p.nlev = static_cast<int>(need_number(v, "nlev"));
  p.mesh_rows = static_cast<int>(need_number(v, "mesh_rows"));
  p.mesh_cols = static_cast<int>(need_number(v, "mesh_cols"));
  p.lb_rounds = static_cast<int>(need_number(v, "lb_rounds"));
  const trace::JsonValue* lb = v.find("lb_enabled");
  p.lb_enabled = lb && lb->is_bool() && lb->as_bool();
  p.machine = need_string(v, "machine");
  p.filter_backend = need_string(v, "filter_backend");
  p.flops_per_sec = need_number(v, "flops_per_sec");
  p.mem_bytes_per_sec = need_number(v, "mem_bytes_per_sec");
  p.msg_latency_sec = need_number(v, "msg_latency_sec");
  p.link_bytes_per_sec = need_number(v, "link_bytes_per_sec");
  p.send_overhead_sec = need_number(v, "send_overhead_sec");
  p.recv_overhead_sec = need_number(v, "recv_overhead_sec");
  p.loop_startup_elems = need_number(v, "loop_startup_elems");
  return p;
}

double driver_value(const std::string& name, const Point& p) {
  // Max local block extents (Partition1D gives the first blocks the extra
  // point, so block 0 is always maximal).
  const double ni = ceil_div(p.nlon, p.mesh_cols);
  const double nj = ceil_div(p.nlat, p.mesh_rows);
  const double flops = p.flops_per_sec;
  const double bw = p.link_bytes_per_sec;
  const double msg_ovh =
      p.msg_latency_sec + p.send_overhead_sec + p.recv_overhead_sec;
  const bool split_rows = p.mesh_rows > 1;
  const bool split_cols = p.mesh_cols > 1;
  // Halo boundary points per level: north+south edges of ni points each
  // when latitude is split, east+west edges of nj when longitude is.
  const double boundary =
      (split_rows ? 2.0 * ni : 0.0) + (split_cols ? 2.0 * nj : 0.0);

  if (name == "unit") return 1.0;
  if (name == "msg_overhead_sec") return msg_ovh;
  if (name == "points_sec") return ni * nj * p.nlev / flops;
  if (name == "points_startup_sec")
    return ni * nj * p.nlev / (flops * loop_efficiency(ni, p.loop_startup_elems));
  if (name == "plane_sec") return ni * nj / flops;
  if (name == "mem_points_sec")
    return 8.0 * ni * nj * p.nlev / p.mem_bytes_per_sec;
  if (name == "physics_mean_sec")
    return static_cast<double>(p.nlon) * p.nlat * p.nlev / (p.ranks() * flops);
  if (name == "physics_sunlit_max_sec") {
    // Worst-case sunlit fraction of a rank's ni contiguous longitudes: the
    // day side spans nlon/2 columns, so a narrow rank can be fully sunlit
    // while the single-rank case always averages one half.
    const double sunlit = std::min(ni, p.nlon / 2.0) / ni;
    return ni * nj * p.nlev * sunlit / flops;
  }
  if (name == "halo_msgs_sec")
    return ((split_rows ? 2.0 : 0.0) + (split_cols ? 2.0 : 0.0)) * msg_ovh;
  if (name == "halo_bytes_sec") return 8.0 * p.nlev * boundary / bw;
  if (name == "halo_pack_sec") return p.nlev * boundary / flops;
  if (name == "fft_lines_row_sec")
    return filtered_lines_row_max(p) * p.nlon * std::log2(double(p.nlon)) /
           flops;
  if (name == "lin_lines_row_sec")
    return filtered_lines_row_max(p) * p.nlon / flops;
  if (name == "conv_row_sec")
    return filtered_lines_row_max(p) * p.nlon * p.nlon / flops;
  if (name == "conv_seg_row_sec")
    return filtered_lines_row_max(p) * ni * ni / flops;
  if (name == "seg_bytes_row_sec")
    return 8.0 * filtered_lines_row_max(p) * ni / bw;
  if (name == "fft_lines_bal_sec")
    return filtered_lines_balanced(p) * p.nlon * std::log2(double(p.nlon)) /
           flops;
  if (name == "lin_lines_bal_sec")
    return filtered_lines_balanced(p) * p.nlon / flops;
  if (name == "line_bytes_bal_sec")
    return 8.0 * filtered_lines_balanced(p) * p.nlon / bw;
  if (name == "pair_bytes_sec") return 8.0 * ni * nj * p.nlev / bw;
  throw std::invalid_argument("unknown perfmodel driver '" + name + "'");
}

std::vector<std::string> driver_names() {
  return {"unit",
          "msg_overhead_sec",
          "points_sec",
          "points_startup_sec",
          "plane_sec",
          "mem_points_sec",
          "physics_mean_sec",
          "physics_sunlit_max_sec",
          "halo_msgs_sec",
          "halo_bytes_sec",
          "halo_pack_sec",
          "fft_lines_row_sec",
          "lin_lines_row_sec",
          "conv_row_sec",
          "conv_seg_row_sec",
          "seg_bytes_row_sec",
          "fft_lines_bal_sec",
          "lin_lines_bal_sec",
          "line_bytes_bal_sec",
          "pair_bytes_sec"};
}

double extent_value(const std::string& name, const Point& p) {
  if (name == "ranks") return p.ranks();
  if (name == "mesh_rows") return p.mesh_rows;
  if (name == "mesh_cols") return p.mesh_cols;
  if (name == "lb_rounds") return p.lb_rounds;
  throw std::invalid_argument("unknown perfmodel extent '" + name + "'");
}

double ring_hops(double extent) { return std::max(extent - 1.0, 0.0); }

double tree_hops(double extent) {
  if (extent <= 1.0) return 0.0;
  return std::ceil(std::log2(extent));
}

double pairwise_rounds(double extent) { return std::max(extent, 0.0); }

Node leaf(std::string driver, double weight, Hypothesis hyp) {
  Node n;
  n.op = Node::Op::kLeaf;
  n.driver = std::move(driver);
  n.weight = weight;
  n.hyp = hyp;
  return n;
}

namespace {

Node structured(Node::Op op, std::string extent, std::vector<Node> children) {
  Node n;
  n.op = op;
  n.extent = std::move(extent);
  n.children = std::move(children);
  return n;
}

}  // namespace

Node sequence(std::vector<Node> children) {
  return structured(Node::Op::kSequence, "", std::move(children));
}
Node concurrent(std::vector<Node> children) {
  return structured(Node::Op::kConcurrent, "", std::move(children));
}
Node ring(std::string extent, std::vector<Node> children) {
  return structured(Node::Op::kRing, std::move(extent), std::move(children));
}
Node tree(std::string extent, std::vector<Node> children) {
  return structured(Node::Op::kTree, std::move(extent), std::move(children));
}
Node transpose(std::string extent, std::vector<Node> children) {
  return structured(Node::Op::kTranspose, std::move(extent),
                    std::move(children));
}
Node pairwise(std::string extent, std::vector<Node> children) {
  return structured(Node::Op::kPairwise, std::move(extent),
                    std::move(children));
}

double evaluate(const Node& node, const Point& point) {
  switch (node.op) {
    case Node::Op::kLeaf:
      return node.weight * basis(node.hyp, driver_value(node.driver, point));
    case Node::Op::kSequence: {
      double sum = 0.0;
      for (const Node& child : node.children) sum += evaluate(child, point);
      return sum;
    }
    case Node::Op::kConcurrent: {
      double best = 0.0;
      for (const Node& child : node.children)
        best = std::max(best, evaluate(child, point));
      return best;
    }
    case Node::Op::kRing:
    case Node::Op::kTree:
    case Node::Op::kPairwise: {
      const double e = extent_value(node.extent, point);
      const double hops = node.op == Node::Op::kRing    ? ring_hops(e)
                          : node.op == Node::Op::kTree ? tree_hops(e)
                                                       : pairwise_rounds(e);
      double sum = 0.0;
      for (const Node& child : node.children) sum += evaluate(child, point);
      return hops * sum;
    }
    case Node::Op::kTranspose: {
      const double e = extent_value(node.extent, point);
      if (e <= 1.0) return 0.0;
      double total = 0.0;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        const double mult = i == 0 ? (e - 1.0) : (e - 1.0) / e;
        total += mult * evaluate(node.children[i], point);
      }
      return total;
    }
  }
  return 0.0;
}

namespace {

const char* op_name(Node::Op op) {
  switch (op) {
    case Node::Op::kLeaf: return "leaf";
    case Node::Op::kSequence: return "sequence";
    case Node::Op::kConcurrent: return "concurrent";
    case Node::Op::kRing: return "ring";
    case Node::Op::kTree: return "tree";
    case Node::Op::kTranspose: return "transpose";
    case Node::Op::kPairwise: return "pairwise";
  }
  return "leaf";
}

Node::Op op_from_name(const std::string& name) {
  if (name == "leaf") return Node::Op::kLeaf;
  if (name == "sequence") return Node::Op::kSequence;
  if (name == "concurrent") return Node::Op::kConcurrent;
  if (name == "ring") return Node::Op::kRing;
  if (name == "tree") return Node::Op::kTree;
  if (name == "transpose") return Node::Op::kTranspose;
  if (name == "pairwise") return Node::Op::kPairwise;
  throw std::invalid_argument("unknown composition op '" + name + "'");
}

bool has_extent(Node::Op op) {
  return op == Node::Op::kRing || op == Node::Op::kTree ||
         op == Node::Op::kTranspose || op == Node::Op::kPairwise;
}

}  // namespace

trace::JsonValue node_json(const Node& node) {
  trace::JsonValue v = trace::JsonValue::object();
  v.set("op", op_name(node.op));
  if (node.op == Node::Op::kLeaf) {
    v.set("driver", node.driver);
    v.set("exponent_a", node.hyp.a);
    v.set("log_power_b", node.hyp.b);
    v.set("weight", node.weight);
    return v;
  }
  if (has_extent(node.op)) v.set("extent", node.extent);
  trace::JsonValue children = trace::JsonValue::array();
  for (const Node& child : node.children) children.push_back(node_json(child));
  v.set("children", children);
  return v;
}

Node node_from_json(const trace::JsonValue& v) {
  Node node;
  node.op = op_from_name(need_string(v, "op"));
  if (node.op == Node::Op::kLeaf) {
    node.driver = need_string(v, "driver");
    node.hyp.a = need_number(v, "exponent_a");
    node.hyp.b = static_cast<int>(need_number(v, "log_power_b"));
    node.weight = need_number(v, "weight");
    return node;
  }
  if (has_extent(node.op)) node.extent = need_string(v, "extent");
  const trace::JsonValue* children = v.find("children");
  if (!children || !children->is_array())
    throw std::invalid_argument("composition node JSON: missing children");
  for (const trace::JsonValue& child : children->items())
    node.children.push_back(node_from_json(child));
  return node;
}

namespace {

void collect_leaves_impl(const Node& node, std::vector<const Node*>& out) {
  if (node.op == Node::Op::kLeaf) {
    out.push_back(&node);
    return;
  }
  for (const Node& child : node.children) collect_leaves_impl(child, out);
}

void collect_mutable_leaves(Node& node, std::vector<Node*>& out) {
  if (node.op == Node::Op::kLeaf) {
    out.push_back(&node);
    return;
  }
  for (Node& child : node.children) collect_mutable_leaves(child, out);
}

void linear_terms_impl(const Node& node, const Point& point, double mult,
                       std::vector<double>& out) {
  switch (node.op) {
    case Node::Op::kLeaf:
      out.push_back(mult * basis(node.hyp, driver_value(node.driver, point)));
      return;
    case Node::Op::kSequence:
      for (const Node& child : node.children)
        linear_terms_impl(child, point, mult, out);
      return;
    case Node::Op::kConcurrent:
      throw std::invalid_argument(
          "cannot fit through a concurrent (max) node: not linear in the "
          "leaf weights");
    case Node::Op::kRing:
    case Node::Op::kTree:
    case Node::Op::kPairwise: {
      const double e = extent_value(node.extent, point);
      const double hops = node.op == Node::Op::kRing    ? ring_hops(e)
                          : node.op == Node::Op::kTree ? tree_hops(e)
                                                       : pairwise_rounds(e);
      for (const Node& child : node.children)
        linear_terms_impl(child, point, mult * hops, out);
      return;
    }
    case Node::Op::kTranspose: {
      const double e = extent_value(node.extent, point);
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        const double m =
            e <= 1.0 ? 0.0 : (i == 0 ? (e - 1.0) : (e - 1.0) / e);
        linear_terms_impl(node.children[i], point, mult * m, out);
      }
      return;
    }
  }
}

/// Solves the dense symmetric system A w = b by Gaussian elimination with
/// partial pivoting; returns false when singular (pivot below tol).
bool solve_dense(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>& w) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1.0e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  w.assign(n, 0.0);
  for (std::size_t col = n; col-- > 0;) {
    double sum = b[col];
    for (std::size_t c = col + 1; c < n; ++c) sum -= a[col][c] * w[c];
    w[col] = sum / a[col][col];
  }
  return true;
}

}  // namespace

std::vector<const Node*> collect_leaves(const Node& node) {
  std::vector<const Node*> out;
  collect_leaves_impl(node, out);
  return out;
}

std::vector<double> linear_terms(const Node& node, const Point& point) {
  std::vector<double> out;
  linear_terms_impl(node, point, 1.0, out);
  return out;
}

CompositeFit fit_composite(Node& node, const std::vector<Point>& points,
                           const std::vector<double>& y) {
  if (points.size() != y.size() || points.size() < 2)
    throw std::invalid_argument(
        "fit_composite needs >= 2 observations with matching x/y sizes");

  std::vector<Node*> leaves;
  collect_mutable_leaves(node, leaves);
  if (leaves.empty())
    throw std::invalid_argument("fit_composite: tree has no leaves");

  const std::size_t nobs = points.size();
  const std::size_t nterms = leaves.size() + 1;  // column 0 = intercept

  // Design matrix with per-column RMS normalisation: the raw terms span
  // many orders of magnitude (latency sums vs per-point compute), and the
  // normal equations square the condition number.
  std::vector<std::vector<double>> design(nobs,
                                          std::vector<double>(nterms, 0.0));
  for (std::size_t i = 0; i < nobs; ++i) {
    design[i][0] = 1.0;
    const std::vector<double> terms = linear_terms(node, points[i]);
    for (std::size_t j = 0; j < terms.size(); ++j) design[i][j + 1] = terms[j];
  }
  std::vector<double> scale(nterms, 1.0);
  std::vector<bool> active(nterms, true);
  for (std::size_t j = 0; j < nterms; ++j) {
    double ss = 0.0;
    for (std::size_t i = 0; i < nobs; ++i) ss += design[i][j] * design[i][j];
    scale[j] = std::sqrt(ss / nobs);
    if (scale[j] <= 0.0)
      active[j] = false;  // term identically zero over the sample
    else
      for (std::size_t i = 0; i < nobs; ++i) design[i][j] /= scale[j];
  }

  // Non-negative least squares by drop-and-refit (the admissibility rule
  // fit_hypothesis applies to c1, generalised): solve unconstrained on the
  // active set, drop the most negative weight (or a singular column), and
  // repeat. Terminates: each round removes one column.
  std::vector<double> weights(nterms, 0.0);
  for (;;) {
    std::vector<std::size_t> cols;
    for (std::size_t j = 0; j < nterms; ++j)
      if (active[j]) cols.push_back(j);
    if (cols.empty()) break;

    const std::size_t k = cols.size();
    std::vector<std::vector<double>> ata(k, std::vector<double>(k, 0.0));
    std::vector<double> aty(k, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a; b < k; ++b) {
        double sum = 0.0;
        for (std::size_t i = 0; i < nobs; ++i)
          sum += design[i][cols[a]] * design[i][cols[b]];
        ata[a][b] = ata[b][a] = sum;
      }
      for (std::size_t i = 0; i < nobs; ++i)
        aty[a] += design[i][cols[a]] * y[i];
    }

    std::vector<double> w;
    if (!solve_dense(ata, aty, w)) {
      // Singular: drop the trailing active column (deterministic choice)
      // and retry — collinear regressor sets always leave a solvable core.
      active[cols.back()] = false;
      continue;
    }
    std::size_t worst = k;
    double most_negative = -1.0e-12;
    for (std::size_t a = 0; a < k; ++a) {
      if (w[a] < most_negative) {
        most_negative = w[a];
        worst = a;
      }
    }
    if (worst != k) {
      active[cols[worst]] = false;
      continue;
    }
    std::fill(weights.begin(), weights.end(), 0.0);
    for (std::size_t a = 0; a < k; ++a) weights[cols[a]] = w[a];
    break;
  }

  // Undo the column scaling and write the fitted weights into the leaves.
  CompositeFit fit;
  fit.c0 = active[0] ? weights[0] / scale[0] : 0.0;
  for (std::size_t j = 0; j < leaves.size(); ++j) {
    const double w =
        active[j + 1] ? weights[j + 1] / scale[j + 1] : 0.0;
    leaves[j]->weight = w;
    if (w > 0.0) ++fit.terms_used;
  }

  double ss_res = 0.0, ss_tot = 0.0, mean = 0.0;
  for (const double v : y) mean += v;
  mean /= nobs;
  for (std::size_t i = 0; i < nobs; ++i) {
    const double predicted = fit.c0 + evaluate(node, points[i]);
    ss_res += (y[i] - predicted) * (y[i] - predicted);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  fit.rmse = std::sqrt(ss_res / nobs);
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace agcm::perfmodel
