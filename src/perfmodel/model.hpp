// Extra-P-style per-phase performance models.
//
// The paper's analysis is a set of scaling claims: the convolution polar
// filter costs O(nlon^2) per latitude line, the distributed FFT filter
// costs O(nlon log nlon), the filter transpose costs O(P) per rank, and
// the load-balanced physics keeps imbalance under a few percent. The
// virtual multicomputer can *measure* each phase at any point of the
// (ranks, resolution) plane — this module turns a handful of such
// measurements into an explicit, checkable model.
//
// Following the performance-model normal form used by Extra-P
// (Calotoiu et al., "Using automated performance modeling to find
// scalability bugs in complex codes", SC'13), each candidate model is
//
//     y(x) = c0 + c1 * x^a * log2(x)^b
//
// with the exponents (a, b) drawn from a small discrete hypothesis grid
// (a in {0, 0.25, ..., 3}, b in {0, 1, 2}) rather than free-fitted: the
// grid regularises the search the same way PMNF does, and makes the
// selected exponents *discrete artefacts* that byte-compare across
// machines even though the continuous coefficients carry rounding noise.
// For each hypothesis the coefficients come from a 2-parameter linear
// least-squares solve; model selection minimises leave-one-out
// cross-validation RMSE (not in-sample R^2, which always prefers the
// wiggliest hypothesis). Ties break toward the asymptotically *smaller*
// hypothesis because the grid is scanned complexity-ascending with a
// strict improvement test — so a constant series selects (0,0), not some
// x^3 model that also threads the points.
//
// Everything here is pure arithmetic over the input points: no host
// timing, no randomness, no global state. Determinism note: selected
// exponents are grid-discrete and exactly reproducible; c0/c1/r2/cv_rmse
// are doubles whose last bits may legitimately differ across compilers
// (FMA contraction), which is why the regression sentinel
// (tools/perf_diff.py) compares them with a 1e-9 relative band while
// holding exponents and verdicts to byte identity.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/json.hpp"

namespace agcm::perfmodel {

/// One candidate complexity class: phi(x) = x^a * log2(x)^b.
struct Hypothesis {
  double a = 0.0;  ///< power exponent, grid multiple of 0.25
  int b = 0;       ///< log2 power, 0..2

  bool operator==(const Hypothesis& rhs) const {
    return a == rhs.a && b == rhs.b;
  }
};

/// phi(x) = x^a * log2(x)^b, defined for x >= 1 (log clamped at 0 so
/// phi(1) = 0 for b > 0, matching the convention that log terms vanish
/// at the smallest scale).
double basis(const Hypothesis& hyp, double x);

/// True when `lhs` grows asymptotically strictly faster than `rhs`
/// (larger power exponent, or equal power and larger log power).
bool dominates(const Hypothesis& lhs, const Hypothesis& rhs);

/// Human-readable complexity label: "1" for (0,0), "x^2" for (2,0),
/// "x * log2(x)" for (1,1), "x^1.5 * log2(x)^2" for (1.5,2), ...
std::string complexity_label(const Hypothesis& hyp);

/// The default PMNF hypothesis grid, complexity-ascending:
/// a in {0, 0.25, ..., 3.0} (outer, ascending), b in {0, 1, 2} (inner).
std::vector<Hypothesis> default_grid();

/// One fitted model y(x) = c0 + c1 * phi_hyp(x).
struct FitResult {
  Hypothesis hyp;
  double c0 = 0.0;
  double c1 = 0.0;
  double r2 = 0.0;       ///< in-sample coefficient of determination
  double rmse = 0.0;     ///< in-sample root-mean-square residual
  double cv_rmse = 0.0;  ///< leave-one-out cross-validation RMSE

  std::string label() const { return complexity_label(hyp); }

  /// Model prediction at `x`.
  double evaluate(double x) const;
};

/// Least-squares fit of y = c0 + c1 * phi(x) for one fixed hypothesis.
/// Returns nullopt when the hypothesis is unusable for the data: fewer
/// than 2 points, a numerically singular normal matrix (phi collapses to
/// a constant over the sample), or a negative c1 (costs are modelled as
/// non-decreasing in scale; a hypothesis that only fits with negative
/// weight is the wrong complexity class, not a model). The (0,0)
/// hypothesis is fitted as the pure constant y = c0 = mean(y).
std::optional<FitResult> fit_hypothesis(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        const Hypothesis& hyp);

/// Fits every grid hypothesis and returns the one with the smallest
/// leave-one-out CV RMSE; ties keep the asymptotically smaller hypothesis
/// (strict `<` over a complexity-ascending scan). Requires >= 3 points
/// and x strictly positive; throws std::invalid_argument otherwise.
FitResult fit_model(const std::vector<double>& x,
                    const std::vector<double>& y);
FitResult fit_model(const std::vector<double>& x, const std::vector<double>& y,
                    const std::vector<Hypothesis>& grid);

/// Serialises a fit: {"complexity": "x^2", "exponent_a": 2, "log_power_b":
/// 0, "c0": ..., "c1": ..., "r2": ..., "rmse": ..., "cv_rmse": ...}.
trace::JsonValue fit_json(const FitResult& fit);

}  // namespace agcm::perfmodel
