#include "perfmodel/report.hpp"

#include <utility>

namespace agcm::perfmodel {

namespace {

std::string range_repr(double lo, double hi) {
  std::string out = "[";
  out += trace::JsonValue::number_repr(lo);
  out += ", ";
  out += trace::JsonValue::number_repr(hi);
  out += "]";
  return out;
}

}  // namespace

Verdict check_fit(const FitResult& fit, const Expectation& expectation) {
  Verdict verdict;
  const Hypothesis& hyp = fit.hyp;
  if (hyp.a < expectation.min_a || hyp.a > expectation.max_a) {
    verdict.pass = false;
    verdict.reason = "exponent_a=" + trace::JsonValue::number_repr(hyp.a) +
                     " outside " +
                     range_repr(expectation.min_a, expectation.max_a);
    return verdict;
  }
  if (hyp.b < expectation.min_b || hyp.b > expectation.max_b) {
    verdict.pass = false;
    verdict.reason = "log_power_b=" + std::to_string(hyp.b) + " outside [" +
                     std::to_string(expectation.min_b) + ", " +
                     std::to_string(expectation.max_b) + "]";
    return verdict;
  }
  if (fit.r2 < expectation.min_r2) {
    verdict.pass = false;
    verdict.reason = "r2 below " +
                     trace::JsonValue::number_repr(expectation.min_r2) +
                     " for selected class " + fit.label();
    return verdict;
  }
  verdict.pass = true;
  verdict.reason = "selected " + fit.label() + ", exponent in " +
                   range_repr(expectation.min_a, expectation.max_a) +
                   ", r2 above threshold";
  return verdict;
}

PhaseModel analyze(Series series, Expectation expectation) {
  PhaseModel model;
  model.fit = fit_model(series.x, series.y);
  model.series = std::move(series);
  model.expectation = std::move(expectation);
  model.verdict = check_fit(model.fit, model.expectation);
  return model;
}

trace::JsonValue series_json(const Series& series) {
  trace::JsonValue out = trace::JsonValue::object();
  out.set("phase", series.phase);
  out.set("parameter", series.parameter);
  out.set("metric", series.metric);
  trace::JsonValue xs = trace::JsonValue::array();
  for (const double v : series.x) xs.push_back(v);
  trace::JsonValue ys = trace::JsonValue::array();
  for (const double v : series.y) ys.push_back(v);
  out.set("x", std::move(xs));
  out.set("y", std::move(ys));
  return out;
}

trace::JsonValue phase_model_json(const PhaseModel& model) {
  trace::JsonValue out = trace::JsonValue::object();
  out.set("phase", model.series.phase);
  out.set("series", series_json(model.series));
  out.set("model", fit_json(model.fit));
  trace::JsonValue expect = trace::JsonValue::object();
  expect.set("expected", model.expectation.expected);
  expect.set("min_a", model.expectation.min_a);
  expect.set("max_a", model.expectation.max_a);
  expect.set("min_b", model.expectation.min_b);
  expect.set("max_b", model.expectation.max_b);
  expect.set("min_r2", model.expectation.min_r2);
  out.set("expectation", std::move(expect));
  trace::JsonValue verdict = trace::JsonValue::object();
  verdict.set("pass", model.verdict.pass);
  verdict.set("reason", model.verdict.reason);
  out.set("verdict", std::move(verdict));
  return out;
}

ModelReport::ModelReport(std::string name) : name_(std::move(name)) {}

void ModelReport::set_config(std::string_view key, trace::JsonValue value) {
  config_.set(key, std::move(value));
}

void ModelReport::add_phase(PhaseModel model) {
  phases_.push_back(std::move(model));
}

void ModelReport::add_gate(std::string_view name, bool pass,
                           std::string_view detail) {
  gates_.push_back(Gate{std::string(name), pass, std::string(detail)});
}

bool ModelReport::all_pass() const {
  for (const PhaseModel& phase : phases_) {
    if (!phase.verdict.pass) return false;
  }
  for (const Gate& gate : gates_) {
    if (!gate.pass) return false;
  }
  return true;
}

trace::JsonValue ModelReport::to_json() const {
  trace::JsonValue root = trace::JsonValue::object();
  root.set("report", name_);
  root.set("schema", "agcm-perfmodel-v1");
  root.set("config", config_);
  trace::JsonValue phases = trace::JsonValue::array();
  for (const PhaseModel& phase : phases_)
    phases.push_back(phase_model_json(phase));
  root.set("phases", std::move(phases));
  trace::JsonValue gates = trace::JsonValue::array();
  for (const Gate& gate : gates_) {
    trace::JsonValue entry = trace::JsonValue::object();
    entry.set("name", gate.name);
    entry.set("pass", gate.pass);
    entry.set("detail", gate.detail);
    gates.push_back(std::move(entry));
  }
  root.set("gates", std::move(gates));
  root.set("all_pass", all_pass());
  return root;
}

void ModelReport::write(const std::string& path) const {
  trace::write_text_file(path, to_json().dump_pretty() + "\n");
}

}  // namespace agcm::perfmodel
