#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace agcm {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double load_imbalance(std::span<const double> loads) {
  if (loads.empty()) return 0.0;
  const double avg = mean(loads);
  if (avg == 0.0) return 0.0;
  return (max_value(loads) - avg) / avg;
}

double load_efficiency(std::span<const double> loads) {
  if (loads.empty()) return 1.0;
  const double mx = max_value(loads);
  if (mx == 0.0) return 1.0;
  return mean(loads) / mx;
}

double percentile(std::span<const double> values, double q) {
  AGCM_ASSERT(!values.empty());
  AGCM_ASSERT(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return sum(values) / static_cast<double>(values.size());
}

double sum(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double max_value(std::span<const double> values) {
  AGCM_ASSERT(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double min_value(std::span<const double> values) {
  AGCM_ASSERT(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  AGCM_ASSERT(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

double rel_l2_error(std::span<const double> a, std::span<const double> b) {
  AGCM_ASSERT(a.size() == b.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

}  // namespace agcm
