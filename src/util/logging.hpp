// Minimal leveled logger. The parallel engine runs many ranks as threads, so
// every emit is a single atomic write to stderr.
#pragma once

#include <string_view>

#include "util/format.hpp"

namespace agcm::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Thread-safe.
void set_level(Level level);
Level level();

void emit(Level level, std::string_view msg);

template <typename... Args>
void debug(std::string_view fmt, const Args&... args) {
  if (level() <= Level::kDebug) emit(Level::kDebug, strformat(fmt, args...));
}

template <typename... Args>
void info(std::string_view fmt, const Args&... args) {
  if (level() <= Level::kInfo) emit(Level::kInfo, strformat(fmt, args...));
}

template <typename... Args>
void warn(std::string_view fmt, const Args&... args) {
  if (level() <= Level::kWarn) emit(Level::kWarn, strformat(fmt, args...));
}

template <typename... Args>
void error(std::string_view fmt, const Args&... args) {
  if (level() <= Level::kError) emit(Level::kError, strformat(fmt, args...));
}

}  // namespace agcm::log
