// Text-table rendering for the benchmark harness.
//
// Every bench binary reprints one of the paper's tables with a "paper" and a
// "measured" value per cell, so readers can compare shapes line by line.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace agcm {

/// A right-aligned text table with a title, column headers, and string cells.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends one row; pads or throws nothing if sizes differ (short rows are
  /// padded with empty cells, long rows extend the header with blanks).
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` digits after the point.
  static std::string num(double value, int precision = 1);
  /// "123.4 / 120.9" style paper-vs-measured cell.
  static std::string paper_vs(double paper, double measured, int precision = 1);
  /// Percentage cell, e.g. "37%".
  static std::string pct(double fraction, int precision = 0);

  /// Renders the full table, trailing newline included.
  std::string render() const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }

  // Structured access so tables can be re-emitted as JSON (bench output).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_cells() const {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints to stdout (single write).
void print_table(const Table& table);

}  // namespace agcm
