#include "util/shared_cache.hpp"

#include <atomic>
#include <mutex>

namespace agcm::util {

namespace {

struct Registered {
  std::string name;
  void (*clear)();
  SharedCacheStats (*stats)();
};

std::atomic<bool> g_enabled{true};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Registered>& registry() {
  static std::vector<Registered> r;
  return r;
}

}  // namespace

bool SharedCaches::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool SharedCaches::set_enabled(bool on) {
  return g_enabled.exchange(on, std::memory_order_relaxed);
}

void SharedCaches::clear_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Registered& cache : registry()) cache.clear();
}

std::vector<SharedCacheInfo> SharedCaches::stats() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<SharedCacheInfo> out;
  out.reserve(registry().size());
  for (const Registered& cache : registry())
    out.push_back({cache.name, cache.stats()});
  return out;
}

int SharedCaches::register_cache(std::string name, void (*clear)(),
                                 SharedCacheStats (*stats)()) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().push_back({std::move(name), clear, stats});
  return static_cast<int>(registry().size()) - 1;
}

}  // namespace agcm::util
