#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace agcm {

namespace detail {

void assert_fail(const char* expr, std::source_location loc) {
  std::fprintf(stderr, "AGCM_ASSERT failed: %s at %s:%u (%s)\n", expr,
               loc.file_name(), loc.line(), loc.function_name());
  std::abort();
}

void check_fail(const std::string& msg, std::source_location loc) {
  throw ConfigError(msg + " [" + loc.file_name() + ":" +
                    std::to_string(loc.line()) + "]");
}

}  // namespace detail

void check_config(bool cond, const std::string& msg, std::source_location loc) {
  if (!cond) detail::check_fail(msg, loc);
}

void check_config(bool cond, const char* msg, std::source_location loc) {
  if (!cond) detail::check_fail(std::string(msg), loc);
}

}  // namespace agcm
