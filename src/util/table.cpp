#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/format.hpp"

namespace agcm {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  while (cells.size() < headers_.size()) cells.emplace_back();
  while (headers_.size() < cells.size()) headers_.emplace_back();
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  return fixed(value, precision);
}

std::string Table::paper_vs(double paper, double measured, int precision) {
  return fixed(paper, precision) + " / " + fixed(measured, precision);
}

std::string Table::pct(double fraction, int precision) {
  return fixed(100.0 * fraction, precision) + "%";
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += ' ';
      out.append(widths[c] - cell.size(), ' ');
      out += cell;
      out += " |";
    }
    out += '\n';
  };

  std::string sep = "+";
  for (std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out;
  out += title_;
  out += '\n';
  out += sep;
  emit_row(headers_, out);
  out += sep;
  for (const auto& row : rows_) emit_row(row, out);
  out += sep;
  return out;
}

void print_table(const Table& table) {
  const std::string body = table.render() + "\n";
  std::fwrite(body.data(), 1, body.size(), stdout);
  std::fflush(stdout);
}

}  // namespace agcm
