#include "util/exec_local.hpp"

#include <atomic>
#include <utility>

namespace agcm::util {

namespace detail {
int allocate_exec_local_key() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

namespace {
thread_local ExecSlot* t_current_slot = nullptr;
}  // namespace

ExecSlot::~ExecSlot() {
  // Reverse construction order, matching the destruction order nested
  // thread_locals would have had.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->ptr != nullptr) it->dtor(it->ptr);
  }
}

ExecSlot* ExecSlot::current() noexcept { return t_current_slot; }

ExecSlot::Scope::Scope(ExecSlot* slot) noexcept
    : previous_(std::exchange(t_current_slot, slot)) {}

ExecSlot::Scope::~Scope() { t_current_slot = previous_; }

}  // namespace agcm::util
