// Per-execution-slot local storage: the explicit replacement for
// "thread_local = per-rank" state.
//
// The original simnet ran one host thread per virtual rank, so every
// library that needed per-rank scratch (fft plan caches, kernel flux
// arrays, filter exchange-size vectors) reached for `thread_local` and the
// equivalence was exact. The fiber scheduler breaks that equivalence: many
// rank fibers share one worker thread, and a fiber that parks inside a
// blocking recv while holding a workspace borrow must not see another
// fiber's hands in the same buffers when it resumes — possibly on a
// *different* worker thread.
//
// An `ExecSlot` is the per-rank handle that restores the old contract
// explicitly. Each rank of an SPMD run owns exactly one slot for the run's
// lifetime (the fiber scheduler keeps it on the fiber; the thread backend
// keeps it on the rank thread), and the running backend *installs* it
// around every slice of rank code it executes. Library code acquires
// per-rank state through `ExecSlot::current()`:
//
//     if (util::ExecSlot* slot = util::ExecSlot::current())
//       return slot->get<FftWorkspace>();   // per-rank, migration-safe
//     thread_local FftWorkspace fallback;   // tests/tools off the machine
//     return fallback;
//
// `get<T>()` lazily default-constructs one T per (slot, type) and owns it
// until the slot dies at the end of the run — so workspace lifetime per
// rank is identical under both backends, and the growth-only allocation
// contract ("allocation-free after warm-up") keeps holding: the single
// construction *is* the warm-up.
#pragma once

#include <cstddef>
#include <vector>

namespace agcm::util {

namespace detail {
/// Process-wide monotone key allocator; one key per distinct T ever used
/// with ExecSlot::get.
int allocate_exec_local_key();

template <typename T>
int exec_local_key() {
  static const int key = allocate_exec_local_key();
  return key;
}
}  // namespace detail

/// One rank's local storage: a type-indexed table of lazily constructed
/// singletons. Not thread-safe by itself — a slot is only ever touched by
/// the one rank that owns it (the backend guarantees a slot is installed
/// on at most one host thread at a time).
class ExecSlot {
 public:
  ExecSlot() = default;
  ExecSlot(const ExecSlot&) = delete;
  ExecSlot& operator=(const ExecSlot&) = delete;
  ~ExecSlot();

  /// The slot-local instance of T, default-constructed on first use.
  /// T must be default-constructible by ExecSlot (befriend it if the
  /// constructor is private).
  template <typename T>
  T& get() {
    const auto key = static_cast<std::size_t>(detail::exec_local_key<T>());
    if (entries_.size() <= key) entries_.resize(key + 1);
    Entry& e = entries_[key];
    if (e.ptr == nullptr) {
      e.ptr = new T();
      e.dtor = [](void* p) { delete static_cast<T*>(p); };
    }
    return *static_cast<T*>(e.ptr);
  }

  /// The slot installed on the calling host thread, or nullptr when the
  /// caller runs outside any SPMD backend (unit tests, tools, benches
  /// driving kernels directly).
  static ExecSlot* current() noexcept;

  /// RAII installer used by the simnet backends: the thread backend holds
  /// one Scope for the whole rank program; the fiber scheduler installs the
  /// fiber's slot before every resume and restores on every park.
  class Scope {
   public:
    explicit Scope(ExecSlot* slot) noexcept;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    ExecSlot* previous_;
  };

 private:
  struct Entry {
    void* ptr = nullptr;
    void (*dtor)(void*) = nullptr;
  };
  std::vector<Entry> entries_;
};

}  // namespace agcm::util
