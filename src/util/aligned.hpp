// Over-aligned allocation, shared by the layers that feed SIMD kernels.
//
// Originally private to grid/array3d.hpp; hoisted into util so the FFT
// twiddle tables and workspace scratch (fft/) can use the same 64-byte
// alignment as the field arrays without linking grid (agcm_fft depends on
// agcm_util only — see src/CMakeLists.txt for the layering).
#pragma once

#include <cstddef>
#include <new>

namespace agcm::util {

/// Minimal std::allocator drop-in that over-aligns every block to `Align`
/// bytes via the aligned operator new (so allocation-counting tests that
/// hook the global operators still see these allocations).
template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

}  // namespace agcm::util
