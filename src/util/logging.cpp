#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace agcm::log {

namespace {
std::atomic<Level> g_level{Level::kInfo};

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    default:            return "?????";
  }
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, std::string_view msg) {
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[agcm ";
  line += tag(lvl);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace agcm::log
