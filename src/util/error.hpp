// Error handling primitives for the AGCM reproduction library.
//
// Construction and configuration errors throw agcm::Error (invariants the
// caller can get wrong); internal invariants use AGCM_ASSERT which aborts,
// because a broken internal invariant inside the parallel engine cannot be
// recovered from rank-locally.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace agcm {

/// Base exception for all recoverable library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration (grid sizes, node meshes, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Malformed or truncated input data (history files, ...).
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

/// Misuse of the communication layer (mismatched message sizes, bad ranks).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, std::source_location loc);
[[noreturn]] void check_fail(const std::string& msg, std::source_location loc);
}  // namespace detail

/// Throws ConfigError with file:line context when `cond` is false.
void check_config(bool cond, const std::string& msg,
                  std::source_location loc = std::source_location::current());

/// Literal-message overload: defers all string construction to the failure
/// path, so steady-state validations (halo exchange, filter apply) stay
/// heap-allocation-free (tests/test_comm_alloc.cpp).
void check_config(bool cond, const char* msg,
                  std::source_location loc = std::source_location::current());

}  // namespace agcm

/// Hard internal invariant; aborts the process on violation.
#define AGCM_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::agcm::detail::assert_fail(#expr, std::source_location::current());  \
    }                                                                       \
  } while (false)

/// Bounds checks on inner-loop hot paths; compiled out unless
/// AGCM_BOUNDS_CHECK is defined (tests define it, benches don't).
#ifdef AGCM_BOUNDS_CHECK
#define AGCM_DBG_ASSERT(expr) AGCM_ASSERT(expr)
#else
#define AGCM_DBG_ASSERT(expr) \
  do {                        \
  } while (false)
#endif
