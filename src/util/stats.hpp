// Statistics helpers shared by the load-balancing modules and the benchmark
// harness: running moments, percentiles, and the paper's load-imbalance
// metric.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace agcm {

/// Single-pass running mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance; 0 when count < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The paper's imbalance metric (Section 3.4):
///   (MaxLoad - AverageLoad) / AverageLoad
/// Returns 0 for empty input or zero average load.
double load_imbalance(std::span<const double> loads);

/// Parallel efficiency of a load distribution: AverageLoad / MaxLoad.
double load_efficiency(std::span<const double> loads);

/// Linear-interpolated percentile; `q` in [0, 100]. Copies + sorts.
double percentile(std::span<const double> values, double q);

double mean(std::span<const double> values);
double sum(std::span<const double> values);
double max_value(std::span<const double> values);
double min_value(std::span<const double> values);

/// Max absolute difference between two equal-length sequences.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// Relative L2 error ||a-b|| / ||b|| (0 if both empty; ||a|| if ||b||==0).
double rel_l2_error(std::span<const double> a, std::span<const double> b);

}  // namespace agcm
