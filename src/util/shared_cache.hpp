// Process-wide shared-cache registry: the single switch and bookkeeping
// point for every read-only cache shared across concurrent Machines (FFT
// stage plans, FilterBank response/kernel tables, the longwave emissivity
// table — see docs/campaign.md for the safety argument).
//
// Contract for a participating cache:
//   * entries are IMMUTABLE after publication and never evicted while in
//     use (handed out as shared_ptr, or as pointers into never-freed
//     storage), so readers need no locks after acquisition;
//   * construction is deterministic — a cached entry is bit-identical to
//     one built fresh — so enabling the caches changes no results and no
//     virtual-time accounting (the frozen-artefact rule);
//   * the cache registers itself here on first use, exposing a clear hook
//     and hit/miss counters.
//
// `set_enabled(false)` makes every participating cache fall back to its
// historical per-rank / per-call construction path — the "cold cache"
// baseline the campaign throughput bench measures against. The toggle is
// read at acquisition time only; entries already handed out stay valid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace agcm::util {

struct SharedCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< entries actually built
};

struct SharedCacheInfo {
  std::string name;
  SharedCacheStats stats;
};

class SharedCaches {
 public:
  /// True (the default) unless disabled for a cold-cache baseline.
  static bool enabled();
  /// Flip the process-wide toggle; returns the previous value. Not meant
  /// to be raced against concurrent acquisitions mid-campaign — flip it
  /// between runs (benches/tests only; production leaves it on).
  static bool set_enabled(bool on);

  /// Drops every registered cache's entries (outstanding shared_ptr
  /// references stay alive). The cold-cache baseline calls this between
  /// cells so each experiment rebuilds its immutable state from scratch.
  static void clear_all();

  /// Registered caches with their counters, registration order.
  static std::vector<SharedCacheInfo> stats();

  /// Called by a cache on first use. `clear` drops its entries; `stats`
  /// reports its counters. Both must be callable concurrently with
  /// acquisitions. Returns an id (unused today; reserved for unregister).
  static int register_cache(std::string name, void (*clear)(),
                            SharedCacheStats (*stats)());

  /// RAII toggle for tests/benches: disables (or enables) on construction,
  /// restores on destruction.
  class ScopedEnable {
   public:
    explicit ScopedEnable(bool on) : previous_(set_enabled(on)) {}
    ~ScopedEnable() { set_enabled(previous_); }
    ScopedEnable(const ScopedEnable&) = delete;
    ScopedEnable& operator=(const ScopedEnable&) = delete;

   private:
    bool previous_;
  };
};

}  // namespace agcm::util
