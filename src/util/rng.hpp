// Deterministic, seedable random number generation.
//
// The physics load model and the property-based tests both need streams that
// are reproducible across hosts and independent of std:: library versions,
// so we carry our own xoshiro256** generator seeded through splitmix64.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace agcm {

/// splitmix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Deterministic sub-stream: independent generator derived from this seed
  /// and a stream id (rank, column index, ...). Used so every grid column
  /// gets its own reproducible stream regardless of evaluation order.
  static constexpr Rng for_stream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t sm = seed;
    const std::uint64_t a = splitmix64(sm);
    sm = stream ^ 0x2545F4914F6CDD1DULL;
    const std::uint64_t b = splitmix64(sm);
    return Rng(a ^ (b * 0x9E3779B97F4A7C15ULL));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace agcm
