// Minimal "{}" string formatting (std::format is unavailable on GCC 12,
// the oldest toolchain we support). Supports only the plain `{}`
// placeholder; numeric precision formatting goes through fixed() below.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace agcm {

namespace detail {
inline void format_one(std::ostringstream&, std::string_view&) {}

template <typename T, typename... Rest>
void format_one(std::ostringstream& out, std::string_view& fmt, const T& head,
                const Rest&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt;
    fmt = {};
    return;
  }
  out << fmt.substr(0, pos) << head;
  fmt.remove_prefix(pos + 2);
  format_one(out, fmt, rest...);
}
}  // namespace detail

/// Replaces successive "{}" placeholders with the streamed arguments.
/// Extra placeholders are emitted verbatim; extra arguments are dropped.
template <typename... Args>
std::string strformat(std::string_view fmt, const Args&... args) {
  std::ostringstream out;
  detail::format_one(out, fmt, args...);
  out << fmt;
  return out.str();
}

/// Fixed-point decimal with `precision` digits after the point.
inline std::string fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace agcm
