// The virtual multicomputer: runs an SPMD program with one host thread per
// virtual node. Real data moves between ranks (results are verifiable); the
// machine profile only prices the operations on each rank's virtual clock.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "simnet/machine_profile.hpp"
#include "simnet/network.hpp"
#include "simnet/virtual_clock.hpp"

namespace agcm::simnet {

/// Everything one rank of an SPMD program can touch. Byte-level transport;
/// the typed interface is comm::Communicator.
class RankContext {
 public:
  RankContext(int rank, Network& network, const MachineProfile& profile)
      : rank_(rank), network_(&network), clock_(profile) {}

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  int rank() const { return rank_; }
  int nranks() const { return network_->nranks(); }
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  Network& network() { return *network_; }

  /// Borrows a payload buffer of `bytes` logical size from the network's
  /// recycling pool — the zero-copy send path packs directly into it.
  Buffer acquire_buffer(std::size_t bytes) {
    return network_->pool().acquire(bytes);
  }

  /// Sends raw bytes to `dst` with `tag`; charges sender overhead and
  /// stamps the packet with the virtual departure time. Copies once, into
  /// pooled storage (allocation-free after pool warm-up).
  void send_bytes(int dst, std::int64_t tag, std::span<const std::byte> bytes);

  /// Zero-copy overload: the pooled buffer is moved into the packet, so
  /// callers that packed via acquire_buffer() inject without any copy.
  void send_bytes(int dst, std::int64_t tag, Buffer&& payload);

  /// Blocking receive of the next packet on channel (src, tag). Advances the
  /// virtual clock to the message arrival (wire latency + serialisation)
  /// and returns the pooled payload directly — no copy-out; the storage
  /// recycles into the pool when the returned Buffer dies.
  Buffer recv_bytes(int src, std::int64_t tag);

 private:
  int rank_;
  Network* network_;
  VirtualClock clock_;
};

/// Result of one SPMD run: per-rank virtual clocks and traffic totals.
struct RunResult {
  std::vector<double> finish_times;          ///< virtual now() at program end
  std::vector<TimeBreakdown> breakdowns;     ///< per-rank accounting
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;

  /// Virtual makespan: the slowest rank's finish time.
  double makespan() const;
};

/// Launches `nranks` instances of `program` (one per thread), joins them and
/// returns the virtual-time accounting. Exceptions thrown by any rank are
/// rethrown here (first one wins) after all threads have been joined.
class Machine {
 public:
  explicit Machine(MachineProfile profile) : profile_(std::move(profile)) {}

  const MachineProfile& profile() const { return profile_; }

  /// Deadlock-detection timeout for blocking receives (real milliseconds).
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

  RunResult run(int nranks, const std::function<void(RankContext&)>& program);

 private:
  MachineProfile profile_;
  int recv_timeout_ms_ = 60'000;
};

}  // namespace agcm::simnet
