// The virtual multicomputer: runs an SPMD program with one rank *fiber* per
// virtual node on a fixed worker pool (M:N scheduling — see simnet/fiber.hpp
// and docs/simnet.md), with the original thread-per-rank launcher kept as a
// selectable fallback backend. Real data moves between ranks (results are
// verifiable); the machine profile only prices the operations on each rank's
// virtual clock, so both backends produce bit-identical virtual times.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "simnet/machine_profile.hpp"
#include "simnet/network.hpp"
#include "simnet/virtual_clock.hpp"

namespace agcm::simnet {

/// Everything one rank of an SPMD program can touch. Byte-level transport;
/// the typed interface is comm::Communicator.
class RankContext {
 public:
  RankContext(int rank, Network& network, const MachineProfile& profile)
      : rank_(rank), network_(&network), clock_(profile) {}

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  int rank() const { return rank_; }
  int nranks() const { return network_->nranks(); }
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  Network& network() { return *network_; }

  /// Borrows a payload buffer of `bytes` logical size from the network's
  /// recycling pool — the zero-copy send path packs directly into it.
  Buffer acquire_buffer(std::size_t bytes) {
    return network_->pool().acquire(bytes);
  }

  /// Sends raw bytes to `dst` with `tag`; charges sender overhead and
  /// stamps the packet with the virtual departure time. Copies once, into
  /// pooled storage (allocation-free after pool warm-up).
  void send_bytes(int dst, std::int64_t tag, std::span<const std::byte> bytes);

  /// Zero-copy overload: the pooled buffer is moved into the packet, so
  /// callers that packed via acquire_buffer() inject without any copy.
  void send_bytes(int dst, std::int64_t tag, Buffer&& payload);

  /// Blocking receive of the next packet on channel (src, tag). Advances the
  /// virtual clock to the message arrival (wire latency + serialisation)
  /// and returns the pooled payload directly — no copy-out; the storage
  /// recycles into the pool when the returned Buffer dies.
  Buffer recv_bytes(int src, std::int64_t tag);

 private:
  int rank_;
  Network* network_;
  VirtualClock clock_;
};

/// Result of one SPMD run: per-rank virtual clocks and traffic totals.
struct RunResult {
  std::vector<double> finish_times;          ///< virtual now() at program end
  std::vector<TimeBreakdown> breakdowns;     ///< per-rank accounting
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;

  /// Virtual makespan: the slowest rank's finish time.
  double makespan() const;
};

/// How Machine::run executes rank programs on the host.
enum class SimBackend {
  kFibers,   ///< M:N fiber scheduler: worker pool ~ hardware concurrency,
             ///< one stackful coroutine per rank (default; scales to
             ///< thousands of ranks)
  kThreads,  ///< one OS thread per rank (original launcher; fallback, and
             ///< the reference for virtual-time bit-equality)
};

/// Launches `nranks` instances of `program` (one rank fiber each, scheduled
/// on a fixed worker pool — or one OS thread each under the kThreads
/// fallback), waits for all of them and returns the virtual-time
/// accounting. Exceptions thrown by any rank are rethrown here (first one
/// wins) after all ranks have stopped.
class Machine {
 public:
  explicit Machine(MachineProfile profile)
      : profile_(std::move(profile)), backend_(default_backend()) {}

  const MachineProfile& profile() const { return profile_; }

  /// Deadlock-detection timeout for blocking receives (real milliseconds).
  /// Only meaningful under the kThreads backend; the fiber scheduler
  /// detects deadlock by quiescence (all ranks parked) instead of by
  /// wall-clock, so it reports immediately and this knob is unused there.
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

  /// Overrides the execution backend for this machine. The process-wide
  /// default is kFibers, or the AGCM_SIMNET_BACKEND environment variable
  /// ("fibers" | "threads") when set.
  void set_backend(SimBackend backend) { backend_ = backend; }
  SimBackend backend() const { return backend_; }

  /// Worker-pool size for the fiber backend; 0 (default) resolves to
  /// min(nranks, hardware_concurrency), or AGCM_SIMNET_WORKERS when set.
  void set_workers(int workers) { workers_ = workers; }

  /// Per-fiber stack size; 0 (default) resolves to 512 KiB, or
  /// AGCM_SIMNET_STACK_KB when set. Virtual memory, lazily committed.
  void set_fiber_stack_bytes(std::size_t bytes) { fiber_stack_bytes_ = bytes; }

  /// The backend a fresh Machine starts with (environment-resolved).
  static SimBackend default_backend();

  RunResult run(int nranks, const std::function<void(RankContext&)>& program);

 private:
  RunResult collect(int nranks, Network& network,
                    const std::vector<std::unique_ptr<RankContext>>& contexts);
  void run_threads(int nranks,
                   const std::function<void(RankContext&)>& program,
                   std::vector<std::unique_ptr<RankContext>>& contexts);

  MachineProfile profile_;
  SimBackend backend_;
  int recv_timeout_ms_ = 60'000;
  int workers_ = 0;
  std::size_t fiber_stack_bytes_ = 0;
};

}  // namespace agcm::simnet
