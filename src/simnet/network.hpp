// In-memory message transport between virtual nodes.
//
// Every (src, dst, tag) channel preserves FIFO order, matching MPI point-to-
// point semantics. Payloads are raw bytes; the typed layer lives in
// comm/communicator.hpp. Each packet carries the sender's virtual departure
// time so the receiver can compute its virtual arrival.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

namespace agcm::simnet {

/// One in-flight message.
struct Packet {
  std::vector<std::byte> payload;
  double depart_time = 0.0;  ///< sender's virtual clock when injected
  int src = -1;
  std::int64_t tag = 0;  ///< wide: encodes (communicator context, user tag)
};

/// Per-destination mailbox; thread-safe.
class Mailbox {
 public:
  void push(Packet packet);

  /// Blocks until a packet from (src, tag) is available; FIFO per channel.
  /// Throws CommError after `timeout_ms` of real time (deadlock detection).
  Packet pop(int src, std::int64_t tag, int timeout_ms);

  /// Number of queued packets across all channels (diagnostics).
  std::size_t pending() const;

 private:
  using Key = std::pair<int, std::int64_t>;  // (src, tag)
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Packet>> channels_;
};

/// The whole interconnect: one mailbox per rank plus volume counters.
class Network {
 public:
  explicit Network(int nranks);

  int nranks() const { return nranks_; }
  Mailbox& mailbox(int rank);

  /// Deadlock-detection timeout for blocking receives (real milliseconds).
  void set_recv_timeout_ms(int ms) { timeout_ms_ = ms; }
  int recv_timeout_ms() const { return timeout_ms_; }

  /// Global traffic counters (atomic, aggregated across ranks).
  void count_message(std::size_t bytes);
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  void reset_counters();

 private:
  int nranks_;
  std::vector<Mailbox> mailboxes_;
  int timeout_ms_ = 60'000;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace agcm::simnet
