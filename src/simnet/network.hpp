// In-memory message transport between virtual nodes.
//
// Every (src, dst, tag) channel preserves FIFO order, matching MPI point-to-
// point semantics. Payloads are pooled byte buffers (see buffer_pool.hpp)
// that move — never copy — from the sender's pack loop to the receiver's
// unpack loop. The typed layer lives in comm/communicator.hpp. Each packet
// carries the sender's virtual departure time so the receiver can compute
// its virtual arrival.
//
// The mailbox is sharded: every channel owns its queue, mutex and wakeup
// slot, so a push wakes exactly the receiver parked on that channel instead
// of broadcasting to every blocked receiver of the rank, and queue
// operations never scan or lock unrelated channels. The channel table
// itself is an unordered_map guarded by a separate mutex that is only held
// for the O(1) lookup/insert.
//
// The wakeup slot is scheduler-integrated: under the fiber backend the
// blocked receive publishes its Fiber* as the channel's waiter and parks
// (a user-space context switch), and the sender unparks exactly that fiber;
// under the thread backend the same slot role is played by the channel's
// condition variable (notify_one). At most one receiver ever waits on a
// (src, tag) channel — the destination rank — so both wakeups are exact.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/buffer_pool.hpp"

namespace agcm::simnet {

class Fiber;

/// One in-flight message.
struct Packet {
  Buffer payload;
  double depart_time = 0.0;  ///< sender's virtual clock when injected
  int src = -1;
  std::int64_t tag = 0;  ///< wide: encodes (communicator context, user tag)
};

/// Queue depth of one (src, tag) channel — deadlock diagnostics.
struct ChannelInfo {
  int src = -1;
  std::int64_t tag = 0;
  std::size_t depth = 0;
};

/// Growth-only FIFO ring of packets. Unlike std::deque (whose forward-
/// walking cursors allocate and free a block node every handful of
/// operations even at constant depth), a ring at steady depth never touches
/// the heap — a requirement of the allocation-free transport contract
/// (tests/test_comm_alloc.cpp). Capacity is a power of two and only grows.
class PacketRing {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push(Packet&& packet) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(packet);
    ++count_;
  }

  Packet pop() {
    Packet packet = std::move(slots_[head_]);
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
    return packet;
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<Packet> next(cap);
    for (std::size_t q = 0; q < count_; ++q)
      next[q] = std::move(slots_[(head_ + q) & (slots_.size() - 1)]);
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<Packet> slots_;  ///< power-of-two capacity
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Per-destination mailbox; thread-safe, sharded per channel.
class Mailbox {
 public:
  void push(Packet packet);

  /// Blocks until a packet from (src, tag) is available; FIFO per channel.
  /// Throws CommError on deadlock, with a message listing every channel
  /// that has queued packets so a tag mismatch or ordering deadlock is
  /// visible at a glance. On a fiber the call parks the calling fiber and
  /// deadlock is detected by scheduler quiescence (immediately); on a plain
  /// thread it waits on the channel's condition variable and deadlock is a
  /// `timeout_ms` real-time timeout.
  Packet pop(int src, std::int64_t tag, int timeout_ms);

  /// Number of queued packets across all channels (diagnostics).
  std::size_t pending() const;

  /// Per-channel queue depths for every non-empty channel, sorted by
  /// (src, tag) — the payload of the enriched timeout diagnostics.
  std::vector<ChannelInfo> pending_channels() const;

 private:
  using Key = std::pair<int, std::int64_t>;  // (src, tag)

  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // splitmix64-style mix of the two halves; cheap and collision-free in
      // practice for the small (src, tag) universes a rank sees.
      std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.first)) << 48) ^
                        static_cast<std::uint64_t>(k.second);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };

  /// One FIFO channel shard: own lock, own queue, own wakeup. `waiter` is
  /// the fiber-backend wakeup slot (guarded by `mutex`): the parked
  /// receiver, published just before it switches out, cleared by the sender
  /// that wakes it. The condition variable serves the same role for
  /// thread-backend receivers.
  struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    Fiber* waiter = nullptr;
    PacketRing queue;
  };

  /// Finds or creates the channel shard for `key`. Channels are created on
  /// first touch and live for the mailbox's lifetime (stable addresses, so
  /// waiting threads never hold the table lock).
  Channel& channel(const Key& key);

  mutable std::mutex table_mutex_;
  std::unordered_map<Key, std::unique_ptr<Channel>, KeyHash> channels_;
};

/// The whole interconnect: one mailbox per rank, the shared payload buffer
/// pool, and volume counters.
class Network {
 public:
  explicit Network(int nranks);

  int nranks() const { return nranks_; }
  Mailbox& mailbox(int rank);

  /// The recycling payload pool shared by every rank of this network.
  BufferPool& pool() { return pool_; }

  /// Deadlock-detection timeout for blocking receives (real milliseconds).
  void set_recv_timeout_ms(int ms) { timeout_ms_ = ms; }
  int recv_timeout_ms() const { return timeout_ms_; }

  /// Global traffic counters (atomic, aggregated across ranks).
  void count_message(std::size_t bytes);
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  void reset_counters();

 private:
  int nranks_;
  BufferPool pool_;  ///< declared before mailboxes_: queued packets release
                     ///< their buffers into the pool during destruction
  std::vector<Mailbox> mailboxes_;
  int timeout_ms_ = 60'000;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace agcm::simnet
