#include "simnet/machine_profile.hpp"

#include <algorithm>

namespace agcm::simnet {

double MachineProfile::compute_time(double flops,
                                    double cache_efficiency) const {
  const double eff = std::clamp(cache_efficiency, 1.0e-3, 1.0);
  return flops / (flops_per_sec * eff);
}

// Calibration notes
// -----------------
// Absolute rates below are *sustained application* figures, not peaks:
//  * Paragon i860 XP peak was 75 MFLOP/s but real finite-difference Fortran
//    sustained low single-digit MFLOP/s (tiny 16 KB cache, weak compiler).
//  * T3D Alpha 21064 peak was 150 MFLOP/s; the paper reports the whole AGCM
//    runs ~2.5x faster than on the Paragon, so we use a ~2.5x flop rate.
//  * Latencies/bandwidths are from published NX / T3D SHMEM-era
//    microbenchmarks: Paragon ~70-100 us latency and ~70-90 MB/s sustained;
//    T3D ~2-20 us latency and ~120-150 MB/s for portable message layers.
// These numbers are fixed once here; no per-experiment tuning is applied.

MachineProfile MachineProfile::intel_paragon() {
  MachineProfile p;
  p.name = "Intel Paragon";
  p.flops_per_sec = 2.9e6;
  p.mem_bytes_per_sec = 45.0e6;
  p.cache_bytes = 16.0 * 1024;
  p.msg_latency_sec = 100.0e-6;
  p.link_bytes_per_sec = 80.0e6;
  // Application-level per-message software cost: NX plus the AGCM's
  // portability macro layer. Ping-pong microbenchmarks were ~3x cheaper,
  // but the paper's own transpose costs imply this range.
  p.send_overhead_sec = 150.0e-6;
  p.recv_overhead_sec = 150.0e-6;
  p.stencil_separate_eff = 0.12;  // paper: block array 5x faster at 32^3
  p.stencil_block_eff = 0.60;
  p.loop_startup_elems = 8.0;  // i860: deep pipelines, costly loop overhead
  return p;
}

MachineProfile MachineProfile::cray_t3d() {
  MachineProfile p;
  p.name = "Cray T3D";
  p.flops_per_sec = 7.4e6;
  p.mem_bytes_per_sec = 120.0e6;
  p.cache_bytes = 8.0 * 1024;
  p.msg_latency_sec = 15.0e-6;
  p.link_bytes_per_sec = 130.0e6;
  // As for the Paragon: portable message-passing cost, not raw SHMEM.
  p.send_overhead_sec = 60.0e-6;
  p.recv_overhead_sec = 60.0e-6;
  p.stencil_separate_eff = 0.18;  // paper: block array 2.6x faster at 32^3
  p.stencil_block_eff = 0.47;
  p.loop_startup_elems = 6.0;
  return p;
}

MachineProfile MachineProfile::ibm_sp2() {
  MachineProfile p;
  p.name = "IBM SP-2";
  p.flops_per_sec = 18.0e6;
  p.mem_bytes_per_sec = 200.0e6;
  p.cache_bytes = 64.0 * 1024;
  p.msg_latency_sec = 40.0e-6;
  p.link_bytes_per_sec = 35.0e6;
  p.send_overhead_sec = 25.0e-6;
  p.recv_overhead_sec = 25.0e-6;
  p.stencil_separate_eff = 0.45;  // larger caches: layout matters less
  p.stencil_block_eff = 0.80;
  p.loop_startup_elems = 4.0;
  return p;
}

MachineProfile MachineProfile::ideal() {
  MachineProfile p;
  p.name = "ideal";
  p.flops_per_sec = 1.0;
  p.mem_bytes_per_sec = 1.0e30;
  p.cache_bytes = 1.0e30;
  p.msg_latency_sec = 0.0;
  p.link_bytes_per_sec = 1.0e30;
  p.send_overhead_sec = 0.0;
  p.recv_overhead_sec = 0.0;
  p.stencil_separate_eff = 1.0;
  p.stencil_block_eff = 1.0;
  return p;
}

}  // namespace agcm::simnet
