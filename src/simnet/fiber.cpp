#include "simnet/fiber.hpp"

#if AGCM_SIMNET_HAS_FIBERS

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/exec_local.hpp"

// Sanitizer fiber annotations. Without these, ASan's fake-stack bookkeeping
// and TSan's per-thread shadow state both assume one stack per thread and
// report false positives (or crash) the first time a worker swaps stacks.
#if defined(__SANITIZE_ADDRESS__)
#define AGCM_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AGCM_FIBER_ASAN 1
#endif
#endif
#ifndef AGCM_FIBER_ASAN
#define AGCM_FIBER_ASAN 0
#endif

#if defined(__SANITIZE_THREAD__)
#define AGCM_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AGCM_FIBER_TSAN 1
#endif
#endif
#ifndef AGCM_FIBER_TSAN
#define AGCM_FIBER_TSAN 0
#endif

#if AGCM_FIBER_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}
#endif

#if AGCM_FIBER_TSAN
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

// glibc's swapcontext makes a sigprocmask *syscall* on every switch, which
// caps the scheduler at ~1 µs per park/wake — the dominant cost of a
// message-bound sweep. On x86-64 SysV we switch in user space instead:
// save the callee-saved registers + FP control words, flip %rsp, restore
// (the boost.context / libaco technique). ~20 ns per switch, no kernel
// involvement, and the signal mask is simply left alone (rank programs
// never change it). Other architectures fall back to ucontext.
#if defined(__x86_64__) && defined(__ELF__) && \
    (defined(__GNUC__) || defined(__clang__))
#define AGCM_FIBER_FAST_SWITCH 1
#else
#define AGCM_FIBER_FAST_SWITCH 0
#endif

#if AGCM_FIBER_FAST_SWITCH
extern "C" {
/// Saves the current continuation at *save_sp and resumes restore_sp.
void agcm_fiber_swap(void** save_sp, void* restore_sp);
/// First-entry thunk: the seeded frame "returns" here with %r12 = Impl*
/// and %rbx = the C++ trampoline; it shuffles the pointer into %rdi and
/// calls in (the trampoline never returns).
void agcm_fiber_entry(void);
}

// Frame layout, matching the push/pop order in agcm_fiber_swap (low to
// high): [0] mxcsr+fcw, [8] r15, [16] r14, [24] r13, [32] r12, [40] rbx,
// [48] rbp, [56] return address. 64 bytes, 16-aligned.
asm(R"(
.text
.align 16
.globl agcm_fiber_swap
.type agcm_fiber_swap,@function
agcm_fiber_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr (%rsp)
  fnstcw 4(%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr (%rsp)
  fldcw 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  retq
.size agcm_fiber_swap,.-agcm_fiber_swap

.align 16
.globl agcm_fiber_entry
.type agcm_fiber_entry,@function
agcm_fiber_entry:
  movq %r12, %rdi
  callq *%rbx
  ud2
.size agcm_fiber_entry,.-agcm_fiber_entry

.section .note.GNU-stack,"",@progbits
.text
)");
#endif  // AGCM_FIBER_FAST_SWITCH

namespace agcm::simnet {

namespace {

thread_local Fiber* t_current_fiber = nullptr;

std::size_t page_size() {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

int env_int(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return std::atoi(value);
}

/// One switchable execution context: either a worker thread's native
/// context (no owned stack) or a fiber's prepared one. Carries the
/// sanitizer identities that must travel with every switch.
struct ExecContext {
#if AGCM_FIBER_FAST_SWITCH
  void* sp = nullptr;  ///< saved stack pointer (agcm_fiber_swap frame)
#else
  ucontext_t uc{};
#endif
  // Stack bounds as reported to ASan. For fibers these are the mmap'd
  // stack; for a worker's native context they start unknown and are filled
  // in by the first __sanitizer_finish_switch_fiber that lands on a fiber
  // switched from this context (ASan reports the previously-active stack).
  const void* stack_bottom = nullptr;
  std::size_t stack_size = 0;
  // The context we most recently switched away from; arrival code uses it
  // to write the source's stack bounds back (see switch_context).
  ExecContext* resume_from = nullptr;
#if AGCM_FIBER_ASAN
  void* asan_fake_stack = nullptr;
#endif
#if AGCM_FIBER_TSAN
  void* tsan_fiber = nullptr;
  bool tsan_owned = false;
#endif
};

/// Book-keeping done on arrival in `self` after a swapcontext landed here
/// (both first entries and resumes).
inline void finish_switch(ExecContext& self) {
#if AGCM_FIBER_ASAN
  if (self.resume_from != nullptr) {
    __sanitizer_finish_switch_fiber(self.asan_fake_stack,
                                    &self.resume_from->stack_bottom,
                                    &self.resume_from->stack_size);
  } else {
    __sanitizer_finish_switch_fiber(self.asan_fake_stack, nullptr, nullptr);
  }
#else
  (void)self;
#endif
}

/// Switches host execution from `from` to `to`. When `from_dying` the
/// source context never resumes (its stack may be released); ASan is told
/// to free the fake stack by passing a null save slot.
inline void switch_context(ExecContext& from, ExecContext& to,
                           bool from_dying = false) {
  to.resume_from = &from;
#if AGCM_FIBER_TSAN
  __tsan_switch_to_fiber(to.tsan_fiber, 0);
#endif
#if AGCM_FIBER_ASAN
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &from.asan_fake_stack,
                                 to.stack_bottom, to.stack_size);
#else
  (void)from_dying;
#endif
#if AGCM_FIBER_FAST_SWITCH
  agcm_fiber_swap(&from.sp, to.sp);
#else
  ::swapcontext(&from.uc, &to.uc);
#endif
  // Only reached when `from` is resumed later (never for a dying context).
  finish_switch(from);
}

}  // namespace

Fiber* current_fiber() noexcept { return t_current_fiber; }

enum class FiberState {
  kRunnable,              // in the run queue
  kRunning,               // executing on some worker
  kParking,               // announced intent to park; still on its stack
  kParked,                // fully switched out, waiting for unpark
  kUnparkedWhileParking,  // unpark raced with the park hand-off
  kFinished,              // body returned (or threw)
};

struct Fiber::Impl {
  int index = 0;
  FiberScheduler* scheduler = nullptr;
  FiberState state = FiberState::kRunnable;
  ExecContext ctx;
  void* stack_base = nullptr;  // mmap base (guard page + usable stack)
  std::size_t stack_total = 0;
  util::ExecSlot slot;
};

class FiberScheduler {
 public:
  FiberScheduler(int count, const std::function<void(int)>& body,
                 const FiberSchedulerOptions& options)
      : body_(body), nfibers_(count) {
    stack_bytes_ = options.stack_bytes;
    if (stack_bytes_ == 0) {
      const int kb = env_int("AGCM_SIMNET_STACK_KB");
      stack_bytes_ = kb > 0 ? static_cast<std::size_t>(kb) * 1024
                            : std::size_t{512} * 1024;
    }
    stack_bytes_ = std::max(round_up_pages(stack_bytes_), 4 * page_size());

    workers_ = options.workers;
    if (workers_ <= 0) workers_ = env_int("AGCM_SIMNET_WORKERS");
    if (workers_ <= 0)
      workers_ = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
    workers_ = std::min(workers_, nfibers_);

    // Preallocated ring: a fiber is enqueued at most once at a time, so
    // capacity nfibers_ suffices and enqueue/unpark never allocate (the
    // scheduler must not break the engine's allocation-free steady state).
    run_queue_.resize(static_cast<std::size_t>(nfibers_), nullptr);

    fibers_.reserve(static_cast<std::size_t>(nfibers_));
    for (int i = 0; i < nfibers_; ++i) {
      fibers_.emplace_back(new Fiber());
      Fiber::Impl& f = *fibers_.back()->impl_;
      f.index = i;
      f.scheduler = this;
      allocate_stack(f);
      enqueue_locked(fibers_.back().get());
    }
  }

  ~FiberScheduler() {
    for (auto& fiber : fibers_) release_stack(*fiber->impl_);
  }

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  void run() {
    {
      std::vector<std::jthread> pool;
      pool.reserve(static_cast<std::size_t>(workers_));
      for (int w = 0; w < workers_; ++w)
        pool.emplace_back([this] { worker_main(); });
    }
    if (first_error_) std::rethrow_exception(first_error_);
  }

  void unpark(Fiber* fiber) {
    Fiber::Impl& f = *fiber->impl_;
    std::lock_guard<std::mutex> lock(mutex_);
    if (f.state == FiberState::kParked) {
      f.state = FiberState::kRunnable;
      --parked_;
      enqueue_locked(fiber);
      work_cv_.notify_one();
    } else if (f.state == FiberState::kParking) {
      f.state = FiberState::kUnparkedWhileParking;
    }
    // kRunnable / kRunning / kFinished: the wake is stale (only possible
    // after a deadlock sweep already rescheduled the fiber) — ignore.
  }

  bool deadlocked() const noexcept {
    return deadlocked_.load(std::memory_order_acquire);
  }

 private:
  friend class Fiber;

  void allocate_stack(Fiber::Impl& f) {
    const std::size_t guard = page_size();
    f.stack_total = guard + stack_bytes_;
    void* base = ::mmap(nullptr, f.stack_total, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED)
      throw std::runtime_error(
          "simnet: mmap of fiber stack failed (" +
          std::to_string(f.stack_total) + " bytes for " +
          std::to_string(nfibers_) + " fibers); reduce AGCM_SIMNET_STACK_KB "
          "or use AGCM_SIMNET_BACKEND=threads");
    ::mprotect(base, guard, PROT_NONE);
    f.stack_base = base;
    char* usable = static_cast<char*>(base) + guard;
    f.ctx.stack_bottom = usable;
    f.ctx.stack_size = stack_bytes_;

#if AGCM_FIBER_FAST_SWITCH
    // Seed the frame agcm_fiber_swap will "return" into on first entry
    // (layout documented at the asm definition). The top is 16-aligned so
    // agcm_fiber_entry's indirect call leaves %rsp per the SysV ABI.
    const auto top = reinterpret_cast<std::uintptr_t>(usable + stack_bytes_) &
                     ~std::uintptr_t{15};
    auto* frame = reinterpret_cast<std::uint64_t*>(top - 64);
    std::uint32_t mxcsr = 0;
    std::uint16_t fcw = 0;
    asm volatile("stmxcsr %0" : "=m"(mxcsr));
    asm volatile("fnstcw %0" : "=m"(fcw));
    frame[0] = static_cast<std::uint64_t>(mxcsr) |
               (static_cast<std::uint64_t>(fcw) << 32);
    frame[1] = 0;  // r15
    frame[2] = 0;  // r14
    frame[3] = 0;  // r13
    frame[4] = reinterpret_cast<std::uint64_t>(&f);  // r12: trampoline arg
    void (*entry)(Fiber::Impl*) = &FiberScheduler::trampoline;
    frame[5] = reinterpret_cast<std::uint64_t>(entry);  // rbx: call target
    frame[6] = 0;                                       // rbp
    frame[7] = reinterpret_cast<std::uint64_t>(&agcm_fiber_entry);  // ret
    f.ctx.sp = frame;
#else
    ::getcontext(&f.ctx.uc);
    f.ctx.uc.uc_stack.ss_sp = usable;
    f.ctx.uc.uc_stack.ss_size = stack_bytes_;
    f.ctx.uc.uc_link = nullptr;
    // makecontext only passes ints; split the pointer into two halves.
    const auto addr = reinterpret_cast<std::uintptr_t>(&f);
    const auto hi = static_cast<unsigned>(addr >> 32);
    const auto lo = static_cast<unsigned>(addr & 0xffffffffu);
    ::makecontext(&f.ctx.uc, reinterpret_cast<void (*)()>(&trampoline_ints), 2,
                  hi, lo);
#endif
#if AGCM_FIBER_TSAN
    f.ctx.tsan_fiber = __tsan_create_fiber(0);
    f.ctx.tsan_owned = true;
#endif
  }

  void release_stack(Fiber::Impl& f) {
    if (f.stack_base != nullptr) {
      ::munmap(f.stack_base, f.stack_total);
      f.stack_base = nullptr;
    }
#if AGCM_FIBER_TSAN
    if (f.ctx.tsan_owned) {
      __tsan_destroy_fiber(f.ctx.tsan_fiber);
      f.ctx.tsan_owned = false;
    }
#endif
  }

  static void trampoline(Fiber::Impl* f) {
    finish_switch(f->ctx);  // complete the ASan hand-off of the first entry
    FiberScheduler* sched = f->scheduler;
    try {
      sched->body_(f->index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(sched->error_mutex_);
      if (!sched->first_error_) sched->first_error_ = std::current_exception();
    }
    f->state = FiberState::kFinished;
    // The stack dies with this switch; control never returns here.
    switch_context(f->ctx, *f->ctx.resume_from, /*from_dying=*/true);
  }

#if !AGCM_FIBER_FAST_SWITCH
  /// ucontext fallback entry: makecontext only passes ints, so the Impl
  /// pointer travels as two halves.
  static void trampoline_ints(unsigned hi, unsigned lo) {
    trampoline(reinterpret_cast<Fiber::Impl*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo)));
  }
#endif

  void worker_main() {
    ExecContext native;
#if AGCM_FIBER_TSAN
    native.tsan_fiber = __tsan_get_current_fiber();
#endif
    for (;;) {
      Fiber* fiber = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [this] {
          return queue_count_ > 0 || finished_ == nfibers_;
        });
        if (finished_ == nfibers_) return;
        fiber = dequeue_locked();
        fiber->impl_->state = FiberState::kRunning;
        ++running_;
      }
      run_slice(native, fiber);
    }
  }

  /// Resumes `fiber` on this worker until it parks or finishes, then
  /// settles its state under the scheduler lock.
  void run_slice(ExecContext& native, Fiber* fiber) {
    Fiber::Impl& f = *fiber->impl_;
    t_current_fiber = fiber;
    {
      util::ExecSlot::Scope scope(&f.slot);
      switch_context(native, f.ctx);
    }
    t_current_fiber = nullptr;

    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      switch (f.state) {
        case FiberState::kParking:
          f.state = FiberState::kParked;
          ++parked_;
          check_deadlock_locked();
          break;
        case FiberState::kUnparkedWhileParking:
          f.state = FiberState::kRunnable;
          enqueue_locked(fiber);
          work_cv_.notify_one();
          break;
        case FiberState::kFinished:
          ++finished_;
          finished = true;
          if (finished_ == nfibers_)
            work_cv_.notify_all();
          else
            check_deadlock_locked();
          break;
        default:
          break;  // unreachable: a resumed fiber parks or finishes
      }
    }
    // Reclaim the 512 KiB stack eagerly so a P=1024 sweep's resident set
    // tracks live fibers, not total fibers.
    if (finished) release_stack(f);
  }

  /// Pre: scheduler mutex held. When every live fiber is parked no message
  /// can ever arrive; flag the run and wake all parked fibers so their
  /// blocked recvs throw with diagnostics.
  void check_deadlock_locked() {
    if (deadlocked_.load(std::memory_order_relaxed)) return;
    if (running_ != 0 || queue_count_ != 0 || parked_ == 0) return;
    if (parked_ + finished_ != nfibers_) return;
    deadlocked_.store(true, std::memory_order_release);
    for (auto& fiber : fibers_) {
      if (fiber->impl_->state == FiberState::kParked) {
        fiber->impl_->state = FiberState::kRunnable;
        --parked_;
        enqueue_locked(fiber.get());
      }
    }
    work_cv_.notify_all();
  }

  void enqueue_locked(Fiber* fiber) {
    run_queue_[(queue_head_ + queue_count_) % run_queue_.size()] = fiber;
    ++queue_count_;
  }

  Fiber* dequeue_locked() {
    Fiber* fiber = run_queue_[queue_head_];
    queue_head_ = (queue_head_ + 1) % run_queue_.size();
    --queue_count_;
    return fiber;
  }

  std::function<void(int)> body_;
  int nfibers_ = 0;
  int workers_ = 0;
  std::size_t stack_bytes_ = 0;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<Fiber*> run_queue_;
  std::size_t queue_head_ = 0;
  std::size_t queue_count_ = 0;
  int running_ = 0;
  int parked_ = 0;
  int finished_ = 0;
  std::atomic<bool> deadlocked_{false};

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

Fiber::Fiber() : impl_(new Impl()) {}
Fiber::~Fiber() { delete impl_; }

int Fiber::index() const noexcept { return impl_->index; }

void Fiber::prepare_park() noexcept { impl_->state = FiberState::kParking; }

void Fiber::park() {
  // Switch back to the worker that resumed us; run_slice() settles the
  // Parking -> Parked (or Unparked -> requeue) transition under the
  // scheduler lock once we are fully off this stack.
  switch_context(impl_->ctx, *impl_->ctx.resume_from);
}

void Fiber::unpark() { impl_->scheduler->unpark(this); }

bool Fiber::run_deadlocked() const noexcept {
  return impl_->scheduler->deadlocked();
}

void run_fibers(int count, const std::function<void(int)>& body,
                const FiberSchedulerOptions& options) {
  if (count <= 0) return;
  FiberScheduler scheduler(count, body, options);
  scheduler.run();
}

}  // namespace agcm::simnet

#endif  // AGCM_SIMNET_HAS_FIBERS
