// Machine profiles for the virtual multicomputer.
//
// The paper's measurements were taken on the Intel Paragon and the Cray T3D
// (plus a few runs on the IBM SP-2). Neither machine exists anymore, so the
// reproduction executes real SPMD programs on host threads and charges their
// compute and communication to a deterministic virtual clock using the
// per-node parameters below. The *shape* of every result (speedups, ratios,
// crossovers) then emerges from the algorithms; the profile only sets the
// absolute scale.
#pragma once

#include <string>

namespace agcm::simnet {

/// Per-node performance model of a 1990s distributed-memory multicomputer.
struct MachineProfile {
  std::string name;

  /// Effective floating-point rate (flops/s) for well-behaved inner loops.
  /// This is *sustained application* performance, far below peak — the paper
  /// notes "the overall performance of the parallel AGCM code is well below
  /// the peak performances on both Intel Paragon and Cray T3D nodes".
  double flops_per_sec = 1.0e9;

  /// Sustained memory bandwidth (bytes/s) for cache-missing streams; used by
  /// the cache-efficiency model of the single-node experiments.
  double mem_bytes_per_sec = 1.0e9;

  /// Data cache capacity per node (bytes); kernels whose working set
  /// overflows this run at reduced efficiency.
  double cache_bytes = 16.0 * 1024;

  /// Message-passing parameters (LogP-flavoured):
  double msg_latency_sec = 1.0e-6;    ///< network transit latency per message
  double link_bytes_per_sec = 1.0e8;  ///< point-to-point bandwidth
  double send_overhead_sec = 1.0e-6;  ///< CPU time on the sender per message
  double recv_overhead_sec = 1.0e-6;  ///< CPU time on the receiver per message

  /// Pipeline/loop-startup model: an inner loop over n elements runs at
  /// n / (n + loop_startup_elems) of the sustained rate. On the i860 and
  /// the 21064 short loops paid heavily for pipeline fill and loop
  /// overhead; this is why the 240-node meshes (local blocks only ~5
  /// columns wide) scaled poorly while whole-line FFTs did not.
  double loop_startup_elems = 0.0;

  /// Efficiency factor for an inner loop of length n (1.0 when the profile
  /// has no startup cost).
  double loop_efficiency(double n) const {
    if (loop_startup_elems <= 0.0) return 1.0;
    return n / (n + loop_startup_elems);
  }

  /// Saturated cache efficiencies for the Section-3.4 multi-field stencil
  /// experiment, per layout, once the working set far exceeds the cache.
  /// These are *anchors taken from the paper's own measurements* (block
  /// array 5x faster on the Paragon, 2.6x on the T3D at 32^3), not a
  /// microarchitectural simulation; singlenode/stencil.cpp interpolates
  /// between the in-cache regime (~0.95) and these floors.
  double stencil_separate_eff = 0.5;
  double stencil_block_eff = 0.8;

  /// Wire time of one message of `bytes` once injected (latency + serialize).
  double transfer_time(double bytes) const {
    return msg_latency_sec + bytes / link_bytes_per_sec;
  }

  /// Virtual seconds to execute `flops` at a given cache efficiency in (0,1].
  double compute_time(double flops, double cache_efficiency = 1.0) const;

  /// Intel Paragon XP/S node (i860 XP, 16 KB data cache). Calibrated so that
  /// the one-node 144x90x9 AGCM run lands at the paper's order of magnitude
  /// (Dynamics ~8700 s/simulated-day, Table 4).
  static MachineProfile intel_paragon();

  /// Cray T3D node (DEC Alpha 21064, 8 KB direct-mapped data cache). The
  /// paper observes the AGCM runs ~2.5x faster than on the Paragon, with
  /// much lower message latency.
  static MachineProfile cray_t3d();

  /// IBM SP-2 node (POWER2). The paper mentions SP-2 runs but prints no
  /// table; provided as an extension profile.
  static MachineProfile ibm_sp2();

  /// Idealised machine: infinite network, unit compute. For unit tests that
  /// check virtual-time arithmetic exactly.
  static MachineProfile ideal();
};

}  // namespace agcm::simnet
