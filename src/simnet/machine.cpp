#include "simnet/machine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string_view>
#include <thread>

#include "simnet/fiber.hpp"
#include "util/error.hpp"
#include "util/exec_local.hpp"

namespace agcm::simnet {

void RankContext::send_bytes(int dst, std::int64_t tag,
                             std::span<const std::byte> bytes) {
  Buffer payload = acquire_buffer(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(payload.data(), bytes.data(), bytes.size());
  }
  send_bytes(dst, tag, std::move(payload));
}

void RankContext::send_bytes(int dst, std::int64_t tag, Buffer&& payload) {
  if (dst < 0 || dst >= nranks()) {
    throw CommError("send to invalid rank " + std::to_string(dst));
  }
  clock_.charge_send_overhead();
  Packet packet;
  packet.payload = std::move(payload);
  packet.depart_time = clock_.now();
  packet.src = rank_;
  packet.tag = tag;
  network_->count_message(packet.payload.size());
  network_->mailbox(dst).push(std::move(packet));
}

Buffer RankContext::recv_bytes(int src, std::int64_t tag) {
  if (src < 0 || src >= nranks()) {
    throw CommError("recv from invalid rank " + std::to_string(src));
  }
  Packet packet =
      network_->mailbox(rank_).pop(src, tag, network_->recv_timeout_ms());
  const double arrival =
      packet.depart_time +
      clock_.profile().transfer_time(static_cast<double>(packet.payload.size()));
  clock_.apply_arrival(arrival);
  return std::move(packet.payload);
}

double RunResult::makespan() const {
  if (finish_times.empty()) return 0.0;
  return *std::max_element(finish_times.begin(), finish_times.end());
}

SimBackend Machine::default_backend() {
#if AGCM_SIMNET_HAS_FIBERS
  const char* env = std::getenv("AGCM_SIMNET_BACKEND");
  if (env != nullptr && std::string_view(env) == "threads")
    return SimBackend::kThreads;
  return SimBackend::kFibers;
#else
  return SimBackend::kThreads;
#endif
}

void Machine::run_threads(int nranks,
                          const std::function<void(RankContext&)>& program,
                          std::vector<std::unique_ptr<RankContext>>& contexts) {
  std::mutex error_mutex;
  std::exception_ptr first_error;

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r] {
        // Per-rank local storage (workspaces) lives on an explicit slot
        // under both backends, so the thread backend matches the fiber
        // scheduler's workspace lifetime exactly (one per rank per run).
        util::ExecSlot slot;
        util::ExecSlot::Scope scope(&slot);
        try {
          program(*contexts[static_cast<std::size_t>(r)]);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }  // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
}

RunResult Machine::run(int nranks,
                       const std::function<void(RankContext&)>& program) {
  check_config(nranks > 0, "Machine::run requires nranks > 0");
  Network network(nranks);
  network.set_recv_timeout_ms(recv_timeout_ms_);

  std::vector<std::unique_ptr<RankContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    contexts.push_back(std::make_unique<RankContext>(r, network, profile_));
  }

#if AGCM_SIMNET_HAS_FIBERS
  if (backend_ == SimBackend::kFibers) {
    FiberSchedulerOptions options;
    options.workers = workers_;
    options.stack_bytes = fiber_stack_bytes_;
    run_fibers(
        nranks,
        [&](int r) { program(*contexts[static_cast<std::size_t>(r)]); },
        options);
  } else {
    run_threads(nranks, program, contexts);
  }
#else
  run_threads(nranks, program, contexts);
#endif

  return collect(nranks, network, contexts);
}

RunResult Machine::collect(
    int nranks, Network& network,
    const std::vector<std::unique_ptr<RankContext>>& contexts) {
  RunResult result;
  result.finish_times.reserve(static_cast<std::size_t>(nranks));
  result.breakdowns.reserve(static_cast<std::size_t>(nranks));
  for (const auto& ctx : contexts) {
    result.finish_times.push_back(ctx->clock().now());
    result.breakdowns.push_back(ctx->clock().breakdown());
  }
  result.total_messages = network.total_messages();
  result.total_bytes = network.total_bytes();
  return result;
}

}  // namespace agcm::simnet
