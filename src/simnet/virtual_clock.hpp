// Per-rank virtual clock.
//
// Each virtual node owns one clock, advanced only by its own thread:
//  * compute work advances it by flops / (rate * cache_efficiency),
//  * receiving a message advances it to at least the message arrival time
//    (any gap is recorded as idle/wait time),
//  * send/recv overheads advance it by the profile's per-message CPU cost.
// Because every advance depends only on the program's own communication
// pattern (never on host scheduling), virtual times are bit-deterministic.
#pragma once

#include "simnet/machine_profile.hpp"

namespace agcm::simnet {

/// Categorised virtual-time accounting for one rank.
struct TimeBreakdown {
  double compute = 0.0;   ///< local floating-point / memory work
  double overhead = 0.0;  ///< per-message CPU overheads
  double wait = 0.0;      ///< blocked waiting for messages (load imbalance!)

  double total() const { return compute + overhead + wait; }
};

class VirtualClock {
 public:
  explicit VirtualClock(const MachineProfile& profile) : profile_(&profile) {}

  double now() const { return now_; }
  const MachineProfile& profile() const { return *profile_; }
  const TimeBreakdown& breakdown() const { return breakdown_; }

  /// Charges `flops` of arithmetic at the given cache efficiency.
  void compute(double flops, double cache_efficiency = 1.0) {
    const double dt = profile_->compute_time(flops, cache_efficiency);
    now_ += dt;
    breakdown_.compute += dt;
  }

  /// Charges a pure memory-traffic cost (copies, byte-order reversal, ...).
  void memory_traffic(double bytes) {
    const double dt = bytes / profile_->mem_bytes_per_sec;
    now_ += dt;
    breakdown_.compute += dt;
  }

  /// Charges the sender-side CPU overhead of one message.
  void charge_send_overhead() {
    now_ += profile_->send_overhead_sec;
    breakdown_.overhead += profile_->send_overhead_sec;
  }

  /// Applies message arrival: waits (virtually) until `arrival_time` if the
  /// clock is behind it, then charges the receive overhead.
  void apply_arrival(double arrival_time) {
    if (arrival_time > now_) {
      breakdown_.wait += arrival_time - now_;
      now_ = arrival_time;
    }
    now_ += profile_->recv_overhead_sec;
    breakdown_.overhead += profile_->recv_overhead_sec;
  }

  /// Moves the clock forward to `t` (used by barriers); no-op if t <= now.
  void wait_until(double t) {
    if (t > now_) {
      breakdown_.wait += t - now_;
      now_ = t;
    }
  }

  /// Arbitrary explicit advance charged as compute (setup bookkeeping, ...).
  void advance(double seconds) {
    now_ += seconds;
    breakdown_.compute += seconds;
  }

 private:
  const MachineProfile* profile_;
  double now_ = 0.0;
  TimeBreakdown breakdown_{};
};

}  // namespace agcm::simnet
