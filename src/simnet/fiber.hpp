// M:N cooperative fiber scheduler for the virtual multicomputer.
//
// The thread-per-rank launcher (Machine's kThreads backend) parks one OS
// thread per virtual rank on a condition variable at every blocking recv.
// That caps useful machine sizes at a few dozen ranks: kernel context
// switches and futex wakeups dominate the host cost of every virtual
// message long before P reaches the paper's 240-node runs. This scheduler
// replaces the OS thread with a *fiber* — a ucontext stackful coroutine
// owning its own stack and per-rank ExecSlot — and runs P fibers on a
// fixed pool of W worker threads (W ~ hardware concurrency). A fiber
// yields only at virtual-time events that cannot proceed (today: a
// blocking recv on an empty channel — barriers and clock waits are built
// on recv); everything else runs straight through. Parking and waking a
// fiber is a user-space context switch, so thousands of ranks sweep at
// full host speed (bench/bench_simnet_sched.cpp gates the speedup,
// docs/simnet.md has the design).
//
// Determinism: the scheduler moves *host* execution around but never
// touches a virtual clock, and per-(src,tag) channel FIFO order is
// preserved by the mailbox exactly as under the thread backend — so
// virtual times are bit-identical between backends (gated by
// tests/test_simnet.cpp and the bench).
//
// Blocking protocol (the park/unpark handshake with simnet::Mailbox):
//   1. the fiber, holding the channel lock and finding the queue empty,
//      calls prepare_park() and publishes itself as the channel's waiter;
//   2. it releases the lock and calls park(), which switches back to the
//      worker; the worker commits kParking -> kParked under the scheduler
//      mutex — or, if an unpark() raced in between, requeues the fiber
//      immediately (kUnparkedWhileParking). The fiber is never resumed
//      before it has fully switched off its stack;
//   3. a sender that finds a published waiter clears it and calls
//      unpark(), which moves a parked fiber to the run queue.
//
// Deadlock detection replaces the thread backend's wall-clock recv
// timeout: when every live fiber is parked (no fiber running, run queue
// empty), no message can ever arrive — the scheduler declares the run
// deadlocked and wakes all parked fibers, whose blocked recvs then throw
// the same enriched CommError diagnostics as a thread-backend timeout,
// immediately instead of after 60 real seconds.
#pragma once

#include <cstddef>
#include <functional>

#if defined(__has_include)
#if __has_include(<ucontext.h>)
#define AGCM_SIMNET_HAS_FIBERS 1
#endif
#endif

#ifndef AGCM_SIMNET_HAS_FIBERS
#define AGCM_SIMNET_HAS_FIBERS 0
#endif

namespace agcm::util {
class ExecSlot;
}  // namespace agcm::util

namespace agcm::simnet {

class Fiber;
class FiberScheduler;

/// The fiber executing on the calling host thread, or nullptr when the
/// caller is a plain thread (thread backend, unit tests, tools). The
/// mailbox uses this to choose between the fiber park path and the
/// condition-variable wait.
Fiber* current_fiber() noexcept;

/// Scheduler configuration. Zero values resolve to defaults (and the
/// AGCM_SIMNET_WORKERS / AGCM_SIMNET_STACK_KB environment overrides).
struct FiberSchedulerOptions {
  int workers = 0;            ///< 0 = min(hardware_concurrency, fibers)
  std::size_t stack_bytes = 0;  ///< 0 = 512 KiB per fiber (virtual, lazily
                                ///< committed; one guard page below)
};

#if AGCM_SIMNET_HAS_FIBERS

/// Runs `count` fibers of `body(index)` to completion on a fixed worker
/// pool, then rethrows the first exception any fiber threw (after all
/// fibers have finished — mirroring the thread backend's join-then-rethrow
/// contract). Each fiber owns a util::ExecSlot installed around every
/// slice it runs, so per-rank workspaces are migration-safe.
void run_fibers(int count, const std::function<void(int)>& body,
                const FiberSchedulerOptions& options);

/// Blocking-primitive interface used by simnet::Mailbox (see the protocol
/// in the header comment). All methods are implemented in fiber.cpp; the
/// class is opaque everywhere else.
class Fiber {
 public:
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  int index() const noexcept;

  /// Step 1 of parking: marks the fiber kParking. Call while holding the
  /// lock that also publishes the waiter pointer, so any waker that can
  /// see the waiter also sees the state.
  void prepare_park() noexcept;

  /// Step 2: switches to the worker; returns when unpark() (or the
  /// deadlock sweep) reschedules the fiber. Must not hold any lock.
  void park();

  /// Wakes a parking/parked fiber; no-op in any other state. Safe to call
  /// from any host thread.
  void unpark();

  /// True once the scheduler has declared the run deadlocked; a woken
  /// fiber whose recv still cannot proceed must abandon the wait.
  bool run_deadlocked() const noexcept;

 private:
  friend class FiberScheduler;
  Fiber();
  struct Impl;
  Impl* impl_;
};

#endif  // AGCM_SIMNET_HAS_FIBERS

}  // namespace agcm::simnet
