#include "simnet/network.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/format.hpp"

namespace agcm::simnet {

void Mailbox::push(Packet packet) {
  {
    std::lock_guard lock(mutex_);
    channels_[{packet.src, packet.tag}].push_back(std::move(packet));
  }
  cv_.notify_all();
}

Packet Mailbox::pop(int src, std::int64_t tag, int timeout_ms) {
  std::unique_lock lock(mutex_);
  const Key key{src, tag};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const bool ok = cv_.wait_until(lock, deadline, [&] {
    auto it = channels_.find(key);
    return it != channels_.end() && !it->second.empty();
  });
  if (!ok) {
    throw CommError(strformat(
        "recv timeout after {} ms waiting for message src={} tag={} "
        "(likely deadlock or tag mismatch)",
        timeout_ms, src, tag));
  }
  auto it = channels_.find(key);
  Packet packet = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) channels_.erase(it);
  return packet;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, queue] : channels_) n += queue.size();
  return n;
}

Network::Network(int nranks) : nranks_(nranks), mailboxes_(nranks) {
  AGCM_ASSERT(nranks > 0);
}

Mailbox& Network::mailbox(int rank) {
  AGCM_ASSERT(rank >= 0 && rank < nranks_);
  return mailboxes_[static_cast<std::size_t>(rank)];
}

void Network::count_message(std::size_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t Network::total_messages() const {
  return messages_.load(std::memory_order_relaxed);
}

std::uint64_t Network::total_bytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

void Network::reset_counters() {
  messages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace agcm::simnet
