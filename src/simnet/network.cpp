#include "simnet/network.hpp"

#include <algorithm>
#include <chrono>

#include "simnet/fiber.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace agcm::simnet {

namespace {

/// Shared tail of the two deadlock paths: describe what *is* queued so a
/// tag or source mismatch is obvious from the error alone.
std::string describe_pending(const Mailbox& mailbox) {
  const auto infos = mailbox.pending_channels();
  if (infos.empty()) return "mailbox empty";
  std::string desc = "pending channels:";
  for (const ChannelInfo& info : infos) {
    desc += strformat(" (src={} tag={} depth={})", info.src, info.tag,
                      info.depth);
  }
  return desc;
}

}  // namespace

Mailbox::Channel& Mailbox::channel(const Key& key) {
  std::lock_guard lock(table_mutex_);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    it = channels_.emplace(key, std::make_unique<Channel>()).first;
  }
  return *it->second;
}

void Mailbox::push(Packet packet) {
  Channel& ch = channel({packet.src, packet.tag});
  Fiber* waiter = nullptr;
  {
    std::lock_guard lock(ch.mutex);
    ch.queue.push(std::move(packet));
#if AGCM_SIMNET_HAS_FIBERS
    // Scheduler-integrated wakeup: claim the parked receiving fiber (if
    // any) while holding the channel lock, unpark it after releasing — the
    // scheduler takes its own lock and must never nest inside a channel's.
    waiter = ch.waiter;
    ch.waiter = nullptr;
#endif
  }
#if AGCM_SIMNET_HAS_FIBERS
  if (waiter != nullptr) {
    waiter->unpark();
    return;
  }
#else
  (void)waiter;
#endif
  // Targeted wakeup for thread-backend receivers: at most one thread ever
  // waits on a (src, tag) channel (the destination rank's receive), so
  // notify_one is exact — no thundering herd across the rank's other
  // outstanding receives.
  ch.cv.notify_one();
}

Packet Mailbox::pop(int src, std::int64_t tag, int timeout_ms) {
  Channel& ch = channel({src, tag});
#if AGCM_SIMNET_HAS_FIBERS
  if (Fiber* self = current_fiber()) {
    // Fiber path: park instead of blocking the worker thread. Loop because
    // a wake can also come from the scheduler's deadlock sweep.
    for (;;) {
      {
        std::unique_lock lock(ch.mutex);
        if (!ch.queue.empty()) return ch.queue.pop();
        if (self->run_deadlocked()) break;
        // Publish ourselves as the channel's waiter *after* flagging the
        // parking state, both under the channel lock, so the sender that
        // sees the waiter is guaranteed a well-formed unpark target.
        self->prepare_park();
        ch.waiter = self;
      }
      self->park();
    }
    throw CommError(strformat(
        "recv deadlock: every live rank is blocked while waiting for "
        "message src={} tag={} (likely deadlock or tag mismatch); {}",
        src, tag, describe_pending(*this)));
  }
#endif
  std::unique_lock lock(ch.mutex);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const bool ok =
      ch.cv.wait_until(lock, deadline, [&] { return !ch.queue.empty(); });
  if (!ok) {
    lock.unlock();
    throw CommError(strformat(
        "recv timeout after {} ms waiting for message src={} tag={} "
        "(likely deadlock or tag mismatch); {}",
        timeout_ms, src, tag, describe_pending(*this)));
  }
  return ch.queue.pop();
}

std::size_t Mailbox::pending() const {
  std::size_t n = 0;
  std::lock_guard table_lock(table_mutex_);
  for (const auto& [key, ch] : channels_) {
    std::lock_guard lock(ch->mutex);
    n += ch->queue.size();
  }
  return n;
}

std::vector<ChannelInfo> Mailbox::pending_channels() const {
  std::vector<ChannelInfo> out;
  {
    std::lock_guard table_lock(table_mutex_);
    out.reserve(channels_.size());
    for (const auto& [key, ch] : channels_) {
      std::lock_guard lock(ch->mutex);
      if (!ch->queue.empty()) {
        out.push_back({key.first, key.second, ch->queue.size()});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const ChannelInfo& a,
                                       const ChannelInfo& b) {
    return a.src != b.src ? a.src < b.src : a.tag < b.tag;
  });
  return out;
}

Network::Network(int nranks) : nranks_(nranks), mailboxes_(nranks) {
  AGCM_ASSERT(nranks > 0);
}

Mailbox& Network::mailbox(int rank) {
  AGCM_ASSERT(rank >= 0 && rank < nranks_);
  return mailboxes_[static_cast<std::size_t>(rank)];
}

void Network::count_message(std::size_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t Network::total_messages() const {
  return messages_.load(std::memory_order_relaxed);
}

std::uint64_t Network::total_bytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

void Network::reset_counters() {
  messages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace agcm::simnet
