#include "simnet/network.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/format.hpp"

namespace agcm::simnet {

Mailbox::Channel& Mailbox::channel(const Key& key) {
  std::lock_guard lock(table_mutex_);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    it = channels_.emplace(key, std::make_unique<Channel>()).first;
  }
  return *it->second;
}

void Mailbox::push(Packet packet) {
  Channel& ch = channel({packet.src, packet.tag});
  {
    std::lock_guard lock(ch.mutex);
    ch.queue.push(std::move(packet));
  }
  // Targeted wakeup: at most one thread ever waits on a (src, tag) channel
  // (the destination rank's receive), so notify_one is exact — no thundering
  // herd across the rank's other outstanding receives.
  ch.cv.notify_one();
}

Packet Mailbox::pop(int src, std::int64_t tag, int timeout_ms) {
  Channel& ch = channel({src, tag});
  std::unique_lock lock(ch.mutex);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const bool ok =
      ch.cv.wait_until(lock, deadline, [&] { return !ch.queue.empty(); });
  if (!ok) {
    lock.unlock();
    // Enriched deadlock diagnostics: show what *is* queued so a tag or
    // source mismatch is obvious from the error alone.
    std::string pending_desc;
    const auto infos = pending_channels();
    if (infos.empty()) {
      pending_desc = "mailbox empty";
    } else {
      pending_desc = "pending channels:";
      for (const ChannelInfo& info : infos) {
        pending_desc += strformat(" (src={} tag={} depth={})", info.src,
                                  info.tag, info.depth);
      }
    }
    throw CommError(strformat(
        "recv timeout after {} ms waiting for message src={} tag={} "
        "(likely deadlock or tag mismatch); {}",
        timeout_ms, src, tag, pending_desc));
  }
  return ch.queue.pop();
}

std::size_t Mailbox::pending() const {
  std::size_t n = 0;
  std::lock_guard table_lock(table_mutex_);
  for (const auto& [key, ch] : channels_) {
    std::lock_guard lock(ch->mutex);
    n += ch->queue.size();
  }
  return n;
}

std::vector<ChannelInfo> Mailbox::pending_channels() const {
  std::vector<ChannelInfo> out;
  {
    std::lock_guard table_lock(table_mutex_);
    out.reserve(channels_.size());
    for (const auto& [key, ch] : channels_) {
      std::lock_guard lock(ch->mutex);
      if (!ch->queue.empty()) {
        out.push_back({key.first, key.second, ch->queue.size()});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const ChannelInfo& a,
                                       const ChannelInfo& b) {
    return a.src != b.src ? a.src < b.src : a.tag < b.tag;
  });
  return out;
}

Network::Network(int nranks) : nranks_(nranks), mailboxes_(nranks) {
  AGCM_ASSERT(nranks > 0);
}

Mailbox& Network::mailbox(int rank) {
  AGCM_ASSERT(rank >= 0 && rank < nranks_);
  return mailboxes_[static_cast<std::size_t>(rank)];
}

void Network::count_message(std::size_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t Network::total_messages() const {
  return messages_.load(std::memory_order_relaxed);
}

std::uint64_t Network::total_bytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

void Network::reset_counters() {
  messages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace agcm::simnet
