// Recycling byte-buffer pool backing the zero-copy simnet transport.
//
// Every message payload that crosses the virtual interconnect lives in a
// `Buffer`: a movable RAII handle over a `std::vector<std::byte>` borrowed
// from a per-`Network` `BufferPool`. Senders pack directly into pool
// storage, the buffer is *moved* (never copied) through the mailbox, and
// when the receiver's handle dies the storage returns to the pool with its
// capacity intact ("growth-only"): after a warm-up phase in which every
// live buffer has grown to the largest payload it ever carried, the
// steady-state communication hot path performs zero heap allocations
// (tests/test_comm_alloc.cpp proves it with an operator-new hook).
//
// Lifetime rule: a pooled Buffer must not outlive the Network whose pool it
// came from (in practice: don't let Buffers escape the SPMD program passed
// to Machine::run). Unpooled Buffers (Buffer::unpooled) own their storage
// outright and are used by tests and tooling that have no Network.
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace agcm::simnet {

class BufferPool;

/// Movable RAII handle over pooled (or standalone) byte storage.
class Buffer {
 public:
  Buffer() = default;

  Buffer(Buffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        storage_(std::move(other.storage_)) {
    other.storage_.clear();
  }

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::exchange(other.pool_, nullptr);
      storage_ = std::move(other.storage_);
      other.storage_.clear();
    }
    return *this;
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  ~Buffer() { release(); }

  /// A self-owning buffer with no pool behind it (tests, tooling).
  static Buffer unpooled(std::vector<std::byte> bytes) {
    Buffer b;
    b.storage_ = std::move(bytes);
    return b;
  }

  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }
  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  std::size_t capacity() const { return storage_.capacity(); }

  std::byte& operator[](std::size_t i) { return storage_[i]; }
  const std::byte& operator[](std::size_t i) const { return storage_[i]; }

  std::span<std::byte> span() { return storage_; }
  std::span<const std::byte> span() const { return storage_; }

  /// Grows or shrinks the logical size (capacity never shrinks).
  void resize(std::size_t bytes) { storage_.resize(bytes); }

 private:
  friend class BufferPool;
  Buffer(BufferPool* pool, std::vector<std::byte> storage)
      : pool_(pool), storage_(std::move(storage)) {}

  void release();

  BufferPool* pool_ = nullptr;
  std::vector<std::byte> storage_;
};

/// Thread-safe LIFO freelist of byte vectors with growth-only capacity.
/// Shared by every rank of a Network: a payload acquired by the sender is
/// released back by whichever rank's handle dies last.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Hands out a buffer of exactly `bytes` logical size. Best-fit reuse:
  /// the smallest free storage whose capacity already covers the request,
  /// so small messages never steal large buffers from large ones (a LIFO
  /// pool would, and the large request would then have to grow a small
  /// vector — a heap allocation in the steady state). When nothing fits,
  /// the largest free storage is grown instead, which converges fastest:
  /// capacities only ever ratchet upward.
  Buffer acquire(std::size_t bytes) {
    std::vector<std::byte> storage;
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        std::size_t best = free_.size();
        for (std::size_t q = 0; q < free_.size(); ++q) {
          const std::size_t cap = free_[q].capacity();
          if (cap >= bytes &&
              (best == free_.size() || cap < free_[best].capacity())) {
            best = q;
          }
        }
        if (best == free_.size()) {  // nothing fits: grow the largest
          best = 0;
          for (std::size_t q = 1; q < free_.size(); ++q)
            if (free_[q].capacity() > free_[best].capacity()) best = q;
        }
        storage = std::move(free_[best]);
        free_[best] = std::move(free_.back());  // swap-remove, no realloc
        free_.pop_back();
        ++reuses_;
      } else {
        ++misses_;
      }
      ++outstanding_;
    }
    storage.resize(bytes);  // grows capacity only beyond this storage's peak
    return Buffer(this, std::move(storage));
  }

  /// Pre-populates the freelist with `count` storages of `bytes` capacity.
  /// Optional: pools self-warm after a few sweeps anyway, but a prewarmed
  /// pool covering the workload's peak concurrency is allocation-free from
  /// the very first message (tests/test_comm_alloc.cpp uses this to make
  /// the zero-allocation assertion deterministic under any thread
  /// interleaving).
  void prewarm(std::size_t count, std::size_t bytes) {
    std::lock_guard lock(mutex_);
    free_.reserve(free_.size() + count);
    for (std::size_t q = 0; q < count; ++q) {
      std::vector<std::byte> storage;
      storage.reserve(bytes);
      free_.push_back(std::move(storage));
    }
  }

  // --- statistics (diagnostics / bench instrumentation) --------------------

  /// Buffers currently held by live handles or in-flight packets.
  std::size_t outstanding() const {
    std::lock_guard lock(mutex_);
    return outstanding_;
  }
  /// Buffers sitting in the freelist.
  std::size_t free_count() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }
  /// acquire() calls served from the freelist.
  std::size_t reuses() const {
    std::lock_guard lock(mutex_);
    return reuses_;
  }
  /// acquire() calls that had to start from empty storage.
  std::size_t misses() const {
    std::lock_guard lock(mutex_);
    return misses_;
  }

 private:
  friend class Buffer;

  void release(std::vector<std::byte>&& storage) {
    storage.clear();  // keeps capacity: the whole point of the pool
    std::lock_guard lock(mutex_);
    free_.push_back(std::move(storage));
    --outstanding_;
  }

  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> free_;
  std::size_t outstanding_ = 0;
  std::size_t reuses_ = 0;
  std::size_t misses_ = 0;
};

inline void Buffer::release() {
  if (pool_ != nullptr) {
    pool_->release(std::move(storage_));
    pool_ = nullptr;
  }
  storage_.clear();
}

}  // namespace agcm::simnet
