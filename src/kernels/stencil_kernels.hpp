// Tiled, unrolled engine variants of the Section 3.4 seven-point Laplace
// layout experiment (src/singlenode/stencil.cpp).
//
// The singlenode originals stay untouched — they are the *seed* paths the
// frozen virtual cache-efficiency model prices and the layout benchmark
// measures. The engines here compute BITWISE IDENTICAL sums (same per-point
// accumulation order) but restructure the host loops:
//   * periodic index wrap (% n) is eliminated by peeling the i = 0 and
//     i = n-1 boundary columns, so the interior walk is branch-free with
//     unit-offset neighbours,
//   * row pointers (centre, j/k neighbours) are hoisted into `__restrict`
//     locals per (j, k) row — no idx3 re-derivation per point,
//   * the interior i loop is 4-wide unrolled (independent points),
//   * the block engine keeps its per-point field loop a single sequential
//     accumulator chain, as reassociation would change bits.
#pragma once

#include <vector>

#include "singlenode/stencil.hpp"

namespace agcm::kernels {

/// Engine for laplace_sum_separate: same out.assign + accumulate
/// semantics, bitwise-identical result.
void laplace_sum_separate_engine(const singlenode::SeparateFields& in,
                                 std::vector<double>& out);

/// Engine for laplace_sum_block, bitwise identical.
void laplace_sum_block_engine(const singlenode::BlockFields& in,
                              std::vector<double>& out);

}  // namespace agcm::kernels
