#include "kernels/column_kernels.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "kernels/simd/dispatch.hpp"
#include "util/shared_cache.hpp"

namespace agcm::kernels {

void fill_longwave_emissivity(double* emis, int nlev) {
  for (int d = 0; d < nlev; ++d)
    emis[d] = 0.015 / (1.0 + d);  // == 0.015 / (1.0 + |k1 - k2|) bit for bit
}

namespace {

// One slot per nlev up to kMaxSharedNlev (well past any AGCM vertical
// resolution). A published table is immutable; `storage` owns every table
// ever published (cleared slots are reset, their tables retired in place),
// so a pointer handed to a reader never dangles even across a cache clear.
constexpr int kMaxSharedNlev = 64;

struct EmissivityCache {
  std::atomic<const double*> slots[kMaxSharedNlev + 1] = {};
  std::mutex mutex;  ///< guards storage + slot publication + stats
  std::vector<std::unique_ptr<double[]>> storage;
  util::SharedCacheStats stats;

  static EmissivityCache& instance() {
    static EmissivityCache cache;
    return cache;
  }

 private:
  EmissivityCache() {
    util::SharedCaches::register_cache(
        "kernels.emissivity", [] { clear_emissivity_cache(); },
        [] {
          EmissivityCache& c = instance();
          std::lock_guard<std::mutex> lock(c.mutex);
          return c.stats;
        });
  }
};

}  // namespace

const double* shared_longwave_emissivity(int nlev) {
  if (nlev < 1 || nlev > kMaxSharedNlev) return nullptr;
  if (!util::SharedCaches::enabled()) return nullptr;
  EmissivityCache& cache = EmissivityCache::instance();
  const auto slot = static_cast<std::size_t>(nlev);
  // Hot path: one acquire load per column, no lock.
  if (const double* table =
          cache.slots[slot].load(std::memory_order_acquire)) {
    return table;
  }
  std::lock_guard<std::mutex> lock(cache.mutex);
  if (const double* table =
          cache.slots[slot].load(std::memory_order_acquire)) {
    // Lost the publication race. (The lock-free fast path above does not
    // bump `hits` — a per-column atomic add would put a contended cache
    // line on the hot path; the counter records first acquisitions only.)
    ++cache.stats.hits;
    return table;
  }
  ++cache.stats.misses;
  auto table = std::make_unique<double[]>(static_cast<std::size_t>(nlev));
  fill_longwave_emissivity(table.get(), nlev);  // identical bits to a local fill
  const double* published = table.get();
  cache.storage.push_back(std::move(table));
  cache.slots[slot].store(published, std::memory_order_release);
  return published;
}

void clear_emissivity_cache() {
  EmissivityCache& cache = EmissivityCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  // Reset the slots only: retired tables stay in `storage`, so readers
  // that already hold a pointer keep a valid immutable table.
  for (auto& slot : cache.slots) slot.store(nullptr, std::memory_order_relaxed);
}

namespace {

/// acc += emis[|k1 - k2|] * (theta[k2] - t1) over a run of k2 with the
/// emissivity index moving by `step` (-1 below the diagonal, +1 above);
/// 4-wide unrolled, single sequential accumulator (bit-frozen order).
inline double exchange_run(double acc, const double* __restrict theta,
                           int k2_begin, int count,
                           const double* __restrict emis, int e_begin,
                           int step, double t1) {
#define AGCM_EXCH(p)                                                     \
  acc += emis[e_begin + (p) * step] * (theta[k2_begin + (p)] - t1)
  int p = 0;
  for (; p + 4 <= count; p += 4) {
    AGCM_EXCH(p);
    AGCM_EXCH(p + 1);
    AGCM_EXCH(p + 2);
    AGCM_EXCH(p + 3);
  }
  for (; p < count; ++p) AGCM_EXCH(p);
#undef AGCM_EXCH
  return acc;
}

}  // namespace

void longwave_sweep(double* theta, int nlev, const double* emis,
                    double dt_sec) {
  double* __restrict th = theta;
  const double* __restrict em = emis;
  for (int k1 = 0; k1 < nlev; ++k1) {
    const double t1 = th[k1];
    // Splitting the seed's k2 loop at the k1 == k2 skip keeps the k2
    // ascending order exactly: [0, k1) then (k1, nlev).
    double exchange = exchange_run(0.0, th, 0, k1, em, k1, -1, t1);
    exchange =
        exchange_run(exchange, th, k1 + 1, nlev - 1 - k1, em, 1, +1, t1);
    th[k1] += dt_sec * (exchange - 0.8) / 86400.0;
  }
}

void longwave_sweep_simd(double* theta, int nlev, const double* emis,
                         double dt_sec) {
  const simd::KernelOps& ops = simd::ops();
  double* __restrict th = theta;
  for (int k1 = 0; k1 < nlev; ++k1) {
    const double t1 = th[k1];
    const double exchange = ops.longwave_exchange(th, nlev, k1, emis, t1);
    th[k1] += dt_sec * (exchange - 0.8) / 86400.0;
  }
}

// Note on convection_sweep: it stays scalar by design. Each pass reads
// th[k] and th[k+1] where th[k] may have been rewritten by the previous
// iteration (a loop-carried dependence), so there is no per-point
// independence to vectorize without changing the adjustment order — and
// the iteration count it returns feeds the frozen virtual-time model.
int convection_sweep(double* theta, double* q, int nlev, double threshold,
                     int max_iters, double& precipitation) {
  double* __restrict th = theta;
  double* __restrict qv = q;
  int iters = 0;
  while (iters < max_iters) {
    bool unstable = false;
    for (int k = 0; k + 1 < nlev; ++k) {
      const double lower = th[k];
      const double upper = th[k + 1];
      if (upper - lower < -threshold) {
        const double mixed = 0.5 * (lower + upper);
        th[k] = mixed - 0.25 * threshold;
        th[k + 1] = mixed + 0.25 * threshold;
        const double condensed = 0.1 * qv[k];
        qv[k] -= condensed;
        precipitation += condensed;
        th[k] += 120.0 * condensed;
        unstable = true;
      }
    }
    ++iters;
    if (!unstable) break;
  }
  return iters;
}

}  // namespace agcm::kernels
