#include "kernels/advection_kernels.hpp"

#include <algorithm>
#include <cstring>

#include "kernels/simd/dispatch.hpp"

namespace agcm::kernels {

namespace {

/// Rows per (k, j) tile of the fused flux+update sweep. A tile keeps its
/// flux rows cache-hot across every tracer's update pass; 8 rows of the
/// production shapes (ni <= a few hundred) fit comfortably in L1/L2
/// together with the tracer and thickness streams.
constexpr int kTileJ = 8;

// The row kernels below route through the SIMD dispatch table
// (kernels/simd/dispatch.hpp): flux_row covers both directions via pointer
// shifts, advect_update_row is the fused upwind update. Both are
// CONTRACTED families — every tier is bitwise identical to the seed path,
// so dispatching them in production cannot perturb the frozen artefacts.

/// fx(i) = u(i) * 0.5 * (h(i) + h(i+1)) * dy for i in [-1, ni): the seed
/// expression, evaluated by the dispatched flux kernel with every pointer
/// shifted one point west (out[0] lands on fx(-1), hn = h + 1 supplies the
/// eastern thickness).
inline void flux_x_row(const simd::KernelOps& ops, int ni, double dy,
                       const double* ur, const double* hr, double* fxr) {
  ops.flux_row(ni + 1, dy, ur - 1, hr - 1, hr, fxr - 1);
}

/// fy(i) = v(i) * 0.5 * (h(i) + h_north(i)) * dx for i in [0, ni).
inline void flux_y_row(const simd::KernelOps& ops, int ni, double dx,
                       const double* vr, const double* hr, const double* hnr,
                       double* fyr) {
  ops.flux_row(ni, dx, vr, hr, hnr, fyr);
}

}  // namespace

void advect_tracers_engine(const AdvectionMetricsView& m,
                           const grid::Array3D<double>& h_old,
                           const grid::Array3D<double>& h_new,
                           const grid::Array3D<double>& u,
                           const grid::Array3D<double>& v,
                           std::span<grid::Array3D<double>* const> tracers,
                           int ni, int nj, int nk, double dt,
                           KernelWorkspace& ws) {
  grid::Array3D<double>& fx = ws.flux_x(ni, nj, nk);
  grid::Array3D<double>& fy = ws.flux_y(ni, nj, nk);
  std::span<grid::Array3D<double>> updates =
      ws.tracer_updates(tracers.size(), ni, nj, nk);

  const grid::ConstFieldView hv = h_old.view();
  const grid::ConstFieldView hnv = h_new.view();
  const grid::ConstFieldView uv = u.view();
  const grid::ConstFieldView vv = v.view();
  const grid::FieldView fxv = fx.view();
  const grid::FieldView fyv = fy.view();

  // One dispatch-table fetch per engine call (resolved once per process).
  const simd::KernelOps& ops = simd::ops();

  for (int k = 0; k < nk; ++k) {
    // South-edge fluxes of row 0 (face j = -1/2) before the tiles, so
    // the first tile's update rows can read fy row -1.
    flux_y_row(ops, ni, m.dx_vface[0], vv.row(-1, k), hv.row(-1, k),
               hv.row(0, k), fyv.row(-1, k));

    for (int j0 = 0; j0 < nj; j0 += kTileJ) {
      const int j1 = std::min(j0 + kTileJ, nj);

      // Flux rows of the tile (computed once, reused by every tracer).
      for (int j = j0; j < j1; ++j) {
        const double* __restrict hr = hv.row(j, k);
        flux_x_row(ops, ni, m.dy_face[j], uv.row(j, k), hr, fxv.row(j, k));
        flux_y_row(ops, ni, m.dx_vface[j + 1], vv.row(j, k), hr,
                   hv.row(j + 1, k), fyv.row(j, k));
      }

      // Fused tracer updates while the tile's fluxes are hot. The loop
      // order (tracer outer, i inner) transposes the seed's per-point
      // tracer loop; every (i, tracer) point is independent, so the
      // interchange moves no bits.
      for (std::size_t t = 0; t < tracers.size(); ++t) {
        const grid::ConstFieldView cv =
            static_cast<const grid::Array3D<double>&>(*tracers[t]).view();
        const grid::FieldView upv = updates[t].view();
        for (int j = j0; j < j1; ++j) {
          ops.advect_update_row(ni, dt * m.inv_area[j], fxv.row(j, k),
                                fyv.row(j, k), fyv.row(j - 1, k),
                                cv.row(j, k), cv.row(j - 1, k),
                                cv.row(j + 1, k), hv.row(j, k),
                                hnv.row(j, k), upv.row(j, k));
        }
      }
    }
  }

  // Commit: copy each update field back into its tracer's interior
  // (row-wise memcpy — a bitwise copy, exactly the seed's assignment loop).
  for (std::size_t t = 0; t < tracers.size(); ++t) {
    const grid::FieldView cv = tracers[t]->view();
    const grid::ConstFieldView upv =
        static_cast<const grid::Array3D<double>&>(updates[t]).view();
    const std::size_t row_bytes = static_cast<std::size_t>(ni) * sizeof(double);
    for (int k = 0; k < nk; ++k)
      for (int j = 0; j < nj; ++j)
        std::memcpy(cv.row(j, k), upv.row(j, k), row_bytes);
  }
}

}  // namespace agcm::kernels
