#include "kernels/advection_kernels.hpp"

#include <algorithm>
#include <cstring>

namespace agcm::kernels {

namespace {

/// Rows per (k, j) tile of the fused flux+update sweep. A tile keeps its
/// flux rows cache-hot across every tracer's update pass; 8 rows of the
/// production shapes (ni <= a few hundred) fit comfortably in L1/L2
/// together with the tracer and thickness streams.
constexpr int kTileJ = 8;

/// fx(i) = u(i) * 0.5 * (h(i) + h(i+1)) * dy for i in [-1, ni): the seed
/// expression verbatim, 4-wide unrolled over independent points.
inline void flux_x_row(int ni, double dy, const double* __restrict ur,
                       const double* __restrict hr, double* __restrict fxr) {
#define AGCM_FLUX_X(p) fxr[(p)] = ur[(p)] * 0.5 * (hr[(p)] + hr[(p) + 1]) * dy
  int i = -1;
  for (; i + 4 <= ni; i += 4) {
    AGCM_FLUX_X(i);
    AGCM_FLUX_X(i + 1);
    AGCM_FLUX_X(i + 2);
    AGCM_FLUX_X(i + 3);
  }
  for (; i < ni; ++i) AGCM_FLUX_X(i);
#undef AGCM_FLUX_X
}

/// fy(i) = v(i) * 0.5 * (h(i) + h_north(i)) * dx for i in [0, ni).
inline void flux_y_row(int ni, double dx, const double* __restrict vr,
                       const double* __restrict hr,
                       const double* __restrict hnr,
                       double* __restrict fyr) {
#define AGCM_FLUX_Y(p) fyr[(p)] = vr[(p)] * 0.5 * (hr[(p)] + hnr[(p)]) * dx
  int i = 0;
  for (; i + 4 <= ni; i += 4) {
    AGCM_FLUX_Y(i);
    AGCM_FLUX_Y(i + 1);
    AGCM_FLUX_Y(i + 2);
    AGCM_FLUX_Y(i + 3);
  }
  for (; i < ni; ++i) AGCM_FLUX_Y(i);
#undef AGCM_FLUX_Y
}

/// One tracer's update over one row: upwind fluxes, flux-form update,
/// division kept per point — every statement is the seed's expression
/// tree, so the row is bitwise identical to the seed path.
inline void update_row(int ni, double dt_inv_area,
                       const double* __restrict fxr,
                       const double* __restrict fyr,
                       const double* __restrict fys,
                       const double* __restrict cr,
                       const double* __restrict cs,
                       const double* __restrict cn,
                       const double* __restrict hor,
                       const double* __restrict hnr,
                       double* __restrict up) {
#define AGCM_UPDATE(p)                                                     \
  do {                                                                     \
    const double fe = fxr[(p)];                                            \
    const double fw = fxr[(p) - 1];                                        \
    const double fn = fyr[(p)];                                            \
    const double fs = fys[(p)];                                            \
    const double flux_e = fe * (fe >= 0.0 ? cr[(p)] : cr[(p) + 1]);        \
    const double flux_w = fw * (fw >= 0.0 ? cr[(p) - 1] : cr[(p)]);        \
    const double flux_n = fn * (fn >= 0.0 ? cr[(p)] : cn[(p)]);            \
    const double flux_s = fs * (fs >= 0.0 ? cs[(p)] : cr[(p)]);            \
    const double ch = cr[(p)] * hor[(p)] -                                 \
                      dt_inv_area * (flux_e - flux_w + flux_n - flux_s);   \
    up[(p)] = ch / hnr[(p)];                                               \
  } while (0)
  int i = 0;
  for (; i + 4 <= ni; i += 4) {
    AGCM_UPDATE(i);
    AGCM_UPDATE(i + 1);
    AGCM_UPDATE(i + 2);
    AGCM_UPDATE(i + 3);
  }
  for (; i < ni; ++i) AGCM_UPDATE(i);
#undef AGCM_UPDATE
}

}  // namespace

void advect_tracers_engine(const AdvectionMetricsView& m,
                           const grid::Array3D<double>& h_old,
                           const grid::Array3D<double>& h_new,
                           const grid::Array3D<double>& u,
                           const grid::Array3D<double>& v,
                           std::span<grid::Array3D<double>* const> tracers,
                           int ni, int nj, int nk, double dt,
                           KernelWorkspace& ws) {
  grid::Array3D<double>& fx = ws.flux_x(ni, nj, nk);
  grid::Array3D<double>& fy = ws.flux_y(ni, nj, nk);
  std::span<grid::Array3D<double>> updates =
      ws.tracer_updates(tracers.size(), ni, nj, nk);

  const grid::ConstFieldView hv = h_old.view();
  const grid::ConstFieldView hnv = h_new.view();
  const grid::ConstFieldView uv = u.view();
  const grid::ConstFieldView vv = v.view();
  const grid::FieldView fxv = fx.view();
  const grid::FieldView fyv = fy.view();

  for (int k = 0; k < nk; ++k) {
    // South-edge fluxes of row 0 (face j = -1/2) before the tiles, so
    // the first tile's update rows can read fy row -1.
    flux_y_row(ni, m.dx_vface[0], vv.row(-1, k), hv.row(-1, k), hv.row(0, k),
               fyv.row(-1, k));

    for (int j0 = 0; j0 < nj; j0 += kTileJ) {
      const int j1 = std::min(j0 + kTileJ, nj);

      // Flux rows of the tile (computed once, reused by every tracer).
      for (int j = j0; j < j1; ++j) {
        const double* __restrict hr = hv.row(j, k);
        flux_x_row(ni, m.dy_face[j], uv.row(j, k), hr, fxv.row(j, k));
        flux_y_row(ni, m.dx_vface[j + 1], vv.row(j, k), hr, hv.row(j + 1, k),
                   fyv.row(j, k));
      }

      // Fused tracer updates while the tile's fluxes are hot. The loop
      // order (tracer outer, i inner) transposes the seed's per-point
      // tracer loop; every (i, tracer) point is independent, so the
      // interchange moves no bits.
      for (std::size_t t = 0; t < tracers.size(); ++t) {
        const grid::ConstFieldView cv =
            static_cast<const grid::Array3D<double>&>(*tracers[t]).view();
        const grid::FieldView upv = updates[t].view();
        for (int j = j0; j < j1; ++j) {
          update_row(ni, dt * m.inv_area[j], fxv.row(j, k), fyv.row(j, k),
                     fyv.row(j - 1, k), cv.row(j, k), cv.row(j - 1, k),
                     cv.row(j + 1, k), hv.row(j, k), hnv.row(j, k),
                     upv.row(j, k));
        }
      }
    }
  }

  // Commit: copy each update field back into its tracer's interior
  // (row-wise memcpy — a bitwise copy, exactly the seed's assignment loop).
  for (std::size_t t = 0; t < tracers.size(); ++t) {
    const grid::FieldView cv = tracers[t]->view();
    const grid::ConstFieldView upv =
        static_cast<const grid::Array3D<double>&>(updates[t]).view();
    const std::size_t row_bytes = static_cast<std::size_t>(ni) * sizeof(double);
    for (int k = 0; k < nk; ++k)
      for (int j = 0; j < nj; ++j)
        std::memcpy(cv.row(j, k), upv.row(j, k), row_bytes);
  }
}

}  // namespace agcm::kernels
