#include "kernels/workspace.hpp"

namespace agcm::kernels {

KernelWorkspace& KernelWorkspace::local() {
  // Per-rank when a simnet backend installed the rank's slot (the slot
  // pins the workspace to the virtual rank across fiber migration);
  // thread_local otherwise (tests/tools driving kernels off-machine).
  if (util::ExecSlot* slot = util::ExecSlot::current())
    return slot->get<KernelWorkspace>();
  thread_local KernelWorkspace ws;
  return ws;
}

void KernelWorkspace::reshape(grid::Array3D<double>& a, int ni, int nj,
                              int nk, int ghost) {
  if (a.ni() == ni && a.nj() == nj && a.nk() == nk && a.ghost() == ghost)
    return;
  a = grid::Array3D<double>(ni, nj, nk, ghost);
}

grid::Array3D<double>& KernelWorkspace::flux_x(int ni, int nj, int nk) {
  reshape(flux_x_, ni, nj, nk, /*ghost=*/1);
  return flux_x_;
}

grid::Array3D<double>& KernelWorkspace::flux_y(int ni, int nj, int nk) {
  reshape(flux_y_, ni, nj, nk, /*ghost=*/1);
  return flux_y_;
}

std::span<grid::Array3D<double>> KernelWorkspace::tracer_updates(
    std::size_t count, int ni, int nj, int nk) {
  if (updates_.size() < count) updates_.resize(count);
  for (std::size_t t = 0; t < count; ++t)
    reshape(updates_[t], ni, nj, nk, /*ghost=*/0);
  return {updates_.data(), count};
}

std::span<double> KernelWorkspace::column_buffer(std::size_t count) {
  if (column_.size() < count) column_.resize(count);
  return {column_.data(), count};
}

void KernelWorkspace::reset() {
  flux_x_ = grid::Array3D<double>();
  flux_y_ = grid::Array3D<double>();
  updates_.clear();
  updates_.shrink_to_fit();
  column_.clear();
  column_.shrink_to_fit();
}

}  // namespace agcm::kernels
