// Tiled, unrolled tracer-advection engine — the industrialized form of the
// paper's Section 3.4 single-node optimization of the advection routine.
//
// Produces fields BITWISE IDENTICAL to dynamics::advect_tracers_optimized's
// seed implementation (preserved as advect_tracers_optimized_seed_ref):
// the per-point operation order of every arithmetic statement is the
// seed's; what changes is everything around it —
//   * all field accesses go through grid::FieldView raw-pointer rows
//     hoisted into `__restrict` locals (no Array3D::at ghost arithmetic),
//   * the flux and update sweeps are fused into k-over-j tiles so a tile
//     of flux rows is still cache-hot when every tracer consumes it,
//   * inner i loops are 4-wide unrolled with scalar remainders (point
//     updates are independent, so unrolling cannot change bits),
//   * the tracer loop runs innermost per tile but with the i loop inside
//     it, giving each tracer a flat vectorizable walk,
//   * all scratch (flux arrays, per-tracer update fields) comes from the
//     per-rank KernelWorkspace — zero heap allocation in steady state.
//
// The engine does NOT touch the virtual clock: callers charge the same
// KernelCost as the seed path, keeping every frozen virtual-time artefact
// byte-identical (docs/kernels.md).
#pragma once

#include <span>

#include "grid/array3d.hpp"
#include "kernels/workspace.hpp"

namespace agcm::kernels {

/// Per-row metric factors, viewed from dynamics::Metrics: `inv_area` and
/// `dy_face` have one entry per local j row, `dx_vface` one per v-face
/// (nj + 1 entries).
struct AdvectionMetricsView {
  const double* inv_area;
  const double* dy_face;
  const double* dx_vface;
};

/// Advances `tracers` in place (interior ni x nj x nk, ghost >= 1, halos
/// current) by dt with upwind fluxes from (u, v, h_old); bitwise identical
/// to the seed optimized path. Scratch lives in `ws`.
void advect_tracers_engine(const AdvectionMetricsView& m,
                           const grid::Array3D<double>& h_old,
                           const grid::Array3D<double>& h_new,
                           const grid::Array3D<double>& u,
                           const grid::Array3D<double>& v,
                           std::span<grid::Array3D<double>* const> tracers,
                           int ni, int nj, int nk, double dt,
                           KernelWorkspace& ws);

}  // namespace agcm::kernels
