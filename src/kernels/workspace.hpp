// Per-rank kernel-engine workspace: growth-only scratch for the dynamics
// and physics hot loops.
//
// Same lifetime pattern as fft::FftWorkspace (docs/fft.md): `local()`
// resolves through the executing rank's util::ExecSlot — the explicit
// per-rank handle both simnet backends install around rank code (see
// util/exec_local.hpp) — so the workspace stays a *per-rank* workspace even
// when many rank fibers share one worker thread: no locking, no false
// sharing, no cross-rank reuse after a fiber migrates, and after the first
// step at a given local shape NO heap allocation on the advection or
// column-physics path (the acceptance criterion tests/test_kernel_alloc.cpp
// enforces, including under ASan+UBSan in CI). Callers off the virtual
// machine fall back to a plain thread_local instance.
//
// Lifetime rules (docs/kernels.md):
//   * `local()` lives as long as its rank's run (or its thread, for the
//     off-machine fallback). References and spans returned by the
//     accessors stay valid until the next call to the SAME accessor with a
//     different shape/size (growth or reshape reallocates) or to
//     `reset()`.
//   * The flux arrays and the tracer-update set are reshaped only when the
//     requested shape differs from the cached one; with the steady
//     per-rank shapes of a model run that means allocation happens on the
//     first step only.
//   * At most ONE `column_buffer()` borrow may be live at a time per
//     rank (single-borrow rule, as FftWorkspace::complex_buffer). The
//     column engine takes one borrow per column and carves its emissivity
//     table and tridiagonal bands out of it.
#pragma once

#include <span>
#include <vector>

#include "grid/array3d.hpp"
#include "util/exec_local.hpp"

namespace agcm::kernels {

class KernelWorkspace {
 public:
  /// The executing virtual rank's workspace (via the installed ExecSlot),
  /// or a thread_local fallback for callers outside any SPMD run.
  static KernelWorkspace& local();

  KernelWorkspace(const KernelWorkspace&) = delete;
  KernelWorkspace& operator=(const KernelWorkspace&) = delete;

  /// Zonal / meridional mass-flux scratch for the advection engine
  /// (interior ni x nj x nk, ghost 1). Contents are unspecified on entry.
  grid::Array3D<double>& flux_x(int ni, int nj, int nk);
  grid::Array3D<double>& flux_y(int ni, int nj, int nk);

  /// `count` ghost-free update fields of the given interior shape (the
  /// seed path's per-call `updated` vector). Contents unspecified.
  std::span<grid::Array3D<double>> tracer_updates(std::size_t count, int ni,
                                                  int nj, int nk);

  /// Reusable double scratch of at least `count` elements (tridiagonal
  /// bands, pivot scratch, emissivity tables). Grows — and allocates —
  /// only when `count` exceeds the high-water mark; contents unspecified.
  std::span<double> column_buffer(std::size_t count);

  std::size_t column_capacity() const { return column_.size(); }

  /// Drops all scratch (tests only — invalidates outstanding borrows).
  void reset();

 private:
  friend class agcm::util::ExecSlot;  // slot-local construction in local()
  KernelWorkspace() = default;

  static void reshape(grid::Array3D<double>& a, int ni, int nj, int nk,
                      int ghost);

  grid::Array3D<double> flux_x_;
  grid::Array3D<double> flux_y_;
  std::vector<grid::Array3D<double>> updates_;
  std::vector<double> column_;
};

}  // namespace agcm::kernels
