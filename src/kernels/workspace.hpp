// Per-rank kernel-engine workspace: growth-only scratch for the dynamics
// and physics hot loops.
//
// Same lifetime pattern as fft::FftWorkspace (docs/fft.md): the virtual
// multicomputer runs one host thread per virtual rank, so a thread_local
// workspace is exactly a *per-rank* workspace — no locking, no false
// sharing, and after the first step at a given local shape NO heap
// allocation on the advection or column-physics path (the acceptance
// criterion tests/test_kernel_alloc.cpp enforces, including under
// ASan+UBSan in CI).
//
// Lifetime rules (docs/kernels.md):
//   * `local()` lives as long as its thread. References and spans returned
//     by the accessors stay valid until the next call to the SAME accessor
//     with a different shape/size (growth or reshape reallocates) or to
//     `reset()`.
//   * The flux arrays and the tracer-update set are reshaped only when the
//     requested shape differs from the cached one; with the steady
//     per-rank shapes of a model run that means allocation happens on the
//     first step only.
//   * At most ONE `column_buffer()` borrow may be live at a time per
//     thread (single-borrow rule, as FftWorkspace::complex_buffer). The
//     column engine takes one borrow per column and carves its emissivity
//     table and tridiagonal bands out of it.
#pragma once

#include <span>
#include <vector>

#include "grid/array3d.hpp"

namespace agcm::kernels {

class KernelWorkspace {
 public:
  /// The calling thread's (= the virtual rank's) workspace.
  static KernelWorkspace& local();

  KernelWorkspace(const KernelWorkspace&) = delete;
  KernelWorkspace& operator=(const KernelWorkspace&) = delete;

  /// Zonal / meridional mass-flux scratch for the advection engine
  /// (interior ni x nj x nk, ghost 1). Contents are unspecified on entry.
  grid::Array3D<double>& flux_x(int ni, int nj, int nk);
  grid::Array3D<double>& flux_y(int ni, int nj, int nk);

  /// `count` ghost-free update fields of the given interior shape (the
  /// seed path's per-call `updated` vector). Contents unspecified.
  std::span<grid::Array3D<double>> tracer_updates(std::size_t count, int ni,
                                                  int nj, int nk);

  /// Reusable double scratch of at least `count` elements (tridiagonal
  /// bands, pivot scratch, emissivity tables). Grows — and allocates —
  /// only when `count` exceeds the high-water mark; contents unspecified.
  std::span<double> column_buffer(std::size_t count);

  std::size_t column_capacity() const { return column_.size(); }

  /// Drops all scratch (tests only — invalidates outstanding borrows).
  void reset();

 private:
  KernelWorkspace() = default;

  static void reshape(grid::Array3D<double>& a, int ni, int nj, int nk,
                      int ghost);

  grid::Array3D<double> flux_x_;
  grid::Array3D<double> flux_y_;
  std::vector<grid::Array3D<double>> updates_;
  std::vector<double> column_;
};

}  // namespace agcm::kernels
