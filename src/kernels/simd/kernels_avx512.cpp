// AVX-512 tier (8 doubles per vector).
//
// Compiled with -mavx512f -mavx512dq -mavx512vl -ffp-contract=off. The
// contract pin is load-bearing here: avx512f implies FMA in the target
// feature set, and without it the compiler contracts even intrinsic
// mul+sub sequences into vfmsub — which changes bits. See kernels_avx2.cpp
// for the full FP-contract story; the same rules apply.
#include "kernels/simd/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace agcm::simd::detail {

namespace {

void flux_row(int n, double scale, const double* vel, const double* h,
              const double* hn, double* out) {
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d scl = _mm512_set1_pd(scale);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_loadu_pd(vel + i);
    const __m512d hs =
        _mm512_add_pd(_mm512_loadu_pd(h + i), _mm512_loadu_pd(hn + i));
    _mm512_storeu_pd(
        out + i,
        _mm512_mul_pd(_mm512_mul_pd(_mm512_mul_pd(v, half), hs), scl));
  }
  for (; i < n; ++i) out[i] = vel[i] * 0.5 * (h[i] + hn[i]) * scale;
}

void advect_update_row(int ni, double dt_inv_area, const double* fxr,
                       const double* fyr, const double* fys, const double* cr,
                       const double* cs, const double* cn, const double* hor,
                       const double* hnr, double* up) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d vdt = _mm512_set1_pd(dt_inv_area);
  int i = 0;
  for (; i + 8 <= ni; i += 8) {
    const __m512d fe = _mm512_loadu_pd(fxr + i);
    const __m512d fw = _mm512_loadu_pd(fxr + i - 1);
    const __m512d fn = _mm512_loadu_pd(fyr + i);
    const __m512d fs = _mm512_loadu_pd(fys + i);
    const __m512d c0 = _mm512_loadu_pd(cr + i);
    const __m512d cp = _mm512_loadu_pd(cr + i + 1);
    const __m512d cm = _mm512_loadu_pd(cr + i - 1);
    const __m512d cnv = _mm512_loadu_pd(cn + i);
    const __m512d csv = _mm512_loadu_pd(cs + i);
    // mask_blend picks its THIRD operand where the mask is set, so the
    // upwind select `f >= 0 ? a : b` is mask_blend(f >= 0, b, a).
    const __mmask8 me = _mm512_cmp_pd_mask(fe, zero, _CMP_GE_OQ);
    const __mmask8 mw = _mm512_cmp_pd_mask(fw, zero, _CMP_GE_OQ);
    const __mmask8 mn = _mm512_cmp_pd_mask(fn, zero, _CMP_GE_OQ);
    const __mmask8 ms = _mm512_cmp_pd_mask(fs, zero, _CMP_GE_OQ);
    const __m512d flux_e =
        _mm512_mul_pd(fe, _mm512_mask_blend_pd(me, cp, c0));
    const __m512d flux_w =
        _mm512_mul_pd(fw, _mm512_mask_blend_pd(mw, c0, cm));
    const __m512d flux_n =
        _mm512_mul_pd(fn, _mm512_mask_blend_pd(mn, cnv, c0));
    const __m512d flux_s =
        _mm512_mul_pd(fs, _mm512_mask_blend_pd(ms, c0, csv));
    const __m512d net = _mm512_sub_pd(
        _mm512_add_pd(_mm512_sub_pd(flux_e, flux_w), flux_n), flux_s);
    const __m512d ch =
        _mm512_sub_pd(_mm512_mul_pd(c0, _mm512_loadu_pd(hor + i)),
                      _mm512_mul_pd(vdt, net));
    _mm512_storeu_pd(up + i, _mm512_div_pd(ch, _mm512_loadu_pd(hnr + i)));
  }
  for (; i < ni; ++i) {
    const double fe = fxr[i];
    const double fw = fxr[i - 1];
    const double fn = fyr[i];
    const double fs = fys[i];
    const double flux_e = fe * (fe >= 0.0 ? cr[i] : cr[i + 1]);
    const double flux_w = fw * (fw >= 0.0 ? cr[i - 1] : cr[i]);
    const double flux_n = fn * (fn >= 0.0 ? cr[i] : cn[i]);
    const double flux_s = fs * (fs >= 0.0 ? cs[i] : cr[i]);
    const double ch = cr[i] * hor[i] -
                      dt_inv_area * (flux_e - flux_w + flux_n - flux_s);
    up[i] = ch / hnr[i];
  }
}

void stencil7_interior(int n, const double* f, const double* fjp,
                       const double* fjm, const double* fkp,
                       const double* fkm, double* out) {
  const __m512d six = _mm512_set1_pd(6.0);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d s = _mm512_add_pd(_mm512_loadu_pd(f + i + 1),
                              _mm512_loadu_pd(f + i - 1));
    s = _mm512_add_pd(s, _mm512_loadu_pd(fjp + i));
    s = _mm512_add_pd(s, _mm512_loadu_pd(fjm + i));
    s = _mm512_add_pd(s, _mm512_loadu_pd(fkp + i));
    s = _mm512_add_pd(s, _mm512_loadu_pd(fkm + i));
    s = _mm512_sub_pd(s, _mm512_mul_pd(six, _mm512_loadu_pd(f + i)));
    _mm512_storeu_pd(out + i, _mm512_add_pd(_mm512_loadu_pd(out + i), s));
  }
  for (; i < n; ++i)
    out[i] += f[i + 1] + f[i - 1] + fjp[i] + fjm[i] + fkp[i] + fkm[i] -
              6.0 * f[i];
}

void pointwise_panel(std::size_t m, const double* a, const double* b,
                     double* out) {
  std::size_t q = 0;
  for (; q + 8 <= m; q += 8)
    _mm512_storeu_pd(out + q, _mm512_mul_pd(_mm512_loadu_pd(a + q),
                                            _mm512_loadu_pd(b + q)));
  for (; q < m; ++q) out[q] = a[q] * b[q];
}

void daxpy(std::size_t n, double alpha, const double* x, double* y) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d prod = _mm512_mul_pd(va, _mm512_loadu_pd(x + i));
    _mm512_storeu_pd(y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

double ddot(std::size_t n, const double* x, const double* y) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_pd(
        acc, _mm512_mul_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  double total = _mm512_reduce_add_pd(acc);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

double longwave_exchange(const double* theta, int nlev, int k1,
                         const double* emis, double t1) {
  const __m512d vt1 = _mm512_set1_pd(t1);
  const __m512i rev = _mm512_set_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  __m512d vacc = _mm512_setzero_pd();
  double acc = 0.0;
  // Below the diagonal: emis index k1 - k2 descends as k2 ascends, so the
  // emissivity load is lane-reversed.
  int p = 0;
  for (; p + 8 <= k1; p += 8) {
    const __m512d th = _mm512_loadu_pd(theta + p);
    const __m512d em =
        _mm512_permutexvar_pd(rev, _mm512_loadu_pd(emis + k1 - p - 7));
    vacc = _mm512_add_pd(vacc, _mm512_mul_pd(em, _mm512_sub_pd(th, vt1)));
  }
  for (; p < k1; ++p) acc += emis[k1 - p] * (theta[p] - t1);
  // Above the diagonal: both streams ascend.
  const int count = nlev - 1 - k1;
  int q = 0;
  for (; q + 8 <= count; q += 8) {
    const __m512d th = _mm512_loadu_pd(theta + k1 + 1 + q);
    const __m512d em = _mm512_loadu_pd(emis + 1 + q);
    vacc = _mm512_add_pd(vacc, _mm512_mul_pd(em, _mm512_sub_pd(th, vt1)));
  }
  for (; q < count; ++q) acc += emis[1 + q] * (theta[k1 + 1 + q] - t1);
  return acc + _mm512_reduce_add_pd(vacc);
}

// ---- complex helpers (interleaved [re, im] lanes) -----------------------

inline __m512d neg_even() {
  return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}
inline __m512d neg_odd() {
  return _mm512_set_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
}

/// Complex multiply, std::complex's expression order per component (see
/// kernels_avx2.cpp for the derivation; a + (-b) == a - b bitwise).
inline __m512d cmul(__m512d x, __m512d w) {
  const __m512d xre = _mm512_permute_pd(x, 0x00);  // dup even lanes
  const __m512d xim = _mm512_permute_pd(x, 0xFF);  // dup odd lanes
  const __m512d ws = _mm512_permute_pd(w, 0x55);   // swap re/im
  const __m512d t1 = _mm512_mul_pd(xre, w);
  const __m512d t2 = _mm512_mul_pd(xim, ws);
  return _mm512_add_pd(t1, _mm512_xor_pd(t2, neg_even()));
}

/// Multiply by +i: (re, im) -> (-im, re).
inline __m512d cmul_i(__m512d x) {
  return _mm512_xor_pd(_mm512_permute_pd(x, 0x55), neg_even());
}

/// Multiply by -i: (re, im) -> (im, -re).
inline __m512d cmul_negi(__m512d x) {
  return _mm512_xor_pd(_mm512_permute_pd(x, 0x55), neg_odd());
}

void fft_radix2_stage(double* a, int n, int m, const double* tw) {
  const int m2 = 2 * m;
  for (int b2 = 0; b2 < 2 * n; b2 += 2 * m2) {
    double* p0 = a + b2;
    double* p1 = p0 + m2;
    int q2 = 0;
    for (; q2 + 8 <= m2; q2 += 8) {
      const __m512d u = _mm512_loadu_pd(p0 + q2);
      const __m512d t =
          cmul(_mm512_loadu_pd(p1 + q2), _mm512_loadu_pd(tw + q2));
      _mm512_storeu_pd(p0 + q2, _mm512_add_pd(u, t));
      _mm512_storeu_pd(p1 + q2, _mm512_sub_pd(u, t));
    }
    for (; q2 < m2; q2 += 2) {
      const double ure = p0[q2], uim = p0[q2 + 1];
      const double vre = p1[q2], vim = p1[q2 + 1];
      const double wre = tw[q2], wim = tw[q2 + 1];
      const double tre = vre * wre - vim * wim;
      const double tim = vre * wim + vim * wre;
      p0[q2] = ure + tre;
      p0[q2 + 1] = uim + tim;
      p1[q2] = ure - tre;
      p1[q2 + 1] = uim - tim;
    }
  }
}

void fft_radix4_stage(double* a, int n, int m, const double* tw1,
                      const double* tw2, const double* tw3, bool inverse) {
  const int m2 = 2 * m;
  for (int b2 = 0; b2 < 2 * n; b2 += 4 * m2) {
    double* p0 = a + b2;
    double* p1 = p0 + m2;
    double* p2 = p1 + m2;
    double* p3 = p2 + m2;
    int q2 = 0;
    for (; q2 + 8 <= m2; q2 += 8) {
      const __m512d x0 = _mm512_loadu_pd(p0 + q2);
      const __m512d x1 =
          cmul(_mm512_loadu_pd(p1 + q2), _mm512_loadu_pd(tw1 + q2));
      const __m512d x2 =
          cmul(_mm512_loadu_pd(p2 + q2), _mm512_loadu_pd(tw2 + q2));
      const __m512d x3 =
          cmul(_mm512_loadu_pd(p3 + q2), _mm512_loadu_pd(tw3 + q2));
      const __m512d t0 = _mm512_add_pd(x0, x2);
      const __m512d t1 = _mm512_sub_pd(x0, x2);
      const __m512d t2 = _mm512_add_pd(x1, x3);
      const __m512d d = _mm512_sub_pd(x1, x3);
      const __m512d jd = inverse ? cmul_i(d) : cmul_negi(d);
      _mm512_storeu_pd(p0 + q2, _mm512_add_pd(t0, t2));
      _mm512_storeu_pd(p1 + q2, _mm512_add_pd(t1, jd));
      _mm512_storeu_pd(p2 + q2, _mm512_sub_pd(t0, t2));
      _mm512_storeu_pd(p3 + q2, _mm512_sub_pd(t1, jd));
    }
    for (; q2 < m2; q2 += 2) {
      const double w1re = tw1[q2], w1im = tw1[q2 + 1];
      const double w2re = tw2[q2], w2im = tw2[q2 + 1];
      const double w3re = tw3[q2], w3im = tw3[q2 + 1];
      const double x0re = p0[q2], x0im = p0[q2 + 1];
      const double x1re = p1[q2] * w1re - p1[q2 + 1] * w1im;
      const double x1im = p1[q2] * w1im + p1[q2 + 1] * w1re;
      const double x2re = p2[q2] * w2re - p2[q2 + 1] * w2im;
      const double x2im = p2[q2] * w2im + p2[q2 + 1] * w2re;
      const double x3re = p3[q2] * w3re - p3[q2 + 1] * w3im;
      const double x3im = p3[q2] * w3im + p3[q2 + 1] * w3re;
      const double t0re = x0re + x2re, t0im = x0im + x2im;
      const double t1re = x0re - x2re, t1im = x0im - x2im;
      const double t2re = x1re + x3re, t2im = x1im + x3im;
      const double dre = x1re - x3re, dim = x1im - x3im;
      const double jdre = inverse ? -dim : dim;
      const double jdim = inverse ? dre : -dre;
      p0[q2] = t0re + t2re;
      p0[q2 + 1] = t0im + t2im;
      p1[q2] = t1re + jdre;
      p1[q2 + 1] = t1im + jdim;
      p2[q2] = t0re - t2re;
      p2[q2 + 1] = t0im - t2im;
      p3[q2] = t1re - jdre;
      p3[q2 + 1] = t1im - jdim;
    }
  }
}

}  // namespace

const KernelOps* avx512_ops() {
  static const KernelOps ops{flux_row,        advect_update_row,
                             stencil7_interior, pointwise_panel,
                             daxpy,           ddot,
                             longwave_exchange, fft_radix2_stage,
                             fft_radix4_stage};
  return &ops;
}

}  // namespace agcm::simd::detail

#else  // no AVX-512 F+DQ+VL

namespace agcm::simd::detail {
const KernelOps* avx512_ops() { return nullptr; }
}  // namespace agcm::simd::detail

#endif
