// AVX2 tier (4 doubles per vector).
//
// Compiled with -mavx2 -ffp-contract=off (src/kernels/simd/CMakeLists.txt).
// The contract pin matters: -mavx2 implies nothing about FMA, but a
// compiler told the target has FMA (e.g. via a wider -march) would happily
// contract even *intrinsic* mul+add sequences into fused ops, breaking the
// bitwise contract against the scalar tier. With plain mul/add/sub/div
// only — never an FMA — every contracted-family kernel below performs the
// seed's exact IEEE operations per lane. Tails run the same scalar
// expressions (also uncontracted in this TU).
#include "kernels/simd/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace agcm::simd::detail {

namespace {

void flux_row(int n, double scale, const double* vel, const double* h,
              const double* hn, double* out) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d scl = _mm256_set1_pd(scale);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vel + i);
    const __m256d hs =
        _mm256_add_pd(_mm256_loadu_pd(h + i), _mm256_loadu_pd(hn + i));
    _mm256_storeu_pd(
        out + i,
        _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(v, half), hs), scl));
  }
  for (; i < n; ++i) out[i] = vel[i] * 0.5 * (h[i] + hn[i]) * scale;
}

void advect_update_row(int ni, double dt_inv_area, const double* fxr,
                       const double* fyr, const double* fys, const double* cr,
                       const double* cs, const double* cn, const double* hor,
                       const double* hnr, double* up) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vdt = _mm256_set1_pd(dt_inv_area);
  int i = 0;
  for (; i + 4 <= ni; i += 4) {
    const __m256d fe = _mm256_loadu_pd(fxr + i);
    const __m256d fw = _mm256_loadu_pd(fxr + i - 1);
    const __m256d fn = _mm256_loadu_pd(fyr + i);
    const __m256d fs = _mm256_loadu_pd(fys + i);
    const __m256d c0 = _mm256_loadu_pd(cr + i);
    const __m256d cp = _mm256_loadu_pd(cr + i + 1);
    const __m256d cm = _mm256_loadu_pd(cr + i - 1);
    const __m256d cnv = _mm256_loadu_pd(cn + i);
    const __m256d csv = _mm256_loadu_pd(cs + i);
    // blendv picks its SECOND operand where the mask is set, so the
    // upwind select `f >= 0 ? a : b` is blendv(b, a, f >= 0).
    const __m256d me = _mm256_cmp_pd(fe, zero, _CMP_GE_OQ);
    const __m256d mw = _mm256_cmp_pd(fw, zero, _CMP_GE_OQ);
    const __m256d mn = _mm256_cmp_pd(fn, zero, _CMP_GE_OQ);
    const __m256d ms = _mm256_cmp_pd(fs, zero, _CMP_GE_OQ);
    const __m256d flux_e = _mm256_mul_pd(fe, _mm256_blendv_pd(cp, c0, me));
    const __m256d flux_w = _mm256_mul_pd(fw, _mm256_blendv_pd(c0, cm, mw));
    const __m256d flux_n = _mm256_mul_pd(fn, _mm256_blendv_pd(cnv, c0, mn));
    const __m256d flux_s = _mm256_mul_pd(fs, _mm256_blendv_pd(c0, csv, ms));
    const __m256d net = _mm256_sub_pd(
        _mm256_add_pd(_mm256_sub_pd(flux_e, flux_w), flux_n), flux_s);
    const __m256d ch =
        _mm256_sub_pd(_mm256_mul_pd(c0, _mm256_loadu_pd(hor + i)),
                      _mm256_mul_pd(vdt, net));
    _mm256_storeu_pd(up + i, _mm256_div_pd(ch, _mm256_loadu_pd(hnr + i)));
  }
  for (; i < ni; ++i) {
    const double fe = fxr[i];
    const double fw = fxr[i - 1];
    const double fn = fyr[i];
    const double fs = fys[i];
    const double flux_e = fe * (fe >= 0.0 ? cr[i] : cr[i + 1]);
    const double flux_w = fw * (fw >= 0.0 ? cr[i - 1] : cr[i]);
    const double flux_n = fn * (fn >= 0.0 ? cr[i] : cn[i]);
    const double flux_s = fs * (fs >= 0.0 ? cs[i] : cr[i]);
    const double ch = cr[i] * hor[i] -
                      dt_inv_area * (flux_e - flux_w + flux_n - flux_s);
    up[i] = ch / hnr[i];
  }
}

void stencil7_interior(int n, const double* f, const double* fjp,
                       const double* fjm, const double* fkp,
                       const double* fkm, double* out) {
  const __m256d six = _mm256_set1_pd(6.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d s = _mm256_add_pd(_mm256_loadu_pd(f + i + 1),
                              _mm256_loadu_pd(f + i - 1));
    s = _mm256_add_pd(s, _mm256_loadu_pd(fjp + i));
    s = _mm256_add_pd(s, _mm256_loadu_pd(fjm + i));
    s = _mm256_add_pd(s, _mm256_loadu_pd(fkp + i));
    s = _mm256_add_pd(s, _mm256_loadu_pd(fkm + i));
    s = _mm256_sub_pd(s, _mm256_mul_pd(six, _mm256_loadu_pd(f + i)));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i), s));
  }
  for (; i < n; ++i)
    out[i] += f[i + 1] + f[i - 1] + fjp[i] + fjm[i] + fkp[i] + fkm[i] -
              6.0 * f[i];
}

void pointwise_panel(std::size_t m, const double* a, const double* b,
                     double* out) {
  std::size_t q = 0;
  for (; q + 8 <= m; q += 8) {
    _mm256_storeu_pd(out + q, _mm256_mul_pd(_mm256_loadu_pd(a + q),
                                            _mm256_loadu_pd(b + q)));
    _mm256_storeu_pd(out + q + 4,
                     _mm256_mul_pd(_mm256_loadu_pd(a + q + 4),
                                   _mm256_loadu_pd(b + q + 4)));
  }
  for (; q + 4 <= m; q += 4)
    _mm256_storeu_pd(out + q, _mm256_mul_pd(_mm256_loadu_pd(a + q),
                                            _mm256_loadu_pd(b + q)));
  for (; q < m; ++q) out[q] = a[q] * b[q];
}

void daxpy(std::size_t n, double alpha, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

double ddot(std::size_t n, const double* x, const double* y) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  double total = hsum(acc);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

double longwave_exchange(const double* theta, int nlev, int k1,
                         const double* emis, double t1) {
  const __m256d vt1 = _mm256_set1_pd(t1);
  __m256d vacc = _mm256_setzero_pd();
  double acc = 0.0;
  // Below the diagonal: emis index k1 - k2 descends as k2 ascends, so the
  // emissivity load is reversed lane-wise.
  int p = 0;
  for (; p + 4 <= k1; p += 4) {
    const __m256d th = _mm256_loadu_pd(theta + p);
    const __m256d em = _mm256_permute4x64_pd(
        _mm256_loadu_pd(emis + k1 - p - 3), 0x1B);
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(em, _mm256_sub_pd(th, vt1)));
  }
  for (; p < k1; ++p) acc += emis[k1 - p] * (theta[p] - t1);
  // Above the diagonal: both streams ascend.
  const int count = nlev - 1 - k1;
  int q = 0;
  for (; q + 4 <= count; q += 4) {
    const __m256d th = _mm256_loadu_pd(theta + k1 + 1 + q);
    const __m256d em = _mm256_loadu_pd(emis + 1 + q);
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(em, _mm256_sub_pd(th, vt1)));
  }
  for (; q < count; ++q) acc += emis[1 + q] * (theta[k1 + 1 + q] - t1);
  return acc + hsum(vacc);
}

// ---- complex helpers (interleaved [re, im] lanes) -----------------------

/// Sign mask flipping the REAL (even) lanes.
inline __m256d neg_even() { return _mm256_set_pd(0.0, -0.0, 0.0, -0.0); }
/// Sign mask flipping the IMAG (odd) lanes.
inline __m256d neg_odd() { return _mm256_set_pd(-0.0, 0.0, -0.0, 0.0); }

/// Complex multiply, std::complex's expression order per component:
/// (xre*wre - xim*wim, xre*wim + xim*wre). IEEE a + (-b) == a - b, so the
/// sign-flip-then-add form is bitwise the scalar sub/add pair.
inline __m256d cmul(__m256d x, __m256d w) {
  const __m256d xre = _mm256_permute_pd(x, 0x0);  // dup even lanes
  const __m256d xim = _mm256_permute_pd(x, 0xF);  // dup odd lanes
  const __m256d ws = _mm256_permute_pd(w, 0x5);   // swap re/im
  const __m256d t1 = _mm256_mul_pd(xre, w);
  const __m256d t2 = _mm256_mul_pd(xim, ws);
  return _mm256_add_pd(t1, _mm256_xor_pd(t2, neg_even()));
}

/// Multiply by +i: (re, im) -> (-im, re).
inline __m256d cmul_i(__m256d x) {
  return _mm256_xor_pd(_mm256_permute_pd(x, 0x5), neg_even());
}

/// Multiply by -i: (re, im) -> (im, -re).
inline __m256d cmul_negi(__m256d x) {
  return _mm256_xor_pd(_mm256_permute_pd(x, 0x5), neg_odd());
}

void fft_radix2_stage(double* a, int n, int m, const double* tw) {
  const int m2 = 2 * m;
  for (int b2 = 0; b2 < 2 * n; b2 += 2 * m2) {
    double* p0 = a + b2;
    double* p1 = p0 + m2;
    int q2 = 0;
    for (; q2 + 4 <= m2; q2 += 4) {
      const __m256d u = _mm256_loadu_pd(p0 + q2);
      const __m256d t =
          cmul(_mm256_loadu_pd(p1 + q2), _mm256_loadu_pd(tw + q2));
      _mm256_storeu_pd(p0 + q2, _mm256_add_pd(u, t));
      _mm256_storeu_pd(p1 + q2, _mm256_sub_pd(u, t));
    }
    for (; q2 < m2; q2 += 2) {
      const double ure = p0[q2], uim = p0[q2 + 1];
      const double vre = p1[q2], vim = p1[q2 + 1];
      const double wre = tw[q2], wim = tw[q2 + 1];
      const double tre = vre * wre - vim * wim;
      const double tim = vre * wim + vim * wre;
      p0[q2] = ure + tre;
      p0[q2 + 1] = uim + tim;
      p1[q2] = ure - tre;
      p1[q2 + 1] = uim - tim;
    }
  }
}

void fft_radix4_stage(double* a, int n, int m, const double* tw1,
                      const double* tw2, const double* tw3, bool inverse) {
  const int m2 = 2 * m;
  for (int b2 = 0; b2 < 2 * n; b2 += 4 * m2) {
    double* p0 = a + b2;
    double* p1 = p0 + m2;
    double* p2 = p1 + m2;
    double* p3 = p2 + m2;
    int q2 = 0;
    for (; q2 + 4 <= m2; q2 += 4) {
      const __m256d x0 = _mm256_loadu_pd(p0 + q2);
      const __m256d x1 =
          cmul(_mm256_loadu_pd(p1 + q2), _mm256_loadu_pd(tw1 + q2));
      const __m256d x2 =
          cmul(_mm256_loadu_pd(p2 + q2), _mm256_loadu_pd(tw2 + q2));
      const __m256d x3 =
          cmul(_mm256_loadu_pd(p3 + q2), _mm256_loadu_pd(tw3 + q2));
      const __m256d t0 = _mm256_add_pd(x0, x2);
      const __m256d t1 = _mm256_sub_pd(x0, x2);
      const __m256d t2 = _mm256_add_pd(x1, x3);
      const __m256d d = _mm256_sub_pd(x1, x3);
      const __m256d jd = inverse ? cmul_i(d) : cmul_negi(d);
      _mm256_storeu_pd(p0 + q2, _mm256_add_pd(t0, t2));
      _mm256_storeu_pd(p1 + q2, _mm256_add_pd(t1, jd));
      _mm256_storeu_pd(p2 + q2, _mm256_sub_pd(t0, t2));
      _mm256_storeu_pd(p3 + q2, _mm256_sub_pd(t1, jd));
    }
    for (; q2 < m2; q2 += 2) {
      const double w1re = tw1[q2], w1im = tw1[q2 + 1];
      const double w2re = tw2[q2], w2im = tw2[q2 + 1];
      const double w3re = tw3[q2], w3im = tw3[q2 + 1];
      const double x0re = p0[q2], x0im = p0[q2 + 1];
      const double x1re = p1[q2] * w1re - p1[q2 + 1] * w1im;
      const double x1im = p1[q2] * w1im + p1[q2 + 1] * w1re;
      const double x2re = p2[q2] * w2re - p2[q2 + 1] * w2im;
      const double x2im = p2[q2] * w2im + p2[q2 + 1] * w2re;
      const double x3re = p3[q2] * w3re - p3[q2 + 1] * w3im;
      const double x3im = p3[q2] * w3im + p3[q2 + 1] * w3re;
      const double t0re = x0re + x2re, t0im = x0im + x2im;
      const double t1re = x0re - x2re, t1im = x0im - x2im;
      const double t2re = x1re + x3re, t2im = x1im + x3im;
      const double dre = x1re - x3re, dim = x1im - x3im;
      const double jdre = inverse ? -dim : dim;
      const double jdim = inverse ? dre : -dre;
      p0[q2] = t0re + t2re;
      p0[q2 + 1] = t0im + t2im;
      p1[q2] = t1re + jdre;
      p1[q2 + 1] = t1im + jdim;
      p2[q2] = t0re - t2re;
      p2[q2 + 1] = t0im - t2im;
      p3[q2] = t1re - jdre;
      p3[q2 + 1] = t1im - jdim;
    }
  }
}

}  // namespace

const KernelOps* avx2_ops() {
  static const KernelOps ops{flux_row,        advect_update_row,
                             stencil7_interior, pointwise_panel,
                             daxpy,           ddot,
                             longwave_exchange, fft_radix2_stage,
                             fft_radix4_stage};
  return &ops;
}

}  // namespace agcm::simd::detail

#else  // !__AVX2__

namespace agcm::simd::detail {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace agcm::simd::detail

#endif
