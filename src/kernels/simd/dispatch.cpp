#include "kernels/simd/dispatch.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/simd/kernels.hpp"

namespace agcm::simd {

namespace {

constexpr const char* kTierNames[] = {"scalar", "avx2", "avx512"};

constexpr const char* kFamilyNames[] = {
    "flux_row",      "advect_update_row", "stencil7_interior",
    "pointwise_panel", "daxpy",           "ddot",
    "longwave_exchange", "fft_radix2",    "fft_radix4"};

constexpr bool kFamilyContracted[] = {
    true,  true,  true,  true,  true,   // flux/update/stencil/pointwise/daxpy
    false, false, false, false};        // ddot/longwave/radix2/radix4

const KernelOps* tier_table(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return &detail::scalar_ops();
    case Tier::kAvx2:
      return detail::avx2_ops();
    case Tier::kAvx512:
      return detail::avx512_ops();
  }
  return nullptr;
}

// __builtin_cpu_supports demands a string *literal*, so each probe is
// spelled out behind a macro rather than passed through a function.
#if defined(__x86_64__) || defined(__i386__)
#define AGCM_CPU_SUPPORTS(lit) (__builtin_cpu_supports(lit) != 0)
#else
#define AGCM_CPU_SUPPORTS(lit) false
#endif

bool host_supports(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return AGCM_CPU_SUPPORTS("avx2");
    case Tier::kAvx512:
      return AGCM_CPU_SUPPORTS("avx512f") && AGCM_CPU_SUPPORTS("avx512dq") &&
             AGCM_CPU_SUPPORTS("avx512vl");
  }
  return false;
}

std::vector<std::string> detect_features() {
  const std::pair<const char*, bool> probes[] = {
      {"sse2", AGCM_CPU_SUPPORTS("sse2")},
      {"avx", AGCM_CPU_SUPPORTS("avx")},
      {"avx2", AGCM_CPU_SUPPORTS("avx2")},
      {"fma", AGCM_CPU_SUPPORTS("fma")},
      {"avx512f", AGCM_CPU_SUPPORTS("avx512f")},
      {"avx512dq", AGCM_CPU_SUPPORTS("avx512dq")},
      {"avx512vl", AGCM_CPU_SUPPORTS("avx512vl")},
      {"avx512bw", AGCM_CPU_SUPPORTS("avx512bw")},
  };
  std::vector<std::string> out;
  for (const auto& [name, has] : probes) {
    if (has) out.emplace_back(name);
  }
  return out;
}

// ---- bitwise self-check of the contracted families ----------------------
//
// Deterministic dyadic fill (an LCG scaled to exact power-of-two steps) so
// the check itself is reproducible and mixes signs — the upwind selects
// must exercise both branches.
void fill_det(double* p, std::size_t n, unsigned seed, double base) {
  unsigned s = seed * 2654435761u + 12345u;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    p[i] = base + (static_cast<double>(s >> 8) * 0x1p-24 - 0.5) * 0.125;
  }
}

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

/// Runs candidate vs scalar for one contracted family over awkward sizes
/// (including remainder lanes 1..7) and returns true on bitwise identity.
bool check_family(Family f, const KernelOps& cand, const KernelOps& ref) {
  constexpr int kMax = 41;      // covers several vectors plus odd tails
  constexpr int kPad = 2;       // halo for the offset-indexed kernels
  constexpr int kBuf = kMax + 2 * kPad;
  double a[kBuf], b[kBuf], c[kBuf], d[kBuf], e[kBuf], g[kBuf], h[kBuf];
  double o1[kBuf], o2[kBuf];
  fill_det(a, kBuf, 1, 0.0);
  fill_det(b, kBuf, 2, 0.0);
  fill_det(c, kBuf, 3, 0.0);
  fill_det(d, kBuf, 4, 0.0);
  fill_det(e, kBuf, 5, 0.0);
  fill_det(g, kBuf, 6, 1.0);  // thickness-like streams, bounded away
  fill_det(h, kBuf, 7, 1.0);  // from zero (divisor)
  for (int n : {1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 24, 31, kMax}) {
    fill_det(o1, kBuf, 8, 0.25);
    std::memcpy(o2, o1, sizeof(o1));
    switch (f) {
      case Family::kFluxRow:
        ref.flux_row(n, 0.75, a + kPad, b + kPad, b + kPad + 1, o1 + kPad);
        cand.flux_row(n, 0.75, a + kPad, b + kPad, b + kPad + 1, o2 + kPad);
        break;
      case Family::kAdvectUpdateRow:
        ref.advect_update_row(n, 0.5, a + kPad, b + kPad, c + kPad, d + kPad,
                              e + kPad, g + kPad, h + kPad, g + kPad,
                              o1 + kPad);
        cand.advect_update_row(n, 0.5, a + kPad, b + kPad, c + kPad, d + kPad,
                               e + kPad, g + kPad, h + kPad, g + kPad,
                               o2 + kPad);
        break;
      case Family::kStencil7Interior:
        ref.stencil7_interior(n, a + kPad, b + kPad, c + kPad, d + kPad,
                              e + kPad, o1 + kPad);
        cand.stencil7_interior(n, a + kPad, b + kPad, c + kPad, d + kPad,
                               e + kPad, o2 + kPad);
        break;
      case Family::kPointwisePanel:
        ref.pointwise_panel(static_cast<std::size_t>(n), a + kPad, b + kPad,
                            o1 + kPad);
        cand.pointwise_panel(static_cast<std::size_t>(n), a + kPad, b + kPad,
                             o2 + kPad);
        break;
      case Family::kDaxpy:
        ref.daxpy(static_cast<std::size_t>(n), 1.375, a + kPad, o1 + kPad);
        cand.daxpy(static_cast<std::size_t>(n), 1.375, a + kPad, o2 + kPad);
        break;
      default:
        return true;  // reduction families: ulp contract, never checked
    }
    if (!bits_equal(o1, o2, kBuf)) return false;
  }
  return true;
}

struct State {
  DispatchInfo info;
  KernelOps ops;
};

/// Builds the table for `tier`, self-checking every contracted family and
/// demoting mismatches to scalar.
void apply_tier(State& st, Tier tier) {
  const KernelOps& scalar = detail::scalar_ops();
  const KernelOps* table = tier_table(tier);
  st.info.active = tier;
  st.info.demoted_families.clear();
  st.ops = (table != nullptr) ? *table : scalar;
  if (tier == Tier::kScalar || table == nullptr) {
    st.info.active = Tier::kScalar;
    st.ops = scalar;
    return;
  }
  // Check each contracted family; on mismatch, point that slot back at the
  // scalar kernel (the rest of the tier stays active).
  if (!check_family(Family::kFluxRow, *table, scalar)) {
    st.ops.flux_row = scalar.flux_row;
    st.info.demoted_families.emplace_back(family_name(Family::kFluxRow));
  }
  if (!check_family(Family::kAdvectUpdateRow, *table, scalar)) {
    st.ops.advect_update_row = scalar.advect_update_row;
    st.info.demoted_families.emplace_back(
        family_name(Family::kAdvectUpdateRow));
  }
  if (!check_family(Family::kStencil7Interior, *table, scalar)) {
    st.ops.stencil7_interior = scalar.stencil7_interior;
    st.info.demoted_families.emplace_back(
        family_name(Family::kStencil7Interior));
  }
  if (!check_family(Family::kPointwisePanel, *table, scalar)) {
    st.ops.pointwise_panel = scalar.pointwise_panel;
    st.info.demoted_families.emplace_back(
        family_name(Family::kPointwisePanel));
  }
  if (!check_family(Family::kDaxpy, *table, scalar)) {
    st.ops.daxpy = scalar.daxpy;
    st.info.demoted_families.emplace_back(family_name(Family::kDaxpy));
  }
}

State resolve_auto() {
  State st;
  st.info.built_avx2 = detail::avx2_ops() != nullptr;
  st.info.built_avx512 = detail::avx512_ops() != nullptr;
  st.info.cpu_features = detect_features();

  st.info.detected = Tier::kScalar;
  if (st.info.built_avx2 && host_supports(Tier::kAvx2))
    st.info.detected = Tier::kAvx2;
  if (st.info.built_avx512 && host_supports(Tier::kAvx512))
    st.info.detected = Tier::kAvx512;

  st.info.requested = st.info.detected;
  if (const char* env = std::getenv("AGCM_SIMD"); env && env[0] != '\0') {
    st.info.env_override = true;
    st.info.env_value = env;
    Tier want;
    if (!parse_tier(env, want)) {
      std::fprintf(stderr,
                   "agcm: ignoring AGCM_SIMD='%s' (expected scalar, avx2 or "
                   "avx512)\n",
                   env);
    } else if (static_cast<int>(want) > static_cast<int>(st.info.detected)) {
      std::fprintf(stderr,
                   "agcm: AGCM_SIMD=%s not supported by this host/build; "
                   "using %s\n",
                   tier_name(want), tier_name(st.info.detected));
    } else {
      st.info.requested = want;
    }
  }
  apply_tier(st, st.info.requested);
  return st;
}

State& state() {
  static State st = resolve_auto();
  return st;
}

}  // namespace

const char* tier_name(Tier t) { return kTierNames[static_cast<int>(t)]; }

bool parse_tier(std::string_view name, Tier& out) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (int i = 0; i < 3; ++i) {
    if (lower == kTierNames[i]) {
      out = static_cast<Tier>(i);
      return true;
    }
  }
  return false;
}

const char* family_name(Family f) {
  return kFamilyNames[static_cast<int>(f)];
}

bool family_is_contracted(Family f) {
  return kFamilyContracted[static_cast<int>(f)];
}

const KernelOps& ops() { return state().ops; }

Tier active_tier() { return state().info.active; }

const DispatchInfo& info() { return state().info; }

bool tier_supported(Tier t) {
  return tier_table(t) != nullptr && host_supports(t);
}

bool force_tier(Tier t) {
  if (!tier_supported(t)) return false;
  apply_tier(state(), t);
  return true;
}

void reset_tier() {
  State& st = state();
  apply_tier(st, st.info.requested);
}

}  // namespace agcm::simd
