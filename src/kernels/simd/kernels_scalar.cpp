// Scalar tier of the SIMD dispatch table.
//
// Every kernel here is the seed's per-point expression tree, 4-wide
// unrolled exactly like the PR 4 engine rows it replaces — so the forced-
// scalar tier IS the PR 4 engine, and the bitwise chain
//   seed reference == scalar tier == (self-checked) SIMD tiers
// anchors at the left end in code that is compiled with the build's
// default flags (no -m options, no -ffp-contract pin: if the whole build
// is compiled with unusual FP flags, this TU drifts in lockstep with the
// seed paths, and the dispatcher's self-check demotes the SIMD tiers
// instead — bits before speed).
#include "kernels/simd/kernels.hpp"

namespace agcm::simd::detail {

namespace {

void flux_row(int n, double scale, const double* __restrict vel,
              const double* __restrict h, const double* __restrict hn,
              double* __restrict out) {
#define AGCM_FLUX(p) out[(p)] = vel[(p)] * 0.5 * (h[(p)] + hn[(p)]) * scale
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    AGCM_FLUX(i);
    AGCM_FLUX(i + 1);
    AGCM_FLUX(i + 2);
    AGCM_FLUX(i + 3);
  }
  for (; i < n; ++i) AGCM_FLUX(i);
#undef AGCM_FLUX
}

void advect_update_row(int ni, double dt_inv_area,
                       const double* __restrict fxr,
                       const double* __restrict fyr,
                       const double* __restrict fys,
                       const double* __restrict cr,
                       const double* __restrict cs,
                       const double* __restrict cn,
                       const double* __restrict hor,
                       const double* __restrict hnr, double* __restrict up) {
#define AGCM_UPDATE(p)                                                     \
  do {                                                                     \
    const double fe = fxr[(p)];                                            \
    const double fw = fxr[(p) - 1];                                        \
    const double fn = fyr[(p)];                                            \
    const double fs = fys[(p)];                                            \
    const double flux_e = fe * (fe >= 0.0 ? cr[(p)] : cr[(p) + 1]);        \
    const double flux_w = fw * (fw >= 0.0 ? cr[(p) - 1] : cr[(p)]);        \
    const double flux_n = fn * (fn >= 0.0 ? cr[(p)] : cn[(p)]);            \
    const double flux_s = fs * (fs >= 0.0 ? cs[(p)] : cr[(p)]);            \
    const double ch = cr[(p)] * hor[(p)] -                                 \
                      dt_inv_area * (flux_e - flux_w + flux_n - flux_s);   \
    up[(p)] = ch / hnr[(p)];                                               \
  } while (0)
  int i = 0;
  for (; i + 4 <= ni; i += 4) {
    AGCM_UPDATE(i);
    AGCM_UPDATE(i + 1);
    AGCM_UPDATE(i + 2);
    AGCM_UPDATE(i + 3);
  }
  for (; i < ni; ++i) AGCM_UPDATE(i);
#undef AGCM_UPDATE
}

void stencil7_interior(int n, const double* __restrict f,
                       const double* __restrict fjp,
                       const double* __restrict fjm,
                       const double* __restrict fkp,
                       const double* __restrict fkm, double* __restrict out) {
#define AGCM_LAP7(p)                                                  \
  out[(p)] += f[(p) + 1] + f[(p) - 1] + fjp[(p)] + fjm[(p)] +         \
              fkp[(p)] + fkm[(p)] - 6.0 * f[(p)]
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    AGCM_LAP7(i);
    AGCM_LAP7(i + 1);
    AGCM_LAP7(i + 2);
    AGCM_LAP7(i + 3);
  }
  for (; i < n; ++i) AGCM_LAP7(i);
#undef AGCM_LAP7
}

void pointwise_panel(std::size_t m, const double* __restrict a,
                     const double* __restrict b, double* __restrict out) {
  std::size_t q = 0;
  for (; q + 4 <= m; q += 4) {
    out[q] = a[q] * b[q];
    out[q + 1] = a[q + 1] * b[q + 1];
    out[q + 2] = a[q + 2] * b[q + 2];
    out[q + 3] = a[q + 3] * b[q + 3];
  }
  for (; q < m; ++q) out[q] = a[q] * b[q];
}

void daxpy(std::size_t n, double alpha, const double* __restrict x,
           double* __restrict y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

double ddot(std::size_t n, const double* __restrict x,
            const double* __restrict y) {
  // ONE sequential accumulator: this is the reduction order the frozen
  // paths (and singlenode::ddot) use; the SIMD tiers reassociate.
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

/// acc += emis[e_begin + p*step] * (theta[k2_begin + p] - t1); the exact
/// run loop of kernels::longwave_sweep (column_kernels.cpp).
double exchange_run(double acc, const double* __restrict theta, int k2_begin,
                    int count, const double* __restrict emis, int e_begin,
                    int step, double t1) {
#define AGCM_EXCH(p)                                                     \
  acc += emis[e_begin + (p) * step] * (theta[k2_begin + (p)] - t1)
  int p = 0;
  for (; p + 4 <= count; p += 4) {
    AGCM_EXCH(p);
    AGCM_EXCH(p + 1);
    AGCM_EXCH(p + 2);
    AGCM_EXCH(p + 3);
  }
  for (; p < count; ++p) AGCM_EXCH(p);
#undef AGCM_EXCH
  return acc;
}

double longwave_exchange(const double* theta, int nlev, int k1,
                         const double* emis, double t1) {
  double acc = exchange_run(0.0, theta, 0, k1, emis, k1, -1, t1);
  return exchange_run(acc, theta, k1 + 1, nlev - 1 - k1, emis, 1, +1, t1);
}

void fft_radix2_stage(double* __restrict a, int n, int m,
                      const double* __restrict tw) {
  const int m2 = 2 * m;  // doubles per sub-transform
  for (int b2 = 0; b2 < 2 * n; b2 += 2 * m2) {
    double* __restrict p0 = a + b2;
    double* __restrict p1 = p0 + m2;
    for (int q2 = 0; q2 < m2; q2 += 2) {
      const double ure = p0[q2], uim = p0[q2 + 1];
      const double vre = p1[q2], vim = p1[q2 + 1];
      const double wre = tw[q2], wim = tw[q2 + 1];
      // Complex multiply in std::complex's order: (ac - bd, ad + bc).
      const double tre = vre * wre - vim * wim;
      const double tim = vre * wim + vim * wre;
      p0[q2] = ure + tre;
      p0[q2 + 1] = uim + tim;
      p1[q2] = ure - tre;
      p1[q2 + 1] = uim - tim;
    }
  }
}

void fft_radix4_stage(double* __restrict a, int n, int m,
                      const double* __restrict tw1,
                      const double* __restrict tw2,
                      const double* __restrict tw3, bool inverse) {
  const int m2 = 2 * m;
  for (int b2 = 0; b2 < 2 * n; b2 += 4 * m2) {
    double* __restrict p0 = a + b2;
    double* __restrict p1 = p0 + m2;
    double* __restrict p2 = p1 + m2;
    double* __restrict p3 = p2 + m2;
    for (int q2 = 0; q2 < m2; q2 += 2) {
      const double x0re = p0[q2], x0im = p0[q2 + 1];
      const double w1re = tw1[q2], w1im = tw1[q2 + 1];
      const double w2re = tw2[q2], w2im = tw2[q2 + 1];
      const double w3re = tw3[q2], w3im = tw3[q2 + 1];
      const double x1re = p1[q2] * w1re - p1[q2 + 1] * w1im;
      const double x1im = p1[q2] * w1im + p1[q2 + 1] * w1re;
      const double x2re = p2[q2] * w2re - p2[q2 + 1] * w2im;
      const double x2im = p2[q2] * w2im + p2[q2 + 1] * w2re;
      const double x3re = p3[q2] * w3re - p3[q2 + 1] * w3im;
      const double x3im = p3[q2] * w3im + p3[q2 + 1] * w3re;
      const double t0re = x0re + x2re, t0im = x0im + x2im;
      const double t1re = x0re - x2re, t1im = x0im - x2im;
      const double t2re = x1re + x3re, t2im = x1im + x3im;
      const double dre = x1re - x3re, dim = x1im - x3im;
      // forward: -i*d = (d.im, -d.re); inverse: +i*d = (-d.im, d.re).
      const double jdre = inverse ? -dim : dim;
      const double jdim = inverse ? dre : -dre;
      p0[q2] = t0re + t2re;
      p0[q2 + 1] = t0im + t2im;
      p1[q2] = t1re + jdre;
      p1[q2 + 1] = t1im + jdim;
      p2[q2] = t0re - t2re;
      p2[q2 + 1] = t0im - t2im;
      p3[q2] = t1re - jdre;
      p3[q2 + 1] = t1im - jdim;
    }
  }
}

}  // namespace

const KernelOps& scalar_ops() {
  static const KernelOps ops{flux_row,        advect_update_row,
                             stencil7_interior, pointwise_panel,
                             daxpy,           ddot,
                             longwave_exchange, fft_radix2_stage,
                             fft_radix4_stage};
  return ops;
}

}  // namespace agcm::simd::detail
