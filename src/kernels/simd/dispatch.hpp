// Runtime CPU dispatch for the explicit-SIMD kernel backend.
//
// The paper's single-node optimizations (Section 3.4) targeted mid-90s
// microarchitectures through cache tiling and loop unrolling; the modern
// equivalent of that headroom is explicit data-level parallelism. This
// module resolves — once per process — which instruction-set tier the host
// supports (scalar / AVX2 / AVX-512 doubles) and hands out a function table
// of hot inner-loop kernels for that tier (docs/kernels.md, "SIMD dispatch
// tier").
//
// FP contract per kernel family:
//   * CONTRACTED (bitwise) families — advection flux + upwind-update rows,
//     the 7-point stencil interior row, the §3.4 pointwise ⊗ panel, daxpy —
//     are independent per-point updates whose SIMD forms perform exactly
//     the seed's multiplies/adds per lane (no FMA: the SIMD translation
//     units are compiled with -ffp-contract=off, and the baseline x86-64
//     scalar build has no FMA to contract into). Every tier's output is
//     bitwise identical to the scalar engine, which is itself bitwise
//     identical to the preserved seed paths. These kernels run dispatched
//     in production.
//   * REDUCTION (ulp-bounded) families — ddot, the longwave pair-exchange
//     sum, the FFT radix-2/4 butterfly stages — reassociate when split into
//     SIMD lanes. Their SIMD forms are opt-in entry points, gated by
//     max-ulp tests and benches; the frozen virtual-time artefacts keep the
//     sequential scalar paths (docs/kernels.md, "frozen-artefact rule").
//
// Robustness: after resolving a tier, the dispatcher runs a bitwise
// self-check of every CONTRACTED family against the scalar kernels on
// synthetic data. A family that cannot reproduce the scalar bits on this
// compiler/host (e.g. an exotic toolchain that contracts the scalar code)
// is demoted to scalar individually — performance degrades, bits never do.
//
// Overrides: AGCM_SIMD={scalar,avx2,avx512} caps the tier (CI forced-
// fallback legs, A/B testing); requests above what the host/build supports
// clamp down with a warning. Tests and benches can switch tiers at runtime
// via force_tier()/reset_tier() (single-threaded use only).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace agcm::simd {

/// Instruction-set tiers, ascending. kScalar is always available and is
/// bit-for-bit the PR 4 unrolled-scalar engine.
enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* tier_name(Tier t);

/// Parses "scalar" / "avx2" / "avx512" (case-insensitive). Returns false
/// (and leaves `out` untouched) for anything else.
bool parse_tier(std::string_view name, Tier& out);

/// The kernel families behind the dispatch table (for demotion reporting).
enum class Family : int {
  kFluxRow = 0,
  kAdvectUpdateRow,
  kStencil7Interior,
  kPointwisePanel,
  kDaxpy,
  kDdot,
  kLongwaveExchange,
  kFftRadix2,
  kFftRadix4,
};
inline constexpr int kFamilyCount = 9;

const char* family_name(Family f);

/// True for the families whose SIMD kernels are bitwise identical to the
/// scalar engine (and therefore run dispatched in production); false for
/// the ulp-bounded reduction families (opt-in entry points only).
bool family_is_contracted(Family f);

/// Per-tier function table of the hot inner loops. All pointers are always
/// non-null (scalar fills any slot a tier cannot cover).
struct KernelOps {
  /// out[i] = vel[i] * 0.5 * (h[i] + hn[i]) * scale for i in [0, n).
  /// Serves both advection flux directions (flux_x calls it with pointers
  /// shifted by -1 and hn = h + 1). CONTRACTED.
  void (*flux_row)(int n, double scale, const double* vel, const double* h,
                   const double* hn, double* out);
  /// One tracer's upwind flux-form update over one row (the seed's
  /// expression tree per point; see kernels/advection_kernels.cpp).
  /// CONTRACTED.
  void (*advect_update_row)(int ni, double dt_inv_area, const double* fxr,
                            const double* fyr, const double* fys,
                            const double* cr, const double* cs,
                            const double* cn, const double* hor,
                            const double* hnr, double* up);
  /// out[i] += f[i+1] + f[i-1] + fjp[i] + fjm[i] + fkp[i] + fkm[i]
  ///           - 6.0 * f[i] for i in [0, n); `f` addresses the first
  /// interior point, so f[-1] must be valid. CONTRACTED.
  void (*stencil7_interior)(int n, const double* f, const double* fjp,
                            const double* fjm, const double* fkp,
                            const double* fkm, double* out);
  /// One §3.4 pointwise ⊗ panel: out[q] = a[q] * b[q] for q in [0, m).
  /// CONTRACTED.
  void (*pointwise_panel)(std::size_t m, const double* a, const double* b,
                          double* out);
  /// y[i] = y[i] + alpha * x[i] (mul-then-add, never fused). CONTRACTED.
  void (*daxpy)(std::size_t n, double alpha, const double* x, double* y);
  /// dot(x, y). REDUCTION: SIMD tiers use lane accumulators (reassociated;
  /// ulp-bounded vs the sequential scalar sum).
  double (*ddot)(std::size_t n, const double* x, const double* y);
  /// The longwave pair-exchange sum for layer k1:
  ///   sum_{k2 != k1} emis[|k1-k2|] * (theta[k2] - t1),
  /// split at the diagonal exactly like kernels::longwave_sweep. REDUCTION.
  double (*longwave_exchange)(const double* theta, int nlev, int k1,
                              const double* emis, double t1);
  /// One radix-2 butterfly stage over an interleaved complex-double array
  /// of n complexes with sub-transform size m; `tw` is the stage's twiddle
  /// table (m interleaved complexes). REDUCTION (per-point complex
  /// arithmetic; classed with the butterflies' frozen-path rule).
  void (*fft_radix2_stage)(double* a, int n, int m, const double* tw);
  /// One radix-4 butterfly stage; tw1/tw2/tw3 are the per-leg twiddle
  /// tables (m interleaved complexes each). REDUCTION.
  void (*fft_radix4_stage)(double* a, int n, int m, const double* tw1,
                           const double* tw2, const double* tw3,
                           bool inverse);
};

/// The resolved dispatch decision (exported into bench/trace metadata).
struct DispatchInfo {
  Tier detected = Tier::kScalar;   ///< best tier the CPU + build support
  Tier requested = Tier::kScalar;  ///< after the AGCM_SIMD override
  Tier active = Tier::kScalar;     ///< what ops() actually serves
  bool env_override = false;       ///< AGCM_SIMD was set (and non-empty)
  std::string env_value;           ///< raw AGCM_SIMD value, if any
  bool built_avx2 = false;         ///< AVX2 kernels compiled into the binary
  bool built_avx512 = false;       ///< AVX-512 kernels compiled in
  std::vector<std::string> cpu_features;      ///< detected host features
  std::vector<std::string> demoted_families;  ///< failed bitwise self-check
};

/// The active kernel table. Resolved on first use (cpuid + AGCM_SIMD +
/// bitwise self-check); constant afterwards unless force_tier() is called.
const KernelOps& ops();

/// The active tier (== info().active).
Tier active_tier();

/// The full dispatch decision.
const DispatchInfo& info();

/// True when `t`'s kernels are compiled in AND the host CPU supports them.
bool tier_supported(Tier t);

/// Re-resolves the table for an explicit tier (tests/benches; not
/// thread-safe against concurrent kernel calls). Returns false — leaving
/// the current table untouched — if the tier is not supported. The bitwise
/// self-check and per-family demotion run for the forced tier too.
bool force_tier(Tier t);

/// Restores the automatic (cpuid + AGCM_SIMD) resolution.
void reset_tier();

}  // namespace agcm::simd
