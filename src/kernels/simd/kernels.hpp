// Internal: per-tier kernel table providers (one translation unit per
// tier, each compiled with exactly the flags its ISA needs — see
// src/kernels/simd/CMakeLists.txt and docs/kernels.md).
#pragma once

#include "kernels/simd/dispatch.hpp"

namespace agcm::simd::detail {

/// Always available; every kernel is the seed expression tree, 4-wide
/// unrolled like the PR 4 engine.
const KernelOps& scalar_ops();

/// nullptr when the compiler could not target AVX2 (the TU then compiles
/// as a stub).
const KernelOps* avx2_ops();

/// nullptr when the compiler could not target AVX-512 (F+DQ+VL).
const KernelOps* avx512_ops();

}  // namespace agcm::simd::detail
