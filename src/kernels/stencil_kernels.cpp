#include "kernels/stencil_kernels.hpp"

#include <cstddef>

namespace agcm::kernels {

namespace {

inline std::size_t idx3(int i, int j, int k, int n) {
  return static_cast<std::size_t>(i) +
         static_cast<std::size_t>(n) *
             (static_cast<std::size_t>(j) +
              static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
}

/// out[i] += f[i+1] + f[i-1] + fjp[i] + fjm[i] + fkp[i] + fkm[i] - 6 f[i]
/// over the branch-free interior i in [1, n-1); the seed expression tree
/// per point, 4-wide unrolled.
inline void separate_row_interior(int n, const double* __restrict f,
                                  const double* __restrict fjp,
                                  const double* __restrict fjm,
                                  const double* __restrict fkp,
                                  const double* __restrict fkm,
                                  double* __restrict out) {
#define AGCM_LAP7(p)                                                  \
  out[(p)] += f[(p) + 1] + f[(p) - 1] + fjp[(p)] + fjm[(p)] +         \
              fkp[(p)] + fkm[(p)] - 6.0 * f[(p)]
  int i = 1;
  for (; i + 4 <= n - 1; i += 4) {
    AGCM_LAP7(i);
    AGCM_LAP7(i + 1);
    AGCM_LAP7(i + 2);
    AGCM_LAP7(i + 3);
  }
  for (; i < n - 1; ++i) AGCM_LAP7(i);
#undef AGCM_LAP7
}

}  // namespace

void laplace_sum_separate_engine(const singlenode::SeparateFields& in,
                                 std::vector<double>& out) {
  const int n = in.n;
  out.assign(static_cast<std::size_t>(n) * n * n, 0.0);
  double* __restrict o = out.data();
  // Field order (q outer) matches the seed so every output point
  // accumulates its field contributions in the same sequence.
  for (int q = 0; q < in.m; ++q) {
    const double* __restrict f =
        in.fields[static_cast<std::size_t>(q)].data();
    for (int k = 0; k < n; ++k) {
      const int kp = (k + 1) % n, km = (k - 1 + n) % n;
      for (int j = 0; j < n; ++j) {
        const int jp = (j + 1) % n, jm = (j - 1 + n) % n;
        const double* fr = f + idx3(0, j, k, n);
        const double* fjp = f + idx3(0, jp, k, n);
        const double* fjm = f + idx3(0, jm, k, n);
        const double* fkp = f + idx3(0, j, kp, n);
        const double* fkm = f + idx3(0, j, km, n);
        double* orow = o + idx3(0, j, k, n);
        // Peeled periodic boundary columns, then the branch-free interior.
        orow[0] += fr[1] + fr[n - 1] + fjp[0] + fjm[0] + fkp[0] + fkm[0] -
                   6.0 * fr[0];
        if (n > 1) {
          orow[n - 1] += fr[0] + fr[n - 2] + fjp[n - 1] + fjm[n - 1] +
                         fkp[n - 1] + fkm[n - 1] - 6.0 * fr[n - 1];
          separate_row_interior(n, fr, fjp, fjm, fkp, fkm, orow);
        }
      }
    }
  }
}

void laplace_sum_block_engine(const singlenode::BlockFields& in,
                              std::vector<double>& out) {
  const int n = in.n;
  const int m = in.m;
  out.assign(static_cast<std::size_t>(n) * n * n, 0.0);
  const double* __restrict d = in.data.data();
  double* __restrict o = out.data();
  const std::ptrdiff_t mi = m;  // i step in the block layout
  for (int k = 0; k < n; ++k) {
    const int kp = (k + 1) % n, km = (k - 1 + n) % n;
    for (int j = 0; j < n; ++j) {
      const int jp = (j + 1) % n, jm = (j - 1 + n) % n;
      const double* c = d + static_cast<std::size_t>(m) * idx3(0, j, k, n);
      const double* no = d + static_cast<std::size_t>(m) * idx3(0, jp, k, n);
      const double* s = d + static_cast<std::size_t>(m) * idx3(0, jm, k, n);
      const double* up = d + static_cast<std::size_t>(m) * idx3(0, j, kp, n);
      const double* dn = d + static_cast<std::size_t>(m) * idx3(0, j, km, n);
      double* orow = o + idx3(0, j, k, n);
      for (int i = 0; i < n; ++i) {
        // East/west wrap via peeled offsets; all seven neighbour runs are
        // contiguous m-vectors walked by one sequential accumulator (the
        // seed's q order — lane-splitting would reassociate the sum).
        const double* e = c + (i + 1 == n ? (1 - n) * mi : mi);
        const double* w = c + (i == 0 ? (n - 1) * mi : -mi);
        double acc = 0.0;
        for (int q = 0; q < m; ++q) {
          acc += e[q] + w[q] + no[q] + s[q] + up[q] + dn[q] - 6.0 * c[q];
        }
        orow[i] = acc;
        c += mi;
        no += mi;
        s += mi;
        up += mi;
        dn += mi;
      }
    }
  }
}

}  // namespace agcm::kernels
