#include "kernels/stencil_kernels.hpp"

#include <cstddef>

#include "kernels/simd/dispatch.hpp"

namespace agcm::kernels {

namespace {

inline std::size_t idx3(int i, int j, int k, int n) {
  return static_cast<std::size_t>(i) +
         static_cast<std::size_t>(n) *
             (static_cast<std::size_t>(j) +
              static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
}

}  // namespace

void laplace_sum_separate_engine(const singlenode::SeparateFields& in,
                                 std::vector<double>& out) {
  const int n = in.n;
  out.assign(static_cast<std::size_t>(n) * n * n, 0.0);
  double* __restrict o = out.data();
  // Interior rows go through the dispatched 7-point kernel (CONTRACTED:
  // independent per-point updates, bitwise on every tier). The block-layout
  // engine below does NOT dispatch: its inner loop is one sequential
  // accumulator over the m fields per point, and lane-splitting that sum
  // would reassociate it (docs/kernels.md, frozen-artefact rule).
  const simd::KernelOps& ops = simd::ops();
  // Field order (q outer) matches the seed so every output point
  // accumulates its field contributions in the same sequence.
  for (int q = 0; q < in.m; ++q) {
    const double* __restrict f =
        in.fields[static_cast<std::size_t>(q)].data();
    for (int k = 0; k < n; ++k) {
      const int kp = (k + 1) % n, km = (k - 1 + n) % n;
      for (int j = 0; j < n; ++j) {
        const int jp = (j + 1) % n, jm = (j - 1 + n) % n;
        const double* fr = f + idx3(0, j, k, n);
        const double* fjp = f + idx3(0, jp, k, n);
        const double* fjm = f + idx3(0, jm, k, n);
        const double* fkp = f + idx3(0, j, kp, n);
        const double* fkm = f + idx3(0, j, km, n);
        double* orow = o + idx3(0, j, k, n);
        // Peeled periodic boundary columns, then the branch-free interior.
        orow[0] += fr[1] + fr[n - 1] + fjp[0] + fjm[0] + fkp[0] + fkm[0] -
                   6.0 * fr[0];
        if (n > 1) {
          orow[n - 1] += fr[0] + fr[n - 2] + fjp[n - 1] + fjm[n - 1] +
                         fkp[n - 1] + fkm[n - 1] - 6.0 * fr[n - 1];
          // Branch-free interior i in [1, n-1), centered on element 1.
          ops.stencil7_interior(n - 2, fr + 1, fjp + 1, fjm + 1, fkp + 1,
                                fkm + 1, orow + 1);
        }
      }
    }
  }
}

void laplace_sum_block_engine(const singlenode::BlockFields& in,
                              std::vector<double>& out) {
  const int n = in.n;
  const int m = in.m;
  out.assign(static_cast<std::size_t>(n) * n * n, 0.0);
  const double* __restrict d = in.data.data();
  double* __restrict o = out.data();
  const std::ptrdiff_t mi = m;  // i step in the block layout
  for (int k = 0; k < n; ++k) {
    const int kp = (k + 1) % n, km = (k - 1 + n) % n;
    for (int j = 0; j < n; ++j) {
      const int jp = (j + 1) % n, jm = (j - 1 + n) % n;
      const double* c = d + static_cast<std::size_t>(m) * idx3(0, j, k, n);
      const double* no = d + static_cast<std::size_t>(m) * idx3(0, jp, k, n);
      const double* s = d + static_cast<std::size_t>(m) * idx3(0, jm, k, n);
      const double* up = d + static_cast<std::size_t>(m) * idx3(0, j, kp, n);
      const double* dn = d + static_cast<std::size_t>(m) * idx3(0, j, km, n);
      double* orow = o + idx3(0, j, k, n);
      for (int i = 0; i < n; ++i) {
        // East/west wrap via peeled offsets; all seven neighbour runs are
        // contiguous m-vectors walked by one sequential accumulator (the
        // seed's q order — lane-splitting would reassociate the sum).
        const double* e = c + (i + 1 == n ? (1 - n) * mi : mi);
        const double* w = c + (i == 0 ? (n - 1) * mi : -mi);
        double acc = 0.0;
        for (int q = 0; q < m; ++q) {
          acc += e[q] + w[q] + no[q] + s[q] + up[q] + dn[q] - 6.0 * c[q];
        }
        orow[i] = acc;
        c += mi;
        no += mi;
        s += mi;
        up += mi;
        dn += mi;
      }
    }
  }
}

}  // namespace agcm::kernels
