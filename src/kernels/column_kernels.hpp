// Flat-pointer sweeps of the physics column emulator — the kernel-engine
// versions of the longwave O(K^2) pair exchange and the cumulus-convection
// adjustment loop in src/physics/column.cpp.
//
// Both are BITWISE IDENTICAL to the seed loops (preserved as
// physics::step_column_seed_ref): per-point expression trees and the
// sequential accumulation/update orders are the seed's. What changes:
//   * the longwave emissivity 0.015 / (1 + |k1 - k2|) is precomputed once
//     per call into a distance-indexed table (the identical expression, so
//     identical bits) — the inner loop loses its division, abs() and the
//     k1 == k2 branch by splitting at the diagonal,
//   * the pair loop is 4-wide unrolled with ONE sequential accumulator
//     (lane-splitting would reassociate the sum and change bits),
//   * all pointers are `__restrict`-qualified walks (docs/kernels.md).
#pragma once

namespace agcm::kernels {

/// Fills emis[d] = 0.015 / (1.0 + d) for d = 0..nlev-1 (d indexes the
/// layer distance |k1 - k2|; entry 0 is never read). Each entry is the
/// seed's per-pair expression evaluated once.
void fill_longwave_emissivity(double* emis, int nlev);

/// Process-wide shared emissivity table for `nlev` layers: the values of
/// fill_longwave_emissivity (same fill, hence identical bits) published
/// once and reused by every column of every concurrent Machine, instead of
/// being refilled per column per step. The hot path is a single acquire
/// load from a fixed table-of-pointers (no lock after first publication);
/// pointers stay valid for the process lifetime — a cache clear resets the
/// slots but never frees published tables, so readers need no fences
/// beyond the acquire. Returns nullptr (caller falls back to its own
/// fill_longwave_emissivity scratch) when nlev is out of table range or
/// util::SharedCaches is disabled.
const double* shared_longwave_emissivity(int nlev);

/// Resets the shared emissivity slots (published tables intentionally kept
/// alive — see shared_longwave_emissivity). Wired into
/// util::SharedCaches::clear_all().
void clear_emissivity_cache();

/// The longwave exchange sweep: for every layer k1 (in order), accumulate
/// sum_{k2 != k1} emis[|k1-k2|] * (theta[k2] - theta[k1]) with k2
/// ascending, then theta[k1] += dt_sec * (exchange - 0.8) / 86400.
/// Sequential in k1 (later layers see earlier updates, as in the seed).
void longwave_sweep(double* theta, int nlev, const double* emis,
                    double dt_sec);

/// SIMD-dispatched longwave sweep: the same per-layer update as
/// longwave_sweep, with the pair-exchange sum evaluated by the dispatch
/// table's reduction kernel (lane accumulators). ULP-BOUNDED, not bitwise:
/// production physics (physics::step_column) keeps longwave_sweep — theta
/// bits feed the convection iteration counts and through them the frozen
/// virtual-time artefacts (docs/kernels.md, frozen-artefact rule). Under a
/// forced-scalar tier this IS longwave_sweep, bit for bit.
void longwave_sweep_simd(double* theta, int nlev, const double* emis,
                         double dt_sec);

/// The cumulus-convection adjustment: iteratively mixes unstable adjacent
/// layers, condensing moisture into latent heat and precipitation.
/// Returns the iteration count (>= 1); adds condensed moisture to
/// `precipitation`. Identical update sequence to the seed loop.
int convection_sweep(double* theta, double* q, int nlev, double threshold,
                     int max_iters, double& precipitation);

}  // namespace agcm::kernels
