// The pre-engine optimized advection path, verbatim (see the header).
// Do not "improve" this file: its whole value is that it is the seed.
#include "dynamics/advection_seed_ref.hpp"

#include <vector>

namespace agcm::dynamics {

namespace {

/// Upwind tracer value on a face given the mass flux through it.
inline double upwind(double mass_flux, double c_minus, double c_plus) {
  return mass_flux >= 0.0 ? c_minus : c_plus;
}

}  // namespace

KernelCost advect_tracers_optimized_seed_ref(
    const grid::LatLonGrid& grid, const grid::LocalBox& box,
    const Metrics& metrics, const grid::Array3D<double>& h_old,
    const grid::Array3D<double>& h_new, const grid::Array3D<double>& u,
    const grid::Array3D<double>& v,
    std::span<grid::Array3D<double>* const> tracers, double dt) {
  const int nk = grid.nlev();
  // Mass fluxes computed once and reused by every tracer (the paper's
  // "eliminating or minimizing redundant calculations in nested loops").
  grid::Array3D<double> fx(box.ni, box.nj, nk, /*ghost=*/1);
  grid::Array3D<double> fy(box.ni, box.nj, nk, /*ghost=*/1);
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box.nj; ++j) {
      const double dy = metrics.dy_face[static_cast<std::size_t>(j)];
      const double dxn = metrics.dx_vface[static_cast<std::size_t>(j) + 1];
      for (int i = -1; i < box.ni; ++i) {
        fx(i, j, k) =
            u(i, j, k) * 0.5 * (h_old(i, j, k) + h_old(i + 1, j, k)) * dy;
      }
      for (int i = 0; i < box.ni; ++i) {
        fy(i, j, k) =
            v(i, j, k) * 0.5 * (h_old(i, j, k) + h_old(i, j + 1, k)) * dxn;
      }
    }
    // The south-edge fluxes of row 0 (face j = -1/2).
    {
      const double dxs = metrics.dx_vface[0];
      for (int i = 0; i < box.ni; ++i) {
        fy(i, -1, k) =
            v(i, -1, k) * 0.5 * (h_old(i, -1, k) + h_old(i, 0, k)) * dxs;
      }
    }
  }

  std::vector<grid::Array3D<double>> updated;
  updated.reserve(tracers.size());
  for (std::size_t t = 0; t < tracers.size(); ++t)
    updated.emplace_back(box.ni, box.nj, nk, 0);

  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box.nj; ++j) {
      const double inv_area = metrics.inv_area[static_cast<std::size_t>(j)];
      const double dt_inv_area = dt * inv_area;  // hoisted invariant
      for (int i = 0; i < box.ni; ++i) {
        const double fe = fx(i, j, k);
        const double fw = fx(i - 1, j, k);
        const double fn = fy(i, j, k);
        const double fs = fy(i, j - 1, k);
        // Loops fused over tracers: one traversal of the flux arrays.
        // (Division kept per tracer so results match the baseline bit for
        // bit — the win here is flux reuse and fusion, not strength
        // reduction.)
        for (std::size_t t = 0; t < tracers.size(); ++t) {
          const grid::Array3D<double>& c = *tracers[t];
          const double flux_e = fe * upwind(fe, c(i, j, k), c(i + 1, j, k));
          const double flux_w = fw * upwind(fw, c(i - 1, j, k), c(i, j, k));
          const double flux_n = fn * upwind(fn, c(i, j, k), c(i, j + 1, k));
          const double flux_s = fs * upwind(fs, c(i, j - 1, k), c(i, j, k));
          const double ch = c(i, j, k) * h_old(i, j, k) -
                            dt_inv_area * (flux_e - flux_w + flux_n - flux_s);
          updated[t](i, j, k) = ch / h_new(i, j, k);
        }
      }
    }
  }
  for (std::size_t t = 0; t < tracers.size(); ++t) {
    grid::Array3D<double>& c = *tracers[t];
    for (int k = 0; k < nk; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i) c(i, j, k) = updated[t](i, j, k);
  }

  KernelCost cost;
  const double points = static_cast<double>(box.ni) * box.nj * nk;
  // Mass fluxes once (12 flops/point), then per tracer: 4 upwind fluxes (8)
  // plus the update (6).
  cost.flops =
      points * (12.0 + 14.0 * static_cast<double>(tracers.size()));
  // The fused loop references more concurrent streams (two flux arrays,
  // both thicknesses, every tracer and its scratch), which hurts the tiny
  // 1990s caches — the paper's own observation that a "better" data
  // structure for one loop can be worse for another. The net effect is
  // still a ~35% faster routine, dominated by the eliminated flops.
  cost.cache_efficiency = 0.66;
  return cost;
}

}  // namespace agcm::dynamics
