// Prognostic model state on the local block of the Arakawa C-grid.
//
// The AGCM/Dynamics substitute integrates multi-layer shallow-water
// equations: thickness h and tracers (potential temperature theta, specific
// humidity q) live at cell centres; u sits on east faces, v on north faces
// (C staggering). All vertical layers are local to a node (2-D horizontal
// decomposition, as in the paper).
//
// Staggering convention on the local block (ghost width 1):
//   h(i,j,k), theta, q : centre of cell (i,j)
//   u(i,j,k)           : east face of cell (i,j)   (between i and i+1)
//   v(i,j,k)           : north face of cell (i,j)  (between j and j+1)
// Global row j=0 is the southernmost; the v-face at the south edge of cell
// row 0 and the north edge of row nlat-1 are the poles (zero flux).
#pragma once

#include <cstdint>

#include "grid/array3d.hpp"
#include "grid/decomp.hpp"
#include "grid/latlon.hpp"

namespace agcm::dynamics {

struct State {
  State() = default;
  State(const grid::LocalBox& box, int nlev);

  grid::Array3D<double> h;      ///< layer thickness (m)
  grid::Array3D<double> u;      ///< zonal wind (m/s), east faces
  grid::Array3D<double> v;      ///< meridional wind (m/s), north faces
  grid::Array3D<double> theta;  ///< potential temperature (K), centres
  grid::Array3D<double> q;      ///< specific humidity (kg/kg), centres
  double time_sec = 0.0;        ///< simulated time
  std::int64_t step = 0;        ///< completed timesteps
};

/// Deterministic initial condition: a balanced zonal jet per layer with a
/// small wavenumber-4 perturbation, mid-latitude theta gradient and a moist
/// tropics. Identical global fields regardless of the decomposition (each
/// point's value depends only on its global coordinates and the seed).
void initialize_state(State& state, const grid::LatLonGrid& grid,
                      const grid::LocalBox& box, std::uint64_t seed);

}  // namespace agcm::dynamics
