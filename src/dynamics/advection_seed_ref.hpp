// Seed reference for the optimized tracer advection: the implementation
// exactly as it stood before the kernel engine (PR "vectorized single-node
// kernel engine"), preserved verbatim — per-element Array3D::operator()
// access and per-call scratch allocation included — so the engine bench
// and the bit-exactness tests always compare against the true seed path
// (the same pattern as fft/recursive_ref.hpp for the FFT engine).
//
// Returns the same KernelCost and produces bitwise-identical fields to
// dynamics::advect_tracers_optimized, which now routes through
// kernels::advect_tracers_engine (docs/kernels.md).
#pragma once

#include "dynamics/advection.hpp"

namespace agcm::dynamics {

KernelCost advect_tracers_optimized_seed_ref(
    const grid::LatLonGrid& grid, const grid::LocalBox& box,
    const Metrics& metrics, const grid::Array3D<double>& h_old,
    const grid::Array3D<double>& h_new, const grid::Array3D<double>& u,
    const grid::Array3D<double>& v,
    std::span<grid::Array3D<double>* const> tracers, double dt);

}  // namespace agcm::dynamics
