// Tracer advection — the routine the paper singles out for single-node
// optimization (Section 3.4: "We selected the advection routine from the
// Dynamics component ... because of the heavy local computing involved").
//
// Two implementations produce bit-identical results:
//   * advect_tracers_baseline — structured like the original Fortran: one
//     pass per tracer, each pass recomputing the mass fluxes and metric
//     factors it needs inside the loops (the "redundant calculations in
//     nested loops" the paper eliminates).
//   * advect_tracers_optimized — the paper's optimizations applied: mass
//     fluxes computed once and reused across tracers, loop-invariant metric
//     terms hoisted, loops fused over tracers.
// Both use first-order upwind fluxes in flux form, which conserves the
// tracer mass exactly (the integration tests rely on this).
#pragma once

#include <span>

#include "dynamics/state.hpp"

namespace agcm::dynamics {

/// Cost of one advection invocation for the virtual clock.
struct KernelCost {
  double flops = 0.0;
  double cache_efficiency = 1.0;
};

/// Metric factors precomputed per latitude row (construction-time).
struct Metrics {
  std::vector<double> inv_area;    ///< 1 / cell_area(j)
  std::vector<double> dy_face;     ///< meridional face length (m), per j row
  std::vector<double> dx_vface;    ///< zonal length of the v-face at j+1/2
  static Metrics build(const grid::LatLonGrid& grid, const grid::LocalBox& box);
};

/// Advances `tracers` (centre fields, ghost >= 1, halos current) by dt with
/// upwind fluxes derived from (u, v, h_old); `h_old` and `h_new` are the
/// thickness before/after the continuity update of the same step.
KernelCost advect_tracers_baseline(
    const grid::LatLonGrid& grid, const grid::LocalBox& box,
    const Metrics& metrics, const grid::Array3D<double>& h_old,
    const grid::Array3D<double>& h_new, const grid::Array3D<double>& u,
    const grid::Array3D<double>& v,
    std::span<grid::Array3D<double>* const> tracers, double dt);

KernelCost advect_tracers_optimized(
    const grid::LatLonGrid& grid, const grid::LocalBox& box,
    const Metrics& metrics, const grid::Array3D<double>& h_old,
    const grid::Array3D<double>& h_new, const grid::Array3D<double>& u,
    const grid::Array3D<double>& v,
    std::span<grid::Array3D<double>* const> tracers, double dt);

}  // namespace agcm::dynamics
