#include "dynamics/state.hpp"

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace agcm::dynamics {

State::State(const grid::LocalBox& box, int nlev)
    : h(box.ni, box.nj, nlev, /*ghost=*/1),
      u(box.ni, box.nj, nlev, /*ghost=*/1),
      v(box.ni, box.nj, nlev, /*ghost=*/1),
      theta(box.ni, box.nj, nlev, /*ghost=*/1),
      q(box.ni, box.nj, nlev, /*ghost=*/1) {}

void initialize_state(State& state, const grid::LatLonGrid& grid,
                      const grid::LocalBox& box, std::uint64_t seed) {
  const double h0 = 8000.0;       // mean equivalent depth (m)
  const double jet_speed = 25.0;  // m/s
  const double g = grid.planet().gravity;
  const double omega = grid.planet().omega;
  const double a = grid.planet().radius_m;

  for (int k = 0; k < grid.nlev(); ++k) {
    const double layer_scale = 1.0 + 0.15 * k;  // faster aloft
    for (int j = 0; j < box.nj; ++j) {
      const int gj = box.j0 + j;
      const double lat = grid.lat_center(gj);
      const double lat_face = grid.lat_vface(gj + 1);
      for (int i = 0; i < box.ni; ++i) {
        const int gi = box.i0 + i;
        const double lon = grid.lon_center(gi);
        // Zonal jet peaking at +-45 degrees.
        const double jet = jet_speed * layer_scale *
                           std::sin(2.0 * lat) * std::sin(2.0 * lat);
        // Geostrophically consistent height depression under the jet:
        // dh/dphi = -(a f u)/g with f = 2 Omega sin(phi); we use the
        // closed-form integral of the jet profile above.
        const double f = 2.0 * omega * std::sin(lat);
        const double hbal =
            h0 - (a / g) * f * jet * 0.35;  // approximate balance
        // Small deterministic wavenumber-4 perturbation, amplified toward
        // the poles so the polar filter has real work to do.
        Rng rng = Rng::for_stream(seed, (static_cast<std::uint64_t>(k) << 32) ^
                                            (static_cast<std::uint64_t>(gj) << 16) ^
                                            static_cast<std::uint64_t>(gi));
        const double polar_boost = 1.0 + 3.0 * std::pow(std::sin(lat), 8.0);
        const double bump =
            (8.0 * std::cos(4.0 * lon) + 2.0 * (rng.uniform() - 0.5)) *
            polar_boost;
        state.h(i, j, k) = hbal + bump;
        state.u(i, j, k) = jet * std::cos(lat_face * 0.0);  // u on east face
        state.v(i, j, k) = 0.0;
        // Warm equator, cold poles; stable-ish stratification with layer.
        state.theta(i, j, k) =
            300.0 - 40.0 * std::sin(lat) * std::sin(lat) + 3.0 * k +
            0.5 * (rng.uniform() - 0.5);
        // Moist tropics.
        state.q(i, j, k) =
            0.018 * std::exp(-std::pow(lat / 0.45, 2.0)) *
            std::exp(-0.35 * k) * (1.0 + 0.1 * (rng.uniform() - 0.5));
      }
    }
  }
  state.time_sec = 0.0;
  state.step = 0;
}

}  // namespace agcm::dynamics
