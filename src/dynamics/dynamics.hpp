// AGCM/Dynamics substitute: multi-layer shallow-water equations on the
// Arakawa C-grid with polar spectral filtering.
//
// The computational skeleton matches the paper's description of the UCLA
// AGCM Dynamics component:
//   * explicit finite differences on a 2-D decomposed lat-lon grid
//     (forward-backward gravity-wave integration, upwind tracer transport),
//   * nearest-neighbour ghost-point exchanges before the FD sweeps,
//   * spectral filtering "at each time step before the finite-difference
//     procedures are called" poleward of the cutoff latitudes, which is
//     what allows a uniform timestep sized by the mid-latitude CFL limit.
#pragma once

#include <memory>

#include "comm/mesh2d.hpp"
#include "dynamics/advection.hpp"
#include "dynamics/state.hpp"
#include "filter/parallel.hpp"

namespace agcm::dynamics {

/// Explicit time-differencing scheme for the gravity-wave terms.
enum class TimeScheme {
  /// Forward-backward: h first, then momentum against the new h. Simple,
  /// no computational mode, stable to Courant 1.
  kForwardBackward,
  /// Leapfrog with a Robert-Asselin filter — the scheme family of the
  /// Arakawa-Lamb dycore. First step is forward-backward.
  kLeapfrog,
};

struct DynamicsConfig {
  double dt_sec = 450.0;  ///< uniform timestep (mid-latitude CFL)
  TimeScheme time_scheme = TimeScheme::kForwardBackward;
  double robert_asselin = 0.06;  ///< leapfrog computational-mode damping
  bool use_polar_filter = true;
  filter::FilterAlgorithm filter_algorithm =
      filter::FilterAlgorithm::kFftBalanced;
  bool optimized_advection = false;  ///< Section 3.4 single-node variant
  /// Dimensionless per-step horizontal smoothing of momentum (a grid-space
  /// del-2 with coefficient kappa per direction; stable for kappa < 0.25).
  /// Expressed in grid units so the polar rows, where dx shrinks by two
  /// orders of magnitude, stay stable.
  double kappa_smooth = 0.02;
};

/// Virtual-seconds spent in the phases of the last step (this rank).
struct DynamicsTimings {
  double filter_sec = 0.0;
  double halo_sec = 0.0;
  double fd_sec = 0.0;  ///< finite differences incl. advection
  double total() const { return filter_sec + halo_sec + fd_sec; }
};

class Dynamics {
 public:
  /// mesh/decomp/grid must outlive the Dynamics object.
  Dynamics(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
           const grid::LatLonGrid& grid, const DynamicsConfig& config);

  /// One forward-backward timestep (filter -> halos -> FD). Collective.
  void step(State& state);

  const DynamicsTimings& last_timings() const { return timings_; }
  const DynamicsConfig& config() const { return config_; }
  const filter::FilterBank& filter_bank() const { return *bank_; }
  filter::PolarFilter* polar_filter() { return filter_.get(); }

  /// Global diagnostics (collective).
  double total_mass(const State& state) const;
  /// Total energy (kinetic + available potential), sum over layers:
  /// integral of h (u^2 + v^2)/2 + g h^2 / 2. Not exactly conserved by the
  /// discretisation, but it must stay bounded — the stability diagnostic.
  /// Refreshes the state's halos (hence non-const state).
  double total_energy(State& state) const;
  double total_tracer_mass(const State& state,
                           const grid::Array3D<double>& tracer) const;
  /// Max zonal Courant number |u| dt / dx over the globe.
  double max_zonal_courant(const State& state) const;
  /// Max gravity-wave Courant number sqrt(g h) dt / dx over the globe.
  double max_gravity_courant(const State& state) const;

  /// The variables the polar filter touches, in bank order
  /// (u, v, h strongly; theta, q weakly).
  static std::vector<filter::FilteredVariable> filtered_variables();

 private:
  void exchange_all_halos(State& state);
  void apply_filter(State& state);
  /// The FD sweeps (forward-backward path).
  void finite_differences(State& state);
  /// The FD sweeps (leapfrog path; falls back to forward-backward on the
  /// first step to prime the lagged level).
  void finite_differences_leapfrog(State& state);

  const comm::Mesh2D* mesh_;
  const grid::Decomp2D* decomp_;
  const grid::LatLonGrid* grid_;
  DynamicsConfig config_;
  grid::LocalBox box_;
  Metrics metrics_;
  /// Resolved through the process-wide bank cache (filter/bank_cache.hpp):
  /// every rank of every concurrent run at the same grid geometry shares
  /// one immutable bank; the handle keeps it (and its owned grid copy)
  /// alive past any cache clear.
  std::shared_ptr<const filter::FilterBank> bank_;
  std::unique_ptr<filter::PolarFilter> filter_;
  DynamicsTimings timings_;
  // Scratch fields reused across steps.
  grid::Array3D<double> h_new_, u_new_, v_new_;
  // Lagged (n-1) level for the leapfrog scheme; primed on the first step.
  grid::Array3D<double> h_prev_, u_prev_, v_prev_;
  bool have_prev_ = false;
};

}  // namespace agcm::dynamics
