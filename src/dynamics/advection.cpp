#include "dynamics/advection.hpp"

#include <algorithm>

#include "kernels/advection_kernels.hpp"
#include "kernels/workspace.hpp"
#include "util/error.hpp"

namespace agcm::dynamics {

Metrics Metrics::build(const grid::LatLonGrid& grid,
                       const grid::LocalBox& box) {
  Metrics m;
  m.inv_area.resize(static_cast<std::size_t>(box.nj));
  m.dy_face.resize(static_cast<std::size_t>(box.nj));
  m.dx_vface.resize(static_cast<std::size_t>(box.nj) + 1);
  for (int j = 0; j < box.nj; ++j) {
    const int gj = box.j0 + j;
    m.inv_area[static_cast<std::size_t>(j)] = 1.0 / grid.cell_area_m2(gj);
    m.dy_face[static_cast<std::size_t>(j)] = grid.dy_m();
  }
  for (int j = 0; j <= box.nj; ++j) {
    const int gj = box.j0 + j;
    // Zonal extent of the v-face between rows gj-1 and gj; zero exactly at
    // the poles, which kills the polar mass flux regardless of ghost data.
    m.dx_vface[static_cast<std::size_t>(j)] =
        grid.planet().radius_m * grid.dlon_rad() * grid.cos_vface(gj);
  }
  return m;
}

namespace {

/// Upwind tracer value on a face given the mass flux through it.
inline double upwind(double mass_flux, double c_minus, double c_plus) {
  return mass_flux >= 0.0 ? c_minus : c_plus;
}

}  // namespace

KernelCost advect_tracers_baseline(
    const grid::LatLonGrid& grid, const grid::LocalBox& box,
    const Metrics& metrics, const grid::Array3D<double>& h_old,
    const grid::Array3D<double>& h_new, const grid::Array3D<double>& u,
    const grid::Array3D<double>& v,
    std::span<grid::Array3D<double>* const> tracers, double dt) {
  const int nk = grid.nlev();
  // Original-Fortran structure: one full pass per tracer; the mass fluxes
  // and face thicknesses are recomputed inside every pass (the redundant
  // work the paper's optimization removes).
  for (auto* tracer_ptr : tracers) {
    grid::Array3D<double>& c = *tracer_ptr;
    grid::Array3D<double> updated(box.ni, box.nj, nk, /*ghost=*/0);
    for (int k = 0; k < nk; ++k) {
      for (int j = 0; j < box.nj; ++j) {
        const double inv_area = metrics.inv_area[static_cast<std::size_t>(j)];
        for (int i = 0; i < box.ni; ++i) {
          // Mass fluxes through all four faces, recomputed per tracer.
          const double dy = metrics.dy_face[static_cast<std::size_t>(j)];
          const double fe =
              u(i, j, k) * 0.5 * (h_old(i, j, k) + h_old(i + 1, j, k)) * dy;
          const double fw =
              u(i - 1, j, k) * 0.5 * (h_old(i - 1, j, k) + h_old(i, j, k)) * dy;
          const double fn =
              v(i, j, k) * 0.5 * (h_old(i, j, k) + h_old(i, j + 1, k)) *
              metrics.dx_vface[static_cast<std::size_t>(j) + 1];
          const double fs =
              v(i, j - 1, k) * 0.5 * (h_old(i, j - 1, k) + h_old(i, j, k)) *
              metrics.dx_vface[static_cast<std::size_t>(j)];
          const double flux_e = fe * upwind(fe, c(i, j, k), c(i + 1, j, k));
          const double flux_w = fw * upwind(fw, c(i - 1, j, k), c(i, j, k));
          const double flux_n = fn * upwind(fn, c(i, j, k), c(i, j + 1, k));
          const double flux_s = fs * upwind(fs, c(i, j - 1, k), c(i, j, k));
          const double ch =
              c(i, j, k) * h_old(i, j, k) -
              dt * inv_area * (flux_e - flux_w + flux_n - flux_s);
          updated(i, j, k) = ch / h_new(i, j, k);
        }
      }
    }
    for (int k = 0; k < nk; ++k)
      for (int j = 0; j < box.nj; ++j)
        for (int i = 0; i < box.ni; ++i) c(i, j, k) = updated(i, j, k);
  }

  KernelCost cost;
  const double points = static_cast<double>(box.ni) * box.nj * nk;
  // Per point per tracer: 4 mass fluxes (6 flops each incl. face
  // thickness), 4 upwind fluxes (2), update (6) ~= 38 flops.
  cost.flops = 38.0 * points * static_cast<double>(tracers.size());
  // Each pass streams a modest set of arrays (u, v, h_old, h_new, tracer,
  // scratch), so per-pass cache behaviour is comparatively benign — the
  // waste is the *recomputation*, not the locality.
  cost.cache_efficiency = 0.80;
  return cost;
}

KernelCost advect_tracers_optimized(
    const grid::LatLonGrid& grid, const grid::LocalBox& box,
    const Metrics& metrics, const grid::Array3D<double>& h_old,
    const grid::Array3D<double>& h_new, const grid::Array3D<double>& u,
    const grid::Array3D<double>& v,
    std::span<grid::Array3D<double>* const> tracers, double dt) {
  const int nk = grid.nlev();
  // Host execution is delegated to the tiled, unrolled kernel engine, which
  // produces fields bitwise identical to the pre-engine implementation
  // (preserved verbatim in advection_seed_ref.cpp and cross-checked by
  // bench_kernel_engine and the dynamics tests). Scratch comes from the
  // per-rank KernelWorkspace, so the steady state allocates nothing.
  const kernels::AdvectionMetricsView mview{
      metrics.inv_area.data(), metrics.dy_face.data(),
      metrics.dx_vface.data()};
  kernels::advect_tracers_engine(mview, h_old, h_new, u, v, tracers, box.ni,
                                 box.nj, nk, dt,
                                 kernels::KernelWorkspace::local());

  // The virtual-cost model is the SEED's, unchanged: the engine reorganizes
  // host loops, not the modelled 1990s machine (docs/kernels.md).
  KernelCost cost;
  const double points = static_cast<double>(box.ni) * box.nj * nk;
  // Mass fluxes once (12 flops/point), then per tracer: 4 upwind fluxes (8)
  // plus the update (6).
  cost.flops =
      points * (12.0 + 14.0 * static_cast<double>(tracers.size()));
  // The fused loop references more concurrent streams (two flux arrays,
  // both thicknesses, every tracer and its scratch), which hurts the tiny
  // 1990s caches — the paper's own observation that a "better" data
  // structure for one loop can be worse for another. The net effect is
  // still a ~35% faster routine, dominated by the eliminated flops.
  cost.cache_efficiency = 0.66;
  return cost;
}

}  // namespace agcm::dynamics
