#include "dynamics/dynamics.hpp"

#include <algorithm>
#include <cmath>

#include "filter/bank_cache.hpp"
#include "grid/halo.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace agcm::dynamics {

namespace {

// The substitute dycore implements the shallow-water skeleton of the
// Arakawa-Lamb primitive-equation core. The real AGCM does substantially
// more arithmetic per point per step (vertical advection, hydrostatic and
// energy-conversion terms, implicit boundary-layer solves). This factor
// scales the *virtual cost* of the FD sweeps to the full dycore's
// arithmetic intensity; the executed computation stays the shallow-water
// one. Calibrated once against the paper's 1-node Paragon timing (Table 4);
// never tuned per experiment.
constexpr double kFullDycoreFactor = 4.5;

}  // namespace

std::vector<filter::FilteredVariable> Dynamics::filtered_variables() {
  return {
      {"u", filter::FilterKind::kStrong},
      {"v", filter::FilterKind::kStrong},
      {"h", filter::FilterKind::kStrong},
      {"theta", filter::FilterKind::kWeak},
      {"q", filter::FilterKind::kWeak},
  };
}

Dynamics::Dynamics(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                   const grid::LatLonGrid& grid, const DynamicsConfig& config)
    : mesh_(&mesh), decomp_(&decomp), grid_(&grid), config_(config),
      box_(decomp.box(mesh.coord())),
      metrics_(Metrics::build(grid, box_)),
      bank_(filter::shared_bank(grid, filtered_variables())),
      h_new_(box_.ni, box_.nj, grid.nlev(), 1),
      u_new_(box_.ni, box_.nj, grid.nlev(), 1),
      v_new_(box_.ni, box_.nj, grid.nlev(), 1),
      h_prev_(box_.ni, box_.nj, grid.nlev(), 1),
      u_prev_(box_.ni, box_.nj, grid.nlev(), 1),
      v_prev_(box_.ni, box_.nj, grid.nlev(), 1) {
  check_config(config.dt_sec > 0.0, "dt must be positive");
  check_config(config.robert_asselin >= 0.0 && config.robert_asselin < 0.5,
               "Robert-Asselin coefficient must be in [0, 0.5)");
  if (config_.use_polar_filter) {
    filter_ = filter::make_filter(config_.filter_algorithm, mesh, decomp,
                                  *bank_);
  }
}

void Dynamics::exchange_all_halos(State& state) {
  // Batched sweep in the default per-field mode: bitwise the historical
  // five sequential exchanges, but packed through one cached strip program.
  grid::Array3D<double>* fields[] = {&state.h, &state.u, &state.v,
                                     &state.theta, &state.q};
  grid::exchange_halos(*mesh_, fields);
}

void Dynamics::apply_filter(State& state) {
  if (!filter_) return;
  grid::Array3D<double>* fields[] = {&state.u, &state.v, &state.h,
                                     &state.theta, &state.q};
  filter_->apply(fields);
}

void Dynamics::step(State& state) {
  simnet::RankContext& ctx = mesh_->world().context();
  auto& clock = ctx.clock();
  timings_ = DynamicsTimings{};

  // 1. Spectral filtering "at each time step before the finite-difference
  //    procedures are called".
  double t0 = clock.now();
  {
    AGCM_TRACE_SPAN("dynamics.filter", ctx);
    apply_filter(state);
    mesh_->world().barrier();  // component timing boundary (as in the paper)
  }
  timings_.filter_sec = clock.now() - t0;

  // 2. Ghost-point exchanges for the FD sweeps.
  t0 = clock.now();
  {
    AGCM_TRACE_SPAN("dynamics.halo", ctx);
    exchange_all_halos(state);
  }
  timings_.halo_sec = clock.now() - t0;

  // 3. Finite differences (+ upwind tracers).
  t0 = clock.now();
  {
    AGCM_TRACE_SPAN("dynamics.fd", ctx);
    if (config_.time_scheme == TimeScheme::kLeapfrog) {
      finite_differences_leapfrog(state);
    } else {
      finite_differences(state);
    }
  }
  timings_.fd_sec = clock.now() - t0;

  state.time_sec += config_.dt_sec;
  ++state.step;
}

void Dynamics::finite_differences(State& state) {
  auto& clock = mesh_->world().context().clock();
  const int nk = grid_->nlev();
  const double dt = config_.dt_sec;
  const double g = grid_->planet().gravity;
  const double omega = grid_->planet().omega;
  const double dy = grid_->dy_m();
  const double kappa = config_.kappa_smooth;
  const int global_nlat = grid_->nlat();

  // --- continuity: h_new = h - dt/area * div(mass flux), flux form -------
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box_.nj; ++j) {
      const double inv_area = metrics_.inv_area[static_cast<std::size_t>(j)];
      const double dxn = metrics_.dx_vface[static_cast<std::size_t>(j) + 1];
      const double dxs = metrics_.dx_vface[static_cast<std::size_t>(j)];
      const double dyf = metrics_.dy_face[static_cast<std::size_t>(j)];
      for (int i = 0; i < box_.ni; ++i) {
        const double fe = state.u(i, j, k) * 0.5 *
                          (state.h(i, j, k) + state.h(i + 1, j, k)) * dyf;
        const double fw = state.u(i - 1, j, k) * 0.5 *
                          (state.h(i - 1, j, k) + state.h(i, j, k)) * dyf;
        const double fn = state.v(i, j, k) * 0.5 *
                          (state.h(i, j, k) + state.h(i, j + 1, k)) * dxn;
        const double fs = state.v(i, j - 1, k) * 0.5 *
                          (state.h(i, j - 1, k) + state.h(i, j, k)) * dxs;
        h_new_(i, j, k) =
            state.h(i, j, k) - dt * inv_area * (fe - fw + fn - fs);
      }
    }
  }
  const double points = static_cast<double>(box_.ni) * box_.nj * nk;
  // Inner loops run over the local zonal extent; narrow blocks pay the
  // machine's pipeline-startup penalty.
  const double loop_eff = clock.profile().loop_efficiency(box_.ni);
  clock.compute(kFullDycoreFactor * 16.0 * points, loop_eff);

  // The momentum PGF needs h_new ghosts.
  grid::exchange_halo(*mesh_, h_new_);

  // --- momentum (backward step: uses h_new for the pressure gradient) ----
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box_.nj; ++j) {
      const int gj = box_.j0 + j;
      const double lat_u = grid_->lat_center(gj);
      const double f_u = 2.0 * omega * std::sin(lat_u);
      const double dx_u = grid_->dx_m(gj);
      const bool south_edge = (gj == 0);
      const bool north_edge = (gj == global_nlat - 1);
      for (int i = 0; i < box_.ni; ++i) {
        // u on the east face of (i, j).
        const double vbar = 0.25 * (state.v(i, j, k) + state.v(i + 1, j, k) +
                                    state.v(i, j - 1, k) +
                                    state.v(i + 1, j - 1, k));
        const double pgf_x =
            -g * (h_new_(i + 1, j, k) - h_new_(i, j, k)) / dx_u;
        const double u_n =
            north_edge ? state.u(i, j, k) : state.u(i, j + 1, k);
        const double u_s =
            south_edge ? state.u(i, j, k) : state.u(i, j - 1, k);
        // Grid-space del-2 smoothing (see DynamicsConfig::kappa_smooth).
        const double smooth_u =
            kappa * (state.u(i + 1, j, k) + state.u(i - 1, j, k) -
                     2.0 * state.u(i, j, k)) +
            kappa * (u_n + u_s - 2.0 * state.u(i, j, k));
        u_new_(i, j, k) =
            state.u(i, j, k) + dt * (f_u * vbar + pgf_x) + smooth_u;

        // v on the north face of (i, j); the polar faces stay at rest.
        if (gj + 1 >= global_nlat) {
          v_new_(i, j, k) = 0.0;
          continue;
        }
        const double lat_v = grid_->lat_vface(gj + 1);
        const double f_v = 2.0 * omega * std::sin(lat_v);
        const double ubar = 0.25 * (state.u(i, j, k) + state.u(i - 1, j, k) +
                                    state.u(i, j + 1, k) +
                                    state.u(i - 1, j + 1, k));
        const double pgf_y =
            -g * (h_new_(i, j + 1, k) - h_new_(i, j, k)) / dy;
        const double v_n =
            north_edge ? state.v(i, j, k) : state.v(i, j + 1, k);
        const double v_s = state.v(i, j - 1, k);
        const double smooth_v =
            kappa * (state.v(i + 1, j, k) + state.v(i - 1, j, k) -
                     2.0 * state.v(i, j, k)) +
            kappa * (v_n + v_s - 2.0 * state.v(i, j, k));
        v_new_(i, j, k) =
            state.v(i, j, k) + dt * (-f_v * ubar + pgf_y) + smooth_v;
      }
    }
  }
  clock.compute(kFullDycoreFactor * 44.0 * points, loop_eff);

  // --- tracer transport (the paper's "advection routine") ----------------
  grid::Array3D<double>* tracers[] = {&state.theta, &state.q};
  const KernelCost advection_cost =
      config_.optimized_advection
          ? advect_tracers_optimized(*grid_, box_, metrics_, state.h, h_new_,
                                     state.u, state.v, tracers, dt)
          : advect_tracers_baseline(*grid_, box_, metrics_, state.h, h_new_,
                                    state.u, state.v, tracers, dt);
  clock.compute(kFullDycoreFactor * advection_cost.flops,
                advection_cost.cache_efficiency * loop_eff);

  // --- commit -------------------------------------------------------------
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box_.nj; ++j) {
      for (int i = 0; i < box_.ni; ++i) {
        state.h(i, j, k) = h_new_(i, j, k);
        state.u(i, j, k) = u_new_(i, j, k);
        state.v(i, j, k) = v_new_(i, j, k);
      }
    }
  }
  clock.memory_traffic(6.0 * points * sizeof(double));
}

void Dynamics::finite_differences_leapfrog(State& state) {
  if (!have_prev_) {
    // Prime the lagged level with the pre-step state, then advance the
    // first step forward-backward (the standard leapfrog start).
    h_prev_ = state.h;
    u_prev_ = state.u;
    v_prev_ = state.v;
    finite_differences(state);
    have_prev_ = true;
    return;
  }

  auto& clock = mesh_->world().context().clock();
  const int nk = grid_->nlev();
  const double dt = config_.dt_sec;
  const double dt2 = 2.0 * dt;
  const double g = grid_->planet().gravity;
  const double omega = grid_->planet().omega;
  const double dy = grid_->dy_m();
  const double kappa = config_.kappa_smooth;
  const double alpha = config_.robert_asselin;
  const int global_nlat = grid_->nlat();

  // The smoothing terms are evaluated on the lagged level (explicit
  // diffusion at level n is unstable under leapfrog), so the lagged fields
  // need current ghosts.
  grid::Array3D<double>* lagged[] = {&h_prev_, &u_prev_, &v_prev_};
  grid::exchange_halos(*mesh_, lagged);

  // --- continuity: h^{n+1} = h^{n-1} - 2 dt div(F^n) ----------------------
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box_.nj; ++j) {
      const double inv_area = metrics_.inv_area[static_cast<std::size_t>(j)];
      const double dxn = metrics_.dx_vface[static_cast<std::size_t>(j) + 1];
      const double dxs = metrics_.dx_vface[static_cast<std::size_t>(j)];
      const double dyf = metrics_.dy_face[static_cast<std::size_t>(j)];
      for (int i = 0; i < box_.ni; ++i) {
        const double fe = state.u(i, j, k) * 0.5 *
                          (state.h(i, j, k) + state.h(i + 1, j, k)) * dyf;
        const double fw = state.u(i - 1, j, k) * 0.5 *
                          (state.h(i - 1, j, k) + state.h(i, j, k)) * dyf;
        const double fn = state.v(i, j, k) * 0.5 *
                          (state.h(i, j, k) + state.h(i, j + 1, k)) * dxn;
        const double fs = state.v(i, j - 1, k) * 0.5 *
                          (state.h(i, j - 1, k) + state.h(i, j, k)) * dxs;
        h_new_(i, j, k) =
            h_prev_(i, j, k) - dt2 * inv_area * (fe - fw + fn - fs);
      }
    }
  }
  const double points = static_cast<double>(box_.ni) * box_.nj * nk;
  const double loop_eff = clock.profile().loop_efficiency(box_.ni);
  clock.compute(kFullDycoreFactor * 16.0 * points, loop_eff);

  // --- momentum: x^{n+1} = x^{n-1} + 2 dt T(x^n) + smoothing(x^{n-1}) ----
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box_.nj; ++j) {
      const int gj = box_.j0 + j;
      const double f_u = 2.0 * omega * std::sin(grid_->lat_center(gj));
      const double dx_u = grid_->dx_m(gj);
      const bool south_edge = (gj == 0);
      const bool north_edge = (gj == global_nlat - 1);
      for (int i = 0; i < box_.ni; ++i) {
        const double vbar = 0.25 * (state.v(i, j, k) + state.v(i + 1, j, k) +
                                    state.v(i, j - 1, k) +
                                    state.v(i + 1, j - 1, k));
        const double pgf_x =
            -g * (state.h(i + 1, j, k) - state.h(i, j, k)) / dx_u;
        const double up_n =
            north_edge ? u_prev_(i, j, k) : u_prev_(i, j + 1, k);
        const double up_s =
            south_edge ? u_prev_(i, j, k) : u_prev_(i, j - 1, k);
        const double smooth_u =
            kappa * (u_prev_(i + 1, j, k) + u_prev_(i - 1, j, k) -
                     2.0 * u_prev_(i, j, k)) +
            kappa * (up_n + up_s - 2.0 * u_prev_(i, j, k));
        u_new_(i, j, k) =
            u_prev_(i, j, k) + dt2 * (f_u * vbar + pgf_x) + 2.0 * smooth_u;

        if (gj + 1 >= global_nlat) {
          v_new_(i, j, k) = 0.0;
          continue;
        }
        const double f_v = 2.0 * omega * std::sin(grid_->lat_vface(gj + 1));
        const double ubar = 0.25 * (state.u(i, j, k) + state.u(i - 1, j, k) +
                                    state.u(i, j + 1, k) +
                                    state.u(i - 1, j + 1, k));
        const double pgf_y =
            -g * (state.h(i, j + 1, k) - state.h(i, j, k)) / dy;
        const double vp_n =
            north_edge ? v_prev_(i, j, k) : v_prev_(i, j + 1, k);
        const double vp_s = v_prev_(i, j - 1, k);
        const double smooth_v =
            kappa * (v_prev_(i + 1, j, k) + v_prev_(i - 1, j, k) -
                     2.0 * v_prev_(i, j, k)) +
            kappa * (vp_n + vp_s - 2.0 * v_prev_(i, j, k));
        v_new_(i, j, k) =
            v_prev_(i, j, k) + dt2 * (-f_v * ubar + pgf_y) + 2.0 * smooth_v;
      }
    }
  }
  clock.compute(kFullDycoreFactor * 48.0 * points, loop_eff);

  // --- tracers: forward upwind step n -> n+1 with level-n fluxes ----------
  grid::Array3D<double>* tracers[] = {&state.theta, &state.q};
  const KernelCost advection_cost =
      config_.optimized_advection
          ? advect_tracers_optimized(*grid_, box_, metrics_, state.h, h_new_,
                                     state.u, state.v, tracers, dt)
          : advect_tracers_baseline(*grid_, box_, metrics_, state.h, h_new_,
                                    state.u, state.v, tracers, dt);
  clock.compute(kFullDycoreFactor * advection_cost.flops,
                advection_cost.cache_efficiency * loop_eff);

  // --- Robert-Asselin filter + rotate levels ------------------------------
  for (int k = 0; k < nk; ++k) {
    for (int j = 0; j < box_.nj; ++j) {
      for (int i = 0; i < box_.ni; ++i) {
        const double hf = state.h(i, j, k) +
                          alpha * (h_new_(i, j, k) - 2.0 * state.h(i, j, k) +
                                   h_prev_(i, j, k));
        const double uf = state.u(i, j, k) +
                          alpha * (u_new_(i, j, k) - 2.0 * state.u(i, j, k) +
                                   u_prev_(i, j, k));
        const double vf = state.v(i, j, k) +
                          alpha * (v_new_(i, j, k) - 2.0 * state.v(i, j, k) +
                                   v_prev_(i, j, k));
        h_prev_(i, j, k) = hf;
        u_prev_(i, j, k) = uf;
        v_prev_(i, j, k) = vf;
        state.h(i, j, k) = h_new_(i, j, k);
        state.u(i, j, k) = u_new_(i, j, k);
        state.v(i, j, k) = v_new_(i, j, k);
      }
    }
  }
  clock.compute(15.0 * points, loop_eff);
  clock.memory_traffic(6.0 * points * sizeof(double));
}

double Dynamics::total_mass(const State& state) const {
  double local = 0.0;
  for (int k = 0; k < grid_->nlev(); ++k)
    for (int j = 0; j < box_.nj; ++j) {
      const double area = grid_->cell_area_m2(box_.j0 + j);
      for (int i = 0; i < box_.ni; ++i) local += state.h(i, j, k) * area;
    }
  return mesh_->world().allreduce_sum(local);
}

double Dynamics::total_energy(State& state) const {
  grid::Array3D<double>* winds[] = {&state.u, &state.v};
  grid::exchange_halos(*mesh_, winds);
  const double g = grid_->planet().gravity;
  double local = 0.0;
  for (int k = 0; k < grid_->nlev(); ++k) {
    for (int j = 0; j < box_.nj; ++j) {
      const double area = grid_->cell_area_m2(box_.j0 + j);
      for (int i = 0; i < box_.ni; ++i) {
        // Face velocities averaged to the cell centre (needs the west and
        // south neighbours; the interior-only sum keeps this local because
        // u(i-1) and v(i,j-1) are ghosts already).
        const double uc = 0.5 * (state.u(i, j, k) + state.u(i - 1, j, k));
        const double vc = 0.5 * (state.v(i, j, k) + state.v(i, j - 1, k));
        const double h = state.h(i, j, k);
        local += area * (0.5 * h * (uc * uc + vc * vc) + 0.5 * g * h * h);
      }
    }
  }
  return mesh_->world().allreduce_sum(local);
}

double Dynamics::total_tracer_mass(const State& state,
                                   const grid::Array3D<double>& tracer) const {
  double local = 0.0;
  for (int k = 0; k < grid_->nlev(); ++k)
    for (int j = 0; j < box_.nj; ++j) {
      const double area = grid_->cell_area_m2(box_.j0 + j);
      for (int i = 0; i < box_.ni; ++i)
        local += tracer(i, j, k) * state.h(i, j, k) * area;
    }
  return mesh_->world().allreduce_sum(local);
}

double Dynamics::max_zonal_courant(const State& state) const {
  double local = 0.0;
  for (int k = 0; k < grid_->nlev(); ++k)
    for (int j = 0; j < box_.nj; ++j) {
      const double dx = grid_->dx_m(box_.j0 + j);
      for (int i = 0; i < box_.ni; ++i)
        local = std::max(local,
                         std::abs(state.u(i, j, k)) * config_.dt_sec / dx);
    }
  return mesh_->world().allreduce_max(local);
}

double Dynamics::max_gravity_courant(const State& state) const {
  const double g = grid_->planet().gravity;
  double local = 0.0;
  for (int k = 0; k < grid_->nlev(); ++k)
    for (int j = 0; j < box_.nj; ++j) {
      const double dx = std::min(grid_->dx_m(box_.j0 + j), grid_->dy_m());
      for (int i = 0; i < box_.ni; ++i) {
        const double h = std::max(state.h(i, j, k), 0.0);
        local = std::max(local, std::sqrt(g * h) * config_.dt_sec / dx);
      }
    }
  return mesh_->world().allreduce_max(local);
}

}  // namespace agcm::dynamics
