// The convolution-partitioned variant: row-transpose data movement (as in
// fft_transpose.cpp) around the partitioned overlap-save streaming engine
// (partition.hpp). See docs/filter.md for the backend's design and the
// three-way crossover study against direct convolution and whole-line FFT.
#include "filter/partition.hpp"
#include "filter/serial.hpp"
#include "filter/variants.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace agcm::filter {

void filter_owned_lines_partition(const FilterBank& bank,
                                  std::span<const LineKey> owned,
                                  std::span<double> full_lines,
                                  simnet::VirtualClock& clock) {
  const auto nlon = static_cast<std::size_t>(bank.grid().nlon());
  AGCM_ASSERT(full_lines.size() == owned.size() * nlon);

  // Host work: the batched driver streams every line through the cached
  // per-row partition spectra, pairing same-row lines two-for-one; it
  // reports how many pair streams the schedule actually performed.
  const int pairs = filter_lines_partition(bank, owned, full_lines);
  const int singles = static_cast<int>(owned.size()) - 2 * pairs;

  // Virtual-clock charging: the partitioned backend's own deterministic
  // accounting (PartitionPlan::model_flops — NEW relative to the paper's
  // frozen formulas; the backend is opt-in and never runs in a frozen
  // artefact). Every line of the grid shares one plan geometry: the
  // kernel always has nlon taps on an nlon-sample circle.
  const PartitionPlan plan =
      PartitionPlan::make(bank.grid().nlon(), bank.grid().nlon());
  double flops = 0.0;
  for (int p = 0; p < pairs; ++p) flops += plan.pair_flops();
  for (int s = 0; s < singles; ++s) flops += plan.flops();
  clock.compute(flops, clock.profile().loop_efficiency(bank.grid().nlon()));
}

PartitionedConvFilter::PartitionedConvFilter(const comm::Mesh2D& mesh,
                                             const grid::Decomp2D& decomp,
                                             const FilterBank& bank)
    : PolarFilter(mesh, decomp, bank), plan_(mesh, decomp, local_lines()) {
  // Pre-build the partition spectra of every row this rank will stream
  // (construction-time, so apply() never pays the lazy transform cost and
  // stays allocation-free once the workspaces are warm).
  for (const LineKey& line : plan_.owned_lines()) {
    (void)this->bank().partition(line.var, line.j);
  }
}

void PartitionedConvFilter::apply_impl(
    std::span<grid::Array3D<double>* const> fields) {
  validate_fields(fields);
  const auto& lines = plan_.lines();
  if (lines.empty()) return;  // nothing to filter in this latitude band
  auto& clock = mesh().world().context().clock();

  // Identical movement structure to FftTransposeFilter: one transpose
  // brings whole lines local, the streaming engine filters them, the
  // inverse transpose restores the layout. Sub-spans split the traced
  // phase into its communication half ("filter.transpose") and its
  // compute half ("filter.partition-lines" — the series the scaling-model
  // sweep fits for this backend).
  simnet::RankContext& tctx = mesh().world().context();
  chunks_.resize(plan_.chunk_elems());
  extract_chunks_into(fields, box(), lines, chunks_);
  full_.resize(plan_.line_elems());
  {
    AGCM_TRACE_SPAN("filter.transpose", tctx);
    plan_.to_lines_into(mesh(), chunks_, full_);
  }
  {
    AGCM_TRACE_SPAN("filter.partition-lines", tctx);
    filter_owned_lines_partition(bank(), plan_.owned_lines(), full_, clock);
  }
  {
    AGCM_TRACE_SPAN("filter.transpose", tctx);
    plan_.to_chunks_into(mesh(), full_, chunks_);
  }
  write_chunks(fields, box(), lines, chunks_);
}

}  // namespace agcm::filter
