// Uniform-partitioned overlap-save streaming convolution (ISSUE 8 /
// ROADMAP open item 5) — the third polar-filter backend, between the
// paper's two extremes:
//
//   direct convolution   O(n * L)      per line (Tables 8-11, "old" filter)
//   whole-line FFT       O(n log n)    per line, but needs the full circle
//                                      resident and a length-n transform
//   partitioned OLS      O(n log B + n * L / B)  per line, streaming in
//                        fixed-size blocks of B samples through a small
//                        length-2B FFT core
//
// The kernel (length L taps, acting circularly on a period-n line) is cut
// into P = ceil(L/B) partitions of B taps, each zero-padded to N = 2B and
// pre-transformed once (cached in the FilterBank next to the equivalent
// convolution kernels). The engine then hops through the line B samples at
// a time: FFT one 2B-sample input window per hop, push its spectrum into a
// P-deep frequency-domain delay line, multiply-accumulate the cached
// partition spectra against the delay line, inverse-FFT, and keep the last
// B samples (overlap-save discards the wrap-around half). Block b's output
// needs windows b, b-1, ..., b-P+1, so each input window is transformed
// exactly once: ceil(n/B) + P - 1 forward and ceil(n/B) inverse transforms
// per line.
//
// Design notes:
//   * Frequency-domain storage is split into re/im planes so the
//     multiply-accumulate runs through the CONTRACTED SIMD families
//     (pointwise panels + daxpy, kernels/simd/dispatch.hpp): bitwise
//     identical on every tier, scalar fallback automatic on demotion.
//     The interleaved AlignedComplexVec form is kept alongside as the
//     canonical cached artefact (64-byte aligned, like the FFT twiddles).
//   * All per-call scratch lives in the per-rank PartitionWorkspace
//     (util::ExecSlot, growth-only) — allocation-free after warm-up,
//     enforced by tests/test_fft_alloc.cpp.
//   * This backend is NEW relative to the paper: its virtual-clock
//     accounting (PartitionPlan::flops) is deterministic but NOT part of
//     the frozen Tables 1-11 formulas — the backend is opt-in and never
//     runs inside a frozen artefact. See docs/filter.md.
#pragma once

#include <span>

#include "fft/fft.hpp"
#include "util/aligned.hpp"
#include "util/exec_local.hpp"

namespace agcm::filter {

/// 64-byte aligned double storage for the split re/im spectrum planes the
/// dispatched multiply-accumulate consumes.
using AlignedDoubleVec = std::vector<double, util::AlignedAllocator<double, 64>>;

/// Geometry of one uniform-partitioned overlap-save evaluation: circular
/// line of `period` samples, kernel of `kernel_len` taps (may exceed the
/// period — taps alias onto the circle), processed in hops of `block`
/// samples through a `fft_size` = 2*block transform.
struct PartitionPlan {
  int period = 0;      ///< n: length of the circular data line
  int kernel_len = 0;  ///< L: taps of the convolution kernel
  int block = 0;       ///< B: hop size (output samples per inverse FFT)
  int fft_size = 0;    ///< N = 2B: transform length of the small FFT core
  int nparts = 0;      ///< P = ceil(L / B): kernel partitions
  int nblocks = 0;     ///< ceil(n / B): output hops per line

  /// Builds a plan; block == 0 selects B via select_block, otherwise the
  /// given block (any positive hop size — tests force awkward ones).
  static PartitionPlan make(int period, int kernel_len, int block = 0);

  /// Deterministic block-size selection: the 3-smooth size (2^i * 3^j) B in
  /// [kMinBlock, min(kMaxBlock, max(kMinBlock, period/kMinHops))] minimising
  /// model_flops (ties -> smaller B). The FFT plan unrolls radix-2/3/4
  /// butterflies, so the dense candidate grid is free and keeps the optimum
  /// cost curve smooth in the period; the period/kMinHops cap is the
  /// streaming contract — without it the model degenerates to one
  /// whole-line 2n-point transform (B = n, P = 1), which forfeits the
  /// bounded per-hop latency that distinguishes this backend. Pure
  /// integer/double arithmetic — byte-stable.
  static int select_block(int period, int kernel_len);

  /// The deterministic cost model the selection minimises and the virtual
  /// clock charges (docs/filter.md, "block-size selection"):
  ///   (2*ceil(n/B) + P - 1) * 5*N*log2(N)   forward + inverse transforms
  /// + ceil(n/B) * P * 8*N                   frequency-domain MAC
  /// + 4*n                                   pack + overlap-save writeback
  /// NEW accounting (not one of the frozen paper formulas).
  static double model_flops(int period, int kernel_len, int block);

  static constexpr int kMinBlock = 16;
  static constexpr int kMaxBlock = 2048;
  static constexpr int kMinHops = 4;  ///< latency cap: B <= period/kMinHops

  /// Virtual-clock flops of filtering one line with this plan.
  double flops() const { return model_flops(period, kernel_len, block); }
  /// ... and of a two-for-one packed pair (second line rides the imaginary
  /// lane of the same transforms; only its unpack is extra).
  double pair_flops() const { return flops() + 2.0 * period; }
};

/// The pre-transformed kernel partitions: P spectra of length N, cached
/// per (kind, latitude row) in the FilterBank via the same lazy call_once
/// path as the equivalent convolution kernels.
class PartitionedKernel {
 public:
  /// Transforms `kernel` (kernel_len taps) for a period-`period` line.
  /// block == 0 auto-selects. Allocates (one-time build — callers cache).
  PartitionedKernel(std::span<const double> kernel, int period,
                    int block = 0);

  const PartitionPlan& plan() const { return plan_; }

  /// Partition p's spectrum, interleaved (diagnostics/tests).
  std::span<const fft::Complex> spectrum(int p) const;
  /// Partition p's spectrum, split planes (the engine's MAC inputs).
  std::span<const double> spectrum_re(int p) const;
  std::span<const double> spectrum_im(int p) const;

 private:
  PartitionPlan plan_;
  fft::AlignedComplexVec spectra_;  ///< P * N interleaved, partition-major
  AlignedDoubleVec split_;          ///< per partition: [re N | im N]
};

/// Per-rank scratch for the streaming engine: the packed input copy, the
/// interleaved transform block, and the split-plane frequency-domain delay
/// line. Growth-only (allocation-free after warm-up), resolved through the
/// executing rank's ExecSlot like fft::FftWorkspace.
class PartitionWorkspace {
 public:
  static PartitionWorkspace& local();

  PartitionWorkspace(const PartitionWorkspace&) = delete;
  PartitionWorkspace& operator=(const PartitionWorkspace&) = delete;

  std::span<fft::Complex> staging(std::size_t count);
  std::span<fft::Complex> block(std::size_t count);
  std::span<double> planes(std::size_t count);

 private:
  friend class agcm::util::ExecSlot;
  PartitionWorkspace() = default;

  fft::AlignedComplexVec staging_;
  fft::AlignedComplexVec block_;
  AlignedDoubleVec planes_;
};

/// Filters one circular line in place with the partitioned kernel:
/// line[i] <- sum_s kernel[s] * line[(i - s) mod n]. Allocation-free after
/// workspace warm-up; bitwise identical across SIMD tiers (contracted
/// families + scalar FFT path only).
void filter_line_partition(const PartitionedKernel& kernel,
                           std::span<double> line);

/// Two-for-one form: both lines share the (real) kernel, so the complex
/// pack z = a + i b streams through the very same transforms and the
/// filtered lines split back out of the real/imaginary lanes.
void filter_line_pair_partition(const PartitionedKernel& kernel,
                                std::span<double> line_a,
                                std::span<double> line_b);

/// O(n * L) reference for the same operator (the correctness oracle the
/// equivalence tests and the bench gate measure against).
void convolve_circular_direct(std::span<const double> kernel,
                              std::span<double> line);

}  // namespace agcm::filter
