#include "filter/serial.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fft/workspace.hpp"
#include "singlenode/miniblas.hpp"
#include "util/error.hpp"

namespace agcm::filter {

namespace {

/// Filters one real line held in the packed buffer z (imaginary part zero):
/// forward transform, spectral multiply, inverse, write the real part back.
void filter_single_core(const fft::FftPlan& plan, std::span<double> line,
                        std::span<const double> s_line,
                        std::span<fft::Complex> z) {
  const int n = plan.size();
  for (int i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(i)] = {line[static_cast<std::size_t>(i)], 0.0};
  }
  plan.forward(z);
  for (int k = 0; k < n; ++k) {
    z[static_cast<std::size_t>(k)] *= s_line[static_cast<std::size_t>(k)];
  }
  plan.inverse(z);
  for (int i = 0; i < n; ++i) {
    line[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)].real();
  }
}

/// Two-for-one core: packs z = a + i b, transforms once, applies both
/// responses *inside the packed spectrum*, transforms back, unpacks.
///
/// With X[k] = (Z[k] + conj(Z[n-k]))/2 and Y[k] = -i (Z[k] - conj(Z[n-k]))/2
/// the filtered pack is
///   Z'[k] = s_a[k] X[k] + i s_b[k] Y[k]
///         = (s_a[k]+s_b[k])/2 * Z[k] + (s_a[k]-s_b[k])/2 * conj(Z[n-k]),
/// so no per-line spectrum buffers are ever materialised. When both lines
/// share one response table row (s_a.data() == s_b.data()) the difference
/// term vanishes *exactly* and the multiply collapses to Z'[k] = s[k] Z[k].
void filter_pair_core(const fft::FftPlan& plan, std::span<double> a,
                      std::span<double> b, std::span<const double> s_a,
                      std::span<const double> s_b,
                      std::span<fft::Complex> z) {
  const int n = plan.size();
  for (int i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(i)] = {a[static_cast<std::size_t>(i)],
                                      b[static_cast<std::size_t>(i)]};
  }
  plan.forward(z);
  if (s_a.data() == s_b.data()) {
    for (int k = 0; k < n; ++k) {
      z[static_cast<std::size_t>(k)] *= s_a[static_cast<std::size_t>(k)];
    }
  } else {
    // k = 0 pairs with itself; so does k = n/2 when n is even (the loop
    // below visits it once with k == n-k, temporaries read before writes).
    {
      const fft::Complex z0 = z[0];
      const double ha = 0.5 * (s_a[0] + s_b[0]);
      const double hb = 0.5 * (s_a[0] - s_b[0]);
      z[0] = ha * z0 + hb * std::conj(z0);
    }
    for (int k = 1; n - k >= k; ++k) {
      const auto uk = static_cast<std::size_t>(k);
      const auto unk = static_cast<std::size_t>(n - k);
      const fft::Complex zk = z[uk];
      const fft::Complex znk = z[unk];
      const double ha_k = 0.5 * (s_a[uk] + s_b[uk]);
      const double hb_k = 0.5 * (s_a[uk] - s_b[uk]);
      const double ha_nk = 0.5 * (s_a[unk] + s_b[unk]);
      const double hb_nk = 0.5 * (s_a[unk] - s_b[unk]);
      z[uk] = ha_k * zk + hb_k * std::conj(znk);
      z[unk] = ha_nk * znk + hb_nk * std::conj(zk);
    }
  }
  plan.inverse(z);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    a[ui] = z[ui].real();
    b[ui] = z[ui].imag();
  }
}

}  // namespace

void filter_line_fft(const fft::FftPlan& plan, std::span<double> line,
                     std::span<const double> s_line) {
  AGCM_ASSERT(line.size() == s_line.size());
  AGCM_ASSERT(static_cast<int>(line.size()) == plan.size());
  std::span<fft::Complex> z = fft::FftWorkspace::local().complex_buffer(
      static_cast<std::size_t>(plan.size()));
  filter_single_core(plan, line, s_line, z);
}

void filter_line_pair_fft(const fft::FftPlan& plan, std::span<double> line_a,
                          std::span<double> line_b,
                          std::span<const double> s_a,
                          std::span<const double> s_b) {
  const auto n = static_cast<std::size_t>(plan.size());
  AGCM_ASSERT(line_a.size() == n && line_b.size() == n);
  AGCM_ASSERT(s_a.size() == n && s_b.size() == n);
  std::span<fft::Complex> z = fft::FftWorkspace::local().complex_buffer(n);
  filter_pair_core(plan, line_a, line_b, s_a, s_b, z);
}

void filter_lines_fft(const fft::FftPlan& plan, const FilterBank& bank,
                      std::span<const LineKey> lines,
                      std::span<double> data) {
  const auto n = static_cast<std::size_t>(plan.size());
  const std::size_t count = lines.size();
  AGCM_ASSERT(data.size() == count * n);
  if (count == 0) return;
  auto& ws = fft::FftWorkspace::local();

  // Pair-packing order: greedily match each line with the first still
  // unpaired line sharing its response table row (pointer identity — one
  // row per (kind, latitude), shared by all layers and variables of that
  // kind). Leftovers pair across responses; a final odd line runs single.
  // The schedule is deterministic and performs exactly floor(count/2)
  // pair + (count%2) single transforms, matching the frozen virtual-clock
  // accounting in filter_owned_lines_fft.
  std::span<int> scratch = ws.index_buffer(2 * count);
  int* order = scratch.data();
  int* pending = scratch.data() + count;
  std::size_t nord = 0;
  std::size_t npend = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const LineKey& li = lines[i];
    const double* key = bank.response(li.var, li.j).data();
    std::size_t match = npend;
    for (std::size_t p = 0; p < npend; ++p) {
      const LineKey& lp = lines[static_cast<std::size_t>(pending[p])];
      if (bank.response(lp.var, lp.j).data() == key) {
        match = p;
        break;
      }
    }
    if (match < npend) {
      order[nord++] = pending[match];
      order[nord++] = static_cast<int>(i);
      pending[match] = pending[--npend];  // swap-remove (deterministic)
    } else {
      pending[npend++] = static_cast<int>(i);
    }
  }
  for (std::size_t p = 0; p < npend; ++p) order[nord++] = pending[p];
  AGCM_ASSERT(nord == count);

  std::span<fft::Complex> z = ws.complex_buffer(n);
  auto line_at = [&](int idx) {
    return std::span<double>(data.data() + static_cast<std::size_t>(idx) * n,
                             n);
  };
  std::size_t p = 0;
  for (; p + 1 < count; p += 2) {
    const LineKey& la = lines[static_cast<std::size_t>(order[p])];
    const LineKey& lb = lines[static_cast<std::size_t>(order[p + 1])];
    filter_pair_core(plan, line_at(order[p]), line_at(order[p + 1]),
                     bank.response(la.var, la.j), bank.response(lb.var, lb.j),
                     z);
  }
  if (p < count) {
    const LineKey& la = lines[static_cast<std::size_t>(order[p])];
    filter_single_core(plan, line_at(order[p]),
                       bank.response(la.var, la.j), z);
  }
}

int filter_lines_partition(const FilterBank& bank,
                           std::span<const LineKey> lines,
                           std::span<double> data) {
  const auto n = static_cast<std::size_t>(bank.grid().nlon());
  const std::size_t count = lines.size();
  AGCM_ASSERT(data.size() == count * n);
  if (count == 0) return 0;
  auto& ws = fft::FftWorkspace::local();

  // Same greedy same-row matching as filter_lines_fft, with one
  // difference: a partitioned pair must share the *identical* kernel (one
  // real kernel filters both packed lanes), so leftover lines never
  // cross-pair — they run single. Response-row pointer identity is the
  // row key, exactly as in the FFT batcher.
  std::span<int> scratch = ws.index_buffer(2 * count);
  int* order = scratch.data();
  int* pending = scratch.data() + count;
  std::size_t npairs = 0;
  std::size_t npend = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const LineKey& li = lines[i];
    const double* key = bank.response(li.var, li.j).data();
    std::size_t match = npend;
    for (std::size_t p = 0; p < npend; ++p) {
      const LineKey& lp = lines[static_cast<std::size_t>(pending[p])];
      if (bank.response(lp.var, lp.j).data() == key) {
        match = p;
        break;
      }
    }
    if (match < npend) {
      order[2 * npairs] = pending[match];
      order[2 * npairs + 1] = static_cast<int>(i);
      ++npairs;
      pending[match] = pending[--npend];  // swap-remove (deterministic)
    } else {
      pending[npend++] = static_cast<int>(i);
    }
  }
  for (std::size_t p = 0; p < npend; ++p) order[2 * npairs + p] = pending[p];
  AGCM_ASSERT(2 * npairs + npend == count);

  auto line_at = [&](int idx) {
    return std::span<double>(data.data() + static_cast<std::size_t>(idx) * n,
                             n);
  };
  for (std::size_t p = 0; p < npairs; ++p) {
    const LineKey& la = lines[static_cast<std::size_t>(order[2 * p])];
    filter_line_pair_partition(bank.partition(la.var, la.j),
                               line_at(order[2 * p]),
                               line_at(order[2 * p + 1]));
  }
  for (std::size_t s = 2 * npairs; s < count; ++s) {
    const LineKey& la = lines[static_cast<std::size_t>(order[s])];
    filter_line_partition(bank.partition(la.var, la.j), line_at(order[s]));
  }
  return static_cast<int>(npairs);
}

void filter_line_convolution(std::span<double> line,
                             std::span<const double> kernel) {
  AGCM_ASSERT(line.size() == kernel.size());
  const auto n = static_cast<int>(line.size());
  std::vector<double> out(line.size(), 0.0);
  filter_chunk_convolution(line, kernel, 0, n, out);
  std::copy(out.begin(), out.end(), line.begin());
}

void filter_chunk_convolution(std::span<const double> line,
                              std::span<const double> kernel, int out_begin,
                              int out_count, std::span<double> out) {
  AGCM_ASSERT(line.size() == kernel.size());
  AGCM_ASSERT(static_cast<int>(out.size()) == out_count);
  const auto n = static_cast<int>(line.size());
  // Periodic convolution out[i] = sum_s kernel[s] * line[(i - s) mod n],
  // split at the wrap point into two branch-free strided dot products:
  //   s in [0, i]:       line index i - s     walks i .. 0      (stride -1)
  //   s in [i+1, n-1]:   line index i - s + n walks n-1 .. i+1  (stride -1)
  // ddot_strided keeps one sequential accumulator and accepts a carried-in
  // partial sum, so chaining the two calls adds the very same products in
  // the very same order as the historical branchy loop — bitwise identical
  // (tests/test_filter.cpp).
  const double* kern = kernel.data();
  const double* ln = line.data();
  for (int c = 0; c < out_count; ++c) {
    const int i = out_begin + c;
    double acc = singlenode::ddot_strided(static_cast<std::size_t>(i) + 1,
                                          kern, 1, ln + i, -1, 0.0);
    acc = singlenode::ddot_strided(static_cast<std::size_t>(n - 1 - i),
                                   kern + i + 1, 1, ln + (n - 1), -1, acc);
    out[static_cast<std::size_t>(c)] = acc;
  }
}

double fft_filter_flops(int n) {
  // forward + inverse real transforms (~5 n log2 n each at the accounting
  // level used throughout) plus the spectral multiply.
  const double nn = n;
  return 2.0 * 5.0 * nn * std::log2(std::max(2.0, nn)) + 2.0 * nn;
}

// Convolution cost accounting: the paper's equation (2) sums only
// M = N/2 wavenumber terms per output point (the kernel's half-spectrum
// form), i.e. ~N^2 flops per line rather than the 2N^2 of a full-circle
// multiply-add sum. The implementation here computes the exact full-circle
// equivalent for bit-comparable results, but the virtual clock charges the
// original formulation's arithmetic.
double fft_filter_pair_flops(int n) {
  // One forward + one inverse complex transform covers both lines; add the
  // split/merge passes and the two spectral multiplies.
  const double nn = n;
  return 2.0 * 5.0 * nn * std::log2(std::max(2.0, nn)) + 8.0 * nn;
}

double convolution_filter_flops(int n) {
  return static_cast<double>(n) * n + 4.0 * n;
}

double convolution_chunk_flops(int n, int out_count) {
  return static_cast<double>(n) * out_count + 2.0 * out_count;
}

}  // namespace agcm::filter
