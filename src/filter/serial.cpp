#include "filter/serial.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace agcm::filter {

void filter_line_fft(const fft::FftPlan& plan, std::span<double> line,
                     std::span<const double> s_line) {
  AGCM_ASSERT(line.size() == s_line.size());
  AGCM_ASSERT(static_cast<int>(line.size()) == plan.size());
  auto spectrum = plan.forward_real(line);
  for (std::size_t s = 0; s < s_line.size(); ++s) spectrum[s] *= s_line[s];
  plan.inverse_to_real(spectrum, line);
}

void filter_line_pair_fft(const fft::FftPlan& plan, std::span<double> line_a,
                          std::span<double> line_b,
                          std::span<const double> s_a,
                          std::span<const double> s_b) {
  const auto n = static_cast<std::size_t>(plan.size());
  AGCM_ASSERT(line_a.size() == n && line_b.size() == n);
  AGCM_ASSERT(s_a.size() == n && s_b.size() == n);
  std::vector<fft::Complex> sa(n), sb(n);
  plan.forward_real_pair(line_a, line_b, sa, sb);
  for (std::size_t s = 0; s < n; ++s) {
    sa[s] *= s_a[s];
    sb[s] *= s_b[s];
  }
  plan.inverse_to_real_pair(sa, sb, line_a, line_b);
}

void filter_line_convolution(std::span<double> line,
                             std::span<const double> kernel) {
  AGCM_ASSERT(line.size() == kernel.size());
  const auto n = static_cast<int>(line.size());
  std::vector<double> out(line.size(), 0.0);
  filter_chunk_convolution(line, kernel, 0, n, out);
  std::copy(out.begin(), out.end(), line.begin());
}

void filter_chunk_convolution(std::span<const double> line,
                              std::span<const double> kernel, int out_begin,
                              int out_count, std::span<double> out) {
  AGCM_ASSERT(line.size() == kernel.size());
  AGCM_ASSERT(static_cast<int>(out.size()) == out_count);
  const auto n = static_cast<int>(line.size());
  for (int c = 0; c < out_count; ++c) {
    const int i = out_begin + c;
    double acc = 0.0;
    for (int s = 0; s < n; ++s) {
      int idx = i - s;
      if (idx < 0) idx += n;
      acc += kernel[static_cast<std::size_t>(s)] *
             line[static_cast<std::size_t>(idx)];
    }
    out[static_cast<std::size_t>(c)] = acc;
  }
}

double fft_filter_flops(int n) {
  // forward + inverse real transforms (~5 n log2 n each at the accounting
  // level used throughout) plus the spectral multiply.
  const double nn = n;
  return 2.0 * 5.0 * nn * std::log2(std::max(2.0, nn)) + 2.0 * nn;
}

// Convolution cost accounting: the paper's equation (2) sums only
// M = N/2 wavenumber terms per output point (the kernel's half-spectrum
// form), i.e. ~N^2 flops per line rather than the 2N^2 of a full-circle
// multiply-add sum. The implementation here computes the exact full-circle
// equivalent for bit-comparable results, but the virtual clock charges the
// original formulation's arithmetic.
double fft_filter_pair_flops(int n) {
  // One forward + one inverse complex transform covers both lines; add the
  // split/merge passes and the two spectral multiplies.
  const double nn = n;
  return 2.0 * 5.0 * nn * std::log2(std::max(2.0, nn)) + 8.0 * nn;
}

double convolution_filter_flops(int n) {
  return static_cast<double>(n) * n + 4.0 * n;
}

double convolution_chunk_flops(int n, int out_count) {
  return static_cast<double>(n) * out_count + 2.0 * out_count;
}

}  // namespace agcm::filter
