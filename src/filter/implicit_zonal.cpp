#include "filter/implicit_zonal.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace agcm::filter {

ImplicitZonalFilter::ImplicitZonalFilter(const comm::Mesh2D& mesh,
                                         const grid::Decomp2D& decomp,
                                         const FilterBank& bank)
    : PolarFilter(mesh, decomp, bank), lines_(local_lines()) {}

double ImplicitZonalFilter::strength(int v, int j) const {
  // Match the spectral filter's damping of the Nyquist wavenumber:
  //   1 / (1 + 4K) = S(N/2)  =>  K = (1/S - 1) / 4.
  const auto s_line = bank().response(v, j);
  const double s_nyquist =
      std::max(1.0e-6, s_line[s_line.size() / 2]);
  return (1.0 / s_nyquist - 1.0) / 4.0;
}

double ImplicitZonalFilter::response(double k_strength, int wavenumber,
                                     int n) {
  const double phase = 2.0 * std::numbers::pi * wavenumber / n;
  return 1.0 / (1.0 + k_strength * (2.0 - 2.0 * std::cos(phase)));
}

void ImplicitZonalFilter::apply_impl(
    std::span<grid::Array3D<double>* const> fields) {
  validate_fields(fields);
  const auto& row = mesh().row_comm();
  const auto ni = static_cast<std::size_t>(box().ni);
  if (lines_.empty()) return;  // this latitude band filters nothing

  // All lines of the row solved in ONE batched distributed solve: the
  // reduced-system traffic is amortised over every line instead of paid
  // per line. All ranks of the row hold the same line set, so the
  // collectives stay matched.
  const auto m = lines_.size();
  std::vector<double> sub(m * ni), diag(m * ni), sup(m * ni), rhs(m * ni);
  for (std::size_t q = 0; q < m; ++q) {
    const LineKey& line = lines_[q];
    const double k = strength(line.var, line.j);
    const auto chunk = fields[static_cast<std::size_t>(line.var)]->row(
        line.j - box().j0, line.k);
    for (std::size_t i = 0; i < ni; ++i) {
      sub[q * ni + i] = -k;
      diag[q * ni + i] = 1.0 + 2.0 * k;
      sup[q * ni + i] = -k;
      rhs[q * ni + i] = chunk[i];
    }
  }
  const auto solved = linsolve::distributed_periodic_tridiagonal_solve_many(
      row, static_cast<int>(m), sub, diag, sup, rhs);
  for (std::size_t q = 0; q < m; ++q) {
    const LineKey& line = lines_[q];
    auto chunk = fields[static_cast<std::size_t>(line.var)]->row(
        line.j - box().j0, line.k);
    std::copy(solved.begin() + static_cast<std::ptrdiff_t>(q * ni),
              solved.begin() + static_cast<std::ptrdiff_t>((q + 1) * ni),
              chunk.begin());
  }
  row.charge_flops(10.0 * static_cast<double>(m * ni));
}

}  // namespace agcm::filter
