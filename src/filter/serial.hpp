// Serial (single-line and batched) filtering primitives. These are the
// computational kernels all four parallel variants share; the serial
// versions also serve as the correctness oracle for the parallel module
// tests.
//
// All FFT-based kernels here route their scratch through the thread-local
// fft::FftWorkspace, so after the first call at a given length no filter
// call allocates (enforced by tests/test_fft_alloc.cpp).
#pragma once

#include <span>

#include "fft/fft.hpp"
#include "filter/bank.hpp"

namespace agcm::filter {

/// Filters one longitude circle in place by wavenumber-space multiplication:
/// line <- IDFT( S .* DFT(line) ). `s_line` must have the line's length.
/// Allocation-free after workspace warm-up.
void filter_line_fft(const fft::FftPlan& plan, std::span<double> line,
                     std::span<const double> s_line);

/// Filters two lines with a single complex transform each way (the
/// two-for-one real-FFT trick); each line gets its own response. Halves
/// the transform work relative to two filter_line_fft calls. The spectral
/// multiply is fused into the packed transform (no per-line spectrum
/// buffers), and when both responses are the *same table row* the split /
/// merge collapses to one real multiply per spectral point.
/// Allocation-free after workspace warm-up.
void filter_line_pair_fft(const fft::FftPlan& plan, std::span<double> line_a,
                          std::span<double> line_b,
                          std::span<const double> s_a,
                          std::span<const double> s_b);

/// Batched line filter — the primitive the FFT variants schedule. Filters
/// `lines.size()` whole longitude circles laid out back-to-back in `data`
/// (plan.size() doubles per line, in `lines` order) in place, looking up
/// each line's response in the bank. Lines are pair-packed through the
/// two-for-one real FFT, preferring pairs that share a response row (same
/// variable kind and latitude — e.g. the nlev layers of one (var, j)), so
/// most pairs take the cheap same-response spectral multiply. Exactly
/// floor(n/2) pair transforms plus (n%2) single transforms are performed —
/// the same schedule the virtual-clock accounting in
/// filter_owned_lines_fft has always charged. Allocation-free after
/// workspace warm-up.
void filter_lines_fft(const fft::FftPlan& plan, const FilterBank& bank,
                      std::span<const LineKey> lines, std::span<double> data);

/// Batched partitioned overlap-save driver (docs/filter.md) — the
/// primitive the convolution-partitioned variant schedules. Filters
/// `lines.size()` whole longitude circles laid out back-to-back in `data`
/// (nlon doubles per line, in `lines` order) in place, streaming each
/// through the bank's cached PartitionedKernel for its row. Lines sharing
/// a response row ride two-for-one through the packed-complex engine
/// (the partitioned kernel is real, so a + i b filters both lanes at
/// once); unmatched lines run single — unlike the FFT batcher, cross-row
/// pairing is impossible because a pair must share one kernel. Returns the
/// number of pair streams performed (count - 2*pairs lines ran single), so
/// the caller can charge the virtual clock for the exact schedule.
/// Deterministic; allocation-free after bank + workspace warm-up.
int filter_lines_partition(const FilterBank& bank,
                           std::span<const LineKey> lines,
                           std::span<double> data);

/// Filters one longitude circle in place by direct circular convolution with
/// `kernel` (the paper's original formulation, equation (2)).
void filter_line_convolution(std::span<double> line,
                             std::span<const double> kernel);

/// Convolution restricted to output indices [out_begin, out_begin+out_count)
/// of the circle; used by the parallel ring variant, where each node only
/// produces its own chunk of the filtered line. `line` is the full circle.
void filter_chunk_convolution(std::span<const double> line,
                              std::span<const double> kernel, int out_begin,
                              int out_count, std::span<double> out);

/// Virtual-clock flop counts for the kernels above. FROZEN to the paper's
/// accounting (see docs/fft.md): host-side optimisation never changes them.
double fft_filter_flops(int n);
double fft_filter_pair_flops(int n);  ///< two lines, one transform each way
double convolution_filter_flops(int n);               ///< full line
double convolution_chunk_flops(int n, int out_count); ///< chunk of a line

}  // namespace agcm::filter
