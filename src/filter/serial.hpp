// Serial (single-line) filtering primitives. These are the computational
// kernels all four parallel variants share; the serial versions also serve
// as the correctness oracle for the parallel module tests.
#pragma once

#include <span>

#include "fft/fft.hpp"

namespace agcm::filter {

/// Filters one longitude circle in place by wavenumber-space multiplication:
/// line <- IDFT( S .* DFT(line) ). `s_line` must have the line's length.
void filter_line_fft(const fft::FftPlan& plan, std::span<double> line,
                     std::span<const double> s_line);

/// Filters two lines with a single complex transform each way (the
/// two-for-one real-FFT trick); each line gets its own response. Halves
/// the transform work relative to two filter_line_fft calls.
void filter_line_pair_fft(const fft::FftPlan& plan, std::span<double> line_a,
                          std::span<double> line_b,
                          std::span<const double> s_a,
                          std::span<const double> s_b);

/// Filters one longitude circle in place by direct circular convolution with
/// `kernel` (the paper's original formulation, equation (2)).
void filter_line_convolution(std::span<double> line,
                             std::span<const double> kernel);

/// Convolution restricted to output indices [out_begin, out_begin+out_count)
/// of the circle; used by the parallel ring variant, where each node only
/// produces its own chunk of the filtered line. `line` is the full circle.
void filter_chunk_convolution(std::span<const double> line,
                              std::span<const double> kernel, int out_begin,
                              int out_count, std::span<double> out);

/// Virtual-clock flop counts for the kernels above.
double fft_filter_flops(int n);
double fft_filter_pair_flops(int n);  ///< two lines, one transform each way
double convolution_filter_flops(int n);               ///< full line
double convolution_chunk_flops(int n, int out_count); ///< chunk of a line

}  // namespace agcm::filter
