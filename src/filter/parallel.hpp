// Parallel polar filtering — the four variants the paper compares, plus
// two extensions beyond the paper (partitioned overlap-save streaming
// convolution and implicit zonal diffusion).
//
//   kConvolutionRing  the original AGCM algorithm: physical-space
//                     convolution, one variable at a time, data rotated
//                     around the processor ring in the longitudinal
//                     direction (Section 3.1 / Wehner et al.).
//   kConvolutionTree  the original code's alternative: whole lines gathered
//                     with tree communication, each node convolves its own
//                     output chunk (fewer messages, more volume).
//   kFftTranspose     Section 3.2: transpose the filtered lines within each
//                     processor row so FFTs run locally on whole lines.
//                     All variables are filtered concurrently.
//   kFftBalanced      Section 3.3: first redistribute data rows in the
//                     latitudinal direction so every processor ends up with
//                     ~equal filtering work (Figure 2), then transpose
//                     within rows (Figure 3), FFT locally, and undo both
//                     movements. Setup bookkeeping is done once.
//
// All variants filter exactly the same set of lines with mathematically
// equivalent operators, so their outputs agree to rounding — the
// integration tests rely on this.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "comm/mesh2d.hpp"
#include "filter/bank.hpp"
#include "grid/array3d.hpp"
#include "grid/decomp.hpp"

namespace agcm::filter {

enum class FilterAlgorithm {
  kConvolutionRing,
  kConvolutionTree,
  kFftTranspose,
  kFftBalanced,
  /// Extension beyond the paper: uniform-partitioned overlap-save
  /// streaming convolution — FFT-accelerated convolution in fixed-size
  /// blocks, same transpose movement as kFftTranspose but block FFTs of
  /// length 2B instead of whole-line transforms (docs/filter.md).
  /// Mathematically the convolution operator: agrees with the other
  /// variants to rounding. Opt-in; never used by the frozen paper runs.
  kConvolutionPartitioned,
  /// Extension beyond the paper: implicit zonal diffusion solved with a
  /// distributed periodic tridiagonal solver (see implicit_zonal.hpp).
  /// Approximates — does not exactly equal — the spectral filter.
  kImplicitZonal,
};

std::string_view algorithm_name(FilterAlgorithm algorithm);

class PolarFilter {
 public:
  PolarFilter(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
              const FilterBank& bank);
  virtual ~PolarFilter() = default;

  PolarFilter(const PolarFilter&) = delete;
  PolarFilter& operator=(const PolarFilter&) = delete;

  /// Filters the registered variables in place. `fields[v]` is the local
  /// block of the bank's variable v (interior ni x nj x nlev; ghosts, if
  /// any, are neither read nor written). Collective over the mesh. When
  /// tracing is enabled (trace/tracer.hpp) the call is wrapped in a
  /// "filter.<name>" virtual-time span; otherwise it forwards straight to
  /// the variant implementation.
  void apply(std::span<grid::Array3D<double>* const> fields);

  virtual std::string_view name() const = 0;

  const comm::Mesh2D& mesh() const { return *mesh_; }
  const grid::Decomp2D& decomp() const { return *decomp_; }
  const FilterBank& bank() const { return *bank_; }
  const grid::LocalBox& box() const { return box_; }

 protected:
  /// The variant's filtering algorithm (called by the traced apply()).
  virtual void apply_impl(std::span<grid::Array3D<double>* const> fields) = 0;

  /// Global rows of variable v inside my latitude band.
  std::vector<int> local_rows(int v) const;

  /// All lines (var, j, k) whose latitude row falls in my band, in the
  /// bank's canonical order.
  std::vector<LineKey> local_lines() const;

  /// The local chunk of the longitude circle (var-block `field`, global row
  /// gj, layer k): `ni` contiguous doubles.
  static std::span<double> chunk(grid::Array3D<double>& field,
                                 const grid::LocalBox& box, int gj, int k);

  void validate_fields(std::span<grid::Array3D<double>* const> fields) const;

 private:
  const comm::Mesh2D* mesh_;
  const grid::Decomp2D* decomp_;
  const FilterBank* bank_;
  grid::LocalBox box_;
};

/// Factory. The returned filter keeps references to mesh/decomp/bank; they
/// must outlive it.
std::unique_ptr<PolarFilter> make_filter(FilterAlgorithm algorithm,
                                         const comm::Mesh2D& mesh,
                                         const grid::Decomp2D& decomp,
                                         const FilterBank& bank);

/// Gathers this node's ni-wide chunk of every line in `lines` order into
/// `chunks` (size lines.size() * box.ni) — the layout the movement plans
/// expect. Allocation-free: callers own the (growth-only) destination.
void extract_chunks_into(std::span<grid::Array3D<double>* const> fields,
                         const grid::LocalBox& box,
                         std::span<const LineKey> lines,
                         std::span<double> chunks);

/// Vector-returning convenience wrapper over extract_chunks_into.
std::vector<double> extract_chunks(
    std::span<grid::Array3D<double>* const> fields, const grid::LocalBox& box,
    std::span<const LineKey> lines);

/// Inverse of extract_chunks.
void write_chunks(std::span<grid::Array3D<double>* const> fields,
                  const grid::LocalBox& box, std::span<const LineKey> lines,
                  std::span<const double> chunks);

}  // namespace agcm::filter
