// Process-wide FilterBank cache: one immutable bank per (grid geometry,
// filtered-variable list), shared by every rank of every concurrently
// running Machine.
//
// Rationale (docs/campaign.md): the bank's response tables are O(nlat *
// nlon) trigonometry and its lazy convolution/partition kernels are
// O(nlon^2) per filtered row — identical on every rank of every experiment
// at the same resolution, yet historically rebuilt per rank per run. The
// tables are pure functions of (grid, variables) and a const FilterBank is
// already safe to share across rank threads (per-(kind, row) call_once on
// the lazy members), so promotion to a process-wide cache changes no bits
// and no virtual-time accounting: bank construction and lazy kernel builds
// never touch a virtual clock.
//
// Each cache entry OWNS a copy of the grid (the bank holds a pointer to
// it), so a shared bank never dangles when the requesting rank's
// stack-allocated grid dies with its run.
#pragma once

#include <memory>
#include <vector>

#include "filter/bank.hpp"

namespace agcm::filter {

/// The shared bank for (grid, variables); built on first request, immutable
/// and never evicted (until clear_bank_cache) thereafter. Grids compare by
/// geometry (dims + planet constants), not identity. With
/// util::SharedCaches disabled, returns a fresh unshared bank (which still
/// owns its grid copy, so lifetime rules are uniform).
std::shared_ptr<const FilterBank> shared_bank(
    const grid::LatLonGrid& grid, std::vector<FilteredVariable> variables);

/// Drops all cached banks (outstanding references stay valid). Wired into
/// util::SharedCaches::clear_all().
void clear_bank_cache();

}  // namespace agcm::filter
