#include <algorithm>
#include <cstring>

#include "filter/parallel.hpp"

#include "filter/implicit_zonal.hpp"
#include "filter/variants.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace agcm::filter {

std::string_view algorithm_name(FilterAlgorithm algorithm) {
  switch (algorithm) {
    case FilterAlgorithm::kConvolutionRing: return "convolution-ring";
    case FilterAlgorithm::kConvolutionTree: return "convolution-tree";
    case FilterAlgorithm::kFftTranspose:    return "fft-transpose";
    case FilterAlgorithm::kFftBalanced:     return "fft-load-balanced";
    case FilterAlgorithm::kConvolutionPartitioned:
      return "convolution-partitioned";
    case FilterAlgorithm::kImplicitZonal:   return "implicit-zonal";
  }
  return "unknown";
}

PolarFilter::PolarFilter(const comm::Mesh2D& mesh,
                         const grid::Decomp2D& decomp, const FilterBank& bank)
    : mesh_(&mesh), decomp_(&decomp), bank_(&bank),
      box_(decomp.box(mesh.coord())) {
  check_config(decomp.nlon() == bank.grid().nlon() &&
                   decomp.nlat() == bank.grid().nlat(),
               "decomposition does not match the filter bank's grid");
}

void PolarFilter::apply(std::span<grid::Array3D<double>* const> fields) {
  if (!trace::enabled()) {
    apply_impl(fields);
    return;
  }
  simnet::RankContext& ctx = mesh_->world().context();
  std::string span_name = "filter.";
  span_name += name();
  trace::ScopedSpan span(span_name, ctx.clock(), ctx.rank());
  apply_impl(fields);
}

std::vector<int> PolarFilter::local_rows(int v) const {
  std::vector<int> out;
  for (int j : bank_->rows(v)) {
    if (j >= box_.j0 && j < box_.j0 + box_.nj) out.push_back(j);
  }
  return out;
}

std::vector<LineKey> PolarFilter::local_lines() const {
  // Same (var, j, k) output order as scanning bank_->lines(), but via the
  // precomputed per-variable slices: each slice is (j, k)-sorted, so the
  // rows inside this node's latitude band form one contiguous run found by
  // binary search instead of a scan over every global line.
  std::vector<LineKey> out;
  const int j_end = box_.j0 + box_.nj;
  for (int v = 0; v < bank_->nvars(); ++v) {
    const std::vector<LineKey>& lv = bank_->lines_of(v);
    const auto lo = std::lower_bound(
        lv.begin(), lv.end(), box_.j0,
        [](const LineKey& line, int j) { return line.j < j; });
    const auto hi = std::lower_bound(
        lo, lv.end(), j_end,
        [](const LineKey& line, int j) { return line.j < j; });
    out.insert(out.end(), lo, hi);
  }
  return out;
}

std::span<double> PolarFilter::chunk(grid::Array3D<double>& field,
                                     const grid::LocalBox& box, int gj,
                                     int k) {
  AGCM_ASSERT(gj >= box.j0 && gj < box.j0 + box.nj);
  return field.row(gj - box.j0, k);
}

void PolarFilter::validate_fields(
    std::span<grid::Array3D<double>* const> fields) const {
  check_config(static_cast<int>(fields.size()) == bank_->nvars(),
               "apply() needs one field per registered variable");
  for (const auto* f : fields) {
    check_config(f != nullptr, "null field");
    check_config(f->ni() == box_.ni && f->nj() == box_.nj &&
                     f->nk() == bank_->grid().nlev(),
                 "field block shape does not match the decomposition");
  }
}

void extract_chunks_into(std::span<grid::Array3D<double>* const> fields,
                         const grid::LocalBox& box,
                         std::span<const LineKey> lines,
                         std::span<double> chunks) {
  AGCM_ASSERT(chunks.size() == lines.size() * static_cast<std::size_t>(box.ni));
  std::size_t pos = 0;
  for (const LineKey& line : lines) {
    const auto row =
        fields[static_cast<std::size_t>(line.var)]->row(line.j - box.j0, line.k);
    std::memcpy(chunks.data() + pos, row.data(), row.size_bytes());
    pos += row.size();
  }
}

std::vector<double> extract_chunks(
    std::span<grid::Array3D<double>* const> fields, const grid::LocalBox& box,
    std::span<const LineKey> lines) {
  std::vector<double> chunks(lines.size() * static_cast<std::size_t>(box.ni));
  extract_chunks_into(fields, box, lines, chunks);
  return chunks;
}

void write_chunks(std::span<grid::Array3D<double>* const> fields,
                  const grid::LocalBox& box, std::span<const LineKey> lines,
                  std::span<const double> chunks) {
  AGCM_ASSERT(chunks.size() == lines.size() * static_cast<std::size_t>(box.ni));
  std::size_t pos = 0;
  for (const LineKey& line : lines) {
    auto row =
        fields[static_cast<std::size_t>(line.var)]->row(line.j - box.j0, line.k);
    std::copy(chunks.begin() + static_cast<std::ptrdiff_t>(pos),
              chunks.begin() + static_cast<std::ptrdiff_t>(pos + row.size()),
              row.begin());
    pos += row.size();
  }
}

std::unique_ptr<PolarFilter> make_filter(FilterAlgorithm algorithm,
                                         const comm::Mesh2D& mesh,
                                         const grid::Decomp2D& decomp,
                                         const FilterBank& bank) {
  switch (algorithm) {
    case FilterAlgorithm::kConvolutionRing:
      return std::make_unique<ConvolutionRingFilter>(mesh, decomp, bank);
    case FilterAlgorithm::kConvolutionTree:
      return std::make_unique<ConvolutionTreeFilter>(mesh, decomp, bank);
    case FilterAlgorithm::kFftTranspose:
      return std::make_unique<FftTransposeFilter>(mesh, decomp, bank);
    case FilterAlgorithm::kFftBalanced:
      return std::make_unique<FftBalancedFilter>(mesh, decomp, bank);
    case FilterAlgorithm::kConvolutionPartitioned:
      return std::make_unique<PartitionedConvFilter>(mesh, decomp, bank);
    case FilterAlgorithm::kImplicitZonal:
      return std::make_unique<ImplicitZonalFilter>(mesh, decomp, bank);
  }
  throw ConfigError("unknown filter algorithm");
}

}  // namespace agcm::filter
