#include <vector>

#include "fft/workspace.hpp"
#include "filter/serial.hpp"
#include "filter/variants.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace agcm::filter {

void filter_owned_lines_fft(const fft::FftPlan& plan, const FilterBank& bank,
                            std::span<const LineKey> owned,
                            std::span<double> full_lines,
                            simnet::VirtualClock& clock) {
  const auto nlon = static_cast<std::size_t>(plan.size());
  AGCM_ASSERT(full_lines.size() == owned.size() * nlon);

  // Host work: the batched driver pair-packs lines that share a response
  // table row, so most pairs take the cheap same-response spectral multiply.
  filter_lines_fft(plan, bank, owned, full_lines);

  // Virtual-clock charging: FROZEN to the seed accounting — the batched
  // schedule performs exactly floor(n/2) pair transforms plus (n%2) single
  // transforms, so the accumulation below (same float addition order as the
  // seed's pair/single loop) is charged bitwise-identically regardless of
  // how the host-side execution is organised.
  std::size_t p = 0;
  double flops = 0.0;
  for (; p + 1 < owned.size(); p += 2) {
    flops += fft_filter_pair_flops(plan.size());
  }
  if (p < owned.size()) {
    flops += fft_filter_flops(plan.size());
  }
  clock.compute(flops, clock.profile().loop_efficiency(plan.size()));
}

FftTransposeFilter::FftTransposeFilter(const comm::Mesh2D& mesh,
                                       const grid::Decomp2D& decomp,
                                       const FilterBank& bank)
    : PolarFilter(mesh, decomp, bank),
      fft_plan_(fft::FftWorkspace::local().plan(decomp.nlon())),
      plan_(mesh, decomp, local_lines()) {}

void FftTransposeFilter::apply_impl(
    std::span<grid::Array3D<double>* const> fields) {
  validate_fields(fields);
  const auto& lines = plan_.lines();
  if (lines.empty()) return;  // nothing to filter in this latitude band
  auto& clock = mesh().world().context().clock();

  // All weakly filtered variables are filtered concurrently, as are all
  // strongly filtered ones (Section 3.3): one transpose moves every line.
  // Scratch is growth-only member storage and the transposes run on the
  // pooled zero-copy transport, so repeat applications never allocate.
  // Sub-spans split the already-traced "filter.fft-transpose" phase into
  // its communication half ("filter.transpose": the forward and backward
  // line transposes, each O(P) per rank) and its compute half
  // ("filter.fft-lines": the batched spectral filtering, O(n log n) per
  // line) — the two series the scaling-model sweep fits independently.
  simnet::RankContext& tctx = mesh().world().context();
  chunks_.resize(plan_.chunk_elems());
  extract_chunks_into(fields, box(), lines, chunks_);
  full_.resize(plan_.line_elems());
  {
    AGCM_TRACE_SPAN("filter.transpose", tctx);
    plan_.to_lines_into(mesh(), chunks_, full_);
  }
  {
    AGCM_TRACE_SPAN("filter.fft-lines", tctx);
    filter_owned_lines_fft(fft_plan_, bank(), plan_.owned_lines(), full_,
                           clock);
  }
  {
    AGCM_TRACE_SPAN("filter.transpose", tctx);
    plan_.to_chunks_into(mesh(), full_, chunks_);
  }
  write_chunks(fields, box(), lines, chunks_);
}

}  // namespace agcm::filter
