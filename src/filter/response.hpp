// The AGCM polar filter response function S(s, phi).
//
// From the paper (Section 3.1): the filter is "a set of discrete Fourier
// filters specifically designed to damp fast-moving inertia-gravity waves
// near the poles", applied as f' = IDFT( S(s, phi) * DFT(f) ) over complete
// longitude circles. S depends on zonal wavenumber s and latitude phi but
// not on time or height. Two variants exist:
//   * strong filtering — applied poleward of 45 deg (about half of each
//     hemisphere's latitudes) to one set of variables,
//   * weak filtering   — applied poleward of 60 deg (about one third) to
//     another set.
//
// The exact UCLA coefficients are not given in the paper; we use the
// classical Arakawa-Lamb-style response
//     S(s, phi) = min(1, (cos phi / cos phi_c) / (sin(pi s'/N) / sin(pi/N)))
// with s' = min(s, N - s), which damps exactly the modes that violate the
// CFL condition as the zonal grid spacing shrinks toward the poles. The
// weak variant takes the square root (milder damping). Any S in [0,1] with
// S(0)=1 reproduces the paper's computational behaviour identically.
#pragma once

#include <span>
#include <vector>

namespace agcm::filter {

enum class FilterKind { kStrong, kWeak };

/// Latitude cutoff (degrees) poleward of which the filter applies.
double cutoff_deg(FilterKind kind);

/// S(s, phi) for zonal wavenumber s in [0, n) on a circle of n points.
/// Returns 1 for latitudes equatorward of the cutoff.
double response(FilterKind kind, int wavenumber, int n, double lat_rad);

/// The whole response line S(0..n-1, phi); conjugate-symmetric
/// (S[s] == S[n-s]) so filtering keeps real signals real.
std::vector<double> response_line(FilterKind kind, int n, double lat_rad);

/// Physical-space convolution kernel equivalent to `response_line` — the
/// real inverse DFT of S. Filtering by circular convolution with this
/// kernel is mathematically identical to wavenumber-space multiplication
/// (the paper's equations (1) <-> (2)).
std::vector<double> kernel_from_response(std::span<const double> s_line);

}  // namespace agcm::filter
