#include "filter/bank.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace agcm::filter {

FilterBank::FilterBank(const grid::LatLonGrid& grid,
                       std::vector<FilteredVariable> variables)
    : grid_(&grid), variables_(std::move(variables)) {
  check_config(!variables_.empty(), "FilterBank needs at least one variable");
  const int nlat = grid.nlat();
  const int nlon = grid.nlon();

  response_strong_.resize(static_cast<std::size_t>(nlat));
  response_weak_.resize(static_cast<std::size_t>(nlat));
  kernel_strong_.resize(static_cast<std::size_t>(nlat));
  kernel_weak_.resize(static_cast<std::size_t>(nlat));
  partition_strong_.resize(static_cast<std::size_t>(nlat));
  partition_weak_.resize(static_cast<std::size_t>(nlat));
  kernel_once_strong_ =
      std::make_unique<std::once_flag[]>(static_cast<std::size_t>(nlat));
  kernel_once_weak_ =
      std::make_unique<std::once_flag[]>(static_cast<std::size_t>(nlat));
  partition_once_strong_ =
      std::make_unique<std::once_flag[]>(static_cast<std::size_t>(nlat));
  partition_once_weak_ =
      std::make_unique<std::once_flag[]>(static_cast<std::size_t>(nlat));
  for (int j = 0; j < nlat; ++j) {
    const double lat = grid.lat_center(j);
    const auto uj = static_cast<std::size_t>(j);
    if (grid.poleward_of(j, cutoff_deg(FilterKind::kStrong)))
      response_strong_[uj] = response_line(FilterKind::kStrong, nlon, lat);
    if (grid.poleward_of(j, cutoff_deg(FilterKind::kWeak)))
      response_weak_[uj] = response_line(FilterKind::kWeak, nlon, lat);
  }

  rows_.resize(variables_.size());
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    for (int j = 0; j < nlat; ++j) {
      if (grid.poleward_of(j, cutoff_deg(variables_[v].kind)))
        rows_[v].push_back(j);
    }
  }

  lines_by_var_.resize(variables_.size());
  for (int v = 0; v < nvars(); ++v) {
    const auto uv = static_cast<std::size_t>(v);
    lines_by_var_[uv].reserve(rows_[uv].size() *
                              static_cast<std::size_t>(grid.nlev()));
    for (int j : rows_[uv])
      for (int k = 0; k < grid.nlev(); ++k) {
        lines_.push_back({v, j, k});
        lines_by_var_[uv].push_back({v, j, k});
      }
  }
}

bool FilterBank::filtered(int v, int j) const {
  AGCM_ASSERT(v >= 0 && v < nvars());
  return grid_->poleward_of(j, cutoff_deg(variables_[static_cast<std::size_t>(v)].kind));
}

const std::vector<int>& FilterBank::rows(int v) const {
  AGCM_ASSERT(v >= 0 && v < nvars());
  return rows_[static_cast<std::size_t>(v)];
}

std::span<const double> FilterBank::response(int v, int j) const {
  AGCM_ASSERT(filtered(v, j));
  const auto uj = static_cast<std::size_t>(j);
  return variables_[static_cast<std::size_t>(v)].kind == FilterKind::kStrong
             ? std::span<const double>(response_strong_[uj])
             : std::span<const double>(response_weak_[uj]);
}

std::span<const double> FilterBank::kernel(int v, int j) const {
  AGCM_ASSERT(filtered(v, j));
  const auto uj = static_cast<std::size_t>(j);
  const bool strong =
      variables_[static_cast<std::size_t>(v)].kind == FilterKind::kStrong;
  const std::vector<double>& resp =
      strong ? response_strong_[uj] : response_weak_[uj];
  std::vector<double>& kern = strong ? kernel_strong_[uj] : kernel_weak_[uj];
  std::once_flag& once =
      strong ? kernel_once_strong_[uj] : kernel_once_weak_[uj];
  // Lazy build (O(nlon^2)); call_once because a const bank is shared
  // across rank threads in the parallel-variant tests and benches.
  std::call_once(once, [&] { kern = kernel_from_response(resp); });
  return kern;
}

const PartitionedKernel& FilterBank::partition(int v, int j) const {
  AGCM_ASSERT(filtered(v, j));
  const auto uj = static_cast<std::size_t>(j);
  const bool strong =
      variables_[static_cast<std::size_t>(v)].kind == FilterKind::kStrong;
  std::unique_ptr<PartitionedKernel>& part =
      strong ? partition_strong_[uj] : partition_weak_[uj];
  std::once_flag& once =
      strong ? partition_once_strong_[uj] : partition_once_weak_[uj];
  // Lazy build on top of the (itself lazy) convolution kernel: nested
  // call_once on distinct flags, so a kernel-only run never transforms
  // partitions and a partition run builds the kernel exactly once.
  std::call_once(once, [&] {
    part = std::make_unique<PartitionedKernel>(kernel(v, j), grid_->nlon());
  });
  return *part;
}

const std::vector<LineKey>& FilterBank::lines_of(int v) const {
  AGCM_ASSERT(v >= 0 && v < nvars());
  return lines_by_var_[static_cast<std::size_t>(v)];
}

}  // namespace agcm::filter
