#include "filter/bank.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace agcm::filter {

FilterBank::FilterBank(const grid::LatLonGrid& grid,
                       std::vector<FilteredVariable> variables)
    : grid_(&grid), variables_(std::move(variables)) {
  check_config(!variables_.empty(), "FilterBank needs at least one variable");
  const int nlat = grid.nlat();
  const int nlon = grid.nlon();

  response_strong_.resize(static_cast<std::size_t>(nlat));
  kernel_strong_.resize(static_cast<std::size_t>(nlat));
  response_weak_.resize(static_cast<std::size_t>(nlat));
  kernel_weak_.resize(static_cast<std::size_t>(nlat));
  for (int j = 0; j < nlat; ++j) {
    const double lat = grid.lat_center(j);
    const auto uj = static_cast<std::size_t>(j);
    if (grid.poleward_of(j, cutoff_deg(FilterKind::kStrong))) {
      response_strong_[uj] = response_line(FilterKind::kStrong, nlon, lat);
      kernel_strong_[uj] = kernel_from_response(response_strong_[uj]);
    }
    if (grid.poleward_of(j, cutoff_deg(FilterKind::kWeak))) {
      response_weak_[uj] = response_line(FilterKind::kWeak, nlon, lat);
      kernel_weak_[uj] = kernel_from_response(response_weak_[uj]);
    }
  }

  rows_.resize(variables_.size());
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    for (int j = 0; j < nlat; ++j) {
      if (grid.poleward_of(j, cutoff_deg(variables_[v].kind)))
        rows_[v].push_back(j);
    }
  }

  for (int v = 0; v < nvars(); ++v)
    for (int j : rows_[static_cast<std::size_t>(v)])
      for (int k = 0; k < grid.nlev(); ++k) lines_.push_back({v, j, k});
}

bool FilterBank::filtered(int v, int j) const {
  AGCM_ASSERT(v >= 0 && v < nvars());
  return grid_->poleward_of(j, cutoff_deg(variables_[static_cast<std::size_t>(v)].kind));
}

const std::vector<int>& FilterBank::rows(int v) const {
  AGCM_ASSERT(v >= 0 && v < nvars());
  return rows_[static_cast<std::size_t>(v)];
}

std::span<const double> FilterBank::response(int v, int j) const {
  AGCM_ASSERT(filtered(v, j));
  const auto uj = static_cast<std::size_t>(j);
  return variables_[static_cast<std::size_t>(v)].kind == FilterKind::kStrong
             ? std::span<const double>(response_strong_[uj])
             : std::span<const double>(response_weak_[uj]);
}

std::span<const double> FilterBank::kernel(int v, int j) const {
  AGCM_ASSERT(filtered(v, j));
  const auto uj = static_cast<std::size_t>(j);
  return variables_[static_cast<std::size_t>(v)].kind == FilterKind::kStrong
             ? std::span<const double>(kernel_strong_[uj])
             : std::span<const double>(kernel_weak_[uj]);
}

std::vector<LineKey> FilterBank::lines_of(int v) const {
  std::vector<LineKey> out;
  for (const LineKey& line : lines_)
    if (line.var == v) out.push_back(line);
  return out;
}

}  // namespace agcm::filter
