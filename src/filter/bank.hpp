// FilterBank: everything static about a filtering configuration.
//
// Given the grid and the list of filtered variables (each strong or weak),
// the bank precomputes, once:
//   * which global latitude rows each variable filters,
//   * the response line S(s, phi) for every (kind, latitude) pair,
//   * the global enumeration of "data lines" (variable, latitude, layer) —
//     the unit of work every parallel variant schedules — plus the same
//     list sliced per variable.
// This mirrors the paper's observation that S is "independent of time and
// height": tables are shared across layers and timesteps.
//
// The equivalent convolution kernels (an O(nlon^2) inverse transform per
// row) are built lazily on first use, so FFT-variant runs never pay for
// them. Lazy construction is guarded by std::call_once per (kind, row):
// a const FilterBank may be shared across rank threads.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "filter/partition.hpp"
#include "filter/response.hpp"
#include "grid/latlon.hpp"

namespace agcm::filter {

/// One filtered model variable.
struct FilteredVariable {
  std::string name;
  FilterKind kind = FilterKind::kStrong;
};

/// One longitude circle to be filtered.
struct LineKey {
  int var = 0;   ///< index into the bank's variable list
  int j = 0;     ///< global latitude row
  int k = 0;     ///< vertical layer
};

class FilterBank {
 public:
  FilterBank(const grid::LatLonGrid& grid,
             std::vector<FilteredVariable> variables);

  const grid::LatLonGrid& grid() const { return *grid_; }
  int nvars() const { return static_cast<int>(variables_.size()); }
  const FilteredVariable& variable(int v) const {
    return variables_[static_cast<std::size_t>(v)];
  }

  /// True if variable v is filtered at global latitude row j.
  bool filtered(int v, int j) const;

  /// Global rows filtered for variable v (ascending).
  const std::vector<int>& rows(int v) const;

  /// Response line S(s, lat_j) for variable v at row j (length nlon).
  /// One table row per (kind, latitude): all layers and variables of the
  /// same kind share the row, so the returned span's .data() identifies it.
  std::span<const double> response(int v, int j) const;
  /// Equivalent convolution kernel (length nlon). Built lazily on first
  /// request for the (kind, row) pair; thread-safe on a shared const bank.
  std::span<const double> kernel(int v, int j) const;
  /// Uniform-partitioned frequency-domain form of kernel(v, j) for the
  /// overlap-save streaming backend (docs/filter.md). Built lazily through
  /// the same per-(kind, row) call_once path as the kernel itself.
  const PartitionedKernel& partition(int v, int j) const;

  /// All lines (var, j, k), ordered by (var, j, k). Every parallel variant
  /// schedules exactly this list, so results are comparable bit-for-bit.
  const std::vector<LineKey>& lines() const { return lines_; }

  /// Lines of a single variable, in (j, k) order (the original AGCM filtered
  /// "one variable at a time"). Precomputed: O(1) per call.
  const std::vector<LineKey>& lines_of(int v) const;

 private:
  const grid::LatLonGrid* grid_;
  std::vector<FilteredVariable> variables_;
  std::vector<std::vector<int>> rows_;  ///< per variable
  // Tables keyed by (kind, j); weak and strong kept separately. Responses
  // are eager (cheap, and the FFT variants key pair-packing off their row
  // addresses); kernels are lazy (O(nlon^2) each, convolution-only).
  std::vector<std::vector<double>> response_strong_, response_weak_;
  mutable std::vector<std::vector<double>> kernel_strong_, kernel_weak_;
  // Partitioned-OLS spectra, keyed like the kernels (lazy: only the
  // partitioned backend pays the per-row transform cost).
  mutable std::vector<std::unique_ptr<PartitionedKernel>> partition_strong_,
      partition_weak_;
  // One flag per latitude row and kind; std::once_flag is immovable, hence
  // the arrays. Guards the lazy kernel / partition builds above.
  mutable std::unique_ptr<std::once_flag[]> kernel_once_strong_;
  mutable std::unique_ptr<std::once_flag[]> kernel_once_weak_;
  mutable std::unique_ptr<std::once_flag[]> partition_once_strong_;
  mutable std::unique_ptr<std::once_flag[]> partition_once_weak_;
  std::vector<LineKey> lines_;
  std::vector<std::vector<LineKey>> lines_by_var_;
};

}  // namespace agcm::filter
