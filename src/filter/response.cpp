#include "filter/response.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace agcm::filter {

double cutoff_deg(FilterKind kind) {
  return kind == FilterKind::kStrong ? 45.0 : 60.0;
}

double response(FilterKind kind, int wavenumber, int n, double lat_rad) {
  AGCM_ASSERT(n >= 2);
  AGCM_ASSERT(wavenumber >= 0 && wavenumber < n);
  const double cutoff_rad = cutoff_deg(kind) * std::numbers::pi / 180.0;
  const double abs_lat = std::abs(lat_rad);
  if (abs_lat < cutoff_rad) return 1.0;
  const int s = std::min(wavenumber, n - wavenumber);
  if (s == 0) return 1.0;  // never touch the zonal mean
  const double growth =
      std::sin(std::numbers::pi * s / n) / std::sin(std::numbers::pi / n);
  const double ratio = std::cos(abs_lat) / std::cos(cutoff_rad);
  double s_val = std::clamp(ratio / growth, 0.0, 1.0);
  if (kind == FilterKind::kWeak) s_val = std::sqrt(s_val);
  return s_val;
}

std::vector<double> response_line(FilterKind kind, int n, double lat_rad) {
  std::vector<double> line(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s)
    line[static_cast<std::size_t>(s)] = response(kind, s, n, lat_rad);
  return line;
}

std::vector<double> kernel_from_response(std::span<const double> s_line) {
  const auto n = static_cast<int>(s_line.size());
  std::vector<double> kernel(s_line.size(), 0.0);
  // Real inverse DFT of a real, even (conjugate-symmetric) sequence.
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int s = 0; s < n; ++s) {
      acc += s_line[static_cast<std::size_t>(s)] *
             std::cos(2.0 * std::numbers::pi * s * i / n);
    }
    kernel[static_cast<std::size_t>(i)] = acc / n;
  }
  return kernel;
}

}  // namespace agcm::filter
