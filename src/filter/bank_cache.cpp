#include "filter/bank_cache.hpp"

#include <map>
#include <mutex>
#include <sstream>

#include "util/shared_cache.hpp"

namespace agcm::filter {

namespace {

// Exact-geometry key: dims plus the planet constants (hexfloat, so equal
// keys mean bit-equal doubles) plus the variable list with kinds. Variable
// NAMES are part of the key deliberately — the bank exposes them through
// variable(v).name, so two banks with different names are not
// interchangeable even when their tables are.
std::string bank_key(const grid::LatLonGrid& grid,
                     const std::vector<FilteredVariable>& variables) {
  std::ostringstream key;
  key << grid.nlon() << ':' << grid.nlat() << ':' << grid.nlev();
  key << std::hexfloat << ':' << grid.planet().radius_m << ':'
      << grid.planet().omega << ':' << grid.planet().gravity;
  for (const FilteredVariable& v : variables)
    key << '|' << v.name << ':'
        << (v.kind == FilterKind::kStrong ? 'S' : 'W');
  return key.str();
}

// The bank points at the grid it was built from, so an entry carries its
// own copy; grid is constructed before bank (declaration order).
struct BankEntry {
  grid::LatLonGrid grid;
  FilterBank bank;

  BankEntry(const grid::LatLonGrid& g, std::vector<FilteredVariable> vars)
      : grid(g), bank(grid, std::move(vars)) {}
};

std::shared_ptr<const FilterBank> make_entry(
    const grid::LatLonGrid& grid, std::vector<FilteredVariable> variables) {
  auto entry = std::make_shared<BankEntry>(grid, std::move(variables));
  // Aliasing handle: keeps the whole entry (grid included) alive while
  // exposing only the bank.
  return {entry, &entry->bank};
}

struct BankCache {
  std::mutex mutex;
  std::map<std::string, std::shared_ptr<const FilterBank>> banks;
  util::SharedCacheStats stats;

  static BankCache& instance() {
    static BankCache cache;
    return cache;
  }

 private:
  BankCache() {
    util::SharedCaches::register_cache(
        "filter.banks", [] { clear_bank_cache(); },
        [] {
          BankCache& c = instance();
          std::lock_guard<std::mutex> lock(c.mutex);
          return c.stats;
        });
  }
};

}  // namespace

std::shared_ptr<const FilterBank> shared_bank(
    const grid::LatLonGrid& grid, std::vector<FilteredVariable> variables) {
  if (!util::SharedCaches::enabled())
    return make_entry(grid, std::move(variables));
  std::string key = bank_key(grid, variables);
  BankCache& cache = BankCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  auto it = cache.banks.find(key);
  if (it != cache.banks.end()) {
    ++cache.stats.hits;
    return it->second;
  }
  ++cache.stats.misses;
  auto bank = make_entry(grid, std::move(variables));
  cache.banks.emplace(std::move(key), bank);
  return bank;
}

void clear_bank_cache() {
  BankCache& cache = BankCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.banks.clear();
}

}  // namespace agcm::filter
