// Concrete parallel filter variants. See parallel.hpp for the overview.
#pragma once

#include <optional>

#include "fft/fft.hpp"
#include "filter/parallel.hpp"
#include "filter/plan.hpp"

namespace agcm::filter {

/// Filters a buffer of whole owned lines (nlon doubles each, in
/// owned-lines order) in place, pairing lines through the two-for-one real
/// FFT so two lines share each complex transform — the vendor-library
/// trick the paper's "highly efficient FFT library codes" refers to.
/// Charges the virtual clock.
void filter_owned_lines_fft(const fft::FftPlan& plan, const FilterBank& bank,
                            std::span<const LineKey> owned,
                            std::span<double> full_lines,
                            simnet::VirtualClock& clock);

/// The original AGCM algorithm: physical-space convolution with the chunk
/// data rotated around the processor ring in the longitudinal direction.
/// Variables are filtered one at a time (as in the original code — the
/// paper's new module removed this serialisation).
class ConvolutionRingFilter final : public PolarFilter {
 public:
  using PolarFilter::PolarFilter;
  void apply_impl(std::span<grid::Array3D<double>* const> fields) override;
  std::string_view name() const override { return "convolution-ring"; }

 private:
  void filter_variable(grid::Array3D<double>& field, int v);
};

/// Convolution with tree-based line gathering: whole lines are allgathered
/// within the processor row (binomial gather + broadcast), then every node
/// convolves only its own output chunk. Fewer messages than the ring,
/// larger transferred volume (the paper's Section 2 tradeoff).
class ConvolutionTreeFilter final : public PolarFilter {
 public:
  using PolarFilter::PolarFilter;
  void apply_impl(std::span<grid::Array3D<double>* const> fields) override;
  std::string_view name() const override { return "convolution-tree"; }

 private:
  void filter_variable(grid::Array3D<double>& field, int v);
};

/// FFT filtering after a data transpose within each processor row
/// (Section 3.2, second approach): lines are redistributed among the row's
/// nodes so each FFT runs locally on a whole line; inverse movement
/// restores the layout. All variables are filtered concurrently. No
/// latitudinal load balancing: equatorward processor rows stay idle.
class FftTransposeFilter final : public PolarFilter {
 public:
  FftTransposeFilter(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                     const FilterBank& bank);
  void apply_impl(std::span<grid::Array3D<double>* const> fields) override;
  std::string_view name() const override { return "fft-transpose"; }

 private:
  const fft::FftPlan& fft_plan_;  // cached in the rank's FftWorkspace
  RowTransposePlan plan_;
  // Growth-only scratch reused across apply() calls; together with the
  // pooled transport this makes the steady-state filter path allocation-free
  // (tests/test_comm_alloc.cpp).
  std::vector<double> chunks_;
  std::vector<double> full_;
};

/// Filters a buffer of whole owned lines (nlon doubles each, in
/// owned-lines order) in place through the partitioned overlap-save
/// streaming engine, pairing same-row lines two-for-one through the
/// packed-complex transforms. Charges the virtual clock with the
/// partitioned backend's (new, non-frozen) deterministic accounting.
void filter_owned_lines_partition(const FilterBank& bank,
                                  std::span<const LineKey> owned,
                                  std::span<double> full_lines,
                                  simnet::VirtualClock& clock);

/// Extension beyond the paper: partitioned overlap-save streaming
/// convolution (docs/filter.md). Same row-transpose data movement as
/// FftTransposeFilter, but each whole line is filtered by the uniform-
/// partitioned OLS engine — length-2B block FFTs against the bank's
/// cached per-row partition spectra — instead of a whole-line transform.
/// The third point of the Tables 8-11 crossover study.
class PartitionedConvFilter final : public PolarFilter {
 public:
  PartitionedConvFilter(const comm::Mesh2D& mesh,
                        const grid::Decomp2D& decomp, const FilterBank& bank);
  void apply_impl(std::span<grid::Array3D<double>* const> fields) override;
  std::string_view name() const override { return "convolution-partitioned"; }

 private:
  RowTransposePlan plan_;
  // Growth-only scratch reused across apply() calls (allocation-free
  // steady state, as in FftTransposeFilter).
  std::vector<double> chunks_;
  std::vector<double> full_;
};

/// The paper's contribution (Section 3.3): load-balanced FFT filtering.
/// Stage A redistributes data rows in the latitudinal direction so every
/// processor row holds ~equal filtering work (Figure 2); stage B transposes
/// within rows (Figure 3); FFTs run locally; both movements are undone.
/// The non-trivial setup bookkeeping is done once, at construction.
class FftBalancedFilter final : public PolarFilter {
 public:
  FftBalancedFilter(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                    const FilterBank& bank);
  void apply_impl(std::span<grid::Array3D<double>* const> fields) override;
  std::string_view name() const override { return "fft-load-balanced"; }

  /// Virtual seconds spent building the plan (the paper: "its cost is not
  /// an issue for a long AGCM simulation since it is done only once").
  double setup_cost_sec() const { return setup_cost_sec_; }

 private:
  const fft::FftPlan& fft_plan_;  // cached in the rank's FftWorkspace
  BalancedFilterPlan plan_;
  double setup_cost_sec_ = 0.0;
  // Growth-only scratch reused across apply() calls (allocation-free
  // steady state, as in FftTransposeFilter).
  std::vector<double> my_chunks_;
  std::vector<double> held_;
  std::vector<double> full_;
};

}  // namespace agcm::filter
