#include <vector>

#include "filter/serial.hpp"
#include "filter/variants.hpp"
#include "util/error.hpp"

namespace agcm::filter {

void ConvolutionTreeFilter::apply_impl(
    std::span<grid::Array3D<double>* const> fields) {
  validate_fields(fields);
  for (int v = 0; v < bank().nvars(); ++v) {
    filter_variable(*fields[static_cast<std::size_t>(v)], v);
  }
}

void ConvolutionTreeFilter::filter_variable(grid::Array3D<double>& field,
                                            int v) {
  const auto rows = local_rows(v);
  const auto& row_comm = mesh().row_comm();
  auto& clock = row_comm.context().clock();
  const int ncols = mesh().cols();
  const int nlev = bank().grid().nlev();
  const int nlon = decomp().nlon();
  const auto nlines = rows.size() * static_cast<std::size_t>(nlev);
  if (nlines == 0) return;

  // var index 0: extract/write below see a single-field span.
  std::vector<LineKey> lines;
  lines.reserve(nlines);
  for (int j : rows)
    for (int k = 0; k < nlev; ++k) lines.push_back({0, j, k});

  grid::Array3D<double>* field_ptr = &field;
  const std::vector<double> my_chunks =
      extract_chunks(std::span<grid::Array3D<double>* const>(&field_ptr, 1),
                     box(), lines);

  // Tree-based allgather of every line: gather to row root via the binomial
  // tree, then broadcast the assembled buffer back down — "communications
  // in binary trees" (Section 2). Every node ends up with the whole lines
  // and convolves only its own output chunk.
  std::vector<int> counts(static_cast<std::size_t>(ncols));
  for (int c = 0; c < ncols; ++c)
    counts[static_cast<std::size_t>(c)] =
        static_cast<int>(nlines) * decomp().lon_partition().size(c);
  const std::vector<double> gathered =
      row_comm.allgatherv<double>(my_chunks, counts);

  // Assemble whole lines from the per-column blocks.
  std::vector<double> full(nlines * static_cast<std::size_t>(nlon));
  std::size_t pos = 0;
  for (int c = 0; c < ncols; ++c) {
    const auto w = static_cast<std::size_t>(decomp().lon_partition().size(c));
    const auto start = static_cast<std::size_t>(decomp().lon_partition().start(c));
    for (std::size_t q = 0; q < nlines; ++q) {
      std::copy(gathered.begin() + static_cast<std::ptrdiff_t>(pos),
                gathered.begin() + static_cast<std::ptrdiff_t>(pos + w),
                full.begin() + static_cast<std::ptrdiff_t>(
                                   q * static_cast<std::size_t>(nlon) + start));
      pos += w;
    }
  }
  clock.memory_traffic(static_cast<double>(full.size()) * sizeof(double));

  // Convolve my output chunk of every line.
  const auto ni = static_cast<std::size_t>(box().ni);
  std::vector<double> out(nlines * ni);
  for (std::size_t q = 0; q < nlines; ++q) {
    const LineKey& line = lines[q];
    const auto kernel = bank().kernel(v, line.j);
    filter_chunk_convolution(
        std::span<const double>(full.data() + q * static_cast<std::size_t>(nlon),
                                static_cast<std::size_t>(nlon)),
        kernel, box().i0, static_cast<int>(ni),
        std::span<double>(out.data() + q * ni, ni));
  }
  clock.compute(convolution_chunk_flops(nlon, static_cast<int>(ni)) *
                    static_cast<double>(nlines),
                clock.profile().loop_efficiency(nlon));

  write_chunks(std::span<grid::Array3D<double>* const>(&field_ptr, 1), box(),
               lines, out);
}

}  // namespace agcm::filter
