// EXTENSION (beyond the paper): implicit zonal diffusion as the polar
// treatment, in place of spectral filtering.
//
// Several later GCMs replaced polar Fourier filters with an implicit
// zonal diffusion step: solve, along every filtered latitude circle,
//   (I + K(phi) L) f' = f,      (L f)_i = 2 f_i - f_{i-1} - f_{i+1},
// whose spectral response 1 / (1 + K (2 - 2 cos(2 pi s / N))) damps high
// zonal wavenumbers like the Fourier filter. K(phi) is chosen so the
// Nyquist response matches the corresponding spectral filter's.
//
// The interesting systems question — and why this lives next to the
// paper's variants — is the communication structure: no transpose at all;
// instead one distributed periodic tridiagonal solve per line across the
// processor row (the Section 5 "fast parallel linear system solver").
// Latency-bound where the transpose-FFT is bandwidth-bound; the ablation
// bench compares them.
#pragma once

#include "filter/parallel.hpp"
#include "linsolve/distributed.hpp"

namespace agcm::filter {

class ImplicitZonalFilter final : public PolarFilter {
 public:
  ImplicitZonalFilter(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                      const FilterBank& bank);

  void apply_impl(std::span<grid::Array3D<double>* const> fields) override;
  std::string_view name() const override { return "implicit-zonal"; }

  /// Diffusion strength for variable v at global row j, matched to the
  /// spectral filter's Nyquist response.
  double strength(int v, int j) const;

  /// Effective spectral response of the implicit operator (for tests).
  static double response(double k_strength, int wavenumber, int n);

 private:
  std::vector<LineKey> lines_;  ///< local filtered lines, canonical order
};

}  // namespace agcm::filter
