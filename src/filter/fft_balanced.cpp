#include <cmath>
#include <vector>

#include "fft/workspace.hpp"
#include "filter/serial.hpp"
#include "filter/variants.hpp"
#include "util/error.hpp"

namespace agcm::filter {

FftBalancedFilter::FftBalancedFilter(const comm::Mesh2D& mesh,
                                     const grid::Decomp2D& decomp,
                                     const FilterBank& bank)
    : PolarFilter(mesh, decomp, bank),
      fft_plan_(fft::FftWorkspace::local().plan(decomp.nlon())) {
  // One-time setup (Section 3.3): "some non-trivial set-up code is needed
  // to construct information which guides the data movements... The set-up
  // involves substantial bookkeeping and interprocessor communications."
  const double t0 = mesh.world().now();
  plan_ = BalancedFilterPlan(mesh, decomp, bank);
  // Bookkeeping cost: a few ops per global line on every node.
  mesh.world().charge_flops(20.0 * static_cast<double>(bank.lines().size()));
  // Cross-node plan agreement check (the interprocessor part of set-up):
  // every node must compute the same global schedule.
  double checksum = 0.0;
  for (const LineKey& line : plan_.held_lines())
    checksum += line.var * 1.0e6 + line.j * 1.0e3 + line.k;
  const double total = mesh.world().allreduce_sum(checksum);
  // Every node of a processor row holds the same held_lines set, so the
  // global sum sees each line once per mesh column.
  double expected = 0.0;
  for (const LineKey& line : bank.lines())
    expected += line.var * 1.0e6 + line.j * 1.0e3 + line.k;
  expected *= static_cast<double>(mesh.cols());
  if (std::abs(total - expected) > 1.0e-6 * std::max(1.0, expected)) {
    throw CommError("load-balanced filter plan disagrees across nodes");
  }
  setup_cost_sec_ = mesh.world().now() - t0;
}

void FftBalancedFilter::apply_impl(
    std::span<grid::Array3D<double>* const> fields) {
  validate_fields(fields);
  auto& clock = mesh().world().context().clock();

  // Figure 2: redistribute data rows along the latitudinal direction so
  // every processor row holds ~sum(R_j)/M lines. All staging buffers are
  // growth-only members and both movements run on the pooled zero-copy
  // transport: repeat applications never allocate.
  my_chunks_.resize(plan_.my_chunk_elems());
  extract_chunks_into(fields, box(), plan_.my_lines(), my_chunks_);
  held_.resize(plan_.held_chunk_elems());
  plan_.redistribute_into(mesh(), my_chunks_, held_);

  // Figure 3: transpose within the processor row, filter whole lines
  // locally, transpose back.
  full_.resize(plan_.row_plan().line_elems());
  plan_.row_plan().to_lines_into(mesh(), held_, full_);
  const auto& owned = plan_.row_plan().owned_lines();
  filter_owned_lines_fft(fft_plan_, bank(), owned, full_, clock);

  plan_.row_plan().to_chunks_into(mesh(), full_, held_);

  // Inverse of Figure 2: restore the original data layout.
  plan_.restore_into(mesh(), held_, my_chunks_);
  write_chunks(fields, box(), plan_.my_lines(), my_chunks_);
}

}  // namespace agcm::filter
