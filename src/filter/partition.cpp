#include "filter/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "fft/workspace.hpp"
#include "singlenode/miniblas.hpp"
#include "singlenode/pointwise.hpp"

namespace agcm::filter {

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

// ---------------------------------------------------------------------------
// PartitionPlan
// ---------------------------------------------------------------------------

double PartitionPlan::model_flops(int period, int kernel_len, int block) {
  const double n = static_cast<double>(period);
  const double fft_size = 2.0 * block;
  const double nparts = static_cast<double>(ceil_div(kernel_len, block));
  const double nblocks = static_cast<double>(ceil_div(period, block));
  // FftPlan's frozen accounting is 5 N log2 N per transform; the streaming
  // engine runs nblocks + nparts - 1 forward and nblocks inverse
  // transforms, plus an 8-flop complex multiply-accumulate per spectrum
  // bin per (block, partition) pair, plus the pack and overlap-save
  // writeback passes over the line.
  const double fft_each = 5.0 * fft_size * std::log2(fft_size);
  return (2.0 * nblocks + nparts - 1.0) * fft_each +
         nblocks * nparts * 8.0 * fft_size + 4.0 * n;
}

int PartitionPlan::select_block(int period, int kernel_len) {
  int best = kMinBlock;
  double best_cost = std::numeric_limits<double>::infinity();
  // Candidates are the 3-smooth sizes (2^i * 3^j): the FFT plan has
  // hand-unrolled radix-2/3/4 butterflies, so a 2B-point transform at these
  // sizes costs its model price, and the denser grid keeps the optimum cost
  // curve smooth in the period (a pure power-of-two scan leaves ~10%
  // staircase wobble, enough to blur the backend's quasi-linear complexity
  // class — see bench_scaling_model). The period/kMinHops cap enforces the
  // streaming contract: left unconstrained, the model's optimum collapses
  // to B = n (one whole-line 2n-point transform), which has no bounded
  // per-hop latency and is strictly worse than the whole-line FFT backend.
  const int cap = std::min(kMaxBlock, std::max(kMinBlock, period / kMinHops));
  for (int b3 = 1; b3 <= cap; b3 *= 3) {
    for (int b = b3; b <= cap; b *= 2) {
      if (b < kMinBlock) continue;
      const double cost = model_flops(period, kernel_len, b);
      // Strict < favours the first (smaller within its odd part) block on a
      // tie; exact ties across odd parts are broken towards the smaller
      // block below, bounding one hop's latency at no model cost.
      if (cost < best_cost || (cost == best_cost && b < best)) {
        best = b;
        best_cost = cost;
      }
    }
  }
  return best;
}

PartitionPlan PartitionPlan::make(int period, int kernel_len, int block) {
  assert(period >= 1 && kernel_len >= 1 && block >= 0);
  PartitionPlan plan;
  plan.period = period;
  plan.kernel_len = kernel_len;
  plan.block = block > 0 ? block : select_block(period, kernel_len);
  plan.fft_size = 2 * plan.block;
  plan.nparts = ceil_div(kernel_len, plan.block);
  plan.nblocks = ceil_div(period, plan.block);
  return plan;
}

// ---------------------------------------------------------------------------
// PartitionedKernel
// ---------------------------------------------------------------------------

PartitionedKernel::PartitionedKernel(std::span<const double> kernel,
                                     int period, int block)
    : plan_(PartitionPlan::make(period, static_cast<int>(kernel.size()),
                                block)) {
  const int fft_size = plan_.fft_size;
  const int nparts = plan_.nparts;
  const int taps = plan_.block;
  spectra_.assign(static_cast<std::size_t>(nparts) * fft_size,
                  fft::Complex{0.0, 0.0});
  split_.assign(static_cast<std::size_t>(2 * nparts) * fft_size, 0.0);
  // One-time build: transform each zero-padded partition with the cached
  // per-rank plan (the build allocates; every later use is read-only).
  const fft::FftPlan& fp = fft::FftWorkspace::local().plan(fft_size);
  for (int p = 0; p < nparts; ++p) {
    std::span<fft::Complex> spec{
        spectra_.data() + static_cast<std::size_t>(p) * fft_size,
        static_cast<std::size_t>(fft_size)};
    const int tap0 = p * taps;
    const int count =
        std::min(taps, static_cast<int>(kernel.size()) - tap0);
    for (int s = 0; s < count; ++s) {
      spec[static_cast<std::size_t>(s)] = fft::Complex{kernel[tap0 + s], 0.0};
    }
    fp.forward(spec);
    double* re = split_.data() + static_cast<std::size_t>(2 * p) * fft_size;
    double* im = re + fft_size;
    for (int k = 0; k < fft_size; ++k) {
      re[k] = spec[static_cast<std::size_t>(k)].real();
      im[k] = spec[static_cast<std::size_t>(k)].imag();
    }
  }
}

std::span<const fft::Complex> PartitionedKernel::spectrum(int p) const {
  assert(p >= 0 && p < plan_.nparts);
  return {spectra_.data() + static_cast<std::size_t>(p) * plan_.fft_size,
          static_cast<std::size_t>(plan_.fft_size)};
}

std::span<const double> PartitionedKernel::spectrum_re(int p) const {
  assert(p >= 0 && p < plan_.nparts);
  return {split_.data() + static_cast<std::size_t>(2 * p) * plan_.fft_size,
          static_cast<std::size_t>(plan_.fft_size)};
}

std::span<const double> PartitionedKernel::spectrum_im(int p) const {
  assert(p >= 0 && p < plan_.nparts);
  return {split_.data() +
              static_cast<std::size_t>(2 * p + 1) * plan_.fft_size,
          static_cast<std::size_t>(plan_.fft_size)};
}

// ---------------------------------------------------------------------------
// PartitionWorkspace
// ---------------------------------------------------------------------------

PartitionWorkspace& PartitionWorkspace::local() {
  if (util::ExecSlot* slot = util::ExecSlot::current()) {
    return slot->get<PartitionWorkspace>();
  }
  thread_local PartitionWorkspace fallback;
  return fallback;
}

std::span<fft::Complex> PartitionWorkspace::staging(std::size_t count) {
  if (staging_.size() < count) staging_.resize(count);
  return {staging_.data(), count};
}

std::span<fft::Complex> PartitionWorkspace::block(std::size_t count) {
  if (block_.size() < count) block_.resize(count);
  return {block_.data(), count};
}

std::span<double> PartitionWorkspace::planes(std::size_t count) {
  if (planes_.size() < count) planes_.resize(count);
  return {planes_.data(), count};
}

// ---------------------------------------------------------------------------
// Streaming engine
// ---------------------------------------------------------------------------

namespace {

// The shared single/pair core. For a pair the second line rides the
// imaginary lane (z = a + i b): the kernel is real, so by linearity the
// filtered pack is (a*h) + i (b*h). `line_b` empty selects the single
// form (imaginary lane carries zeros and is discarded).
void run_partition(const PartitionedKernel& kernel, std::span<double> line_a,
                   std::span<double> line_b) {
  const PartitionPlan& plan = kernel.plan();
  const int n = plan.period;
  const int hop = plan.block;
  const int fft_size = plan.fft_size;
  const int nparts = plan.nparts;
  const int nblocks = plan.nblocks;
  assert(static_cast<int>(line_a.size()) == n);
  assert(line_b.empty() || static_cast<int>(line_b.size()) == n);

  const fft::FftPlan& fp = fft::FftWorkspace::local().plan(fft_size);
  PartitionWorkspace& ws = PartitionWorkspace::local();
  std::span<fft::Complex> stage = ws.staging(static_cast<std::size_t>(n));
  std::span<fft::Complex> blk = ws.block(static_cast<std::size_t>(fft_size));
  // Plane layout: nparts delay-line slots of [re | im], then the output
  // accumulator pair, then one multiply scratch plane.
  std::span<double> planes = ws.planes(
      static_cast<std::size_t>(2 * nparts + 3) * fft_size);
  double* acc_re = planes.data() +
                   static_cast<std::size_t>(2 * nparts) * fft_size;
  double* acc_im = acc_re + fft_size;
  double* scratch = acc_im + fft_size;

  // Output hops overwrite the line the next (and the wrapping) input
  // windows still need, so the engine streams from a packed copy and
  // writes results straight into the caller's storage.
  if (line_b.empty()) {
    for (int i = 0; i < n; ++i) {
      stage[static_cast<std::size_t>(i)] = fft::Complex{line_a[i], 0.0};
    }
  } else {
    for (int i = 0; i < n; ++i) {
      stage[static_cast<std::size_t>(i)] =
          fft::Complex{line_a[i], line_b[i]};
    }
  }

  // Hop m consumes windows m, m-1, ..., m-nparts+1, so the loop starts at
  // m = -(nparts - 1) to prime the delay line (mod-n reads make negative
  // windows wrap to the end of the circle) and produces output for m >= 0.
  for (int m = -(nparts - 1); m < nblocks; ++m) {
    // Gather window m: samples [m*hop - hop, m*hop + hop) mod n.
    int idx = ((m * hop - hop) % n + n) % n;
    for (int t = 0; t < fft_size; ++t) {
      blk[static_cast<std::size_t>(t)] = stage[static_cast<std::size_t>(idx)];
      if (++idx == n) idx = 0;
    }
    fp.forward(blk);
    const int slot = ((m % nparts) + nparts) % nparts;
    double* slot_re =
        planes.data() + static_cast<std::size_t>(2 * slot) * fft_size;
    double* slot_im = slot_re + fft_size;
    for (int k = 0; k < fft_size; ++k) {
      slot_re[k] = blk[static_cast<std::size_t>(k)].real();
      slot_im[k] = blk[static_cast<std::size_t>(k)].imag();
    }
    if (m < 0) continue;

    // Frequency-domain MAC: acc = sum_d H_d * X_{m-d}, complex multiply
    // expanded over the split planes so every pass runs through the
    // contracted pointwise / daxpy families (bitwise across SIMD tiers).
    std::fill(acc_re, acc_re + fft_size, 0.0);
    std::fill(acc_im, acc_im + fft_size, 0.0);
    const std::size_t len = static_cast<std::size_t>(fft_size);
    for (int d = 0; d < nparts; ++d) {
      const int src = (((m - d) % nparts) + nparts) % nparts;
      const double* x_re =
          planes.data() + static_cast<std::size_t>(2 * src) * fft_size;
      const double* x_im = x_re + fft_size;
      const double* h_re = kernel.spectrum_re(d).data();
      const double* h_im = kernel.spectrum_im(d).data();
      std::span<double> scr{scratch, len};
      singlenode::pointwise_multiply_dispatch({x_re, len}, {h_re, len}, scr);
      singlenode::daxpy_dispatch(1.0, scr, {acc_re, len});
      singlenode::pointwise_multiply_dispatch({x_im, len}, {h_im, len}, scr);
      singlenode::daxpy_dispatch(-1.0, scr, {acc_re, len});
      singlenode::pointwise_multiply_dispatch({x_im, len}, {h_re, len}, scr);
      singlenode::daxpy_dispatch(1.0, scr, {acc_im, len});
      singlenode::pointwise_multiply_dispatch({x_re, len}, {h_im, len}, scr);
      singlenode::daxpy_dispatch(1.0, scr, {acc_im, len});
    }

    // Back to time domain; overlap-save keeps the last `hop` samples (the
    // first half is circular wrap-around of the small transform, already
    // produced by the previous hop).
    for (int k = 0; k < fft_size; ++k) {
      blk[static_cast<std::size_t>(k)] = fft::Complex{acc_re[k], acc_im[k]};
    }
    fp.inverse(blk);
    const int out0 = m * hop;
    const int count = std::min(hop, n - out0);
    for (int t = 0; t < count; ++t) {
      line_a[out0 + t] = blk[static_cast<std::size_t>(hop + t)].real();
    }
    if (!line_b.empty()) {
      for (int t = 0; t < count; ++t) {
        line_b[out0 + t] = blk[static_cast<std::size_t>(hop + t)].imag();
      }
    }
  }
}

}  // namespace

void filter_line_partition(const PartitionedKernel& kernel,
                           std::span<double> line) {
  run_partition(kernel, line, {});
}

void filter_line_pair_partition(const PartitionedKernel& kernel,
                                std::span<double> line_a,
                                std::span<double> line_b) {
  run_partition(kernel, line_a, line_b);
}

void convolve_circular_direct(std::span<const double> kernel,
                              std::span<double> line) {
  const int n = static_cast<int>(line.size());
  const int taps = static_cast<int>(kernel.size());
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int s = 0; s < taps; ++s) {
      int j = (i - s) % n;
      if (j < 0) j += n;
      sum += kernel[static_cast<std::size_t>(s)] *
             line[static_cast<std::size_t>(j)];
    }
    out[static_cast<std::size_t>(i)] = sum;
  }
  std::copy(out.begin(), out.end(), line.begin());
}

}  // namespace agcm::filter
