// Data-movement plans for the FFT filter variants.
//
// RowTransposePlan implements the Figure-3 movement: within one processor
// row, chunks of the filtered lines are exchanged so that each node ends up
// holding *whole* longitude circles (ready for a local FFT); the inverse
// movement restores the original chunk layout.
//
// BalancedFilterPlan adds the Figure-2 movement in front: data rows are
// first redistributed in the latitudinal direction so every processor row
// holds approximately sum(R_j)/M lines (the paper's equation (3) applied
// over mesh rows), regardless of how many rows each hemisphere filters.
// Both plans are pure bookkeeping computed identically on every node from
// global metadata — "the set-up involves substantial bookkeeping" (3.3).
#pragma once

#include <vector>

#include "comm/mesh2d.hpp"
#include "filter/bank.hpp"
#include "grid/decomp.hpp"

namespace agcm::filter {

/// Chunk layout convention used throughout: a "chunk buffer" stores one
/// fixed-width chunk per line, consecutively, in the plan's line order.
class RowTransposePlan {
 public:
  RowTransposePlan() = default;

  /// `lines` are the circles this processor row must filter; every node of
  /// the row passes the identical list (asserted via its length).
  RowTransposePlan(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                   std::vector<LineKey> lines);

  const std::vector<LineKey>& lines() const { return lines_; }

  /// Keys of the whole lines this node assembles and filters, in the order
  /// they appear in the buffer returned by to_lines().
  const std::vector<LineKey>& owned_lines() const { return owned_keys_; }

  /// Size of the chunk buffer (my ni-wide chunk of every line in lines()).
  std::size_t chunk_elems() const {
    return lines_.size() *
           static_cast<std::size_t>(col_width_[static_cast<std::size_t>(mycol_)]);
  }
  /// Size of the whole-line buffer (nlon doubles per owned line).
  std::size_t line_elems() const {
    return owned_.size() * static_cast<std::size_t>(nlon_);
  }

  /// Forward transpose: `my_chunks` holds my ni-wide chunk of every line in
  /// lines() order; fills `full` (size line_elems()) with whole lines for
  /// the lines this node owns. Allocation-free in steady state: every
  /// outgoing chunk is packed straight into its pooled wire buffer and
  /// every incoming slice is scattered straight from the payload into
  /// `full`. Collective over the row.
  void to_lines_into(const comm::Mesh2D& mesh,
                     std::span<const double> my_chunks,
                     std::span<double> full) const;

  /// Inverse transpose: takes the filtered whole lines (owned_lines()
  /// order) and fills `chunks` (size chunk_elems()) with my chunks of every
  /// line in lines() order. Allocation-free like to_lines_into.
  void to_chunks_into(const comm::Mesh2D& mesh,
                      std::span<const double> full_lines,
                      std::span<double> chunks) const;

  /// Vector-returning convenience wrappers over the _into forms.
  std::vector<double> to_lines(const comm::Mesh2D& mesh,
                               std::span<const double> my_chunks) const;
  std::vector<double> to_chunks(const comm::Mesh2D& mesh,
                                std::span<const double> full_lines) const;

 private:
  int owner_col(std::size_t q) const {
    return static_cast<int>(q % static_cast<std::size_t>(ncols_));
  }
  /// Lines destined for column c: q = c, c+ncols, c+2*ncols, ... — the
  /// round-robin ownership makes per-destination line lists pure
  /// arithmetic, so the pack loops need no permutation tables.
  std::size_t lines_to_col(int c) const {
    if (lines_.empty()) return 0;
    const auto n = lines_.size();
    const auto uc = static_cast<std::size_t>(c);
    return uc < n ? (n - uc - 1) / static_cast<std::size_t>(ncols_) + 1 : 0;
  }

  std::vector<LineKey> lines_;
  std::vector<LineKey> owned_keys_;
  std::vector<std::size_t> owned_;  ///< indices into lines_ that I own
  std::vector<int> col_width_;      ///< ni of each mesh column
  std::vector<int> col_start_;      ///< i0 of each mesh column
  int ncols_ = 0;
  int mycol_ = 0;
  int nlon_ = 0;
};

/// The full Figure-2 + Figure-3 plan used by FftBalancedFilter.
class BalancedFilterPlan {
 public:
  BalancedFilterPlan() = default;
  BalancedFilterPlan(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                     const FilterBank& bank);

  /// Lines whose latitude row lies in my band, in redistribution order
  /// (callers must extract chunks in exactly this order).
  const std::vector<LineKey>& my_lines() const { return my_lines_; }

  /// Lines this node's row holds after the latitudinal redistribution.
  const std::vector<LineKey>& held_lines() const { return held_lines_; }

  /// Stage-B transpose over held_lines().
  const RowTransposePlan& row_plan() const { return row_plan_; }

  /// Chunk-buffer sizes for the two layouts.
  std::size_t my_chunk_elems() const {
    return my_lines_.size() * static_cast<std::size_t>(ni_);
  }
  std::size_t held_chunk_elems() const {
    return held_lines_.size() * static_cast<std::size_t>(ni_);
  }

  /// Stage A: redistribute chunks along the mesh column. Input in
  /// my_lines() order, output (size held_chunk_elems()) in held_lines()
  /// order. Allocation-free in steady state (pooled wire buffers, no
  /// staging vectors). Collective over the mesh column.
  void redistribute_into(const comm::Mesh2D& mesh,
                         std::span<const double> my_chunks,
                         std::span<double> held) const;

  /// Inverse of redistribute_into(); output size my_chunk_elems().
  void restore_into(const comm::Mesh2D& mesh,
                    std::span<const double> held_chunks,
                    std::span<double> mine) const;

  /// Vector-returning convenience wrappers over the _into forms.
  std::vector<double> redistribute(const comm::Mesh2D& mesh,
                                   std::span<const double> my_chunks) const;
  std::vector<double> restore(const comm::Mesh2D& mesh,
                              std::span<const double> held_chunks) const;

  /// Max over rows of (lines held) / ideal — 1.0 means perfectly balanced.
  double post_balance_ratio() const { return post_balance_ratio_; }

 private:
  std::vector<LineKey> my_lines_;
  std::vector<LineKey> held_lines_;
  std::vector<int> send_lines_;  ///< per dest row, lines I send
  std::vector<int> recv_lines_;  ///< per src row, lines I receive
  std::vector<std::size_t> send_offsets_;  ///< prefix elems of send_lines_*ni
  std::vector<std::size_t> recv_offsets_;  ///< prefix elems of recv_lines_*ni
  RowTransposePlan row_plan_;
  int ni_ = 0;  ///< my chunk width (identical within a mesh column)
  double post_balance_ratio_ = 1.0;
};

}  // namespace agcm::filter
