// Data-movement plans for the FFT filter variants.
//
// RowTransposePlan implements the Figure-3 movement: within one processor
// row, chunks of the filtered lines are exchanged so that each node ends up
// holding *whole* longitude circles (ready for a local FFT); the inverse
// movement restores the original chunk layout.
//
// BalancedFilterPlan adds the Figure-2 movement in front: data rows are
// first redistributed in the latitudinal direction so every processor row
// holds approximately sum(R_j)/M lines (the paper's equation (3) applied
// over mesh rows), regardless of how many rows each hemisphere filters.
// Both plans are pure bookkeeping computed identically on every node from
// global metadata — "the set-up involves substantial bookkeeping" (3.3).
#pragma once

#include <vector>

#include "comm/mesh2d.hpp"
#include "filter/bank.hpp"
#include "grid/decomp.hpp"

namespace agcm::filter {

/// Chunk layout convention used throughout: a "chunk buffer" stores one
/// fixed-width chunk per line, consecutively, in the plan's line order.
class RowTransposePlan {
 public:
  RowTransposePlan() = default;

  /// `lines` are the circles this processor row must filter; every node of
  /// the row passes the identical list (asserted via its length).
  RowTransposePlan(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                   std::vector<LineKey> lines);

  const std::vector<LineKey>& lines() const { return lines_; }

  /// Keys of the whole lines this node assembles and filters, in the order
  /// they appear in the buffer returned by to_lines().
  const std::vector<LineKey>& owned_lines() const { return owned_keys_; }

  /// Forward transpose: `my_chunks` holds my ni-wide chunk of every line in
  /// lines() order; returns whole lines (nlon doubles each) for the lines
  /// this node owns. Collective over the row.
  std::vector<double> to_lines(const comm::Mesh2D& mesh,
                               std::span<const double> my_chunks) const;

  /// Inverse transpose: takes the filtered whole lines (owned_lines()
  /// order) and returns my chunks of every line in lines() order.
  std::vector<double> to_chunks(const comm::Mesh2D& mesh,
                                std::span<const double> full_lines) const;

 private:
  int owner_col(std::size_t q) const {
    return static_cast<int>(q % static_cast<std::size_t>(ncols_));
  }

  std::vector<LineKey> lines_;
  std::vector<LineKey> owned_keys_;
  std::vector<std::size_t> owned_;  ///< indices into lines_ that I own
  std::vector<int> col_width_;      ///< ni of each mesh column
  std::vector<int> col_start_;      ///< i0 of each mesh column
  int ncols_ = 0;
  int mycol_ = 0;
  int nlon_ = 0;
};

/// The full Figure-2 + Figure-3 plan used by FftBalancedFilter.
class BalancedFilterPlan {
 public:
  BalancedFilterPlan() = default;
  BalancedFilterPlan(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                     const FilterBank& bank);

  /// Lines whose latitude row lies in my band, in redistribution order
  /// (callers must extract chunks in exactly this order).
  const std::vector<LineKey>& my_lines() const { return my_lines_; }

  /// Lines this node's row holds after the latitudinal redistribution.
  const std::vector<LineKey>& held_lines() const { return held_lines_; }

  /// Stage-B transpose over held_lines().
  const RowTransposePlan& row_plan() const { return row_plan_; }

  /// Stage A: redistribute chunks along the mesh column. Input in
  /// my_lines() order, output in held_lines() order. Collective over the
  /// mesh column.
  std::vector<double> redistribute(const comm::Mesh2D& mesh,
                                   std::span<const double> my_chunks) const;

  /// Inverse of redistribute().
  std::vector<double> restore(const comm::Mesh2D& mesh,
                              std::span<const double> held_chunks) const;

  /// Max over rows of (lines held) / ideal — 1.0 means perfectly balanced.
  double post_balance_ratio() const { return post_balance_ratio_; }

 private:
  std::vector<LineKey> my_lines_;
  std::vector<LineKey> held_lines_;
  std::vector<int> send_lines_;  ///< per dest row, lines I send
  std::vector<int> recv_lines_;  ///< per src row, lines I receive
  RowTransposePlan row_plan_;
  int ni_ = 0;  ///< my chunk width (identical within a mesh column)
  double post_balance_ratio_ = 1.0;
};

}  // namespace agcm::filter
