#include <algorithm>
#include <vector>

#include "filter/serial.hpp"
#include "filter/variants.hpp"
#include "util/error.hpp"

namespace agcm::filter {

namespace {
constexpr int kRingTag = 310;
}

void ConvolutionRingFilter::apply_impl(
    std::span<grid::Array3D<double>* const> fields) {
  validate_fields(fields);
  // The original AGCM filtered "one variable at a time" (Section 3.3); the
  // serialisation is part of what the paper's new module removed, so we
  // reproduce it faithfully here.
  for (int v = 0; v < bank().nvars(); ++v) {
    filter_variable(*fields[static_cast<std::size_t>(v)], v);
  }
}

void ConvolutionRingFilter::filter_variable(grid::Array3D<double>& field,
                                            int v) {
  const auto rows = local_rows(v);
  const auto& row_comm = mesh().row_comm();
  auto& clock = row_comm.context().clock();
  const int ncols = mesh().cols();
  const int nlev = bank().grid().nlev();
  const int nlon = decomp().nlon();
  const auto nlines = rows.size() * static_cast<std::size_t>(nlev);
  if (nlines == 0) return;  // this processor row has no filtering work

  // Line order for this variable: (j asc, k asc). The var index is 0
  // because extract/write below see a single-field span.
  std::vector<LineKey> lines;
  lines.reserve(nlines);
  for (int j : rows)
    for (int k = 0; k < nlev; ++k) lines.push_back({0, j, k});

  // Accumulators for my output chunks.
  const auto ni = static_cast<std::size_t>(box().ni);
  std::vector<double> out(nlines * ni, 0.0);

  // Rotating buffer starts as my own chunks; after r hops westward it holds
  // the chunks originally owned by column (mycol + r) mod ncols.
  grid::Array3D<double>* field_ptr = &field;
  std::vector<double> held =
      extract_chunks(std::span<grid::Array3D<double>* const>(&field_ptr, 1),
                     box(), lines);

  for (int r = 0; r < ncols; ++r) {
    const int src_col = (mesh().coord().col + r) % ncols;
    const int src_i0 = decomp().lon_partition().start(src_col);
    const int src_ni = decomp().lon_partition().size(src_col);
    AGCM_ASSERT(held.size() == nlines * static_cast<std::size_t>(src_ni));

    // Accumulate this chunk's contribution to my outputs:
    //   out[i] += sum_{g in held range} kernel[(i - g) mod nlon] * held[g].
    for (std::size_t q = 0; q < nlines; ++q) {
      const LineKey& line = lines[q];
      const auto kernel = bank().kernel(v, line.j);
      const double* src = held.data() + q * static_cast<std::size_t>(src_ni);
      double* dst = out.data() + q * ni;
      for (std::size_t c = 0; c < ni; ++c) {
        const int i = box().i0 + static_cast<int>(c);
        double acc = 0.0;
        for (int g = 0; g < src_ni; ++g) {
          int lag = i - (src_i0 + g);
          lag %= nlon;
          if (lag < 0) lag += nlon;
          acc += kernel[static_cast<std::size_t>(lag)] * src[g];
        }
        dst[c] += acc;
      }
    }
    clock.compute(convolution_chunk_flops(src_ni, static_cast<int>(ni)) *
                      static_cast<double>(nlines),
                  clock.profile().loop_efficiency(static_cast<double>(src_ni)));

    // Rotate: pass the held buffer one hop westward so chunks circulate
    // east-to-west around the ring.
    if (r + 1 < ncols) {
      row_comm.send<double>((row_comm.rank() - 1 + ncols) % ncols, kRingTag,
                            held);
      const int next_src = (mesh().coord().col + r + 1) % ncols;
      held.assign(nlines * static_cast<std::size_t>(
                               decomp().lon_partition().size(next_src)),
                  0.0);
      row_comm.recv<double>((row_comm.rank() + 1) % ncols, kRingTag, held);
    }
  }

  write_chunks(std::span<grid::Array3D<double>* const>(&field_ptr, 1), box(),
               lines, out);
}

}  // namespace agcm::filter
