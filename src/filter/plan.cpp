#include "filter/plan.hpp"

#include <algorithm>
#include <cstring>

#include "comm/packed.hpp"
#include "util/error.hpp"
#include "util/exec_local.hpp"

namespace agcm::filter {

namespace {

/// Growth-only scratch for the per-destination message-size vectors handed
/// to alltoallv_packed. Per *rank*, not per thread: the exchange blocks in
/// recv, so under the fiber backend another rank's fiber can run on this
/// worker thread mid-call — a thread_local here would let it clobber the
/// sizes while the parked exchange still reads them.
struct SizesScratch {
  std::vector<std::size_t> send;
  std::vector<std::size_t> recv;
};

SizesScratch& sizes_scratch() {
  if (util::ExecSlot* slot = util::ExecSlot::current())
    return slot->get<SizesScratch>();
  thread_local SizesScratch scratch;  // off-machine callers (tests/tools)
  return scratch;
}

}  // namespace

RowTransposePlan::RowTransposePlan(const comm::Mesh2D& mesh,
                                   const grid::Decomp2D& decomp,
                                   std::vector<LineKey> lines)
    : lines_(std::move(lines)),
      ncols_(mesh.cols()),
      mycol_(mesh.coord().col),
      nlon_(decomp.nlon()) {
  col_width_.resize(static_cast<std::size_t>(ncols_));
  col_start_.resize(static_cast<std::size_t>(ncols_));
  for (int c = 0; c < ncols_; ++c) {
    col_width_[static_cast<std::size_t>(c)] = decomp.lon_partition().size(c);
    col_start_[static_cast<std::size_t>(c)] = decomp.lon_partition().start(c);
  }
  for (std::size_t q = 0; q < lines_.size(); ++q) {
    if (owner_col(q) == mycol_) {
      owned_.push_back(q);
      owned_keys_.push_back(lines_[q]);
    }
  }
}

void RowTransposePlan::to_lines_into(const comm::Mesh2D& mesh,
                                     std::span<const double> my_chunks,
                                     std::span<double> full) const {
  const auto& row = mesh.row_comm();
  auto& clock = row.context().clock();
  const auto ni =
      static_cast<std::size_t>(col_width_[static_cast<std::size_t>(mycol_)]);
  AGCM_ASSERT(my_chunks.size() == lines_.size() * ni);
  AGCM_ASSERT(full.size() == line_elems());

  // Per-column message sizes (bytes). Round-robin ownership makes the
  // per-destination line list pure arithmetic (q = c, c+ncols, ...), so no
  // permutation tables and no staging buffer: each destination's chunks are
  // gathered straight into its pooled wire buffer. The count scratch is
  // rank-local growth-only, so the steady-state path never allocates.
  auto& [send_tl, recv_tl] = sizes_scratch();
  send_tl.resize(static_cast<std::size_t>(ncols_));
  recv_tl.resize(static_cast<std::size_t>(ncols_));
  std::size_t send_total = 0;
  for (int c = 0; c < ncols_; ++c) {
    const auto uc = static_cast<std::size_t>(c);
    send_tl[uc] = lines_to_col(c) * ni * sizeof(double);
    recv_tl[uc] = owned_.size() *
                  static_cast<std::size_t>(col_width_[uc]) * sizeof(double);
    send_total += send_tl[uc];
  }
  clock.memory_traffic(static_cast<double>(send_total));

  row.alltoallv_packed(
      send_tl, recv_tl,
      [&](int dst, comm::PackedWriter& w) {
        for (std::size_t q = static_cast<std::size_t>(dst);
             q < lines_.size(); q += static_cast<std::size_t>(ncols_)) {
          w.write<double>(my_chunks.subspan(q * ni, ni));
        }
      },
      [&](int src, comm::PackedReader& r) {
        const auto usrc = static_cast<std::size_t>(src);
        const auto w = static_cast<std::size_t>(col_width_[usrc]);
        const auto start = static_cast<std::size_t>(col_start_[usrc]);
        for (std::size_t p = 0; p < owned_.size(); ++p) {
          const auto slice = r.view<double>(w);
          std::memcpy(full.data() + p * static_cast<std::size_t>(nlon_) + start,
                      slice.data(), slice.size_bytes());
        }
      });
  clock.memory_traffic(static_cast<double>(full.size()) * sizeof(double));
}

void RowTransposePlan::to_chunks_into(const comm::Mesh2D& mesh,
                                      std::span<const double> full_lines,
                                      std::span<double> chunks) const {
  const auto& row = mesh.row_comm();
  auto& clock = row.context().clock();
  const auto ni =
      static_cast<std::size_t>(col_width_[static_cast<std::size_t>(mycol_)]);
  AGCM_ASSERT(full_lines.size() == line_elems());
  AGCM_ASSERT(chunks.size() == lines_.size() * ni);

  auto& [send_tl, recv_tl] = sizes_scratch();
  send_tl.resize(static_cast<std::size_t>(ncols_));
  recv_tl.resize(static_cast<std::size_t>(ncols_));
  std::size_t send_total = 0;
  for (int c = 0; c < ncols_; ++c) {
    const auto uc = static_cast<std::size_t>(c);
    send_tl[uc] = owned_.size() *
                  static_cast<std::size_t>(col_width_[uc]) * sizeof(double);
    recv_tl[uc] = lines_to_col(c) * ni * sizeof(double);
    send_total += send_tl[uc];
  }
  clock.memory_traffic(static_cast<double>(send_total));

  row.alltoallv_packed(
      send_tl, recv_tl,
      [&](int dst, comm::PackedWriter& w) {
        // Destination column gets its slice of every owned line.
        const auto udst = static_cast<std::size_t>(dst);
        const auto width = static_cast<std::size_t>(col_width_[udst]);
        const auto start = static_cast<std::size_t>(col_start_[udst]);
        for (std::size_t p = 0; p < owned_.size(); ++p) {
          w.write<double>(full_lines.subspan(
              p * static_cast<std::size_t>(nlon_) + start, width));
        }
      },
      [&](int src, comm::PackedReader& r) {
        // From owner column `src`: my chunks of its lines, in global line
        // order — q = src, src+ncols, ... (arithmetic, no tables).
        for (std::size_t q = static_cast<std::size_t>(src);
             q < lines_.size(); q += static_cast<std::size_t>(ncols_)) {
          const auto slice = r.view<double>(ni);
          std::memcpy(chunks.data() + q * ni, slice.data(),
                      slice.size_bytes());
        }
      });
  clock.memory_traffic(static_cast<double>(chunks.size()) * sizeof(double));
}

std::vector<double> RowTransposePlan::to_lines(
    const comm::Mesh2D& mesh, std::span<const double> my_chunks) const {
  std::vector<double> full(line_elems());
  to_lines_into(mesh, my_chunks, full);
  return full;
}

std::vector<double> RowTransposePlan::to_chunks(
    const comm::Mesh2D& mesh, std::span<const double> full_lines) const {
  std::vector<double> chunks(chunk_elems());
  to_chunks_into(mesh, full_lines, chunks);
  return chunks;
}

BalancedFilterPlan::BalancedFilterPlan(const comm::Mesh2D& mesh,
                                       const grid::Decomp2D& decomp,
                                       const FilterBank& bank) {
  const int nrows = mesh.rows();
  const int myrow = mesh.coord().row;
  ni_ = decomp.box(mesh.coord()).ni;

  // Global redistribution order: all filtered lines sorted by source row,
  // ties broken by the bank's canonical (var, j, k) order. Sorting by
  // source row makes each row's lines a contiguous block, so the monotone
  // block assignment below preserves latitudinal locality (Figure 2: polar
  // rows spill into their equatorward neighbours first).
  struct Tagged {
    LineKey key;
    int src_row;
    std::size_t bank_pos;
  };
  std::vector<Tagged> global;
  global.reserve(bank.lines().size());
  for (std::size_t pos = 0; pos < bank.lines().size(); ++pos) {
    const LineKey& line = bank.lines()[pos];
    global.push_back({line, decomp.lat_partition().owner(line.j), pos});
  }
  std::stable_sort(global.begin(), global.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.src_row != b.src_row ? a.src_row < b.src_row
                                                   : a.bank_pos < b.bank_pos;
                   });

  const std::size_t total = global.size();
  auto dest_row = [&](std::size_t q) {
    return static_cast<int>(q * static_cast<std::size_t>(nrows) / total);
  };

  send_lines_.assign(static_cast<std::size_t>(nrows), 0);
  recv_lines_.assign(static_cast<std::size_t>(nrows), 0);
  std::vector<int> held_per_row(static_cast<std::size_t>(nrows), 0);
  for (std::size_t q = 0; q < total; ++q) {
    const int src = global[q].src_row;
    const int dst = dest_row(q);
    ++held_per_row[static_cast<std::size_t>(dst)];
    if (src == myrow) {
      my_lines_.push_back(global[q].key);
      ++send_lines_[static_cast<std::size_t>(dst)];
    }
    if (dst == myrow) {
      held_lines_.push_back(global[q].key);
      ++recv_lines_[static_cast<std::size_t>(src)];
    }
  }
  const double ideal = static_cast<double>(total) / nrows;
  post_balance_ratio_ =
      ideal > 0.0
          ? *std::max_element(held_per_row.begin(), held_per_row.end()) / ideal
          : 1.0;

  // Cached prefix offsets (elements) into the two chunk layouts: my_lines_
  // is grouped by destination row and held_lines_ by source row, so each
  // peer's block is a contiguous subspan — the pack/unpack closures below
  // are single memcpys.
  send_offsets_.assign(static_cast<std::size_t>(nrows) + 1, 0);
  recv_offsets_.assign(static_cast<std::size_t>(nrows) + 1, 0);
  for (int r = 0; r < nrows; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    send_offsets_[ur + 1] =
        send_offsets_[ur] +
        static_cast<std::size_t>(send_lines_[ur]) * static_cast<std::size_t>(ni_);
    recv_offsets_[ur + 1] =
        recv_offsets_[ur] +
        static_cast<std::size_t>(recv_lines_[ur]) * static_cast<std::size_t>(ni_);
  }

  row_plan_ = RowTransposePlan(mesh, decomp, held_lines_);
}

void BalancedFilterPlan::redistribute_into(const comm::Mesh2D& mesh,
                                           std::span<const double> my_chunks,
                                           std::span<double> held) const {
  const auto& col = mesh.col_comm();
  AGCM_ASSERT(my_chunks.size() == my_chunk_elems());
  AGCM_ASSERT(held.size() == held_chunk_elems());
  const auto nrows = send_lines_.size();
  auto& [send_tl, recv_tl] = sizes_scratch();
  send_tl.resize(nrows);
  recv_tl.resize(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    send_tl[r] = (send_offsets_[r + 1] - send_offsets_[r]) * sizeof(double);
    recv_tl[r] = (recv_offsets_[r + 1] - recv_offsets_[r]) * sizeof(double);
  }
  // my_lines_ is ordered by global q, and dest rows are monotone in q, so
  // the chunk buffer is already grouped by destination: no permutation.
  col.alltoallv_packed(
      send_tl, recv_tl,
      [&](int dst, comm::PackedWriter& w) {
        const auto ud = static_cast<std::size_t>(dst);
        w.write<double>(my_chunks.subspan(
            send_offsets_[ud], send_offsets_[ud + 1] - send_offsets_[ud]));
      },
      [&](int src, comm::PackedReader& r) {
        const auto us = static_cast<std::size_t>(src);
        const auto n = recv_offsets_[us + 1] - recv_offsets_[us];
        r.read<double>(held.subspan(recv_offsets_[us], n));
      });
}

void BalancedFilterPlan::restore_into(const comm::Mesh2D& mesh,
                                      std::span<const double> held_chunks,
                                      std::span<double> mine) const {
  const auto& col = mesh.col_comm();
  AGCM_ASSERT(held_chunks.size() == held_chunk_elems());
  AGCM_ASSERT(mine.size() == my_chunk_elems());
  const auto nrows = send_lines_.size();
  auto& [send_tl, recv_tl] = sizes_scratch();
  send_tl.resize(nrows);
  recv_tl.resize(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    send_tl[r] = (recv_offsets_[r + 1] - recv_offsets_[r]) * sizeof(double);
    recv_tl[r] = (send_offsets_[r + 1] - send_offsets_[r]) * sizeof(double);
  }
  col.alltoallv_packed(
      send_tl, recv_tl,
      [&](int dst, comm::PackedWriter& w) {
        const auto ud = static_cast<std::size_t>(dst);
        w.write<double>(held_chunks.subspan(
            recv_offsets_[ud], recv_offsets_[ud + 1] - recv_offsets_[ud]));
      },
      [&](int src, comm::PackedReader& r) {
        const auto us = static_cast<std::size_t>(src);
        const auto n = send_offsets_[us + 1] - send_offsets_[us];
        r.read<double>(mine.subspan(send_offsets_[us], n));
      });
}

std::vector<double> BalancedFilterPlan::redistribute(
    const comm::Mesh2D& mesh, std::span<const double> my_chunks) const {
  std::vector<double> held(held_chunk_elems());
  redistribute_into(mesh, my_chunks, held);
  return held;
}

std::vector<double> BalancedFilterPlan::restore(
    const comm::Mesh2D& mesh, std::span<const double> held_chunks) const {
  std::vector<double> mine(my_chunk_elems());
  restore_into(mesh, held_chunks, mine);
  return mine;
}

}  // namespace agcm::filter
