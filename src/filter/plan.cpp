#include "filter/plan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace agcm::filter {

RowTransposePlan::RowTransposePlan(const comm::Mesh2D& mesh,
                                   const grid::Decomp2D& decomp,
                                   std::vector<LineKey> lines)
    : lines_(std::move(lines)),
      ncols_(mesh.cols()),
      mycol_(mesh.coord().col),
      nlon_(decomp.nlon()) {
  col_width_.resize(static_cast<std::size_t>(ncols_));
  col_start_.resize(static_cast<std::size_t>(ncols_));
  for (int c = 0; c < ncols_; ++c) {
    col_width_[static_cast<std::size_t>(c)] = decomp.lon_partition().size(c);
    col_start_[static_cast<std::size_t>(c)] = decomp.lon_partition().start(c);
  }
  for (std::size_t q = 0; q < lines_.size(); ++q) {
    if (owner_col(q) == mycol_) {
      owned_.push_back(q);
      owned_keys_.push_back(lines_[q]);
    }
  }
}

std::vector<double> RowTransposePlan::to_lines(
    const comm::Mesh2D& mesh, std::span<const double> my_chunks) const {
  const auto& row = mesh.row_comm();
  auto& clock = row.context().clock();
  const int ni = col_width_[static_cast<std::size_t>(mycol_)];
  AGCM_ASSERT(my_chunks.size() == lines_.size() * static_cast<std::size_t>(ni));

  // Send buffer grouped by destination column; round-robin ownership means
  // dest order interleaves, so we must permute.
  std::vector<int> send_counts(static_cast<std::size_t>(ncols_), 0);
  std::vector<int> recv_counts(static_cast<std::size_t>(ncols_), 0);
  for (std::size_t q = 0; q < lines_.size(); ++q)
    send_counts[static_cast<std::size_t>(owner_col(q))] += ni;
  for (int c = 0; c < ncols_; ++c)
    recv_counts[static_cast<std::size_t>(c)] =
        static_cast<int>(owned_.size()) * col_width_[static_cast<std::size_t>(c)];

  std::vector<double> send_buf;
  send_buf.reserve(my_chunks.size());
  for (int d = 0; d < ncols_; ++d) {
    for (std::size_t q = 0; q < lines_.size(); ++q) {
      if (owner_col(q) != d) continue;
      const auto off = q * static_cast<std::size_t>(ni);
      send_buf.insert(send_buf.end(), my_chunks.begin() + static_cast<std::ptrdiff_t>(off),
                      my_chunks.begin() + static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(ni)));
    }
  }
  clock.memory_traffic(static_cast<double>(send_buf.size()) * sizeof(double));

  const std::vector<double> recv_buf =
      row.alltoallv<double>(send_buf, send_counts, recv_counts);

  // Assemble whole lines: from source column c, my owned lines arrive in
  // owned-order, each col_width_[c] wide, at global offset col_start_[c].
  std::vector<double> full(owned_.size() * static_cast<std::size_t>(nlon_));
  std::size_t src_off = 0;
  for (int c = 0; c < ncols_; ++c) {
    const auto w = static_cast<std::size_t>(col_width_[static_cast<std::size_t>(c)]);
    const auto start = static_cast<std::size_t>(col_start_[static_cast<std::size_t>(c)]);
    for (std::size_t p = 0; p < owned_.size(); ++p) {
      std::copy(recv_buf.begin() + static_cast<std::ptrdiff_t>(src_off),
                recv_buf.begin() + static_cast<std::ptrdiff_t>(src_off + w),
                full.begin() + static_cast<std::ptrdiff_t>(
                                   p * static_cast<std::size_t>(nlon_) + start));
      src_off += w;
    }
  }
  clock.memory_traffic(static_cast<double>(full.size()) * sizeof(double));
  AGCM_ASSERT(src_off == recv_buf.size());
  return full;
}

std::vector<double> RowTransposePlan::to_chunks(
    const comm::Mesh2D& mesh, std::span<const double> full_lines) const {
  const auto& row = mesh.row_comm();
  auto& clock = row.context().clock();
  const int ni = col_width_[static_cast<std::size_t>(mycol_)];
  AGCM_ASSERT(full_lines.size() ==
              owned_.size() * static_cast<std::size_t>(nlon_));

  // Send each destination column its slice of every owned line.
  std::vector<int> send_counts(static_cast<std::size_t>(ncols_), 0);
  std::vector<int> recv_counts(static_cast<std::size_t>(ncols_), 0);
  for (int c = 0; c < ncols_; ++c)
    send_counts[static_cast<std::size_t>(c)] =
        static_cast<int>(owned_.size()) * col_width_[static_cast<std::size_t>(c)];
  for (std::size_t q = 0; q < lines_.size(); ++q)
    recv_counts[static_cast<std::size_t>(owner_col(q))] += ni;

  std::vector<double> send_buf;
  send_buf.reserve(lines_.size() * static_cast<std::size_t>(ni));
  for (int c = 0; c < ncols_; ++c) {
    const auto w = static_cast<std::size_t>(col_width_[static_cast<std::size_t>(c)]);
    const auto start = static_cast<std::size_t>(col_start_[static_cast<std::size_t>(c)]);
    for (std::size_t p = 0; p < owned_.size(); ++p) {
      const auto off = p * static_cast<std::size_t>(nlon_) + start;
      send_buf.insert(send_buf.end(),
                      full_lines.begin() + static_cast<std::ptrdiff_t>(off),
                      full_lines.begin() + static_cast<std::ptrdiff_t>(off + w));
    }
  }
  clock.memory_traffic(static_cast<double>(send_buf.size()) * sizeof(double));

  const std::vector<double> recv_buf =
      row.alltoallv<double>(send_buf, send_counts, recv_counts);

  // recv_buf is grouped by owner column; within a group, lines appear in
  // global line order. Permute back to lines_ order.
  std::vector<std::size_t> group_pos(static_cast<std::size_t>(ncols_), 0);
  std::vector<std::size_t> group_off(static_cast<std::size_t>(ncols_), 0);
  {
    std::size_t acc = 0;
    for (int c = 0; c < ncols_; ++c) {
      group_off[static_cast<std::size_t>(c)] = acc;
      acc += static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(c)]);
    }
  }
  std::vector<double> chunks(lines_.size() * static_cast<std::size_t>(ni));
  for (std::size_t q = 0; q < lines_.size(); ++q) {
    const auto c = static_cast<std::size_t>(owner_col(q));
    const std::size_t src = group_off[c] + group_pos[c];
    std::copy(recv_buf.begin() + static_cast<std::ptrdiff_t>(src),
              recv_buf.begin() + static_cast<std::ptrdiff_t>(src + static_cast<std::size_t>(ni)),
              chunks.begin() + static_cast<std::ptrdiff_t>(q * static_cast<std::size_t>(ni)));
    group_pos[c] += static_cast<std::size_t>(ni);
  }
  clock.memory_traffic(static_cast<double>(chunks.size()) * sizeof(double));
  return chunks;
}

BalancedFilterPlan::BalancedFilterPlan(const comm::Mesh2D& mesh,
                                       const grid::Decomp2D& decomp,
                                       const FilterBank& bank) {
  const int nrows = mesh.rows();
  const int myrow = mesh.coord().row;
  ni_ = decomp.box(mesh.coord()).ni;

  // Global redistribution order: all filtered lines sorted by source row,
  // ties broken by the bank's canonical (var, j, k) order. Sorting by
  // source row makes each row's lines a contiguous block, so the monotone
  // block assignment below preserves latitudinal locality (Figure 2: polar
  // rows spill into their equatorward neighbours first).
  struct Tagged {
    LineKey key;
    int src_row;
    std::size_t bank_pos;
  };
  std::vector<Tagged> global;
  global.reserve(bank.lines().size());
  for (std::size_t pos = 0; pos < bank.lines().size(); ++pos) {
    const LineKey& line = bank.lines()[pos];
    global.push_back({line, decomp.lat_partition().owner(line.j), pos});
  }
  std::stable_sort(global.begin(), global.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.src_row != b.src_row ? a.src_row < b.src_row
                                                   : a.bank_pos < b.bank_pos;
                   });

  const std::size_t total = global.size();
  auto dest_row = [&](std::size_t q) {
    return static_cast<int>(q * static_cast<std::size_t>(nrows) / total);
  };

  send_lines_.assign(static_cast<std::size_t>(nrows), 0);
  recv_lines_.assign(static_cast<std::size_t>(nrows), 0);
  std::vector<int> held_per_row(static_cast<std::size_t>(nrows), 0);
  for (std::size_t q = 0; q < total; ++q) {
    const int src = global[q].src_row;
    const int dst = dest_row(q);
    ++held_per_row[static_cast<std::size_t>(dst)];
    if (src == myrow) {
      my_lines_.push_back(global[q].key);
      ++send_lines_[static_cast<std::size_t>(dst)];
    }
    if (dst == myrow) {
      held_lines_.push_back(global[q].key);
      ++recv_lines_[static_cast<std::size_t>(src)];
    }
  }
  const double ideal = static_cast<double>(total) / nrows;
  post_balance_ratio_ =
      ideal > 0.0
          ? *std::max_element(held_per_row.begin(), held_per_row.end()) / ideal
          : 1.0;

  row_plan_ = RowTransposePlan(mesh, decomp, held_lines_);
}

std::vector<double> BalancedFilterPlan::redistribute(
    const comm::Mesh2D& mesh, std::span<const double> my_chunks) const {
  const auto& col = mesh.col_comm();
  AGCM_ASSERT(my_chunks.size() ==
              my_lines_.size() * static_cast<std::size_t>(ni_));
  // my_lines_ is ordered by global q, and dest rows are monotone in q, so
  // the chunk buffer is already grouped by destination: no permutation.
  std::vector<int> send_counts, recv_counts;
  send_counts.reserve(send_lines_.size());
  recv_counts.reserve(recv_lines_.size());
  for (int n : send_lines_) send_counts.push_back(n * ni_);
  for (int n : recv_lines_) recv_counts.push_back(n * ni_);
  return col.alltoallv<double>(my_chunks, send_counts, recv_counts);
}

std::vector<double> BalancedFilterPlan::restore(
    const comm::Mesh2D& mesh, std::span<const double> held_chunks) const {
  const auto& col = mesh.col_comm();
  AGCM_ASSERT(held_chunks.size() ==
              held_lines_.size() * static_cast<std::size_t>(ni_));
  std::vector<int> send_counts, recv_counts;
  for (int n : recv_lines_) send_counts.push_back(n * ni_);
  for (int n : send_lines_) recv_counts.push_back(n * ni_);
  return col.alltoallv<double>(held_chunks, send_counts, recv_counts);
}

}  // namespace agcm::filter
