#include "campaign/matrix.hpp"

#include <sstream>

#include "trace/json.hpp"
#include "util/error.hpp"

namespace agcm::campaign {

namespace {

using core::ModelConfig;

/// The same token core/config_load parses (filter::algorithm_name).
std::string filter_algorithm_token(filter::FilterAlgorithm algorithm) {
  return std::string(filter::algorithm_name(algorithm));
}

const char* time_scheme_token(dynamics::TimeScheme scheme) {
  return scheme == dynamics::TimeScheme::kLeapfrog ? "leapfrog"
                                                   : "forward-backward";
}

std::string trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Splits a comma-separated axis value; empty string -> empty list (axis
/// not swept). Throws on an empty element ("a,,b").
std::vector<std::string> split_list(const std::string& text,
                                    const std::string& key) {
  std::vector<std::string> out;
  if (trimmed(text).empty()) return out;
  std::stringstream stream(text);
  std::string element;
  while (std::getline(stream, element, ',')) {
    element = trimmed(element);
    if (element.empty())
      throw ConfigError("empty element in " + key + " list");
    out.push_back(element);
  }
  return out;
}

struct Resolution {
  int nlon = 0;
  int nlat = 0;
  int nlev = 0;
};

Resolution parse_resolution(const std::string& token) {
  Resolution r;
  char x1 = 0, x2 = 0;
  std::istringstream stream(token);
  if (!(stream >> r.nlon >> x1 >> r.nlat >> x2 >> r.nlev) || x1 != 'x' ||
      x2 != 'x' || r.nlon < 4 || r.nlat < 2 || r.nlev < 1 ||
      !(stream >> std::ws).eof()) {
    throw ConfigError("bad resolution '" + token + "' (want NLONxNLATxNLEV)");
  }
  return r;
}

std::string resolution_token(const ModelConfig& model) {
  std::ostringstream out;
  out << model.nlon << 'x' << model.nlat << 'x' << model.nlev;
  return out.str();
}

using core::ModelConfig;

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string canonical_config(const core::RunSpec& spec) {
  const ModelConfig& m = spec.model;
  std::ostringstream out;
  const auto num = [](double v) { return trace::JsonValue::number_repr(v); };
  // Sorted keys; numbers in shortest-exact form so equal text means equal
  // values. Host-execution knobs (simnet backend/workers, recv timeout,
  // tracing) are deliberately absent: they cannot affect results.
  out << "dt_sec = " << num(m.dt_sec) << '\n'
      << "filter_algorithm = " << filter_algorithm_token(m.filter_algorithm)
      << '\n'
      << "lb_max_iterations = " << m.lb_options.max_iterations << '\n'
      << "lb_scheme = "
      << lb::scheme_name(m.physics_load_balance ? m.lb_scheme
                                                : lb::Scheme::kNone)
      << '\n'
      << "lb_tolerance = " << num(m.lb_options.tolerance) << '\n'
      << "machine = " << m.machine.name << '\n'
      << "machine_cache_bytes = " << num(m.machine.cache_bytes) << '\n'
      << "machine_flops_per_sec = " << num(m.machine.flops_per_sec) << '\n'
      << "machine_link_bytes_per_sec = " << num(m.machine.link_bytes_per_sec)
      << '\n'
      << "machine_loop_startup_elems = " << num(m.machine.loop_startup_elems)
      << '\n'
      << "machine_mem_bytes_per_sec = " << num(m.machine.mem_bytes_per_sec)
      << '\n'
      << "machine_msg_latency_sec = " << num(m.machine.msg_latency_sec)
      << '\n'
      << "machine_recv_overhead_sec = " << num(m.machine.recv_overhead_sec)
      << '\n'
      << "machine_send_overhead_sec = " << num(m.machine.send_overhead_sec)
      << '\n'
      << "mesh_cols = " << m.mesh_cols << '\n'
      << "mesh_rows = " << m.mesh_rows << '\n'
      << "nlat = " << m.nlat << '\n'
      << "nlev = " << m.nlev << '\n'
      << "nlon = " << m.nlon << '\n'
      << "optimized_advection = " << (m.optimized_advection ? 1 : 0) << '\n'
      << "physics = " << (m.physics_enabled ? 1 : 0) << '\n'
      << "physics_regime = " << physics::physics_regime_name(m.physics_regime)
      << '\n'
      << "polar_filter = " << (m.use_polar_filter ? 1 : 0) << '\n'
      << "seed = " << m.seed << '\n'
      << "steps = " << spec.steps << '\n'
      << "time_scheme = " << time_scheme_token(m.time_scheme) << '\n'
      << "warmup_steps = " << spec.warmup_steps << '\n';
  return out.str();
}

Cell make_cell(std::string name, const core::RunSpec& spec) {
  Cell cell;
  cell.name = std::move(name);
  cell.spec = spec;
  cell.spec.trace = false;  // the tracer is process-global; never in cells
  cell.spec.trace_json_path.clear();
  cell.spec.trace_csv_path.clear();
  cell.canonical = canonical_config(cell.spec);
  std::ostringstream hash;
  hash << std::hex << std::nouppercase;
  hash.width(16);
  hash.fill('0');
  hash << fnv1a64(cell.canonical);
  cell.config_hash = hash.str();
  return cell;
}

Campaign campaign_from(const io::Config& config) {
  Campaign campaign;
  campaign.name = config.get_string("campaign", "campaign");
  const core::RunSpec base = core::run_spec_from(config);

  // Each axis: the sweep list, or the base value's token when not swept.
  std::vector<std::string> machines = split_list(
      config.get_string("sweep_machines", ""), "sweep_machines");
  if (machines.empty())
    machines.push_back(config.get_string("machine", "t3d"));
  std::vector<std::string> resolutions = split_list(
      config.get_string("sweep_resolutions", ""), "sweep_resolutions");
  if (resolutions.empty()) resolutions.push_back(resolution_token(base.model));
  std::vector<std::string> algorithms =
      split_list(config.get_string("sweep_filter_algorithms", ""),
                 "sweep_filter_algorithms");
  if (algorithms.empty())
    algorithms.push_back(filter_algorithm_token(base.model.filter_algorithm));
  std::vector<std::string> schemes = split_list(
      config.get_string("sweep_lb_schemes", ""), "sweep_lb_schemes");
  if (schemes.empty())
    schemes.push_back(lb::scheme_name(
        base.model.physics_load_balance ? base.model.lb_scheme
                                        : lb::Scheme::kNone));
  std::vector<std::string> regimes = split_list(
      config.get_string("sweep_physics_regimes", ""), "sweep_physics_regimes");
  if (regimes.empty())
    regimes.push_back(physics::physics_regime_name(base.model.physics_regime));

  for (const std::string& machine : machines) {
    for (const std::string& resolution : resolutions) {
      const Resolution res = parse_resolution(resolution);
      for (const std::string& algorithm : algorithms) {
        for (const std::string& scheme : schemes) {
          for (const std::string& regime : regimes) {
            core::RunSpec spec = base;
            spec.model.machine = core::parse_machine_profile(machine);
            spec.model.nlon = res.nlon;
            spec.model.nlat = res.nlat;
            spec.model.nlev = res.nlev;
            spec.model.filter_algorithm =
                core::parse_filter_algorithm(algorithm);
            spec.model.lb_scheme = core::parse_lb_scheme(scheme);
            spec.model.physics_load_balance =
                spec.model.lb_scheme != lb::Scheme::kNone;
            spec.model.physics_regime = core::parse_physics_regime(regime);
            campaign.cells.push_back(make_cell(
                machine + "/" + resolution + "/" + algorithm + "/" + scheme +
                    "/" + regime,
                spec));
          }
        }
      }
    }
  }
  return campaign;
}

Campaign campaign_from_file(const std::string& path) {
  return campaign_from(io::Config::from_file(path));
}

}  // namespace agcm::campaign
