#include "campaign/store.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace agcm::campaign {

namespace {

/// The canonical `key = value` lines as a JSON object (string values, so
/// the record's config block is exactly the hashed text, reshaped).
trace::JsonValue config_object(const std::string& canonical) {
  trace::JsonValue config = trace::JsonValue::object();
  std::istringstream stream(canonical);
  std::string line;
  while (std::getline(stream, line)) {
    const std::size_t eq = line.find(" = ");
    if (eq == std::string::npos) continue;
    config.set(line.substr(0, eq), line.substr(eq + 3));
  }
  return config;
}

}  // namespace

trace::JsonValue store_record(const std::string& campaign_name,
                              const CellResult& result, bool include_wall) {
  const core::RunReport& report = result.report;
  trace::JsonValue record = trace::JsonValue::object();
  record.set("schema", kStoreSchema);
  record.set("campaign", campaign_name);
  record.set("cell", result.cell.name);
  record.set("config_hash", result.cell.config_hash);
  record.set("config", config_object(result.cell.canonical));

  // Virtual-time breakdown: per-step components (max over ranks, as the
  // paper times them) plus the per-simulated-day totals the tables quote.
  // Everything here is virtual — deterministic by construction.
  trace::JsonValue virt = trace::JsonValue::object();
  virt.set("steps", report.steps);
  virt.set("filter_per_step_sec", report.per_step.filter);
  virt.set("halo_per_step_sec", report.per_step.halo);
  virt.set("fd_per_step_sec", report.per_step.fd);
  virt.set("physics_compute_per_step_sec", report.per_step.physics_compute);
  virt.set("physics_balance_per_step_sec", report.per_step.physics_balance);
  virt.set("dynamics_per_day_sec", report.dynamics_per_day());
  virt.set("physics_per_day_sec", report.physics_per_day());
  virt.set("total_per_day_sec", report.total_per_day());
  virt.set("filter_setup_sec", report.filter_setup_sec);
  record.set("virtual", virt);

  // Admission-planner prediction (when present): the per-step component
  // forecast the cell was admitted under, plus the per-day total the
  // budget was charged against. campaign_query.py --drift reads this
  // block against "virtual" to make model rot observable.
  if (result.has_prediction) {
    trace::JsonValue predicted = perfmodel::prediction_json(result.prediction);
    predicted.set("total_per_day_sec",
                  result.prediction.total() * report.steps_per_day);
    record.set("predicted", predicted);
  }

  trace::JsonValue diag = trace::JsonValue::object();
  diag.set("physics_imbalance_before", report.physics_imbalance_before);
  diag.set("physics_imbalance_after", report.physics_imbalance_after);
  diag.set("mass_drift_rel", report.mass_drift_rel);
  diag.set("max_zonal_courant", report.max_zonal_courant);
  diag.set("max_gravity_courant", report.max_gravity_courant);
  diag.set("total_messages", report.total_messages);
  diag.set("total_bytes", report.total_bytes);

  // Per-phase tail percentiles over every (rank, timed step) sample —
  // log-binned histogram estimates, order-independent and therefore
  // byte-stable at any serving concurrency (core/model.hpp).
  trace::JsonValue percentiles = trace::JsonValue::object();
  const auto phase_block = [](const core::PhasePercentiles& p) {
    trace::JsonValue block = trace::JsonValue::object();
    block.set("p50", p.p50);
    block.set("p95", p.p95);
    block.set("p99", p.p99);
    return block;
  };
  percentiles.set("filter", phase_block(report.percentiles.filter));
  percentiles.set("halo", phase_block(report.percentiles.halo));
  percentiles.set("fd", phase_block(report.percentiles.fd));
  percentiles.set("physics_compute",
                  phase_block(report.percentiles.physics_compute));
  percentiles.set("physics_balance",
                  phase_block(report.percentiles.physics_balance));
  diag.set("phase_percentiles", percentiles);
  record.set("diagnostics", diag);

  if (include_wall) record.set("wall_sec", result.wall_sec);
  return record;
}

std::string store_lines(const std::string& campaign_name,
                        const std::vector<CellResult>& results,
                        bool include_wall) {
  std::string out;
  for (const CellResult& result : results) {
    out += store_record(campaign_name, result, include_wall).dump();
    out += '\n';
  }
  return out;
}

void write_store(const std::string& path, const std::string& campaign_name,
                 const std::vector<CellResult>& results, bool include_wall,
                 bool append) {
  std::ofstream out(path, append ? std::ios::out | std::ios::app
                                 : std::ios::out | std::ios::trunc);
  if (!out) throw DataError("cannot open store file '" + path + "'");
  out << store_lines(campaign_name, results, include_wall);
  if (!out) throw DataError("failed writing store file '" + path + "'");
}

}  // namespace agcm::campaign
