// Campaign matrix: a config-driven scenario sweep expanded from a single
// `.cfg` file into the cross product of its axes.
//
// The paper's real product is a performance-exploration method — sweep
// machine profiles, resolutions, filter schemes and load-balance schemes to
// locate crossovers (Tables 1-11). The campaign dialect makes that sweep a
// first-class artefact: one file describes the whole matrix, and every cell
// becomes an independent virtual experiment the runner (runner.hpp) can
// serve concurrently.
//
// Dialect (docs/campaign.md): every ordinary RunSpec key is accepted and
// becomes the base configuration of every cell; the five sweep axes are
// comma-separated lists, each optional (a missing axis keeps the base
// value):
//
//   campaign              = smoke            # campaign name (store records)
//   sweep_machines        = paragon, t3d     # machine profiles
//   sweep_resolutions     = 144x90x9, 72x46x5  # nlon x nlat x nlev
//   sweep_filter_algorithms = fft-load-balanced, convolution-partitioned
//   sweep_lb_schemes      = none, pairwise   # + cyclic, sorted-greedy
//   sweep_physics_regimes = equinox, june-solstice, december-solstice
//
// Expansion order is deterministic: machines outermost, then resolutions,
// filter algorithms, lb schemes, physics regimes innermost — so cell order,
// cell names and the results store are byte-stable for a given file.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config_load.hpp"

namespace agcm::campaign {

/// One experiment of the matrix.
struct Cell {
  /// "machine/NxMxK/filter/lb/regime" — unique within the campaign.
  std::string name;
  /// The full run request (model + steps); tracing is always off in
  /// campaign cells (the tracer is process-global, cells run concurrently).
  core::RunSpec spec;
  /// Canonical `key = value` serialisation of everything that affects the
  /// result (sorted keys, exact number formatting). Two cells with equal
  /// canonical forms are the same experiment.
  std::string canonical;
  /// 16 lowercase hex digits: FNV-1a 64 of `canonical`.
  std::string config_hash;
};

struct Campaign {
  std::string name = "campaign";
  std::vector<Cell> cells;
};

/// FNV-1a 64-bit (the store's config-hash function; stable across
/// platforms and runs).
std::uint64_t fnv1a64(std::string_view text);

/// The canonical serialisation hashed into Cell::config_hash. Includes
/// every ModelConfig field that influences results plus steps/warmup;
/// excludes tracing and host-execution knobs (backend, worker counts),
/// which are virtual-time neutral by construction.
std::string canonical_config(const core::RunSpec& spec);

/// Builds a cell around a fully specified RunSpec (used by the standalone
/// cross-check path as well as the expander).
Cell make_cell(std::string name, const core::RunSpec& spec);

/// Expands the matrix. Throws ConfigError on malformed axis values.
Campaign campaign_from(const io::Config& config);
Campaign campaign_from_file(const std::string& path);

}  // namespace agcm::campaign
