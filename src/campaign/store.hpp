// Campaign results store: append-only JSON-lines, schema `agcm-campaign-v1`.
//
// One line = one completed experiment. Records are written in matrix order
// (not completion order), so a store produced from the same campaign file
// is byte-identical across runs — except the wall-clock fields, which are
// confined to exactly two keys (`wall_sec` on each record, `written_unix`
// never included here) so determinism fences can strip them textually
// (tools/campaign_query.py --strip-wall) and byte-compare the rest.
//
// Record layout (insertion-ordered, so serialisation is deterministic):
//   {"schema":"agcm-campaign-v1","campaign":...,"cell":...,
//    "config_hash":...,"config":{...},            // canonical key/values
//    "virtual":{...per-step component breakdown + per-day totals...},
//    "diagnostics":{...},                         // determinism-relevant
//    "wall_sec":N}                                // host time; stripped by fences
#pragma once

#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "core/model.hpp"
#include "perfmodel/predict.hpp"
#include "trace/json.hpp"

namespace agcm::campaign {

inline constexpr const char* kStoreSchema = "agcm-campaign-v1";

/// One completed experiment: the cell, its report, and the measured host
/// time (the only nondeterministic field). When the cell was admitted by
/// the planner (planner.hpp) the record also carries the model's
/// prediction, so predicted-vs-actual drift is queryable from the store.
struct CellResult {
  Cell cell;
  core::RunReport report;
  double wall_sec = 0.0;
  bool has_prediction = false;
  perfmodel::Prediction prediction;
};

/// Builds the store record for one result. With include_wall false the
/// `wall_sec` member is omitted entirely — the byte-stable form used by
/// determinism fences and tests.
trace::JsonValue store_record(const std::string& campaign_name,
                              const CellResult& result,
                              bool include_wall = true);

/// All records, one compact JSON line each (newline-terminated).
std::string store_lines(const std::string& campaign_name,
                        const std::vector<CellResult>& results,
                        bool include_wall = true);

/// Writes (or appends) the JSON-lines store; throws DataError on I/O
/// failure.
void write_store(const std::string& path, const std::string& campaign_name,
                 const std::vector<CellResult>& results,
                 bool include_wall = true, bool append = false);

}  // namespace agcm::campaign
