#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace agcm::campaign {

std::vector<CellResult> run_campaign(const Campaign& campaign,
                                     const RunnerOptions& options) {
  check_config(options.concurrency >= 1, "campaign concurrency must be >= 1");
  check_config(options.workers_per_machine >= 0,
               "workers_per_machine must be >= 0");

  const std::size_t ncells = campaign.cells.size();
  std::vector<CellResult> results(ncells);

  // Work queue: an atomic cursor over matrix order. Results land at their
  // cell's index, so the output order never depends on scheduling.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto serve = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= ncells) return;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error) return;  // stop taking new cells after a failure
      }
      const Cell& cell = campaign.cells[index];
      try {
        core::ModelConfig config = cell.spec.model;
        if (options.workers_per_machine > 0)
          config.simnet_workers = options.workers_per_machine;
        const auto t0 = std::chrono::steady_clock::now();
        core::RunReport report =
            core::run_model(config, cell.spec.steps, cell.spec.warmup_steps);
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - t0;
        results[index].cell = cell;
        results[index].report = std::move(report);
        results[index].wall_sec = wall.count();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  const int nthreads =
      std::min<int>(options.concurrency, static_cast<int>(std::max<std::size_t>(ncells, 1)));
  if (nthreads <= 1) {
    serve();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) pool.emplace_back(serve);
    for (std::thread& thread : pool) thread.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace agcm::campaign
