// Campaign runner: serves the matrix's experiments on a bounded budget of
// host worker threads, many simnet Machines in flight at once.
//
// Safety argument (docs/campaign.md): a Machine and everything under it —
// Network, BufferPool, RankContexts, fiber scheduler — is instance-scoped,
// and per-rank mutable state lives in util::ExecSlot, so concurrent
// Machine::run calls never share mutable state. What they DO share is the
// process-wide read-only caches (FFT plans, FilterBank tables, the
// emissivity table), whose entries are immutable after publication and
// bit-identical to per-rank construction. Virtual results therefore cannot
// depend on the concurrency level — the isolation tests and the bench's
// standalone cross-check enforce exactly that.
//
// Determinism: results are collected into matrix order regardless of
// completion order, so the resulting store is byte-stable.
#pragma once

#include <vector>

#include "campaign/store.hpp"

namespace agcm::campaign {

struct RunnerOptions {
  /// Experiments in flight at once (host threads running Machines).
  /// 1 = sequential.
  int concurrency = 1;
  /// Fiber worker-pool size per machine; campaign cells default to 1 so a
  /// C-way-concurrent campaign uses ~C host threads total. 0 keeps each
  /// machine's own default (min(nranks, hardware)); any value is
  /// virtual-time neutral.
  int workers_per_machine = 1;
};

/// Runs every cell and returns results in matrix order. Rethrows the first
/// cell failure (after all in-flight cells finish).
std::vector<CellResult> run_campaign(const Campaign& campaign,
                                     const RunnerOptions& options = {});

}  // namespace agcm::campaign
