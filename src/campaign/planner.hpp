// Campaign admission planner: consult the performance model before paying
// for an experiment.
//
// With a trained PredictModel (PREDICT_MODEL.json, docs/perfmodel.md) the
// campaign driver can answer "which cells fit the budget, and in what
// order?" without running anything: every cell gets a predicted per-day
// virtual cost, cells are ordered cheapest-first (ties break toward matrix
// order, so the plan is deterministic), and a budget cap admits the prefix
// whose cumulative predicted cost fits. Admitted cells then run through
// the ordinary runner, and each store record carries the prediction it was
// admitted under — campaign_query.py --drift compares it against the
// actual to keep model rot observable (docs/campaign.md).
#pragma once

#include <cstddef>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/store.hpp"
#include "perfmodel/predict.hpp"

namespace agcm::campaign {

/// One planned cell: its index in the campaign matrix and the model's
/// per-step component forecast.
struct PlannedCell {
  std::size_t index = 0;
  perfmodel::Prediction prediction;
  /// Predicted virtual seconds per simulated day (what the budget caps).
  double predicted_per_day_sec = 0.0;
};

struct AdmissionPlan {
  /// Cheapest-first; the order admitted cells run and are stored in.
  std::vector<PlannedCell> admitted;
  /// Cells whose cumulative predicted cost exceeded the budget.
  std::vector<PlannedCell> skipped;
  /// The cap applied (negative = unlimited).
  double budget_per_day_sec = -1.0;
  /// Sum of predicted per-day cost over the admitted cells.
  double admitted_predicted_per_day_sec = 0.0;
};

/// Plans the campaign under `budget_per_day_sec` (negative = admit all).
/// Throws std::invalid_argument when the model cannot predict a cell
/// (e.g. an untrained filter backend in the matrix).
AdmissionPlan plan_admission(const Campaign& campaign,
                             const perfmodel::PredictModel& model,
                             double budget_per_day_sec = -1.0);

/// Runs the admitted cells in plan order (concurrently per `options`) and
/// returns their results — with predictions attached — in plan order, the
/// order write_store persists them.
std::vector<CellResult> run_planned(const Campaign& campaign,
                                    const AdmissionPlan& plan,
                                    const RunnerOptions& options = {});

}  // namespace agcm::campaign
