#include "campaign/planner.hpp"

#include <algorithm>

#include "core/whatif.hpp"

namespace agcm::campaign {

AdmissionPlan plan_admission(const Campaign& campaign,
                             const perfmodel::PredictModel& model,
                             double budget_per_day_sec) {
  AdmissionPlan plan;
  plan.budget_per_day_sec = budget_per_day_sec;

  std::vector<PlannedCell> cells;
  cells.reserve(campaign.cells.size());
  for (std::size_t i = 0; i < campaign.cells.size(); ++i) {
    const core::RunSpec& spec = campaign.cells[i].spec;
    PlannedCell cell;
    cell.index = i;
    cell.prediction = core::predict_config(model, spec.model);
    cell.predicted_per_day_sec =
        cell.prediction.total() * spec.model.steps_per_day();
    cells.push_back(cell);
  }

  // Cheapest-first, ties toward matrix order: the plan — and therefore the
  // store — is deterministic for a given campaign file and model.
  std::stable_sort(cells.begin(), cells.end(),
                   [](const PlannedCell& a, const PlannedCell& b) {
                     return a.predicted_per_day_sec < b.predicted_per_day_sec;
                   });

  double spent = 0.0;
  for (const PlannedCell& cell : cells) {
    if (budget_per_day_sec >= 0.0 &&
        spent + cell.predicted_per_day_sec > budget_per_day_sec) {
      plan.skipped.push_back(cell);
      continue;
    }
    spent += cell.predicted_per_day_sec;
    plan.admitted.push_back(cell);
  }
  plan.admitted_predicted_per_day_sec = spent;
  return plan;
}

std::vector<CellResult> run_planned(const Campaign& campaign,
                                    const AdmissionPlan& plan,
                                    const RunnerOptions& options) {
  // Reuse the ordinary runner on a sub-matrix in plan order: results land
  // at their plan index regardless of scheduling, so the store stays
  // byte-identical across concurrency levels.
  Campaign admitted;
  admitted.name = campaign.name;
  admitted.cells.reserve(plan.admitted.size());
  for (const PlannedCell& cell : plan.admitted)
    admitted.cells.push_back(campaign.cells[cell.index]);

  std::vector<CellResult> results = run_campaign(admitted, options);
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].has_prediction = true;
    results[i].prediction = plan.admitted[i].prediction;
  }
  return results;
}

}  // namespace agcm::campaign
