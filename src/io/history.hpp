// History (restart) files — the NetCDF-substitute format.
//
// Self-describing binary layout:
//   magic "AGCMHIST" | format version (u32) | endianness marker (u8)
//   | nlon nlat nlev (i32) | time_sec (f64) | step (i64) | nfields (u32)
//   | per field: name length (u32), name bytes, nlon*nlat*nlev f64 values
//     (global field, i fastest, then j, then k)
// All multi-byte values use the *writer's* byte order; the reader detects a
// foreign marker and routes everything through the byte-order reversal
// module, exercising the paper's Paragon workaround.
#pragma once

#include <string>
#include <vector>

#include "comm/mesh2d.hpp"
#include "dynamics/state.hpp"

namespace agcm::io {

struct HistoryField {
  std::string name;
  std::vector<double> values;  ///< nlon*nlat*nlev, i fastest
};

struct HistoryFile {
  int nlon = 0, nlat = 0, nlev = 0;
  double time_sec = 0.0;
  std::int64_t step = 0;
  std::vector<HistoryField> fields;

  const HistoryField* find(const std::string& name) const;
};

/// Writes to disk; throws DataError on I/O failure. If `foreign_endian` is
/// true the file is written in the *opposite* byte order (test hook
/// simulating data produced on a different machine).
void write_history(const std::string& path, const HistoryFile& history,
                   bool foreign_endian = false);

/// Reads and, when needed, byte-swaps. Throws DataError on malformed or
/// truncated files.
HistoryFile read_history(const std::string& path);

/// Collective: gathers the decomposed state to mesh rank 0 and (on rank 0
/// only) returns the assembled global history. Other ranks get an empty
/// HistoryFile.
HistoryFile gather_state(const comm::Mesh2D& mesh,
                         const grid::Decomp2D& decomp,
                         const grid::LatLonGrid& grid,
                         const dynamics::State& state);

/// Collective inverse of gather_state: rank 0 passes the history; every
/// rank receives its block of every field into `state`.
void scatter_state(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                   const grid::LatLonGrid& grid, const HistoryFile& history,
                   dynamics::State& state);

}  // namespace agcm::io
