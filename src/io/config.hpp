// Minimal key = value configuration files for the example drivers.
//
// Format: one `key = value` per line; `#` starts a comment; blank lines
// ignored; keys are case-sensitive. Typed getters with defaults plus
// required-key variants that throw ConfigError with the offending key.
#pragma once

#include <map>
#include <vector>
#include <optional>
#include <string>

namespace agcm::io {

class Config {
 public:
  Config() = default;

  /// Parses a file; throws DataError if unreadable, ConfigError on a
  /// malformed line (anything without '=' that is not blank/comment).
  static Config from_file(const std::string& path);
  /// Parses from a string (tests, inline defaults).
  static Config from_string(const std::string& text);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Required variants: throw ConfigError naming the missing key.
  std::string require_string(const std::string& key) const;
  int require_int(const std::string& key) const;

  /// All keys that were never read by any getter — catches typos in config
  /// files ("filter_algorthm = ..." silently ignored otherwise).
  std::vector<std::string> unused_keys() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace agcm::io
