#include "io/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace agcm::io {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("cannot open config file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

Config Config::from_string(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    check_config(eq != std::string::npos,
                 "config line " + std::to_string(lineno) +
                     " is not 'key = value': " + trimmed);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    check_config(!key.empty(),
                 "config line " + std::to_string(lineno) + " has empty key");
    config.values_[key] = value;
  }
  return config;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  touched_[key] = true;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

int Config::get_int(const std::string& key, int fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const int out = std::stoi(*v, &pos);
    check_config(pos == v->size(), "config key '" + key +
                                       "' is not an integer: " + *v);
    return out;
  } catch (const std::invalid_argument&) {
    throw ConfigError("config key '" + key + "' is not an integer: " + *v);
  } catch (const std::out_of_range&) {
    throw ConfigError("config key '" + key + "' is out of range: " + *v);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    check_config(pos == v->size(),
                 "config key '" + key + "' is not a number: " + *v);
    return out;
  } catch (const std::invalid_argument&) {
    throw ConfigError("config key '" + key + "' is not a number: " + *v);
  } catch (const std::out_of_range&) {
    throw ConfigError("config key '" + key + "' is out of range: " + *v);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1")
    return true;
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0")
    return false;
  throw ConfigError("config key '" + key + "' is not a boolean: " + *v);
}

std::string Config::require_string(const std::string& key) const {
  const auto v = raw(key);
  check_config(v.has_value(), "missing required config key '" + key + "'");
  return *v;
}

int Config::require_int(const std::string& key) const {
  check_config(has(key), "missing required config key '" + key + "'");
  return get_int(key, 0);
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!touched_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace agcm::io
