#include "io/history.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "io/byteswap.hpp"
#include "util/error.hpp"

namespace agcm::io {

namespace {

constexpr char kMagic[8] = {'A', 'G', 'C', 'M', 'H', 'I', 'S', 'T'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void write_raw(std::FILE* f, const T& value, bool swap) {
  T v = swap ? byteswap_value(value) : value;
  if (std::fwrite(&v, sizeof(T), 1, f) != 1)
    throw DataError("history write failed");
}

template <typename T>
T read_raw(std::FILE* f, bool swap) {
  T v{};
  if (std::fread(&v, sizeof(T), 1, f) != 1)
    throw DataError("history file truncated");
  return swap ? byteswap_value(v) : v;
}

}  // namespace

const HistoryField* HistoryFile::find(const std::string& name) const {
  for (const HistoryField& f : fields)
    if (f.name == name) return &f;
  return nullptr;
}

void write_history(const std::string& path, const HistoryFile& history,
                   bool foreign_endian) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw DataError("cannot open history file for writing: " + path);
  const bool swap = foreign_endian;
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic))
    throw DataError("history write failed");
  write_raw<std::uint32_t>(f.get(), kVersion, swap);
  const std::uint8_t marker =
      foreign_endian ? (1 - host_endianness_marker()) : host_endianness_marker();
  write_raw<std::uint8_t>(f.get(), marker, false);
  write_raw<std::int32_t>(f.get(), history.nlon, swap);
  write_raw<std::int32_t>(f.get(), history.nlat, swap);
  write_raw<std::int32_t>(f.get(), history.nlev, swap);
  write_raw<double>(f.get(), history.time_sec, swap);
  write_raw<std::int64_t>(f.get(), history.step, swap);
  write_raw<std::uint32_t>(
      f.get(), static_cast<std::uint32_t>(history.fields.size()), swap);
  const std::size_t expected =
      static_cast<std::size_t>(history.nlon) *
      static_cast<std::size_t>(history.nlat) *
      static_cast<std::size_t>(history.nlev);
  for (const HistoryField& field : history.fields) {
    if (field.values.size() != expected)
      throw DataError("history field '" + field.name + "' has wrong size");
    write_raw<std::uint32_t>(
        f.get(), static_cast<std::uint32_t>(field.name.size()), swap);
    if (!field.name.empty() &&
        std::fwrite(field.name.data(), 1, field.name.size(), f.get()) !=
            field.name.size())
      throw DataError("history write failed");
    for (double v : field.values) write_raw<double>(f.get(), v, swap);
  }
}

HistoryFile read_history(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw DataError("cannot open history file: " + path);
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0)
    throw DataError("not an AGCM history file: " + path);
  // Version is written in the file's own byte order; test both readings.
  const auto version_raw = read_raw<std::uint32_t>(f.get(), false);
  const auto marker = read_raw<std::uint8_t>(f.get(), false);
  const bool swap = marker != host_endianness_marker();
  const std::uint32_t version =
      swap ? byteswap_value(version_raw) : version_raw;
  if (version != kVersion)
    throw DataError("unsupported history version " + std::to_string(version));

  HistoryFile out;
  out.nlon = read_raw<std::int32_t>(f.get(), swap);
  out.nlat = read_raw<std::int32_t>(f.get(), swap);
  out.nlev = read_raw<std::int32_t>(f.get(), swap);
  if (out.nlon <= 0 || out.nlat <= 0 || out.nlev <= 0 || out.nlon > 1 << 20 ||
      out.nlat > 1 << 20 || out.nlev > 1 << 10)
    throw DataError("history file has implausible dimensions");
  out.time_sec = read_raw<double>(f.get(), swap);
  out.step = read_raw<std::int64_t>(f.get(), swap);
  const auto nfields = read_raw<std::uint32_t>(f.get(), swap);
  if (nfields > 1024) throw DataError("history file has too many fields");
  const std::size_t expected = static_cast<std::size_t>(out.nlon) *
                               static_cast<std::size_t>(out.nlat) *
                               static_cast<std::size_t>(out.nlev);
  for (std::uint32_t n = 0; n < nfields; ++n) {
    HistoryField field;
    const auto name_len = read_raw<std::uint32_t>(f.get(), swap);
    if (name_len > 256) throw DataError("history field name too long");
    field.name.resize(name_len);
    if (name_len > 0 &&
        std::fread(field.name.data(), 1, name_len, f.get()) != name_len)
      throw DataError("history file truncated");
    field.values.resize(expected);
    if (std::fread(field.values.data(), sizeof(double), expected, f.get()) !=
        expected)
      throw DataError("history file truncated");
    if (swap) byteswap_span<double>(field.values);
    out.fields.push_back(std::move(field));
  }
  return out;
}

namespace {

/// Packs the local interior of one state component (i fastest).
std::vector<double> pack_local(const grid::Array3D<double>& a) {
  return a.pack_interior();
}

}  // namespace

HistoryFile gather_state(const comm::Mesh2D& mesh,
                         const grid::Decomp2D& decomp,
                         const grid::LatLonGrid& grid,
                         const dynamics::State& state) {
  const comm::Communicator& world = mesh.world();
  const int p = world.size();
  const int nlev = grid.nlev();

  std::vector<int> counts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const grid::LocalBox b = decomp.box({r / mesh.cols(), r % mesh.cols()});
    counts[static_cast<std::size_t>(r)] = b.ni * b.nj * nlev;
  }

  const struct {
    const char* name;
    const grid::Array3D<double>* data;
  } components[] = {{"h", &state.h},       {"u", &state.u},
                    {"v", &state.v},       {"theta", &state.theta},
                    {"q", &state.q}};

  HistoryFile out;
  if (world.rank() == 0) {
    out.nlon = grid.nlon();
    out.nlat = grid.nlat();
    out.nlev = nlev;
    out.time_sec = state.time_sec;
    out.step = state.step;
  }
  for (const auto& comp : components) {
    const std::vector<double> local = pack_local(*comp.data);
    AGCM_ASSERT(static_cast<int>(local.size()) ==
                counts[static_cast<std::size_t>(world.rank())]);
    const std::vector<double> gathered = world.gatherv<double>(0, local, counts);
    if (world.rank() != 0) continue;
    HistoryField field;
    field.name = comp.name;
    field.values.assign(static_cast<std::size_t>(grid.nlon()) *
                            static_cast<std::size_t>(grid.nlat()) *
                            static_cast<std::size_t>(nlev),
                        0.0);
    // Scatter each rank's block into the global (i,j,k) layout.
    std::size_t pos = 0;
    for (int r = 0; r < p; ++r) {
      const grid::LocalBox b = decomp.box({r / mesh.cols(), r % mesh.cols()});
      for (int k = 0; k < nlev; ++k)
        for (int j = 0; j < b.nj; ++j)
          for (int i = 0; i < b.ni; ++i) {
            const std::size_t g =
                static_cast<std::size_t>(b.i0 + i) +
                static_cast<std::size_t>(grid.nlon()) *
                    (static_cast<std::size_t>(b.j0 + j) +
                     static_cast<std::size_t>(grid.nlat()) *
                         static_cast<std::size_t>(k));
            field.values[g] = gathered[pos++];
          }
    }
    out.fields.push_back(std::move(field));
  }
  return out;
}

void scatter_state(const comm::Mesh2D& mesh, const grid::Decomp2D& decomp,
                   const grid::LatLonGrid& grid, const HistoryFile& history,
                   dynamics::State& state) {
  const comm::Communicator& world = mesh.world();
  const int p = world.size();
  const int nlev = grid.nlev();

  if (world.rank() == 0) {
    check_config(history.nlon == grid.nlon() && history.nlat == grid.nlat() &&
                     history.nlev == nlev,
                 "history dimensions do not match the model grid");
  }

  std::vector<int> counts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const grid::LocalBox b = decomp.box({r / mesh.cols(), r % mesh.cols()});
    counts[static_cast<std::size_t>(r)] = b.ni * b.nj * nlev;
  }

  struct Component {
    const char* name;
    grid::Array3D<double>* data;
  };
  Component components[] = {{"h", &state.h},       {"u", &state.u},
                            {"v", &state.v},       {"theta", &state.theta},
                            {"q", &state.q}};

  for (Component& comp : components) {
    std::vector<double> all;
    if (world.rank() == 0) {
      const HistoryField* field = history.find(comp.name);
      check_config(field != nullptr,
                   std::string("history file lacks field ") + comp.name);
      // Reorder the global layout into per-rank blocks.
      all.reserve(field->values.size());
      for (int r = 0; r < p; ++r) {
        const grid::LocalBox b =
            decomp.box({r / mesh.cols(), r % mesh.cols()});
        for (int k = 0; k < nlev; ++k)
          for (int j = 0; j < b.nj; ++j)
            for (int i = 0; i < b.ni; ++i) {
              const std::size_t g =
                  static_cast<std::size_t>(b.i0 + i) +
                  static_cast<std::size_t>(grid.nlon()) *
                      (static_cast<std::size_t>(b.j0 + j) +
                       static_cast<std::size_t>(grid.nlat()) *
                           static_cast<std::size_t>(k));
              all.push_back(field->values[g]);
            }
      }
    }
    const std::vector<double> mine = world.scatterv<double>(0, all, counts);
    comp.data->unpack_interior(mine);
  }

  // Scalars travel by broadcast.
  double meta[2] = {history.time_sec, static_cast<double>(history.step)};
  world.broadcast<double>(0, meta);
  state.time_sec = meta[0];
  state.step = static_cast<std::int64_t>(meta[1]);
}

}  // namespace agcm::io
