// Byte-order reversal.
//
// "Since the UCLA AGCM code uses a NETCDF input history file and we do not
// have a NETCDF library available on the Paragon, we had to develop a
// byte-order reversal routine to convert the history data" (Section 4).
// The history format in history.hpp stores an endianness marker and the
// reader transparently swaps when the file was written on the other kind
// of machine — this module is that routine.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

namespace agcm::io {

/// Reverses the bytes of one trivially-copyable value.
template <typename T>
T byteswap_value(T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (std::size_t i = 0; i < sizeof(T) / 2; ++i)
    std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
  T out;
  std::memcpy(&out, bytes, sizeof(T));
  return out;
}

/// In-place byte reversal of every element.
template <typename T>
void byteswap_span(std::span<T> data) {
  for (T& v : data) v = byteswap_value(v);
}

/// 1 on big-endian hosts, 0 on little-endian.
inline std::uint8_t host_endianness_marker() {
  return std::endian::native == std::endian::big ? 1 : 0;
}

}  // namespace agcm::io
