#include "singlenode/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace agcm::singlenode {

namespace {
inline std::size_t idx3(int i, int j, int k, int n) {
  return static_cast<std::size_t>(i) +
         static_cast<std::size_t>(n) *
             (static_cast<std::size_t>(j) +
              static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
}
}  // namespace

SeparateFields::SeparateFields(int m_, int n_) : m(m_), n(n_) {
  check_config(m >= 1 && n >= 2, "stencil operand needs m>=1, n>=2");
  Rng rng(0x5EED5EEDULL);
  fields.resize(static_cast<std::size_t>(m));
  for (auto& f : fields) {
    f.resize(static_cast<std::size_t>(n) * n * n);
    for (double& v : f) v = rng.uniform(-1.0, 1.0);
  }
}

BlockFields::BlockFields(int m_, int n_) : m(m_), n(n_) {
  data.assign(static_cast<std::size_t>(m) * n * n * n, 0.0);
}

BlockFields BlockFields::from_separate(const SeparateFields& s) {
  BlockFields b(s.m, s.n);
  const int n = s.n;
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        for (int q = 0; q < s.m; ++q)
          b.data[static_cast<std::size_t>(q) +
                 static_cast<std::size_t>(s.m) * idx3(i, j, k, n)] =
              s.fields[static_cast<std::size_t>(q)][idx3(i, j, k, n)];
  return b;
}

void laplace_sum_separate(const SeparateFields& in, std::vector<double>& out) {
  const int n = in.n;
  out.assign(static_cast<std::size_t>(n) * n * n, 0.0);
  for (int q = 0; q < in.m; ++q) {
    const std::vector<double>& f = in.fields[static_cast<std::size_t>(q)];
    for (int k = 0; k < n; ++k) {
      const int kp = (k + 1) % n, km = (k - 1 + n) % n;
      for (int j = 0; j < n; ++j) {
        const int jp = (j + 1) % n, jm = (j - 1 + n) % n;
        for (int i = 0; i < n; ++i) {
          const int ip = (i + 1) % n, im = (i - 1 + n) % n;
          out[idx3(i, j, k, n)] +=
              f[idx3(ip, j, k, n)] + f[idx3(im, j, k, n)] +
              f[idx3(i, jp, k, n)] + f[idx3(i, jm, k, n)] +
              f[idx3(i, j, kp, n)] + f[idx3(i, j, km, n)] -
              6.0 * f[idx3(i, j, k, n)];
        }
      }
    }
  }
}

void laplace_sum_block(const BlockFields& in, std::vector<double>& out) {
  const int n = in.n;
  const int m = in.m;
  out.assign(static_cast<std::size_t>(n) * n * n, 0.0);
  for (int k = 0; k < n; ++k) {
    const int kp = (k + 1) % n, km = (k - 1 + n) % n;
    for (int j = 0; j < n; ++j) {
      const int jp = (j + 1) % n, jm = (j - 1 + n) % n;
      for (int i = 0; i < n; ++i) {
        const int ip = (i + 1) % n, im = (i - 1 + n) % n;
        const double* e = in.data.data() + static_cast<std::size_t>(m) * idx3(ip, j, k, n);
        const double* w = in.data.data() + static_cast<std::size_t>(m) * idx3(im, j, k, n);
        const double* no = in.data.data() + static_cast<std::size_t>(m) * idx3(i, jp, k, n);
        const double* s = in.data.data() + static_cast<std::size_t>(m) * idx3(i, jm, k, n);
        const double* up = in.data.data() + static_cast<std::size_t>(m) * idx3(i, j, kp, n);
        const double* dn = in.data.data() + static_cast<std::size_t>(m) * idx3(i, j, km, n);
        const double* c = in.data.data() + static_cast<std::size_t>(m) * idx3(i, j, k, n);
        double acc = 0.0;
        for (int q = 0; q < m; ++q) {
          acc += e[q] + w[q] + no[q] + s[q] + up[q] + dn[q] - 6.0 * c[q];
        }
        out[idx3(i, j, k, n)] = acc;
      }
    }
  }
}

double laplace_sum_flops(int m, int n) {
  return 8.0 * static_cast<double>(m) * n * n * n;
}

// --- virtual cache model -----------------------------------------------
//
// The inner loop of the separate layout touches, per output point, one
// cache line from each of m input arrays plus the j- and k-offset
// neighbour lines of the same arrays (3 distinct line addresses per array
// at 32^3 and beyond). A tiny direct-mapped or low-associativity cache
// cannot hold m*3 concurrently-live lines without conflict misses, so
// efficiency degrades with m and with the array footprint once it exceeds
// the cache. The block layout touches 7 *contiguous* runs of m doubles —
// effectively 7 streams regardless of m. The anchor constants reproduce
// the paper's 32^3 measurements (5x on the 16 KB Paragon i860, 2.6x on the
// 8 KB direct-mapped T3D Alpha, where the smaller but write-through cache
// starts from a lower ceiling, compressing the ratio).

namespace {
/// Blends from the in-cache efficiency (0.95) down to a saturated floor as
/// the working set grows past the cache. `saturation` in [0, 1]: 0 = fits
/// entirely, 1 = far larger than the cache.
double blend(double floor_eff, double saturation) {
  const double s = std::clamp(saturation, 0.0, 1.0);
  return 0.95 + (floor_eff - 0.95) * s;
}
}  // namespace

double stencil_cache_efficiency_separate(const simnet::MachineProfile& node,
                                         int m, int n) {
  // Working set: 3 live cache lines per field array (centre plus the j/k
  // neighbours) — grows linearly with m; plus the whole-array footprint
  // relative to the cache.
  const double total_bytes = 8.0 * m * n * n * n;
  const double footprint = total_bytes / node.cache_bytes;
  const double stream_lines = 3.0 * m * 64.0;
  const double line_pressure = stream_lines / node.cache_bytes * 4.0;
  const double saturation =
      1.0 - 1.0 / (1.0 + 0.5 * footprint + line_pressure);
  return blend(node.stencil_separate_eff, saturation);
}

double stencil_cache_efficiency_block(const simnet::MachineProfile& node,
                                      int m, int n) {
  // Seven contiguous streams of m doubles each, independent of m: pressure
  // comes only from the footprint.
  const double total_bytes = 8.0 * m * n * n * n;
  const double footprint = total_bytes / node.cache_bytes;
  const double saturation = 1.0 - 1.0 / (1.0 + 0.5 * footprint);
  return blend(node.stencil_block_eff, saturation);
}

double stencil_virtual_time_separate(const simnet::MachineProfile& node,
                                     int m, int n) {
  return node.compute_time(laplace_sum_flops(m, n),
                           stencil_cache_efficiency_separate(node, m, n));
}

double stencil_virtual_time_block(const simnet::MachineProfile& node, int m,
                                  int n) {
  return node.compute_time(laplace_sum_flops(m, n),
                           stencil_cache_efficiency_block(node, m, n));
}

}  // namespace agcm::singlenode
