#include "singlenode/pointwise.hpp"

#include "kernels/simd/dispatch.hpp"
#include "util/error.hpp"

namespace agcm::singlenode {

namespace {
void validate(std::span<const double> a, std::span<const double> b,
              std::span<double> out) {
  check_config(!b.empty(), "pointwise multiply: b must be non-empty");
  check_config(a.size() % b.size() == 0,
               "pointwise multiply: n must be divisible by m");
  check_config(out.size() == a.size(),
               "pointwise multiply: out size must match a");
}
}  // namespace

void pointwise_multiply_naive(std::span<const double> a,
                              std::span<const double> b,
                              std::span<double> out) {
  validate(a, b, out);
  const std::size_t m = b.size();
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i % m];
}

void pointwise_multiply_tiled(std::span<const double> a,
                              std::span<const double> b,
                              std::span<double> out) {
  validate(a, b, out);
  const std::size_t m = b.size();
  const std::size_t panels = a.size() / m;
  for (std::size_t p = 0; p < panels; ++p) {
    const double* ap = a.data() + p * m;
    double* op = out.data() + p * m;
    for (std::size_t q = 0; q < m; ++q) op[q] = ap[q] * b[q];
  }
}

void pointwise_multiply_unrolled(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> out) {
  validate(a, b, out);
  const std::size_t m = b.size();
  const std::size_t panels = a.size() / m;
  for (std::size_t p = 0; p < panels; ++p) {
    const double* ap = a.data() + p * m;
    double* op = out.data() + p * m;
    std::size_t q = 0;
    for (; q + 4 <= m; q += 4) {
      op[q] = ap[q] * b[q];
      op[q + 1] = ap[q + 1] * b[q + 1];
      op[q + 2] = ap[q + 2] * b[q + 2];
      op[q + 3] = ap[q + 3] * b[q + 3];
    }
    for (; q < m; ++q) op[q] = ap[q] * b[q];
  }
}

void pointwise_multiply_dispatch(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> out) {
  validate(a, b, out);
  const simd::KernelOps& ops = simd::ops();
  const std::size_t m = b.size();
  const std::size_t panels = a.size() / m;
  for (std::size_t p = 0; p < panels; ++p)
    ops.pointwise_panel(m, a.data() + p * m, b.data(), out.data() + p * m);
}

double pointwise_multiply_flops(std::size_t n) {
  return static_cast<double>(n);
}

}  // namespace agcm::singlenode
