// The "pointwise vector-multiply" kernel proposed in Section 3.4.
//
// The paper observes that much of the AGCM's local computation has the form
//   C(i,j) = A(i,j,s) * B(i)          (two-dimensional nested loop)
// which is not a BLAS operation, and proposes an optimized routine that
// recursively computes (equation (4)):
//   a (.) b = { a1*b1, a2*b2, ..., am*bm, a_{m+1}*b1, ... , an*bm }
// i.e. elementwise multiply of a length-n vector by a length-m vector
// cyclically extended, with n divisible by m.
//
// Three implementations:
//   * pointwise_multiply_naive    — modulo arithmetic per element (what a
//     straightforward loop nest compiles to),
//   * pointwise_multiply_tiled    — the paper's recursive/tiled form: an
//     outer loop over n/m panels, the short b vector staying cache-hot,
//   * pointwise_multiply_unrolled — tiled with 4-way manual unrolling (the
//     paper's "enforcing loop-unrolling on some large loops").
// All three produce identical results.
#pragma once

#include <span>

namespace agcm::singlenode {

/// out[i] = a[i] * b[i % m]; requires a.size() % b.size() == 0 and
/// out.size() == a.size().
void pointwise_multiply_naive(std::span<const double> a,
                              std::span<const double> b,
                              std::span<double> out);

void pointwise_multiply_tiled(std::span<const double> a,
                              std::span<const double> b,
                              std::span<double> out);

void pointwise_multiply_unrolled(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> out);

/// Tiled form with the per-panel multiply routed through the SIMD dispatch
/// table (kernels/simd/dispatch.hpp). CONTRACTED family: bitwise identical
/// to the three scalar forms on every tier (independent per-point
/// multiplies, no FMA).
void pointwise_multiply_dispatch(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> out);

/// Flops of one evaluation (n multiplies).
double pointwise_multiply_flops(std::size_t n);

}  // namespace agcm::singlenode
