// Single-node cache-efficiency experiment (paper Section 3.4).
//
// The paper evaluates a seven-point Laplace stencil applied to several
// discrete fields — equation (5): r = D1 f1 + ... + Dm fm — under two data
// layouts:
//   * separate arrays:  one 3-D array per field (the AGCM's layout),
//   * block array:      one 4-D array f(m, idim, jdim, kdim) with the m
//     field values of a grid point adjacent in memory (equation (6)).
// On 32^3 grids the paper measured the block layout 5x faster on the
// Paragon and 2.6x faster on the T3D — but found no advantage inside the
// real advection routine, because its many loops reference varying subsets
// of the fields.
//
// Both layouts compute identical sums; the host-time benchmark measures
// the real layout effect on modern hardware, and the virtual-cost model
// below prices them for the 1990s machines.
#pragma once

#include <vector>

#include "simnet/machine_profile.hpp"

namespace agcm::singlenode {

/// Separate-arrays operand: `m` cubes of n^3 doubles (no ghosts; the
/// stencil wraps periodically so every point has 6 neighbours).
struct SeparateFields {
  SeparateFields(int m, int n);
  int m, n;
  std::vector<std::vector<double>> fields;  ///< fields[f][i + n*(j + n*k)]
};

/// Block-array operand: f(q, i, j, k) with the field index q fastest —
/// the Fortran f(m, idim, jdim, kdim) of the paper's equation (6).
struct BlockFields {
  BlockFields(int m, int n);
  static BlockFields from_separate(const SeparateFields& s);
  int m, n;
  std::vector<double> data;  ///< data[q + m*(i + n*(j + n*k))]
};

/// r(i,j,k) = sum_f Laplace7(f)(i,j,k), periodic in all three directions.
void laplace_sum_separate(const SeparateFields& in, std::vector<double>& out);
void laplace_sum_block(const BlockFields& in, std::vector<double>& out);

/// Flop count of either variant (identical arithmetic): m fields x 8 flops
/// per point (6 adds, scale, accumulate).
double laplace_sum_flops(int m, int n);

/// Virtual cache efficiency of the two layouts for the 1990s nodes. The
/// model: the stencil streams `m` arrays (separate) or one fat array
/// (block); when the per-iteration working set — m cache lines from
/// distinct arrays plus the j/k-offset neighbours — exceeds the data
/// cache's capacity/associativity, efficiency collapses. Constants are
/// anchored to the paper's own 32^3 measurements (5x Paragon, 2.6x T3D)
/// rather than to a microarchitectural simulation.
double stencil_cache_efficiency_separate(const simnet::MachineProfile& node,
                                         int m, int n);
double stencil_cache_efficiency_block(const simnet::MachineProfile& node,
                                      int m, int n);

/// Virtual seconds for one evaluation under each layout.
double stencil_virtual_time_separate(const simnet::MachineProfile& node,
                                     int m, int n);
double stencil_virtual_time_block(const simnet::MachineProfile& node, int m,
                                  int n);

}  // namespace agcm::singlenode
