#include "singlenode/miniblas.hpp"

#include <algorithm>

#include "kernels/simd/dispatch.hpp"
#include "util/error.hpp"

namespace agcm::singlenode {

void dcopy(std::span<const double> x, std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

void dcopy_unrolled(std::span<const double> x, std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    y[i] = x[i];
    y[i + 1] = x[i + 1];
    y[i + 2] = x[i + 2];
    y[i + 3] = x[i + 3];
  }
  for (; i < x.size(); ++i) y[i] = x[i];
}

void dscal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void dscal_unrolled(double alpha, std::span<double> x) {
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    x[i] *= alpha;
    x[i + 1] *= alpha;
    x[i + 2] *= alpha;
    x[i + 3] *= alpha;
  }
  for (; i < x.size(); ++i) x[i] *= alpha;
}

void daxpy(double alpha, std::span<const double> x, std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void daxpy_unrolled(double alpha, std::span<const double> x,
                    std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < x.size(); ++i) y[i] += alpha * x[i];
}

double ddot(std::span<const double> x, std::span<const double> y) {
  AGCM_ASSERT(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double ddot_unrolled(std::span<const double> x, std::span<const double> y) {
  AGCM_ASSERT(x.size() == y.size());
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void daxpy_dispatch(double alpha, std::span<const double> x,
                    std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  simd::ops().daxpy(x.size(), alpha, x.data(), y.data());
}

double ddot_dispatch(std::span<const double> x, std::span<const double> y) {
  AGCM_ASSERT(x.size() == y.size());
  return simd::ops().ddot(x.size(), x.data(), y.data());
}

void dcopy_strided(std::size_t n, const double* x, std::ptrdiff_t incx,
                   double* y, std::ptrdiff_t incy) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto di = static_cast<std::ptrdiff_t>(i);
    y[di * incy] = x[di * incx];
    y[(di + 1) * incy] = x[(di + 1) * incx];
    y[(di + 2) * incy] = x[(di + 2) * incx];
    y[(di + 3) * incy] = x[(di + 3) * incx];
  }
  for (; i < n; ++i) {
    const auto di = static_cast<std::ptrdiff_t>(i);
    y[di * incy] = x[di * incx];
  }
}

void daxpy_strided(std::size_t n, double alpha, const double* x,
                   std::ptrdiff_t incx, double* y, std::ptrdiff_t incy) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto di = static_cast<std::ptrdiff_t>(i);
    y[di * incy] += alpha * x[di * incx];
    y[(di + 1) * incy] += alpha * x[(di + 1) * incx];
    y[(di + 2) * incy] += alpha * x[(di + 2) * incx];
    y[(di + 3) * incy] += alpha * x[(di + 3) * incx];
  }
  for (; i < n; ++i) {
    const auto di = static_cast<std::ptrdiff_t>(i);
    y[di * incy] += alpha * x[di * incx];
  }
}

double ddot_strided(std::size_t n, const double* x, std::ptrdiff_t incx,
                    const double* y, std::ptrdiff_t incy, double acc) {
  // Single sequential accumulator on purpose: splitting into lanes would
  // reassociate the sum and break the bitwise-continuation contract.
  // The 4-wide unroll only amortises loop overhead; the adds stay chained.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto di = static_cast<std::ptrdiff_t>(i);
    acc += x[di * incx] * y[di * incy];
    acc += x[(di + 1) * incx] * y[(di + 1) * incy];
    acc += x[(di + 2) * incx] * y[(di + 2) * incy];
    acc += x[(di + 3) * incx] * y[(di + 3) * incy];
  }
  for (; i < n; ++i) {
    const auto di = static_cast<std::ptrdiff_t>(i);
    acc += x[di * incx] * y[di * incy];
  }
  return acc;
}

}  // namespace agcm::singlenode
