#include "singlenode/miniblas.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace agcm::singlenode {

void dcopy(std::span<const double> x, std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

void dcopy_unrolled(std::span<const double> x, std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    y[i] = x[i];
    y[i + 1] = x[i + 1];
    y[i + 2] = x[i + 2];
    y[i + 3] = x[i + 3];
  }
  for (; i < x.size(); ++i) y[i] = x[i];
}

void dscal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void dscal_unrolled(double alpha, std::span<double> x) {
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    x[i] *= alpha;
    x[i + 1] *= alpha;
    x[i + 2] *= alpha;
    x[i + 3] *= alpha;
  }
  for (; i < x.size(); ++i) x[i] *= alpha;
}

void daxpy(double alpha, std::span<const double> x, std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void daxpy_unrolled(double alpha, std::span<const double> x,
                    std::span<double> y) {
  AGCM_ASSERT(x.size() == y.size());
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < x.size(); ++i) y[i] += alpha * x[i];
}

double ddot(std::span<const double> x, std::span<const double> y) {
  AGCM_ASSERT(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double ddot_unrolled(std::span<const double> x, std::span<const double> y) {
  AGCM_ASSERT(x.size() == y.size());
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

}  // namespace agcm::singlenode
