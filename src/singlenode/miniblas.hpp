// Mini-BLAS: the level-1 routines the paper substituted for hand-coded
// loops ("replacing some loops by Basic Linear Algebra Subroutines (BLAS)
// library calls for vector copying, scaling or saxpy operations"), each in
// a plain and a 4-way-unrolled variant so the benchmark can measure the
// gap the paper exploited.
#pragma once

#include <span>

namespace agcm::singlenode {

/// y = x.
void dcopy(std::span<const double> x, std::span<double> y);
void dcopy_unrolled(std::span<const double> x, std::span<double> y);

/// x = alpha * x.
void dscal(double alpha, std::span<double> x);
void dscal_unrolled(double alpha, std::span<double> x);

/// y = alpha * x + y.
void daxpy(double alpha, std::span<const double> x, std::span<double> y);
void daxpy_unrolled(double alpha, std::span<const double> x,
                    std::span<double> y);

/// dot(x, y).
double ddot(std::span<const double> x, std::span<const double> y);
double ddot_unrolled(std::span<const double> x, std::span<const double> y);

// --- SIMD-dispatched variants (kernels/simd/dispatch.hpp) ---------------

/// daxpy through the dispatch table. CONTRACTED: bitwise identical to
/// daxpy/daxpy_unrolled on every tier (independent mul-then-add per
/// point) — safe anywhere, including frozen paths.
void daxpy_dispatch(double alpha, std::span<const double> x,
                    std::span<double> y);

/// ddot through the dispatch table. REDUCTION: SIMD tiers use lane
/// accumulators, so the sum is reassociated (ulp-bounded vs ddot). Do NOT
/// substitute it on frozen-artefact paths — the FilterBank convolution and
/// anything feeding the virtual clock keep the sequential ddot/ddot_strided
/// (docs/kernels.md, frozen-artefact rule). Equals ddot bit for bit under
/// a forced-scalar tier.
double ddot_dispatch(std::span<const double> x, std::span<const double> y);

// --- strided (BLAS inc-style) variants ----------------------------------
//
// The kernel engine's contribution to this file (docs/kernels.md): the
// same level-1 operations over strided element sequences, so the FilterBank
// convolution kernels (which walk the periodic line backwards) and the
// Thomas-solve recombination can be expressed as BLAS calls instead of
// hand-rolled index loops. `x` and `y` address element 0 of each logical
// vector; strides may be negative (BLAS convention, e.g. incy = -1 walks
// y[0], y[-1], ...). n == 0 is a no-op.

/// y[i*incy] = x[i*incx], i ascending; 4-way unrolled.
void dcopy_strided(std::size_t n, const double* x, std::ptrdiff_t incx,
                   double* y, std::ptrdiff_t incy);

/// y[i*incy] += alpha * x[i*incx], i ascending; 4-way unrolled.
void daxpy_strided(std::size_t n, double alpha, const double* x,
                   std::ptrdiff_t incx, double* y, std::ptrdiff_t incy);

/// Returns acc after acc += x[i*incx] * y[i*incy] for i = 0..n-1 in
/// ascending order with ONE sequential accumulator (no 4-lane splitting):
/// the products are added in exactly the order a scalar loop would, so a
/// caller may split one logical dot product into several ddot_strided
/// calls — threading `acc` through — and still get bitwise-identical sums
/// (the convolution kernels depend on this; docs/kernels.md).
double ddot_strided(std::size_t n, const double* x, std::ptrdiff_t incx,
                    const double* y, std::ptrdiff_t incy, double acc = 0.0);

}  // namespace agcm::singlenode
