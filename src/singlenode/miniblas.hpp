// Mini-BLAS: the level-1 routines the paper substituted for hand-coded
// loops ("replacing some loops by Basic Linear Algebra Subroutines (BLAS)
// library calls for vector copying, scaling or saxpy operations"), each in
// a plain and a 4-way-unrolled variant so the benchmark can measure the
// gap the paper exploited.
#pragma once

#include <span>

namespace agcm::singlenode {

/// y = x.
void dcopy(std::span<const double> x, std::span<double> y);
void dcopy_unrolled(std::span<const double> x, std::span<double> y);

/// x = alpha * x.
void dscal(double alpha, std::span<double> x);
void dscal_unrolled(double alpha, std::span<double> x);

/// y = alpha * x + y.
void daxpy(double alpha, std::span<const double> x, std::span<double> y);
void daxpy_unrolled(double alpha, std::span<const double> x,
                    std::span<double> y);

/// dot(x, y).
double ddot(std::span<const double> x, std::span<const double> y);
double ddot_unrolled(std::span<const double> x, std::span<const double> y);

}  // namespace agcm::singlenode
