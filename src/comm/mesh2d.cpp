#include "comm/mesh2d.hpp"

namespace agcm::comm {

namespace {
const Communicator& validate_mesh(const Communicator& world, int rows,
                                  int cols) {
  check_config(rows > 0 && cols > 0, "mesh dimensions must be positive");
  check_config(world.size() == rows * cols,
               "world size " + std::to_string(world.size()) + " != mesh " +
                   std::to_string(rows) + "x" + std::to_string(cols));
  return world;
}
}  // namespace

Mesh2D::Mesh2D(const Communicator& world, int rows, int cols)
    : world_(validate_mesh(world, rows, cols)),
      row_comm_(world.split(world.rank() / cols, world.rank() % cols)),
      col_comm_(world.split(world.rank() % cols, world.rank() / cols)),
      rows_(rows),
      cols_(cols) {
  coord_.row = world.rank() / cols;
  coord_.col = world.rank() % cols;
}

int Mesh2D::west() const {
  return rank_of({coord_.row, (coord_.col - 1 + cols_) % cols_});
}

int Mesh2D::east() const {
  return rank_of({coord_.row, (coord_.col + 1) % cols_});
}

std::optional<int> Mesh2D::north() const {
  if (coord_.row + 1 >= rows_) return std::nullopt;
  return rank_of({coord_.row + 1, coord_.col});
}

std::optional<int> Mesh2D::south() const {
  if (coord_.row == 0) return std::nullopt;
  return rank_of({coord_.row - 1, coord_.col});
}

}  // namespace agcm::comm
