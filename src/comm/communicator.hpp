// Typed message-passing layer over the simnet byte transport.
//
// The interface mirrors the MPI subset the original parallel AGCM used
// (point-to-point, broadcast/reduce trees, gather/scatter, alltoallv) so the
// algorithms in filter/ and loadbalance/ read like their MPI originals.
// Collectives are implemented *on top of* point-to-point with the classic
// algorithms (binomial trees, pairwise exchange), so their virtual cost is
// the genuine message cost of the era, not a magic constant.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "comm/packed.hpp"
#include "simnet/machine.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace agcm::comm {

/// A communicator: a group of ranks able to exchange typed messages.
/// The world communicator covers every rank of the machine; `split` creates
/// row/column sub-communicators with translated ranks and isolated tags.
class Communicator {
 public:
  /// World communicator over all ranks of the running SPMD program.
  explicit Communicator(simnet::RankContext& ctx);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  simnet::RankContext& context() const { return *ctx_; }

  /// Virtual clock shortcuts (all library code charges compute through the
  /// communicator so callers don't need to thread the clock around).
  void charge_flops(double flops, double cache_efficiency = 1.0) const;
  double now() const;

  /// Splits into disjoint sub-communicators: ranks with equal `color` end up
  /// in the same group, ordered by `key` (ties broken by old rank).
  /// Collective over this communicator.
  Communicator split(int color, int key) const;

  // --- point-to-point -----------------------------------------------------

  template <typename T>
  void send(int dst, int tag, std::span<const T> data) const {
    static_assert(std::is_trivially_copyable_v<T>);
    check_tag(tag);
    record_send(data.size_bytes());
    ctx_->send_bytes(global(dst), combine_tag(tag),
                     std::as_bytes(data));
  }

  template <typename T>
  void send_value(int dst, int tag, const T& value) const {
    send<T>(dst, tag, std::span<const T>(&value, 1));
  }

  /// Receives exactly data.size() elements; throws CommError on mismatch.
  template <typename T>
  void recv(int src, int tag, std::span<T> data) const {
    static_assert(std::is_trivially_copyable_v<T>);
    check_tag(tag);
    const auto bytes = ctx_->recv_bytes(global(src), combine_tag(tag));
    record_recv(bytes.size());
    if (bytes.size() != data.size_bytes()) {
      throw CommError("recv size mismatch: expected " +
                      std::to_string(data.size_bytes()) + " bytes, got " +
                      std::to_string(bytes.size()));
    }
    // Guard: an empty payload's data() may be null, and memcpy's pointer
    // arguments must be non-null even for size 0 (UBSan enforces this).
    if (!bytes.empty()) std::memcpy(data.data(), bytes.data(), bytes.size());
  }

  /// Receives a message of unknown length; returns the element vector.
  template <typename T>
  std::vector<T> recv_any_size(int src, int tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    check_tag(tag);
    const auto bytes = ctx_->recv_bytes(global(src), combine_tag(tag));
    record_recv(bytes.size());
    if (bytes.size() % sizeof(T) != 0) {
      throw CommError("recv_any_size: payload not a multiple of sizeof(T)");
    }
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  template <typename T>
  T recv_value(int src, int tag) const {
    T value{};
    recv<T>(src, tag, std::span<T>(&value, 1));
    return value;
  }

  /// Buffered sends never block, so send-then-recv is deadlock-free.
  template <typename T>
  void sendrecv(int dst, std::span<const T> send_data, int src,
                std::span<T> recv_data, int tag) const {
    send<T>(dst, tag, send_data);
    recv<T>(src, tag, recv_data);
  }

  // --- zero-copy pooled transport ------------------------------------------
  //
  // The pooled path packs a message *once*, directly into the wire buffer:
  // acquire (or packer) hands out recycled storage, the caller fills it, and
  // send_buffer moves it into the network with no further copies. On the
  // receive side, recv_buffer / recv_view hand the pooled payload back to the
  // caller, who reads it in place; the storage recycles when the handle dies.

  /// Borrows a `bytes`-sized wire buffer from the machine's recycling pool.
  Buffer acquire(std::size_t bytes) const {
    return ctx_->acquire_buffer(bytes);
  }

  /// Convenience: a cursor-checked writer over a freshly acquired buffer.
  PackedWriter packer(std::size_t bytes) const {
    return PackedWriter(acquire(bytes));
  }

  /// Moves a fully packed buffer into the network — the zero-copy send.
  void send_buffer(int dst, int tag, Buffer&& payload) const {
    check_tag(tag);
    record_send(payload.size());
    ctx_->send_bytes(global(dst), combine_tag(tag), std::move(payload));
  }

  /// Sends the remaining contents of a writer (must be exactly full).
  void send_packed(int dst, int tag, PackedWriter&& writer) const {
    send_buffer(dst, tag, writer.take());
  }

  /// Receives a message as the pooled payload itself — read it in place.
  Buffer recv_buffer(int src, int tag) const {
    check_tag(tag);
    Buffer payload = ctx_->recv_bytes(global(src), combine_tag(tag));
    record_recv(payload.size());
    return payload;
  }

  /// Receives a message of unknown length as a typed in-place view; the view
  /// owns the pooled storage (the zero-copy replacement for recv_any_size).
  template <typename T>
  TypedView<T> recv_view(int src, int tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    return TypedView<T>(recv_buffer(src, tag));
  }

  /// Receives a message of known length as a cursor-checked reader.
  PackedReader recv_packed(int src, int tag) const {
    return PackedReader(recv_buffer(src, tag));
  }

  // --- collectives (all collective over this communicator) ----------------

  /// Binomial-tree barrier (reduce-to-root + broadcast of empty payloads).
  void barrier() const;

  /// Binomial-tree broadcast of `data` from `root` to everyone.
  template <typename T>
  void broadcast(int root, std::span<T> data) const;

  /// Binomial-tree reduction with an element-wise associative `op`; result
  /// valid on `root` only. in/out may alias.
  template <typename T>
  void reduce(int root, std::span<const T> in, std::span<T> out,
              const std::function<T(T, T)>& op) const;

  /// reduce + broadcast (the era-typical implementation).
  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out,
                 const std::function<T(T, T)>& op) const;

  double allreduce_sum(double value) const;
  double allreduce_max(double value) const;

  /// Root gathers `counts[r]` elements from each rank r (counts known on all
  /// ranks). Result valid on root only, concatenated in rank order.
  template <typename T>
  std::vector<T> gatherv(int root, std::span<const T> mine,
                         std::span<const int> counts) const;

  /// Inverse of gatherv: root holds concatenated data, each rank gets its
  /// slice.
  template <typename T>
  std::vector<T> scatterv(int root, std::span<const T> all,
                          std::span<const int> counts) const;

  /// Every rank ends up with the rank-order concatenation of all blocks.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> mine,
                            std::span<const int> counts) const;

  /// Fixed-size allgather: every rank contributes `mine` (equal sizes) and
  /// receives the rank-order concatenation.
  template <typename T>
  std::vector<T> allgather(std::span<const T> mine) const {
    const std::vector<int> counts(static_cast<std::size_t>(size()),
                                  static_cast<int>(mine.size()));
    return allgatherv<T>(mine, counts);
  }

  /// Fixed-size personalised all-to-all: `send.size() == size()*block` and
  /// block elements go to each rank.
  template <typename T>
  std::vector<T> alltoall(std::span<const T> send, int block) const {
    const std::vector<int> counts(static_cast<std::size_t>(size()), block);
    return alltoallv<T>(send, counts, counts);
  }

  /// Inclusive prefix scan: rank r receives op(x_0, ..., x_r), element-wise.
  /// Implemented as the classic chain (deterministic, O(P) latency — the
  /// era-typical portable implementation).
  template <typename T>
  void scan(std::span<const T> in, std::span<T> out,
            const std::function<T(T, T)>& op) const;

  /// Reduce + scatter of equal blocks: every rank gets the element-wise
  /// reduction of its own `block`-sized slice across all ranks.
  template <typename T>
  std::vector<T> reduce_scatter_block(std::span<const T> in, int block,
                                      const std::function<T(T, T)>& op) const;

  /// Personalised all-to-all with per-pair counts. `send_counts[r]` elements
  /// go to rank r (taken from `send_data` in rank order); the result is the
  /// concatenation of blocks received from ranks 0..P-1. Implemented as
  /// P-1 rounds of pairwise exchange. Messages with zero elements are
  /// skipped entirely (this matters: the load-balanced filter sends nothing
  /// between most pairs).
  template <typename T>
  std::vector<T> alltoallv(std::span<const T> send_data,
                           std::span<const int> send_counts,
                           std::span<const int> recv_counts) const;

  /// Zero-copy personalised all-to-all. Identical message schedule, tag and
  /// virtual-time behaviour to `alltoallv` (self block without a message,
  /// then P-1 pairwise rounds, zero-byte messages skipped) — but instead of
  /// staging through contiguous send/recv vectors, `pack(dst, writer)` packs
  /// each outgoing message straight into its pooled wire buffer and
  /// `unpack(src, reader)` consumes each payload in place. The self block
  /// routes a pooled buffer from pack to unpack without touching the
  /// network, so callers handle it like any other peer.
  template <typename PackFn, typename UnpackFn>
  void alltoallv_packed(std::span<const std::size_t> send_bytes,
                        std::span<const std::size_t> recv_bytes,
                        PackFn&& pack, UnpackFn&& unpack) const;

 private:
  Communicator(simnet::RankContext& ctx, std::vector<int> members, int rank,
               std::int64_t context_id);

  /// Traffic counters into the MetricsRegistry, keyed by *machine* rank.
  /// One relaxed atomic load when tracing is off — nothing measurable.
  void record_send(std::size_t bytes) const {
    if (!trace::enabled()) return;
    auto& metrics = trace::MetricsRegistry::instance();
    metrics.add("comm.messages_sent", ctx_->rank());
    metrics.add("comm.bytes_sent", ctx_->rank(), static_cast<double>(bytes));
  }
  void record_recv(std::size_t bytes) const {
    if (!trace::enabled()) return;
    auto& metrics = trace::MetricsRegistry::instance();
    metrics.add("comm.messages_recv", ctx_->rank());
    metrics.add("comm.bytes_recv", ctx_->rank(), static_cast<double>(bytes));
  }

  int global(int local_rank) const {
    if (local_rank < 0 || local_rank >= size()) {
      throw CommError("rank " + std::to_string(local_rank) +
                      " out of range for communicator of size " +
                      std::to_string(size()));
    }
    return members_[static_cast<std::size_t>(local_rank)];
  }

  static void check_tag(int tag) {
    if (tag < 0 || tag >= kMaxUserTag) {
      throw CommError("tag " + std::to_string(tag) + " out of range");
    }
  }

  std::int64_t combine_tag(int tag) const {
    return static_cast<std::int64_t>(context_id_) * kMaxUserTag + tag;
  }

  static constexpr int kMaxUserTag = 1 << 12;

  simnet::RankContext* ctx_;
  std::vector<int> members_;  ///< local rank -> machine rank
  int rank_;                  ///< my local rank
  std::int64_t context_id_;   ///< isolates traffic between communicators
  mutable int next_context_ = 1;  ///< allocator for child context ids
};

// --- template implementations ----------------------------------------------

namespace detail {
/// Rounds of a binomial tree rooted at 0 over `size` ranks, for the rank
/// whose *relative* id is `rel`. Parent/children helper.
inline int tree_parent(int rel) {
  // Clear the lowest set bit.
  return rel & (rel - 1);
}
}  // namespace detail

template <typename T>
void Communicator::broadcast(int root, std::span<T> data) const {
  static_assert(std::is_trivially_copyable_v<T>);
  AGCM_TRACE_SPAN("comm.broadcast", *ctx_);
  const int p = size();
  if (p == 1) return;
  const int rel = (rank_ - root + p) % p;
  constexpr int kTag = kMaxUserTag - 1;
  if (rel != 0) {
    const int parent_rel = detail::tree_parent(rel);
    recv<T>((parent_rel + root) % p, kTag, data);
  }
  // Forward to children: rel + 2^k for every 2^k > lowest set bit of rel
  // (for rel==0: all powers of two below p).
  for (int bit = 1; bit < p; bit <<= 1) {
    if (rel != 0 && (rel & bit)) break;  // bits below my lowest set bit done
    const int child_rel = rel | bit;
    if (child_rel != rel && child_rel < p) {
      send<T>((child_rel + root) % p, kTag,
              std::span<const T>(data.data(), data.size()));
    }
  }
}

template <typename T>
void Communicator::reduce(int root, std::span<const T> in, std::span<T> out,
                          const std::function<T(T, T)>& op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  AGCM_TRACE_SPAN("comm.reduce", *ctx_);
  AGCM_ASSERT(in.size() == out.size());
  const int p = size();
  constexpr int kTag = kMaxUserTag - 2;
  const int rel = (rank_ - root + p) % p;
  // Small payloads — the scalar allreduces and barriers every model step
  // issues — accumulate in stack buffers so the collective is heap-free in
  // steady state (tests/test_kernel_alloc.cpp); larger payloads fall back
  // to heap scratch. The arithmetic and its order are unchanged.
  constexpr std::size_t kInline = 8;
  T acc_inline[kInline];
  T inc_inline[kInline];
  std::vector<T> acc_heap, inc_heap;
  std::span<T> acc, incoming;
  if (in.size() <= kInline) {
    std::copy(in.begin(), in.end(), acc_inline);
    acc = std::span<T>(acc_inline, in.size());
    incoming = std::span<T>(inc_inline, in.size());
  } else {
    acc_heap.assign(in.begin(), in.end());
    inc_heap.resize(in.size());
    acc = acc_heap;
    incoming = inc_heap;
  }
  // Children send up the binomial tree, leaves first.
  for (int bit = 1; bit < p; bit <<= 1) {
    if (rel & bit) {
      // I have a parent at (rel without this bit); send and stop.
      const int parent_rel = rel ^ bit;
      send<T>((parent_rel + root) % p, kTag,
              std::span<const T>(acc.data(), acc.size()));
      break;
    }
    const int child_rel = rel | bit;
    if (child_rel < p) {
      recv<T>((child_rel + root) % p, kTag,
              std::span<T>(incoming.data(), incoming.size()));
      // Reduction order fixed by tree structure => deterministic.
      const double flops = static_cast<double>(in.size());
      charge_flops(flops);
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = op(acc[i], incoming[i]);
    }
  }
  if (rel == 0) std::copy(acc.begin(), acc.end(), out.begin());
}

template <typename T>
void Communicator::allreduce(std::span<const T> in, std::span<T> out,
                             const std::function<T(T, T)>& op) const {
  AGCM_TRACE_SPAN("comm.allreduce", *ctx_);
  reduce<T>(0, in, out, op);
  broadcast<T>(0, out);
}

template <typename T>
std::vector<T> Communicator::gatherv(int root, std::span<const T> mine,
                                     std::span<const int> counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  AGCM_TRACE_SPAN("comm.gatherv", *ctx_);
  const int p = size();
  AGCM_ASSERT(static_cast<int>(counts.size()) == p);
  AGCM_ASSERT(static_cast<int>(mine.size()) ==
              counts[static_cast<std::size_t>(rank_)]);
  constexpr int kTag = kMaxUserTag - 3;
  // Binomial gather: each round, ranks holding contiguous segments merge.
  // For simplicity and identical message counts to MPI_Gatherv's flat
  // implementation of the era, use direct sends to root.
  std::vector<T> all;
  if (rank_ == root) {
    std::size_t total = 0;
    for (int c : counts) total += static_cast<std::size_t>(c);
    all.resize(total);
    std::size_t offset = 0;
    for (int r = 0; r < p; ++r) {
      const auto n = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
      if (r == rank_) {
        std::copy(mine.begin(), mine.end(), all.begin() + static_cast<std::ptrdiff_t>(offset));
      } else if (n > 0) {
        recv<T>(r, kTag, std::span<T>(all.data() + offset, n));
      }
      offset += n;
    }
  } else if (!mine.empty()) {
    send<T>(root, kTag, mine);
  }
  return all;
}

template <typename T>
std::vector<T> Communicator::scatterv(int root, std::span<const T> all,
                                      std::span<const int> counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  AGCM_TRACE_SPAN("comm.scatterv", *ctx_);
  const int p = size();
  AGCM_ASSERT(static_cast<int>(counts.size()) == p);
  constexpr int kTag = kMaxUserTag - 4;
  const auto my_count =
      static_cast<std::size_t>(counts[static_cast<std::size_t>(rank_)]);
  std::vector<T> mine(my_count);
  if (rank_ == root) {
    std::size_t offset = 0;
    for (int r = 0; r < p; ++r) {
      const auto n = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
      if (r == rank_) {
        std::copy(all.begin() + static_cast<std::ptrdiff_t>(offset),
                  all.begin() + static_cast<std::ptrdiff_t>(offset + n),
                  mine.begin());
      } else if (n > 0) {
        send<T>(r, kTag, std::span<const T>(all.data() + offset, n));
      }
      offset += n;
    }
  } else if (my_count > 0) {
    recv<T>(root, kTag, std::span<T>(mine.data(), mine.size()));
  }
  return mine;
}

template <typename T>
std::vector<T> Communicator::allgatherv(std::span<const T> mine,
                                        std::span<const int> counts) const {
  AGCM_TRACE_SPAN("comm.allgatherv", *ctx_);
  std::vector<T> all = gatherv<T>(0, mine, counts);
  std::size_t total = 0;
  for (int c : counts) total += static_cast<std::size_t>(c);
  all.resize(total);
  broadcast<T>(0, std::span<T>(all.data(), all.size()));
  return all;
}

template <typename T>
void Communicator::scan(std::span<const T> in, std::span<T> out,
                        const std::function<T(T, T)>& op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  AGCM_TRACE_SPAN("comm.scan", *ctx_);
  AGCM_ASSERT(in.size() == out.size());
  constexpr int kTag = kMaxUserTag - 6;
  std::copy(in.begin(), in.end(), out.begin());
  if (rank_ > 0) {
    std::vector<T> prefix(in.size());
    recv<T>(rank_ - 1, kTag, prefix);
    charge_flops(static_cast<double>(in.size()));
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = op(prefix[i], out[i]);
  }
  if (rank_ + 1 < size()) {
    send<T>(rank_ + 1, kTag, std::span<const T>(out.data(), out.size()));
  }
}

template <typename T>
std::vector<T> Communicator::reduce_scatter_block(
    std::span<const T> in, int block, const std::function<T(T, T)>& op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  AGCM_TRACE_SPAN("comm.reduce_scatter", *ctx_);
  const int p = size();
  AGCM_ASSERT(static_cast<int>(in.size()) == p * block);
  // Reduce everything to rank 0, then scatter the blocks — the simple
  // portable composition of the era.
  std::vector<T> reduced(in.size());
  reduce<T>(0, in, reduced, op);
  std::vector<int> counts(static_cast<std::size_t>(p), block);
  return scatterv<T>(0, reduced, counts);
}

template <typename T>
std::vector<T> Communicator::alltoallv(std::span<const T> send_data,
                                       std::span<const int> send_counts,
                                       std::span<const int> recv_counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  AGCM_TRACE_SPAN("comm.alltoallv", *ctx_);
  const int p = size();
  AGCM_ASSERT(static_cast<int>(send_counts.size()) == p);
  AGCM_ASSERT(static_cast<int>(recv_counts.size()) == p);
  constexpr int kTag = kMaxUserTag - 5;

  std::vector<std::size_t> send_offsets(static_cast<std::size_t>(p) + 1, 0);
  std::vector<std::size_t> recv_offsets(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    send_offsets[ur + 1] = send_offsets[ur] + static_cast<std::size_t>(send_counts[ur]);
    recv_offsets[ur + 1] = recv_offsets[ur] + static_cast<std::size_t>(recv_counts[ur]);
  }
  AGCM_ASSERT(send_offsets.back() == send_data.size());
  std::vector<T> recv_data(recv_offsets.back());

  // Self block: plain copy, no message.
  {
    const auto ur = static_cast<std::size_t>(rank_);
    std::copy(send_data.begin() + static_cast<std::ptrdiff_t>(send_offsets[ur]),
              send_data.begin() + static_cast<std::ptrdiff_t>(send_offsets[ur + 1]),
              recv_data.begin() + static_cast<std::ptrdiff_t>(recv_offsets[ur]));
  }
  // P-1 rounds of pairwise exchange: in round s we send to (rank+s) and
  // receive from (rank-s).
  for (int s = 1; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    const auto udst = static_cast<std::size_t>(dst);
    const auto usrc = static_cast<std::size_t>(src);
    const auto nsend = send_offsets[udst + 1] - send_offsets[udst];
    const auto nrecv = recv_offsets[usrc + 1] - recv_offsets[usrc];
    if (nsend > 0) {
      send<T>(dst, kTag,
              std::span<const T>(send_data.data() + send_offsets[udst], nsend));
    }
    if (nrecv > 0) {
      recv<T>(src, kTag,
              std::span<T>(recv_data.data() + recv_offsets[usrc], nrecv));
    }
  }
  return recv_data;
}

template <typename PackFn, typename UnpackFn>
void Communicator::alltoallv_packed(std::span<const std::size_t> send_bytes,
                                    std::span<const std::size_t> recv_bytes,
                                    PackFn&& pack, UnpackFn&& unpack) const {
  AGCM_TRACE_SPAN("comm.alltoallv", *ctx_);
  const int p = size();
  AGCM_ASSERT(static_cast<int>(send_bytes.size()) == p);
  AGCM_ASSERT(static_cast<int>(recv_bytes.size()) == p);
  constexpr int kTag = kMaxUserTag - 5;

  // Self block: pooled buffer handed from pack to unpack, no message and no
  // virtual-clock activity — exactly like alltoallv's std::copy.
  {
    const auto ur = static_cast<std::size_t>(rank_);
    AGCM_ASSERT(send_bytes[ur] == recv_bytes[ur]);
    if (send_bytes[ur] > 0) {
      PackedWriter writer(acquire(send_bytes[ur]));
      pack(rank_, writer);
      PackedReader reader(writer.take());
      unpack(rank_, reader);
    }
  }
  // P-1 rounds of pairwise exchange: in round s we send to (rank+s) and
  // receive from (rank-s).
  for (int s = 1; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    const auto nsend = send_bytes[static_cast<std::size_t>(dst)];
    const auto nrecv = recv_bytes[static_cast<std::size_t>(src)];
    if (nsend > 0) {
      PackedWriter writer(acquire(nsend));
      pack(dst, writer);
      send_buffer(dst, kTag, writer.take());
    }
    if (nrecv > 0) {
      PackedReader reader(recv_buffer(src, kTag));
      unpack(src, reader);
    }
  }
}

}  // namespace agcm::comm
