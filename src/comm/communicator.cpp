#include "comm/communicator.hpp"

#include <algorithm>

namespace agcm::comm {

Communicator::Communicator(simnet::RankContext& ctx)
    : ctx_(&ctx), rank_(ctx.rank()), context_id_(0) {
  members_.resize(static_cast<std::size_t>(ctx.nranks()));
  std::iota(members_.begin(), members_.end(), 0);
}

Communicator::Communicator(simnet::RankContext& ctx, std::vector<int> members,
                           int rank, std::int64_t context_id)
    : ctx_(&ctx), members_(std::move(members)), rank_(rank),
      context_id_(context_id) {}

void Communicator::charge_flops(double flops, double cache_efficiency) const {
  ctx_->clock().compute(flops, cache_efficiency);
}

double Communicator::now() const { return ctx_->clock().now(); }

void Communicator::barrier() const {
  AGCM_TRACE_SPAN("comm.barrier", *ctx_);
  const double nothing = 0.0;
  double out = 0.0;
  allreduce<double>(std::span<const double>(&nothing, 1),
                    std::span<double>(&out, 1),
                    [](double a, double b) { return a + b; });
  // After the allreduce every rank has synchronised virtual time with the
  // root's view; additionally align all clocks at the true maximum so a
  // barrier really is a barrier in virtual time.
  const double latest = allreduce_max(ctx_->clock().now());
  ctx_->clock().wait_until(latest);
}

double Communicator::allreduce_sum(double value) const {
  double out = 0.0;
  allreduce<double>(std::span<const double>(&value, 1),
                    std::span<double>(&out, 1),
                    [](double a, double b) { return a + b; });
  return out;
}

double Communicator::allreduce_max(double value) const {
  double out = 0.0;
  allreduce<double>(std::span<const double>(&value, 1),
                    std::span<double>(&out, 1),
                    [](double a, double b) { return std::max(a, b); });
  return out;
}

Communicator Communicator::split(int color, int key) const {
  // Exchange (color, key, old_rank) triples so every rank can compute every
  // group deterministically.
  struct Entry {
    int color;
    int key;
    int old_rank;
  };
  const int p = size();
  const Entry mine{color, key, rank_};
  std::vector<int> ones(static_cast<std::size_t>(p), 1);
  const std::vector<Entry> all = allgatherv<Entry>(
      std::span<const Entry>(&mine, 1), std::span<const int>(ones));

  std::vector<Entry> group;
  for (const Entry& e : all)
    if (e.color == color) group.push_back(e);
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
  });

  std::vector<int> members;
  members.reserve(group.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    members.push_back(
        members_[static_cast<std::size_t>(group[i].old_rank)]);
    if (group[i].old_rank == rank_) my_new_rank = static_cast<int>(i);
  }
  AGCM_ASSERT(my_new_rank >= 0);

  // Child context id must be identical on every member of the same group
  // and distinct between groups. Derive it from the parent context, a
  // per-split sequence number (identical on all ranks since split is
  // collective), and the group's color. The encoding supports up to 15
  // split calls per communicator, 255 colors, and nesting depth ~4 before
  // the combined tag leaves the 48-bit budget; that covers the 2-D process
  // mesh (rows + columns) with room to spare.
  const int seq = next_context_++;
  check_config(seq < 16, "too many split() calls on one communicator");
  check_config(color >= 0 && color < 256, "split color out of range [0,256)");
  const std::int64_t child_context =
      context_id_ * 4096 + seq * 256 + (color + 1);
  check_config(child_context < (std::int64_t{1} << 48),
               "communicator nesting too deep for tag encoding");
  return Communicator(*ctx_, std::move(members), my_new_rank, child_context);
}

}  // namespace agcm::comm
