// Cartesian 2-D process mesh.
//
// The parallel AGCM decomposes the horizontal (latitude x longitude) plane
// over an M x N processor mesh: M processor rows in the latitudinal
// direction, N processor columns in the longitudinal direction (paper,
// Section 3.3). Ranks are row-major: rank = row * N + col.
#pragma once

#include <optional>

#include "comm/communicator.hpp"

namespace agcm::comm {

/// Coordinates of one node in the process mesh.
struct MeshCoord {
  int row = 0;  ///< latitudinal index, 0 = southernmost block row
  int col = 0;  ///< longitudinal index, 0 = westernmost block column
};

/// A 2-D process mesh with row and column sub-communicators.
class Mesh2D {
 public:
  /// Collective over `world`; requires world.size() == rows * cols.
  Mesh2D(const Communicator& world, int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  MeshCoord coord() const { return coord_; }
  int rank_of(MeshCoord c) const { return c.row * cols_ + c.col; }

  const Communicator& world() const { return world_; }
  /// All nodes in my mesh row (shares my latitude band, spans longitudes).
  const Communicator& row_comm() const { return row_comm_; }
  /// All nodes in my mesh column (spans latitude bands).
  const Communicator& col_comm() const { return col_comm_; }

  /// Neighbour world-ranks; longitude wraps around (periodic), latitude
  /// does not (the poles end the domain).
  int west() const;   ///< always valid (periodic)
  int east() const;   ///< always valid (periodic)
  std::optional<int> north() const;  ///< toward higher row; empty at edge
  std::optional<int> south() const;  ///< toward lower row; empty at edge

 private:
  Communicator world_;
  Communicator row_comm_;
  Communicator col_comm_;
  int rows_;
  int cols_;
  MeshCoord coord_;
};

}  // namespace agcm::comm
