// Typed in-place pack/unpack over pooled transport buffers.
//
// PackedWriter fills a pool-acquired Buffer front to back with trivially
// copyable elements; the finished buffer is *moved* into the network
// (Communicator::send_buffer), so a message is packed exactly once, in its
// final wire location. PackedReader walks a received payload in place —
// unpacking reads straight out of the pooled storage, no copy-out vector.
//
// Both sides are cursor-checked: a writer must be filled exactly to its
// declared size before take(), and a reader throws if a read runs past the
// payload — the typed equivalent of the old recv-size-mismatch check.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>

#include "simnet/buffer_pool.hpp"
#include "util/error.hpp"

namespace agcm::comm {

using Buffer = simnet::Buffer;

/// Packs typed elements into a fixed-size pooled buffer.
class PackedWriter {
 public:
  /// Wraps storage whose logical size is the exact wire size of the message.
  explicit PackedWriter(Buffer buffer) : buffer_(std::move(buffer)) {}

  std::size_t size_bytes() const { return buffer_.size(); }
  std::size_t cursor_bytes() const { return cursor_; }
  std::size_t remaining_bytes() const { return buffer_.size() - cursor_; }

  /// Reserves the next `count` elements and returns them for in-place
  /// filling (the zero-copy pack path: memcpy rows straight into the wire
  /// buffer).
  template <typename T>
  std::span<T> append(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t bytes = count * sizeof(T);
    if (bytes > remaining_bytes()) {
      throw CommError("PackedWriter overflow: appending " +
                      std::to_string(bytes) + " bytes with " +
                      std::to_string(remaining_bytes()) + " remaining");
    }
    T* base = reinterpret_cast<T*>(buffer_.data() + cursor_);
    cursor_ += bytes;
    return {base, count};
  }

  /// Copies `values` into the buffer.
  template <typename T>
  void write(std::span<const T> values) {
    auto dst = append<T>(values.size());
    if (!values.empty()) {
      std::memcpy(dst.data(), values.data(), values.size_bytes());
    }
  }

  /// Releases the filled buffer for sending; the writer must be full.
  Buffer take() {
    if (cursor_ != buffer_.size()) {
      throw CommError("PackedWriter::take before the buffer was filled (" +
                      std::to_string(cursor_) + " of " +
                      std::to_string(buffer_.size()) + " bytes)");
    }
    cursor_ = 0;
    return std::move(buffer_);
  }

 private:
  Buffer buffer_;
  std::size_t cursor_ = 0;
};

/// Reads typed elements out of a received payload, in place.
class PackedReader {
 public:
  explicit PackedReader(Buffer buffer) : buffer_(std::move(buffer)) {}

  std::size_t size_bytes() const { return buffer_.size(); }
  std::size_t remaining_bytes() const { return buffer_.size() - cursor_; }

  /// Views the next `count` elements without copying. The payload start is
  /// allocator-aligned and messages are packed homogeneously, so the
  /// in-place view is correctly aligned; debug builds assert it.
  template <typename T>
  std::span<const T> view(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t bytes = count * sizeof(T);
    if (bytes > remaining_bytes()) {
      throw CommError("PackedReader underflow: reading " +
                      std::to_string(bytes) + " bytes with " +
                      std::to_string(remaining_bytes()) + " remaining");
    }
    const T* base = reinterpret_cast<const T*>(buffer_.data() + cursor_);
    AGCM_DBG_ASSERT(reinterpret_cast<std::uintptr_t>(base) % alignof(T) == 0);
    cursor_ += bytes;
    return {base, count};
  }

  /// Copies the next out.size() elements into `out`.
  template <typename T>
  void read(std::span<T> out) {
    auto src = view<T>(out.size());
    if (!out.empty()) {
      std::memcpy(out.data(), src.data(), src.size_bytes());
    }
  }

 private:
  Buffer buffer_;
  std::size_t cursor_ = 0;
};

/// A whole received payload viewed as a typed array; owns the pooled
/// storage, so the span stays valid for the view's lifetime.
template <typename T>
class TypedView {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  explicit TypedView(Buffer buffer) : buffer_(std::move(buffer)) {
    if (buffer_.size() % sizeof(T) != 0) {
      throw CommError("recv_view: payload not a multiple of sizeof(T)");
    }
  }

  std::size_t size() const { return buffer_.size() / sizeof(T); }
  bool empty() const { return buffer_.empty(); }
  const T* data() const {
    return reinterpret_cast<const T*>(buffer_.data());
  }
  const T& operator[](std::size_t i) const { return data()[i]; }
  std::span<const T> values() const { return {data(), size()}; }
  operator std::span<const T>() const { return values(); }

 private:
  Buffer buffer_;
};

}  // namespace agcm::comm
