// Serial tridiagonal and small dense solvers.
//
// Section 5 of the paper lists "fast (parallel) linear system solvers for
// implicit time-differencing schemes" among the reusable components a GCM
// library needs. The serial kernels here back two users: the implicit
// vertical diffusion in the column physics (one small system per column)
// and the reduced interface system of the distributed solver in
// distributed.hpp.
#pragma once

#include <span>
#include <vector>

namespace agcm::linsolve {

/// Solves the tridiagonal system
///   a[i] x[i-1] + b[i] x[i] + c[i] x[i+1] = d[i],  i = 0..n-1,
/// with a[0] and c[n-1] ignored. Requires (and asserts in debug builds)
/// non-zero pivots, which diagonal dominance guarantees. O(n), the Thomas
/// algorithm.
std::vector<double> thomas_solve(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<const double> c,
                                 std::span<const double> d);

/// Allocation-free Thomas solve into caller-provided storage: writes the
/// solution to `x` using `cp` (length n) as scratch. `x` MAY alias `d` —
/// the forward sweep reads d[i] before writing x[i], so solving a profile
/// in place costs no copy. Bitwise identical to thomas_solve (same
/// operation order; tested in tests/test_linsolve.cpp). The physics column
/// engine routes its vertical-diffusion solves through this with
/// KernelWorkspace scratch (docs/kernels.md).
void thomas_solve_into(std::span<const double> a, std::span<const double> b,
                       std::span<const double> c, std::span<const double> d,
                       std::span<double> x, std::span<double> cp);

/// Same system but periodic: a[0] couples x[0] to x[n-1] and c[n-1]
/// couples x[n-1] to x[0] (a zonal circle). Sherman-Morrison reduction to
/// two Thomas solves; n >= 3.
std::vector<double> periodic_thomas_solve(std::span<const double> a,
                                          std::span<const double> b,
                                          std::span<const double> c,
                                          std::span<const double> d);

/// Dense Gaussian elimination with partial pivoting; `matrix` is row-major
/// n x n (consumed), `rhs` length n. Intended for the small reduced systems
/// of the distributed solver (2P unknowns), not large problems. Throws
/// ConfigError on singular matrices.
std::vector<double> dense_solve(std::vector<double> matrix,
                                std::vector<double> rhs);

/// Flop counts for the virtual clock.
double thomas_flops(int n);
double periodic_thomas_flops(int n);

}  // namespace agcm::linsolve
