#include "linsolve/distributed.hpp"

#include <array>
#include <cmath>

#include "util/error.hpp"

namespace agcm::linsolve {

namespace {

/// Solves a banded system with half-bandwidth 2 (the reduced interface
/// system is pentadiagonal in its natural ordering), no pivoting —
/// diagonal dominance of the original system carries over. Band storage:
/// band[r][off] = A(r, r + off - 2), off in [0, 4].
std::vector<double> banded5_solve(
    std::vector<std::array<double, 5>>& band, std::vector<double>& rhs) {
  const std::size_t n = rhs.size();
  auto at = [&](std::size_t r, std::size_t col) -> double& {
    AGCM_DBG_ASSERT(col + 2 >= r && col <= r + 2);
    return band[r][col + 2 - r];
  };
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = at(k, k);
    check_config(std::abs(pivot) > 1.0e-300,
                 "distributed tridiagonal: singular reduced system");
    for (std::size_t r = k + 1; r < std::min(n, k + 3); ++r) {
      const double m = at(r, k) / pivot;
      if (m == 0.0) continue;
      for (std::size_t col = k; col < std::min(n, k + 3); ++col)
        at(r, col) -= m * at(k, col);
      rhs[r] -= m * rhs[k];
      at(r, k) = 0.0;
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = rhs[i];
    for (std::size_t col = i + 1; col < std::min(n, i + 3); ++col)
      acc -= at(i, col) * x[col];
    x[i] = acc / at(i, i);
  }
  return x;
}

/// Local two-sweep elimination for one system: on return every local row i
/// satisfies  fl[i] x_L + bb[i] x_i + fr[i] x_R = dd[i].
struct Eliminated {
  std::vector<double> bb, dd, fl, fr;
};

Eliminated eliminate_local(int p, int me, std::span<const double> a,
                           std::span<const double> b,
                           std::span<const double> c,
                           std::span<const double> d) {
  const std::size_t n = b.size();
  Eliminated e;
  e.bb.assign(b.begin(), b.end());
  e.dd.assign(d.begin(), d.end());
  e.fl.assign(n, 0.0);
  e.fr.assign(n, 0.0);
  std::vector<double> cc(c.begin(), c.end());
  if (me > 0) e.fl[0] = a[0];
  if (me + 1 < p) e.fr[n - 1] = cc[n - 1];
  if (me + 1 == p) cc[n - 1] = 0.0;

  for (std::size_t i = 1; i < n; ++i) {  // forward sweep
    AGCM_DBG_ASSERT(e.bb[i - 1] != 0.0);
    const double m = a[i] / e.bb[i - 1];
    e.bb[i] -= m * cc[i - 1];
    e.fl[i] -= m * e.fl[i - 1];
    e.dd[i] -= m * e.dd[i - 1];
  }
  for (std::size_t i = n - 1; i-- > 0;) {  // backward sweep
    AGCM_DBG_ASSERT(e.bb[i + 1] != 0.0);
    const double m = cc[i] / e.bb[i + 1];
    e.fl[i] -= m * e.fl[i + 1];
    e.fr[i] -= m * e.fr[i + 1];
    e.dd[i] -= m * e.dd[i + 1];
    cc[i] = 0.0;
  }
  return e;
}

}  // namespace

std::vector<double> distributed_tridiagonal_solve_many(
    const comm::Communicator& comm, int m, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d) {
  check_config(m >= 1, "need at least one system");
  check_config(b.size() % static_cast<std::size_t>(m) == 0,
               "array length must be m * n");
  const std::size_t n = b.size() / static_cast<std::size_t>(m);
  AGCM_ASSERT(a.size() == b.size() && c.size() == b.size() &&
              d.size() == b.size());
  check_config(n >= 1, "every rank needs at least one row per system");
  const int p = comm.size();
  const int me = comm.rank();

  // Local eliminations (no communication).
  std::vector<Eliminated> locals;
  locals.reserve(static_cast<std::size_t>(m));
  for (int q = 0; q < m; ++q) {
    const std::size_t off = static_cast<std::size_t>(q) * n;
    locals.push_back(eliminate_local(p, me, a.subspan(off, n),
                                     b.subspan(off, n), c.subspan(off, n),
                                     d.subspan(off, n)));
  }
  comm.charge_flops(12.0 * static_cast<double>(n) * m);

  // One gather carries every system's interface rows: per system 9 doubles
  // [fl0 b0 fr0 d0 fln bn frn dn n].
  std::vector<double> contribution;
  contribution.reserve(static_cast<std::size_t>(m) * 9);
  for (const Eliminated& e : locals) {
    contribution.insert(contribution.end(),
                        {e.fl[0], e.bb[0], e.fr[0], e.dd[0], e.fl[n - 1],
                         e.bb[n - 1], e.fr[n - 1], e.dd[n - 1],
                         static_cast<double>(n)});
  }
  std::vector<int> counts(static_cast<std::size_t>(p), 9 * m);
  const std::vector<double> all = comm.gatherv<double>(0, contribution, counts);

  // Root: m independent reduced systems, each pentadiagonal with at most
  // 2P unknowns; returns per rank and system [x_first x_last x_left x_right].
  std::vector<double> interface_info;
  if (me == 0) {
    interface_info.resize(static_cast<std::size_t>(p) *
                          static_cast<std::size_t>(m) * 4);
    for (int q = 0; q < m; ++q) {
      auto entry = [&](int rank, int field) {
        return all[static_cast<std::size_t>(rank) * 9 *
                       static_cast<std::size_t>(m) +
                   static_cast<std::size_t>(q) * 9 +
                   static_cast<std::size_t>(field)];
      };
      std::vector<std::size_t> u_first(static_cast<std::size_t>(p));
      std::vector<std::size_t> u_last(static_cast<std::size_t>(p));
      std::size_t nu = 0;
      for (int r = 0; r < p; ++r) {
        u_first[static_cast<std::size_t>(r)] = nu;
        u_last[static_cast<std::size_t>(r)] =
            entry(r, 8) > 1.5 ? nu + 1 : nu;
        nu = u_last[static_cast<std::size_t>(r)] + 1;
      }
      std::vector<std::array<double, 5>> band(nu, {0, 0, 0, 0, 0});
      std::vector<double> rhs(nu, 0.0);
      auto add = [&](std::size_t row, std::size_t col, double v) {
        AGCM_ASSERT(col + 2 >= row && col <= row + 2);
        band[row][col + 2 - row] += v;
      };
      for (int r = 0; r < p; ++r) {
        const bool two_rows = entry(r, 8) > 1.5;
        const std::size_t rf = u_first[static_cast<std::size_t>(r)];
        const std::size_t rl = u_last[static_cast<std::size_t>(r)];
        if (r > 0) add(rf, u_last[static_cast<std::size_t>(r - 1)], entry(r, 0));
        add(rf, rf, entry(r, 1));
        if (r + 1 < p) add(rf, u_first[static_cast<std::size_t>(r + 1)], entry(r, 2));
        rhs[rf] += entry(r, 3);
        if (two_rows) {
          if (r > 0) add(rl, u_last[static_cast<std::size_t>(r - 1)], entry(r, 4));
          add(rl, rl, entry(r, 5));
          if (r + 1 < p) add(rl, u_first[static_cast<std::size_t>(r + 1)], entry(r, 6));
          rhs[rl] += entry(r, 7);
        }
      }
      const std::vector<double> u = banded5_solve(band, rhs);
      for (int r = 0; r < p; ++r) {
        double* out = interface_info.data() +
                      (static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(m) +
                       static_cast<std::size_t>(q)) *
                          4;
        out[0] = u[u_first[static_cast<std::size_t>(r)]];
        out[1] = u[u_last[static_cast<std::size_t>(r)]];
        out[2] = r > 0 ? u[u_last[static_cast<std::size_t>(r - 1)]] : 0.0;
        out[3] = r + 1 < p ? u[u_first[static_cast<std::size_t>(r + 1)]] : 0.0;
      }
    }
    comm.charge_flops(25.0 * 2.0 * static_cast<double>(p) * m);
  }
  std::vector<int> fours(static_cast<std::size_t>(p), 4 * m);
  const std::vector<double> mine =
      comm.scatterv<double>(0, interface_info, fours);

  // Local back substitution for every system.
  std::vector<double> x(b.size());
  for (int q = 0; q < m; ++q) {
    const Eliminated& e = locals[static_cast<std::size_t>(q)];
    const double* iface = mine.data() + static_cast<std::size_t>(q) * 4;
    const std::size_t off = static_cast<std::size_t>(q) * n;
    x[off] = iface[0];
    x[off + n - 1] = iface[1];
    for (std::size_t i = 1; i + 1 < n; ++i) {
      AGCM_DBG_ASSERT(e.bb[i] != 0.0);
      x[off + i] =
          (e.dd[i] - e.fl[i] * iface[2] - e.fr[i] * iface[3]) / e.bb[i];
    }
  }
  comm.charge_flops(5.0 * static_cast<double>(n) * m);
  return x;
}

std::vector<double> distributed_tridiagonal_solve(
    const comm::Communicator& comm, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d) {
  return distributed_tridiagonal_solve_many(comm, 1, a, b, c, d);
}

std::vector<double> distributed_periodic_tridiagonal_solve_many(
    const comm::Communicator& comm, int m, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d) {
  check_config(m >= 1, "need at least one system");
  check_config(b.size() % static_cast<std::size_t>(m) == 0,
               "array length must be m * n");
  const std::size_t n = b.size() / static_cast<std::size_t>(m);
  const int p = comm.size();
  const int me = comm.rank();
  const double n_global = comm.allreduce_sum(static_cast<double>(n));
  check_config(n_global >= 3.0, "periodic distributed solve needs N >= 3");

  // Sherman-Morrison per system. The corner entries a_first (rank 0) and
  // c_last (rank p-1) travel in one broadcast each, batched over systems.
  std::vector<double> corner_a(static_cast<std::size_t>(m), 0.0);
  std::vector<double> corner_c(static_cast<std::size_t>(m), 0.0);
  std::vector<double> gamma(static_cast<std::size_t>(m), 0.0);
  if (me == 0) {
    for (int q = 0; q < m; ++q) {
      corner_a[static_cast<std::size_t>(q)] = a[static_cast<std::size_t>(q) * n];
      gamma[static_cast<std::size_t>(q)] = -b[static_cast<std::size_t>(q) * n];
    }
  }
  if (me == p - 1) {
    for (int q = 0; q < m; ++q)
      corner_c[static_cast<std::size_t>(q)] =
          c[static_cast<std::size_t>(q) * n + n - 1];
  }
  comm.broadcast<double>(0, corner_a);
  comm.broadcast<double>(0, gamma);
  comm.broadcast<double>(p - 1, corner_c);
  for (double g : gamma)
    check_config(g != 0.0, "periodic distributed solve: zero b[0]");

  std::vector<double> bb(b.begin(), b.end());
  std::vector<double> u(b.size(), 0.0);
  for (int q = 0; q < m; ++q) {
    const auto uq = static_cast<std::size_t>(q);
    const std::size_t off = uq * n;
    if (me == 0) {
      bb[off] -= gamma[uq];
      u[off] = gamma[uq];
    }
    if (me == p - 1) {
      bb[off + n - 1] -= corner_c[uq] * corner_a[uq] / gamma[uq];
      u[off + n - 1] = corner_c[uq];
    }
  }

  const auto y = distributed_tridiagonal_solve_many(comm, m, a, bb, c, d);
  const auto z = distributed_tridiagonal_solve_many(comm, m, a, bb, c, u);

  // v^T y and v^T z for every system via one allreduce of 2m doubles.
  std::vector<double> dots(2 * static_cast<std::size_t>(m), 0.0);
  for (int q = 0; q < m; ++q) {
    const auto uq = static_cast<std::size_t>(q);
    const std::size_t off = uq * n;
    if (me == 0) {
      dots[2 * uq] += y[off];
      dots[2 * uq + 1] += z[off];
    }
    if (me == p - 1) {
      const double scale = corner_a[uq] / gamma[uq];
      dots[2 * uq] += scale * y[off + n - 1];
      dots[2 * uq + 1] += scale * z[off + n - 1];
    }
  }
  std::vector<double> summed(dots.size());
  comm.allreduce<double>(dots, summed, [](double x1, double x2) { return x1 + x2; });

  std::vector<double> x(b.size());
  for (int q = 0; q < m; ++q) {
    const auto uq = static_cast<std::size_t>(q);
    const double vz = 1.0 + summed[2 * uq + 1];
    check_config(vz != 0.0, "periodic distributed solve: singular update");
    const double factor = summed[2 * uq] / vz;
    const std::size_t off = uq * n;
    for (std::size_t i = 0; i < n; ++i) x[off + i] = y[off + i] - factor * z[off + i];
  }
  comm.charge_flops(2.0 * static_cast<double>(n) * m);
  return x;
}

std::vector<double> distributed_periodic_tridiagonal_solve(
    const comm::Communicator& comm, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d) {
  return distributed_periodic_tridiagonal_solve_many(comm, 1, a, b, c, d);
}

}  // namespace agcm::linsolve
