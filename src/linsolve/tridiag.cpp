#include "linsolve/tridiag.hpp"

#include <algorithm>
#include <cmath>

#include "singlenode/miniblas.hpp"
#include "util/error.hpp"

namespace agcm::linsolve {

std::vector<double> thomas_solve(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<const double> c,
                                 std::span<const double> d) {
  const std::size_t n = b.size();
  AGCM_ASSERT(n >= 1);
  // dp is stored straight into x (thomas_solve_into merges the two), which
  // performs the seed algorithm's operations in the seed order — results
  // are bitwise identical to the historical two-scratch implementation.
  std::vector<double> cp(n), x(n);
  thomas_solve_into(a, b, c, d, x, cp);
  return x;
}

void thomas_solve_into(std::span<const double> a, std::span<const double> b,
                       std::span<const double> c, std::span<const double> d,
                       std::span<double> x, std::span<double> cp) {
  const std::size_t n = b.size();
  AGCM_ASSERT(a.size() == n && c.size() == n && d.size() == n);
  AGCM_ASSERT(x.size() == n && cp.size() == n);
  AGCM_ASSERT(n >= 1);
  AGCM_DBG_ASSERT(b[0] != 0.0);
  // Forward sweep; x holds dp. Reading d[i] strictly before writing x[i]
  // makes d == x aliasing safe (the in-place profile solve).
  cp[0] = c[0] / b[0];
  x[0] = d[0] / b[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = b[i] - a[i] * cp[i - 1];
    AGCM_DBG_ASSERT(denom != 0.0);
    cp[i] = c[i] / denom;
    x[i] = (d[i] - a[i] * x[i - 1]) / denom;
  }
  // Back substitution in place: x[i] still holds dp[i] when read.
  for (std::size_t i = n - 1; i-- > 0;) x[i] = x[i] - cp[i] * x[i + 1];
}

std::vector<double> periodic_thomas_solve(std::span<const double> a,
                                          std::span<const double> b,
                                          std::span<const double> c,
                                          std::span<const double> d) {
  const std::size_t n = b.size();
  check_config(n >= 3, "periodic tridiagonal solve needs n >= 3");
  AGCM_ASSERT(a.size() == n && c.size() == n && d.size() == n);
  // Sherman-Morrison: write A = B + u v^T with
  //   u = (gamma, 0, ..., 0, c[n-1])^T, v = (1, 0, ..., 0, a[0]/gamma)^T,
  // where B is A with b[0] -= gamma and b[n-1] -= c[n-1]*a[0]/gamma. Then
  //   x = y - (v^T y) / (1 + v^T z) * z,  B y = d,  B z = u.
  const double gamma = -b[0];
  std::vector<double> bb(b.begin(), b.end());
  bb[0] -= gamma;
  bb[n - 1] -= c[n - 1] * a[0] / gamma;

  std::vector<double> u(n, 0.0);
  u[0] = gamma;
  u[n - 1] = c[n - 1];

  const auto y = thomas_solve(a, bb, c, d);
  const auto z = thomas_solve(a, bb, c, u);

  const double vy = y[0] + a[0] / gamma * y[n - 1];
  const double vz = 1.0 + z[0] + a[0] / gamma * z[n - 1];
  AGCM_DBG_ASSERT(vz != 0.0);
  const double factor = vy / vz;

  // x = y - factor * z via mini-BLAS. daxpy with alpha = -factor computes
  // y[i] + (-factor) * z[i], which is bitwise y[i] - factor * z[i] (IEEE
  // negation is exact), so the BLAS form changes no bits.
  std::vector<double> x(n);
  singlenode::dcopy_strided(n, y.data(), 1, x.data(), 1);
  singlenode::daxpy_strided(n, -factor, z.data(), 1, x.data(), 1);
  return x;
}

std::vector<double> dense_solve(std::vector<double> matrix,
                                std::vector<double> rhs) {
  const std::size_t n = rhs.size();
  check_config(matrix.size() == n * n, "dense_solve: matrix must be n x n");
  auto at = [&](std::size_t r, std::size_t col) -> double& {
    return matrix[r * n + col];
  };
  // Forward elimination with partial pivoting.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    for (std::size_t r = k + 1; r < n; ++r)
      if (std::abs(at(r, k)) > std::abs(at(pivot, k))) pivot = r;
    if (std::abs(at(pivot, k)) < 1.0e-300)
      throw ConfigError("dense_solve: singular matrix");
    if (pivot != k) {
      for (std::size_t col = k; col < n; ++col)
        std::swap(at(pivot, col), at(k, col));
      std::swap(rhs[pivot], rhs[k]);
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = at(r, k) / at(k, k);
      if (m == 0.0) continue;
      for (std::size_t col = k; col < n; ++col) at(r, col) -= m * at(k, col);
      rhs[r] -= m * rhs[k];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = rhs[i];
    for (std::size_t col = i + 1; col < n; ++col) acc -= at(i, col) * x[col];
    x[i] = acc / at(i, i);
  }
  return x;
}

double thomas_flops(int n) { return 8.0 * n; }

double periodic_thomas_flops(int n) { return 2.0 * thomas_flops(n) + 10.0; }

}  // namespace agcm::linsolve
