// Distributed tridiagonal solver (Wang's partition method).
//
// One global tridiagonal system is split into contiguous row blocks across
// the ranks of a communicator. Each rank eliminates its interior unknowns
// (a forward and a backward sweep that leave every local row coupled only
// to the block's two interface neighbours), the 2P-unknown reduced system
// is gathered and solved on rank 0 (it is tiny), and the interfaces are
// broadcast for the final local back-substitution.
//
// This is the "fast (parallel) linear system solver for implicit
// time-differencing schemes" of the paper's Section 5 component list: an
// implicit zonal diffusion or semi-implicit gravity-wave step produces
// exactly such systems along decomposed grid lines.
#pragma once

#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace agcm::linsolve {

/// Solves the global system whose rows are distributed as contiguous
/// blocks in rank order; this rank holds rows [offset, offset+n) with
/// local arrays a/b/c/d of length n (a[0] couples to the previous rank's
/// last unknown, c[n-1] to the next rank's first; both are ignored at the
/// global ends). Requires diagonal dominance (no pivoting in the local
/// sweeps) and n >= 1 on every rank. Returns this rank's slice of x.
/// Collective.
std::vector<double> distributed_tridiagonal_solve(
    const comm::Communicator& comm, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d);

/// Periodic variant: the global first row's a couples to the global last
/// unknown and vice versa (a latitude circle). Sherman-Morrison on top of
/// two non-periodic distributed solves plus one small allreduce. Global
/// size must be >= 3. Collective.
std::vector<double> distributed_periodic_tridiagonal_solve(
    const comm::Communicator& comm, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d);

/// Batched variants: `m` independent systems with the same block partition
/// solved in ONE round of communication — the latency amortisation that
/// makes the implicit zonal filter competitive (an unbatched loop pays the
/// reduced-system gather per line; see bench_ablation_comm). System q
/// occupies [q*n, (q+1)*n) of each array; the result is laid out the same
/// way. Every rank must pass the same m.
std::vector<double> distributed_tridiagonal_solve_many(
    const comm::Communicator& comm, int m, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d);

std::vector<double> distributed_periodic_tridiagonal_solve_many(
    const comm::Communicator& comm, int m, std::span<const double> a,
    std::span<const double> b, std::span<const double> c,
    std::span<const double> d);

}  // namespace agcm::linsolve
