#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "comm/mesh2d.hpp"
#include "simnet/machine.hpp"
#include "trace/histogram.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace agcm::core {

namespace {

/// Everything one rank accumulates for the report.
struct RankOutcome {
  ComponentTimes accumulated;  ///< summed over timed steps
  std::vector<ComponentTimes> step_samples;  ///< one entry per timed step
  double physics_flops_last = 0.0;
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  double mass_start = 0.0;
  double mass_end = 0.0;
  double max_zonal_courant = 0.0;
  double max_gravity_courant = 0.0;
  double filter_setup_sec = 0.0;
};

}  // namespace

RunReport run_model(const ModelConfig& config, int steps, int warmup_steps) {
  check_config(steps > 0, "need at least one timed step");
  check_config(warmup_steps >= 0, "warmup_steps must be >= 0");

  simnet::Machine machine(config.machine);
  machine.set_recv_timeout_ms(config.recv_timeout_ms);
  machine.set_backend(config.simnet_backend);
  machine.set_workers(config.simnet_workers);
  const int nranks = config.nranks();

  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(nranks));

  // A fresh trace per run. Cheap no-ops when tracing is disabled; the
  // tracer itself never touches any virtual clock, so enabling it changes
  // virtual-time results by exactly zero.
  if (trace::enabled()) {
    trace::Tracer::instance().begin_run(nranks);
    trace::MetricsRegistry::instance().reset();
  }

  const simnet::RunResult run_result =
      machine.run(nranks, [&](simnet::RankContext& ctx) {
    // Whole-program span: starts with a zeroed clock, so its split delta is
    // bitwise equal to the rank's final TimeBreakdown.
    AGCM_TRACE_SPAN("model.rank", ctx);
    comm::Communicator world(ctx);
    comm::Mesh2D mesh(world, config.mesh_rows, config.mesh_cols);
    const grid::LatLonGrid grid(config.nlon, config.nlat, config.nlev);
    const grid::Decomp2D decomp(config.nlon, config.nlat, config.mesh_rows,
                                config.mesh_cols);

    dynamics::DynamicsConfig dyn_cfg;
    dyn_cfg.dt_sec = config.dt_sec;
    dyn_cfg.time_scheme = config.time_scheme;
    dyn_cfg.use_polar_filter = config.use_polar_filter;
    dyn_cfg.filter_algorithm = config.filter_algorithm;
    dyn_cfg.optimized_advection = config.optimized_advection;

    // Pre-processing (excluded from step timing, as in the paper): filter
    // plan setup happens inside the Dynamics constructor.
    const double setup_t0 = world.now();
    std::optional<trace::ScopedSpan> setup_span;
    if (trace::enabled()) setup_span.emplace("model.setup", ctx);
    dynamics::Dynamics dyn(mesh, decomp, grid, dyn_cfg);
    setup_span.reset();
    const double setup_cost = world.now() - setup_t0;

    physics::PhysicsConfig phys_cfg;
    phys_cfg.column.nlev = config.nlev;
    phys_cfg.column.dt_sec = config.dt_sec;
    phys_cfg.column.seed = config.seed;
    phys_cfg.column.solar_declination_rad =
        physics::regime_declination_rad(config.physics_regime);
    phys_cfg.load_balance = config.physics_load_balance;
    phys_cfg.lb_scheme = config.lb_scheme;
    phys_cfg.lb_options = config.lb_options;
    physics::Physics phys(mesh, decomp, grid, phys_cfg);

    dynamics::State state(decomp.box(mesh.coord()), config.nlev);
    dynamics::initialize_state(state, grid, decomp.box(mesh.coord()),
                               config.seed);

    RankOutcome& out = outcomes[static_cast<std::size_t>(world.rank())];
    out.filter_setup_sec = setup_cost;
    out.mass_start = dyn.total_mass(state);

    physics::PhysicsStepStats phys_stats;
    for (int s = 0; s < warmup_steps + steps; ++s) {
      const bool timed = s >= warmup_steps;
      std::optional<trace::ScopedSpan> step_span;
      if (trace::enabled())
        step_span.emplace(timed ? "model.step" : "model.warmup", ctx);

      dyn.step(state);  // barriers internally after the filter phase
      world.barrier();  // dynamics/physics component boundary
      const auto dyn_t = dyn.last_timings();

      double phys_compute = 0.0;
      double phys_balance = 0.0;
      if (config.physics_enabled) {
        phys_stats = phys.step(state);
        // Component boundary. The barrier realises the imbalance: the slow
        // rank's compute time becomes everyone's time, and the report's
        // max-over-ranks per-component reduction attributes it to physics —
        // exactly like the paper's component timings.
        world.barrier();
        phys_compute = phys.last_timings().compute_sec;
        phys_balance = phys.last_timings().balance_sec;
      }

      if (timed) {
        out.accumulated.filter += dyn_t.filter_sec;
        out.accumulated.halo += dyn_t.halo_sec;
        out.accumulated.fd += dyn_t.fd_sec;
        out.accumulated.physics_compute += phys_compute;
        out.accumulated.physics_balance += phys_balance;
        // Per-(rank, step) sample for the tail percentiles; pure
        // bookkeeping, never touches any virtual clock.
        out.step_samples.push_back({dyn_t.filter_sec, dyn_t.halo_sec,
                                    dyn_t.fd_sec, phys_compute,
                                    phys_balance});
        out.physics_flops_last = phys.last_timings().local_flops;
        out.imbalance_before = phys_stats.imbalance_before;
        out.imbalance_after = phys_stats.imbalance_after;
      }
    }

    out.mass_end = dyn.total_mass(state);
    out.max_zonal_courant = dyn.max_zonal_courant(state);
    out.max_gravity_courant = dyn.max_gravity_courant(state);
  });


  RunReport report;
  report.steps = steps;
  report.steps_per_day = config.steps_per_day();

  // Max over ranks of per-step averages: with barriers at the component
  // boundaries, the max-rank time per component is what the whole machine
  // pays for that component.
  for (const RankOutcome& out : outcomes) {
    const double inv = 1.0 / steps;
    report.per_step.filter =
        std::max(report.per_step.filter, out.accumulated.filter * inv);
    report.per_step.halo =
        std::max(report.per_step.halo, out.accumulated.halo * inv);
    report.per_step.fd = std::max(report.per_step.fd, out.accumulated.fd * inv);
    report.per_step.physics_compute =
        std::max(report.per_step.physics_compute,
                 out.accumulated.physics_compute * inv);
    report.per_step.physics_balance =
        std::max(report.per_step.physics_balance,
                 out.accumulated.physics_balance * inv);
    report.rank_physics_flops.push_back(out.physics_flops_last);
    report.filter_setup_sec =
        std::max(report.filter_setup_sec, out.filter_setup_sec);
  }
  // Tail percentiles over every (rank, timed step) sample. The log-binned
  // histogram makes them order-independent, so concurrent campaign serving
  // reproduces them bit-for-bit.
  {
    trace::LogHistogram filter_h, halo_h, fd_h, compute_h, balance_h;
    for (const RankOutcome& out : outcomes) {
      for (const ComponentTimes& sample : out.step_samples) {
        filter_h.add(sample.filter);
        halo_h.add(sample.halo);
        fd_h.add(sample.fd);
        compute_h.add(sample.physics_compute);
        balance_h.add(sample.physics_balance);
      }
    }
    const auto summarize = [](const trace::LogHistogram& h) {
      return PhasePercentiles{h.percentile(50.0), h.percentile(95.0),
                              h.percentile(99.0)};
    };
    report.percentiles.filter = summarize(filter_h);
    report.percentiles.halo = summarize(halo_h);
    report.percentiles.fd = summarize(fd_h);
    report.percentiles.physics_compute = summarize(compute_h);
    report.percentiles.physics_balance = summarize(balance_h);
  }

  report.physics_imbalance_before = outcomes.front().imbalance_before;
  report.physics_imbalance_after = outcomes.front().imbalance_after;

  const double m0 = outcomes.front().mass_start;
  const double m1 = outcomes.front().mass_end;
  report.mass_drift_rel = m0 != 0.0 ? std::abs(m1 - m0) / std::abs(m0) : 0.0;
  report.max_zonal_courant = outcomes.front().max_zonal_courant;
  report.max_gravity_courant = outcomes.front().max_gravity_courant;
  report.total_messages = run_result.total_messages;
  report.total_bytes = run_result.total_bytes;
  report.rank_breakdowns = run_result.breakdowns;
  return report;
}

}  // namespace agcm::core
