// Shared `key = value` -> ModelConfig loader, used by the agcm_run example
// and every bench binary's config-file mode, so the config dialect is
// defined exactly once. See configs/*.cfg and docs/observability.md for the
// recognised keys (grid/mesh/machine/scheme plus the trace_* options).
#pragma once

#include <string>

#include "core/model.hpp"
#include "io/config.hpp"

namespace agcm::core {

/// One full run request parsed from a config file: the model itself plus
/// step counts and the tracing options.
struct RunSpec {
  ModelConfig model;
  int steps = 4;
  int warmup_steps = 1;

  // Observability (off by default; see docs/observability.md):
  //   trace        = true|false   enable the virtual-time tracer for the run
  //   trace_json   = <path>       write a Chrome trace (implies trace)
  //   trace_csv    = <path>       write the flat span CSV (implies trace)
  bool trace = false;
  std::string trace_json_path;
  std::string trace_csv_path;
};

/// Individual enum parsers (throw ConfigError on unknown names).
filter::FilterAlgorithm parse_filter_algorithm(const std::string& name);
dynamics::TimeScheme parse_time_scheme(const std::string& name);
simnet::MachineProfile parse_machine_profile(const std::string& name);
/// Accepts the canonical names plus the paper's "scheme1" / "scheme2" /
/// "scheme3" aliases.
lb::Scheme parse_lb_scheme(const std::string& name);
physics::PhysicsRegime parse_physics_regime(const std::string& name);
simnet::SimBackend parse_sim_backend(const std::string& name);

/// Builds a RunSpec from a parsed config. Does not check unused_keys();
/// callers that want typo warnings do that themselves after any extra keys
/// of their own.
RunSpec run_spec_from(const io::Config& config);

/// Convenience: from_file + run_spec_from.
RunSpec run_spec_from_file(const std::string& path);

}  // namespace agcm::core
