#include "core/whatif.hpp"

#include "filter/variants.hpp"

namespace agcm::core {

perfmodel::Point point_from(const ModelConfig& config) {
  perfmodel::Point p;
  p.nlon = config.nlon;
  p.nlat = config.nlat;
  p.nlev = config.nlev;
  p.mesh_rows = config.mesh_rows;
  p.mesh_cols = config.mesh_cols;
  p.lb_enabled = config.physics_enabled && config.physics_load_balance;
  p.lb_rounds = p.lb_enabled ? config.lb_options.max_iterations : 0;
  p.machine = config.machine.name;
  p.filter_backend = std::string(filter::algorithm_name(config.filter_algorithm));
  p.flops_per_sec = config.machine.flops_per_sec;
  p.mem_bytes_per_sec = config.machine.mem_bytes_per_sec;
  p.msg_latency_sec = config.machine.msg_latency_sec;
  p.link_bytes_per_sec = config.machine.link_bytes_per_sec;
  p.send_overhead_sec = config.machine.send_overhead_sec;
  p.recv_overhead_sec = config.machine.recv_overhead_sec;
  p.loop_startup_elems = config.machine.loop_startup_elems;
  return p;
}

perfmodel::Observation observation_from(const ModelConfig& config,
                                        const RunReport& report) {
  perfmodel::Observation obs;
  obs.point = point_from(config);
  obs.actual.filter = report.per_step.filter;
  obs.actual.halo = report.per_step.halo;
  obs.actual.fd = report.per_step.fd;
  obs.actual.physics_compute = report.per_step.physics_compute;
  obs.actual.physics_balance = report.per_step.physics_balance;
  obs.filter_enabled = config.use_polar_filter;
  obs.physics_enabled = config.physics_enabled;
  return obs;
}

perfmodel::Prediction predict_config(const perfmodel::PredictModel& model,
                                     const ModelConfig& config) {
  return perfmodel::predict(model, point_from(config), config.use_polar_filter,
                            config.physics_enabled);
}

}  // namespace agcm::core
