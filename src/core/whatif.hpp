// What-if adapter: ModelConfig <-> perfmodel prediction coordinates.
//
// perfmodel sits below core in the layering (it knows nothing about
// ModelConfig, filter enums or machine profiles), so the conversion from a
// run request to a prediction Point — and the convenience of predicting a
// configured run, or turning a finished run into a training observation —
// lives here.
#pragma once

#include "core/model.hpp"
#include "perfmodel/predict.hpp"

namespace agcm::core {

/// The prediction coordinate of a configuration: mesh/resolution, the
/// filter backend token, the LB rounds, and the machine scalars.
perfmodel::Point point_from(const ModelConfig& config);

/// A finished run as a training/validation observation (the five per-step
/// component times, max over ranks).
perfmodel::Observation observation_from(const ModelConfig& config,
                                        const RunReport& report);

/// Predicts the per-step component times of `config` without running it.
/// Throws std::invalid_argument when the model lacks a predictor the
/// configuration needs (e.g. an untrained filter backend).
perfmodel::Prediction predict_config(const perfmodel::PredictModel& model,
                                     const ModelConfig& config);

}  // namespace agcm::core
