// The assembled parallel AGCM: Dynamics + Physics on the virtual
// multicomputer, with the paper's component-level timing.
//
// run_model launches one SPMD program per virtual node, integrates the
// model for a number of steps, and reports per-component virtual times the
// way the paper does: component boundaries are synchronisation points, so
// a component's cost includes the load-imbalance wait it causes.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamics/dynamics.hpp"
#include "loadbalance/schemes.hpp"
#include "physics/physics.hpp"
#include "simnet/machine.hpp"
#include "simnet/machine_profile.hpp"
#include "simnet/virtual_clock.hpp"

namespace agcm::core {

struct ModelConfig {
  // Grid: the paper's 2 x 2.5 degree resolution with 9 or 15 layers.
  int nlon = 144;
  int nlat = 90;
  int nlev = 9;
  // Node mesh: rows partition latitude, cols partition longitude.
  int mesh_rows = 1;
  int mesh_cols = 1;

  double dt_sec = 450.0;  ///< 192 steps per simulated day
  dynamics::TimeScheme time_scheme = dynamics::TimeScheme::kForwardBackward;
  bool use_polar_filter = true;
  filter::FilterAlgorithm filter_algorithm =
      filter::FilterAlgorithm::kFftBalanced;

  bool physics_enabled = true;
  bool physics_load_balance = false;
  /// Scheme run when physics_load_balance is on; pairwise (Scheme 3)
  /// preserves the flag's historical meaning. The `lb_scheme` config key
  /// drives both fields (none => balancing off).
  lb::Scheme lb_scheme = lb::Scheme::kPairwise;
  lb::PairwiseOptions lb_options{};
  /// Seasonal insolation regime (solar declination). Equinox is the
  /// historical default; the solstices skew the day/night load field.
  physics::PhysicsRegime physics_regime = physics::PhysicsRegime::kEquinox;

  bool optimized_advection = false;

  std::uint64_t seed = 1996;
  simnet::MachineProfile machine = simnet::MachineProfile::intel_paragon();
  int recv_timeout_ms = 600'000;
  /// Host-execution knobs for the simnet Machine (virtual-time neutral):
  /// backend selection and the fiber worker-pool size. A campaign running
  /// many machines concurrently caps each machine's pool so the host isn't
  /// oversubscribed; 0 keeps the machine default (min(nranks, hardware)).
  simnet::SimBackend simnet_backend = simnet::Machine::default_backend();
  int simnet_workers = 0;

  int nranks() const { return mesh_rows * mesh_cols; }
  double steps_per_day() const { return 86400.0 / dt_sec; }
};

/// Virtual seconds per *step*, max-reduced over ranks (see note in .cpp).
struct ComponentTimes {
  double filter = 0.0;
  double halo = 0.0;
  double fd = 0.0;
  double physics_compute = 0.0;
  double physics_balance = 0.0;

  double dynamics() const { return filter + halo + fd; }
  double physics() const { return physics_compute + physics_balance; }
  double total() const { return dynamics() + physics(); }
};

/// p50/p95/p99 of one component's per-(rank, timed-step) virtual-time
/// samples — the tail view the max-over-ranks averages hide. Estimated
/// with the log-binned histogram (trace/histogram.hpp), so the values are
/// order-independent and bit-deterministic at any concurrency.
struct PhasePercentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Percentiles for each of the paper's five components.
struct ComponentPercentiles {
  PhasePercentiles filter;
  PhasePercentiles halo;
  PhasePercentiles fd;
  PhasePercentiles physics_compute;
  PhasePercentiles physics_balance;
};

struct RunReport {
  int steps = 0;
  double steps_per_day = 0.0;
  ComponentTimes per_step;  ///< average over timed steps, max over ranks
  /// Tail behaviour over all (rank, timed step) samples per component.
  ComponentPercentiles percentiles;

  double dynamics_per_day() const { return per_step.dynamics() * steps_per_day; }
  double physics_per_day() const { return per_step.physics() * steps_per_day; }
  double filter_per_day() const { return per_step.filter * steps_per_day; }
  double total_per_day() const { return per_step.total() * steps_per_day; }

  // Physics load-balance statistics from the last timed step.
  double physics_imbalance_before = 0.0;
  double physics_imbalance_after = 0.0;
  /// Per-rank physics flops actually executed in the last timed step.
  std::vector<double> rank_physics_flops;

  // Diagnostics after the run.
  double mass_drift_rel = 0.0;       ///< |M_end - M_0| / M_0
  double max_zonal_courant = 0.0;
  double max_gravity_courant = 0.0;
  double filter_setup_sec = 0.0;     ///< one-time plan cost (balanced FFT)

  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;

  /// Per-rank compute/overhead/wait accounting over the whole program (setup
  /// + warmup + timed steps + diagnostics), straight from the virtual
  /// machine. When tracing is enabled, each rank's "model.rank" span carries
  /// the same split — the trace layer validates itself against this.
  std::vector<simnet::TimeBreakdown> rank_breakdowns;
};

/// Integrates the model for `steps` timed steps (after `warmup_steps` that
/// prime the physics load estimator). Throws on invalid configuration.
RunReport run_model(const ModelConfig& config, int steps,
                    int warmup_steps = 1);

}  // namespace agcm::core
