#include "core/config_load.hpp"

#include "util/error.hpp"

namespace agcm::core {

filter::FilterAlgorithm parse_filter_algorithm(const std::string& name) {
  using filter::FilterAlgorithm;
  if (name == "convolution-ring") return FilterAlgorithm::kConvolutionRing;
  if (name == "convolution-tree") return FilterAlgorithm::kConvolutionTree;
  if (name == "fft-transpose") return FilterAlgorithm::kFftTranspose;
  if (name == "fft-load-balanced") return FilterAlgorithm::kFftBalanced;
  if (name == "convolution-partitioned")
    return FilterAlgorithm::kConvolutionPartitioned;
  if (name == "implicit-zonal") return FilterAlgorithm::kImplicitZonal;
  throw ConfigError("unknown filter_algorithm '" + name + "'");
}

dynamics::TimeScheme parse_time_scheme(const std::string& name) {
  using dynamics::TimeScheme;
  if (name == "forward-backward") return TimeScheme::kForwardBackward;
  if (name == "leapfrog") return TimeScheme::kLeapfrog;
  throw ConfigError("unknown time_scheme '" + name + "'");
}

simnet::MachineProfile parse_machine_profile(const std::string& name) {
  using simnet::MachineProfile;
  if (name == "paragon") return MachineProfile::intel_paragon();
  if (name == "t3d") return MachineProfile::cray_t3d();
  if (name == "sp2") return MachineProfile::ibm_sp2();
  if (name == "ideal") return MachineProfile::ideal();
  throw ConfigError("unknown machine '" + name + "'");
}

lb::Scheme parse_lb_scheme(const std::string& name) {
  using lb::Scheme;
  if (name == "none") return Scheme::kNone;
  if (name == "cyclic" || name == "scheme1") return Scheme::kCyclic;
  if (name == "sorted-greedy" || name == "scheme2")
    return Scheme::kSortedGreedy;
  if (name == "pairwise" || name == "scheme3") return Scheme::kPairwise;
  throw ConfigError("unknown lb_scheme '" + name + "'");
}

physics::PhysicsRegime parse_physics_regime(const std::string& name) {
  using physics::PhysicsRegime;
  if (name == "equinox") return PhysicsRegime::kEquinox;
  if (name == "june-solstice") return PhysicsRegime::kJuneSolstice;
  if (name == "december-solstice") return PhysicsRegime::kDecemberSolstice;
  throw ConfigError("unknown physics_regime '" + name + "'");
}

simnet::SimBackend parse_sim_backend(const std::string& name) {
  using simnet::SimBackend;
  if (name == "fibers") return SimBackend::kFibers;
  if (name == "threads") return SimBackend::kThreads;
  throw ConfigError("unknown simnet_backend '" + name + "'");
}

RunSpec run_spec_from(const io::Config& config) {
  RunSpec spec;
  ModelConfig& model = spec.model;
  model.nlon = config.get_int("nlon", 144);
  model.nlat = config.get_int("nlat", 90);
  model.nlev = config.get_int("nlev", 9);
  model.mesh_rows = config.require_int("mesh_rows");
  model.mesh_cols = config.require_int("mesh_cols");
  model.dt_sec = config.get_double("dt_sec", 450.0);
  model.time_scheme =
      parse_time_scheme(config.get_string("time_scheme", "forward-backward"));
  model.machine =
      parse_machine_profile(config.get_string("machine", "t3d"));
  model.filter_algorithm = parse_filter_algorithm(
      config.get_string("filter_algorithm", "fft-load-balanced"));
  model.use_polar_filter = config.get_bool("polar_filter", true);
  model.physics_enabled = config.get_bool("physics", true);
  model.physics_load_balance = config.get_bool("physics_load_balance", false);
  // The scheme axis subsumes the boolean: `lb_scheme = none` turns
  // balancing off even if the legacy flag is set, any other scheme turns
  // it on. With no lb_scheme key the legacy flag keeps its historical
  // meaning (pairwise when true).
  model.lb_scheme = parse_lb_scheme(config.get_string(
      "lb_scheme", model.physics_load_balance ? "pairwise" : "none"));
  model.physics_load_balance = model.lb_scheme != lb::Scheme::kNone;
  model.lb_options.max_iterations =
      config.get_int("lb_max_iterations", model.lb_options.max_iterations);
  model.lb_options.tolerance =
      config.get_double("lb_tolerance", model.lb_options.tolerance);
  model.physics_regime = parse_physics_regime(
      config.get_string("physics_regime", "equinox"));
  model.optimized_advection = config.get_bool("optimized_advection", false);
  model.seed = static_cast<std::uint64_t>(config.get_int("seed", 1996));
  if (config.has("simnet_backend"))
    model.simnet_backend =
        parse_sim_backend(config.require_string("simnet_backend"));
  model.simnet_workers = config.get_int("simnet_workers", 0);
  spec.steps = config.get_int("steps", 4);
  spec.warmup_steps = config.get_int("warmup_steps", 1);

  spec.trace_json_path = config.get_string("trace_json", "");
  spec.trace_csv_path = config.get_string("trace_csv", "");
  spec.trace = config.get_bool(
      "trace", !spec.trace_json_path.empty() || !spec.trace_csv_path.empty());
  return spec;
}

RunSpec run_spec_from_file(const std::string& path) {
  return run_spec_from(io::Config::from_file(path));
}

}  // namespace agcm::core
