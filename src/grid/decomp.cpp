#include "grid/decomp.hpp"

#include "util/error.hpp"

namespace agcm::grid {

Partition1D::Partition1D(int n, int p) : n_(n), p_(p) {
  check_config(n > 0 && p > 0, "partition requires n > 0 and p > 0");
  check_config(p <= n, "more blocks than points: p=" + std::to_string(p) +
                           " n=" + std::to_string(n));
}

int Partition1D::start(int block) const {
  AGCM_ASSERT(block >= 0 && block <= p_);
  const int base = n_ / p_;
  const int rem = n_ % p_;
  return block * base + std::min(block, rem);
}

int Partition1D::size(int block) const {
  AGCM_ASSERT(block >= 0 && block < p_);
  const int base = n_ / p_;
  const int rem = n_ % p_;
  return base + (block < rem ? 1 : 0);
}

int Partition1D::owner(int g) const {
  AGCM_ASSERT(g >= 0 && g < n_);
  const int base = n_ / p_;
  const int rem = n_ % p_;
  const int big = (base + 1) * rem;  // points covered by the larger blocks
  if (g < big) return g / (base + 1);
  return rem + (g - big) / base;
}

Decomp2D::Decomp2D(int nlon, int nlat, int mesh_rows, int mesh_cols)
    : lon_(nlon, mesh_cols), lat_(nlat, mesh_rows) {}

LocalBox Decomp2D::box(comm::MeshCoord coord) const {
  LocalBox b;
  b.i0 = lon_.start(coord.col);
  b.ni = lon_.size(coord.col);
  b.j0 = lat_.start(coord.row);
  b.nj = lat_.size(coord.row);
  return b;
}

comm::MeshCoord Decomp2D::owner(int gi, int gj) const {
  return {lat_.owner(gj), lon_.owner(gi)};
}

}  // namespace agcm::grid
