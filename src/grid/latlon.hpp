// Spherical latitude-longitude grid geometry with Arakawa C staggering.
//
// The UCLA AGCM uses a uniform longitude-latitude grid; the paper's runs use
// the 2 x 2.5 degree horizontal resolution (144 longitudes x 90 latitudes)
// with 9 or 15 vertical layers. On the Arakawa C-mesh, thermodynamic
// variables sit at cell centres, u on east/west faces, v on north/south
// faces.
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

namespace agcm::grid {

/// Earth constants used by the dynamical core.
struct Planet {
  double radius_m = 6.371e6;        ///< mean Earth radius
  double omega = 7.292e-5;          ///< rotation rate (rad/s)
  double gravity = 9.80616;         ///< m/s^2
};

class LatLonGrid {
 public:
  /// `nlon` uniform longitudes (periodic), `nlat` latitude rows of cell
  /// centres from south to north (no points exactly at the poles), `nlev`
  /// vertical layers.
  LatLonGrid(int nlon, int nlat, int nlev, Planet planet = {});

  /// The paper's standard configurations.
  static LatLonGrid paper_9layer() { return {144, 90, 9}; }
  static LatLonGrid paper_15layer() { return {144, 90, 15}; }

  int nlon() const { return nlon_; }
  int nlat() const { return nlat_; }
  int nlev() const { return nlev_; }
  const Planet& planet() const { return planet_; }

  double dlon_rad() const { return dlon_; }
  double dlat_rad() const { return dlat_; }

  /// Latitude of cell-centre row j (radians), j in [0, nlat): south to north.
  double lat_center(int j) const;
  /// Latitude of the v-face between rows j-1 and j, j in [0, nlat].
  double lat_vface(int j) const;
  /// Longitude of cell-centre column i (radians), i in [0, nlon).
  double lon_center(int i) const;

  double cos_center(int j) const { return cos_center_[static_cast<std::size_t>(j)]; }
  double cos_vface(int j) const { return cos_vface_[static_cast<std::size_t>(j)]; }

  /// Zonal grid spacing (metres) along row j; shrinks toward the poles —
  /// the reason the polar filter exists.
  double dx_m(int j) const;
  /// Meridional grid spacing (metres), uniform.
  double dy_m() const;

  /// Cell area (m^2) for centre row j.
  double cell_area_m2(int j) const;

  /// True if |latitude of row j| >= cutoff_deg (the filter bands).
  bool poleward_of(int j, double cutoff_deg) const;

 private:
  int nlon_, nlat_, nlev_;
  Planet planet_;
  double dlon_, dlat_;
  std::vector<double> cos_center_;
  std::vector<double> cos_vface_;
};

}  // namespace agcm::grid
