// Dense 3-D array with optional ghost (halo) cells in the two horizontal
// dimensions. Storage order matches the Fortran AGCM: the longitude index i
// is fastest, then latitude j, then layer k — so one "data row" (a full
// latitude circle at fixed j,k) is contiguous, which is what the spectral
// filter wants.
//
// Storage is 64-byte aligned and, for ghosted arrays, row-padded so the
// j-stride is a multiple of a cache line (docs/kernels.md): the kernel
// engine walks rows through raw FieldView pointers and the aligned, padded
// layout keeps every (j, k) row start on a cache-line boundary. Ghost-free
// arrays are never padded, so their interior is one contiguous run (the
// pack_interior/unpack_interior single-memcpy fast path relies on this).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <span>
#include <vector>

#include "grid/field_view.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace agcm::grid {

/// The over-aligning allocator lives in util/aligned.hpp now (the FFT layer
/// shares it); this using-declaration keeps grid::AlignedAllocator spelled
/// as before.
using agcm::util::AlignedAllocator;

template <typename T>
class Array3D {
 public:
  /// Alignment of the storage base (and, with row padding, of every row
  /// start of a ghosted array's backing grid).
  static constexpr std::size_t kAlignBytes = 64;

  Array3D() = default;

  /// `ni x nj x nk` interior cells with `ghost` extra cells on each side of
  /// the i and j dimensions (k never has ghosts: vertical columns are local).
  Array3D(int ni, int nj, int nk, int ghost = 0)
      : ni_(ni), nj_(nj), nk_(nk), ghost_(ghost),
        stride_i_(1),
        stride_j_(padded_row(ni, ghost)),
        stride_k_(stride_j_ * static_cast<std::size_t>(nj + 2 * ghost)),
        data_(stride_k_ * static_cast<std::size_t>(nk), T{}) {
    AGCM_ASSERT(ni > 0 && nj > 0 && nk > 0 && ghost >= 0);
  }

  int ni() const { return ni_; }
  int nj() const { return nj_; }
  int nk() const { return nk_; }
  int ghost() const { return ghost_; }

  /// Element strides of the backing storage. stride_j() can exceed
  /// ni + 2*ghost (row padding); always use these, never recompute.
  std::size_t stride_j() const { return stride_j_; }
  std::size_t stride_k() const { return stride_k_; }

  /// Interior cell count.
  std::size_t interior_size() const {
    return static_cast<std::size_t>(ni_) * static_cast<std::size_t>(nj_) *
           static_cast<std::size_t>(nk_);
  }

  /// Valid index ranges: i in [-ghost, ni+ghost), j likewise, k in [0, nk).
  T& at(int i, int j, int k) { return data_[offset(i, j, k)]; }
  const T& at(int i, int j, int k) const { return data_[offset(i, j, k)]; }

  T& operator()(int i, int j, int k) { return at(i, j, k); }
  const T& operator()(int i, int j, int k) const { return at(i, j, k); }

  /// Strided raw-pointer view pre-offset to the interior origin (0, 0, 0);
  /// the kernel engine's access path (see grid/field_view.hpp).
  BasicFieldView<T> view() {
    return {data_.data() + offset(0, 0, 0),
            static_cast<std::ptrdiff_t>(stride_i_),
            static_cast<std::ptrdiff_t>(stride_j_),
            static_cast<std::ptrdiff_t>(stride_k_),
            ni_, nj_, nk_, ghost_};
  }
  BasicFieldView<const T> view() const {
    return {data_.data() + offset(0, 0, 0),
            static_cast<std::ptrdiff_t>(stride_i_),
            static_cast<std::ptrdiff_t>(stride_j_),
            static_cast<std::ptrdiff_t>(stride_k_),
            ni_, nj_, nk_, ghost_};
  }
  BasicFieldView<const T> cview() const { return view(); }

  /// Raw storage including ghosts and any row padding (for I/O and
  /// whole-array operations on same-shape arrays).
  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  /// Contiguous interior row at fixed (j, k): cells (0..ni-1, j, k).
  std::span<T> row(int j, int k) {
    return {data_.data() + offset(0, j, k), static_cast<std::size_t>(ni_)};
  }
  std::span<const T> row(int j, int k) const {
    return {data_.data() + offset(0, j, k), static_cast<std::size_t>(ni_)};
  }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  /// True when the interior is one contiguous run in storage (no ghosts, no
  /// row padding) — the single-memcpy pack/unpack precondition.
  bool contiguous_interior() const {
    return ghost_ == 0 && stride_j_ == static_cast<std::size_t>(ni_);
  }

  /// Copies interior cells (ghosts excluded) into a packed vector,
  /// i-fastest order. Ghost-free arrays are never padded, so this is a
  /// single memcpy for them; ghosted arrays copy row by row.
  std::vector<T> pack_interior() const {
    std::vector<T> out;
    if (contiguous_interior()) {
      out.assign(data_.begin(), data_.end());
      return out;
    }
    out.reserve(interior_size());
    for (int k = 0; k < nk_; ++k)
      for (int j = 0; j < nj_; ++j) {
        const auto r = row(j, k);
        out.insert(out.end(), r.begin(), r.end());
      }
    return out;
  }

  /// Inverse of pack_interior (same fast path).
  void unpack_interior(std::span<const T> packed) {
    AGCM_ASSERT(packed.size() == interior_size());
    if (contiguous_interior()) {
      std::memcpy(data_.data(), packed.data(), packed.size() * sizeof(T));
      return;
    }
    std::size_t pos = 0;
    for (int k = 0; k < nk_; ++k)
      for (int j = 0; j < nj_; ++j) {
        auto r = row(j, k);
        std::copy(packed.begin() + static_cast<std::ptrdiff_t>(pos),
                  packed.begin() + static_cast<std::ptrdiff_t>(pos + r.size()),
                  r.begin());
        pos += r.size();
      }
  }

  bool same_shape(const Array3D& other) const {
    return ni_ == other.ni_ && nj_ == other.nj_ && nk_ == other.nk_ &&
           ghost_ == other.ghost_;
  }

 private:
  /// Elements per cache line, when the line is an exact multiple of T.
  static constexpr std::size_t kPadElems =
      (kAlignBytes % sizeof(T) == 0) ? kAlignBytes / sizeof(T) : 1;

  /// Row length in storage. Ghosted (hot, stencil-walked) arrays round the
  /// row up to a whole number of cache lines; ghost-free arrays stay exact
  /// so their interior remains a single contiguous run.
  static std::size_t padded_row(int ni, int ghost) {
    const auto logical =
        static_cast<std::size_t>(ni) + 2 * static_cast<std::size_t>(ghost);
    if (ghost == 0) return logical;
    return (logical + kPadElems - 1) / kPadElems * kPadElems;
  }

  std::size_t offset(int i, int j, int k) const {
    AGCM_DBG_ASSERT(i >= -ghost_ && i < ni_ + ghost_);
    AGCM_DBG_ASSERT(j >= -ghost_ && j < nj_ + ghost_);
    AGCM_DBG_ASSERT(k >= 0 && k < nk_);
    return static_cast<std::size_t>(i + ghost_) * stride_i_ +
           static_cast<std::size_t>(j + ghost_) * stride_j_ +
           static_cast<std::size_t>(k) * stride_k_;
  }

  int ni_ = 0, nj_ = 0, nk_ = 0, ghost_ = 0;
  std::size_t stride_i_ = 1, stride_j_ = 0, stride_k_ = 0;
  std::vector<T, AlignedAllocator<T, kAlignBytes>> data_;
};

}  // namespace agcm::grid
