// Dense 3-D array with optional ghost (halo) cells in the two horizontal
// dimensions. Storage order matches the Fortran AGCM: the longitude index i
// is fastest, then latitude j, then layer k — so one "data row" (a full
// latitude circle at fixed j,k) is contiguous, which is what the spectral
// filter wants.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace agcm::grid {

template <typename T>
class Array3D {
 public:
  Array3D() = default;

  /// `ni x nj x nk` interior cells with `ghost` extra cells on each side of
  /// the i and j dimensions (k never has ghosts: vertical columns are local).
  Array3D(int ni, int nj, int nk, int ghost = 0)
      : ni_(ni), nj_(nj), nk_(nk), ghost_(ghost),
        stride_i_(1),
        stride_j_(static_cast<std::size_t>(ni + 2 * ghost)),
        stride_k_(static_cast<std::size_t>(ni + 2 * ghost) *
                  static_cast<std::size_t>(nj + 2 * ghost)),
        data_(stride_k_ * static_cast<std::size_t>(nk), T{}) {
    AGCM_ASSERT(ni > 0 && nj > 0 && nk > 0 && ghost >= 0);
  }

  int ni() const { return ni_; }
  int nj() const { return nj_; }
  int nk() const { return nk_; }
  int ghost() const { return ghost_; }

  /// Interior cell count.
  std::size_t interior_size() const {
    return static_cast<std::size_t>(ni_) * static_cast<std::size_t>(nj_) *
           static_cast<std::size_t>(nk_);
  }

  /// Valid index ranges: i in [-ghost, ni+ghost), j likewise, k in [0, nk).
  T& at(int i, int j, int k) { return data_[offset(i, j, k)]; }
  const T& at(int i, int j, int k) const { return data_[offset(i, j, k)]; }

  T& operator()(int i, int j, int k) { return at(i, j, k); }
  const T& operator()(int i, int j, int k) const { return at(i, j, k); }

  /// Raw storage including ghosts (for I/O and whole-array operations).
  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  /// Contiguous interior row at fixed (j, k): cells (0..ni-1, j, k).
  std::span<T> row(int j, int k) {
    return {data_.data() + offset(0, j, k), static_cast<std::size_t>(ni_)};
  }
  std::span<const T> row(int j, int k) const {
    return {data_.data() + offset(0, j, k), static_cast<std::size_t>(ni_)};
  }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copies interior cells (ghosts excluded) into a packed vector,
  /// i-fastest order.
  std::vector<T> pack_interior() const {
    std::vector<T> out;
    out.reserve(interior_size());
    for (int k = 0; k < nk_; ++k)
      for (int j = 0; j < nj_; ++j) {
        const auto r = row(j, k);
        out.insert(out.end(), r.begin(), r.end());
      }
    return out;
  }

  /// Inverse of pack_interior.
  void unpack_interior(std::span<const T> packed) {
    AGCM_ASSERT(packed.size() == interior_size());
    std::size_t pos = 0;
    for (int k = 0; k < nk_; ++k)
      for (int j = 0; j < nj_; ++j) {
        auto r = row(j, k);
        std::copy(packed.begin() + static_cast<std::ptrdiff_t>(pos),
                  packed.begin() + static_cast<std::ptrdiff_t>(pos + r.size()),
                  r.begin());
        pos += r.size();
      }
  }

  bool same_shape(const Array3D& other) const {
    return ni_ == other.ni_ && nj_ == other.nj_ && nk_ == other.nk_ &&
           ghost_ == other.ghost_;
  }

 private:
  std::size_t offset(int i, int j, int k) const {
    AGCM_DBG_ASSERT(i >= -ghost_ && i < ni_ + ghost_);
    AGCM_DBG_ASSERT(j >= -ghost_ && j < nj_ + ghost_);
    AGCM_DBG_ASSERT(k >= 0 && k < nk_);
    return static_cast<std::size_t>(i + ghost_) * stride_i_ +
           static_cast<std::size_t>(j + ghost_) * stride_j_ +
           static_cast<std::size_t>(k) * stride_k_;
  }

  int ni_ = 0, nj_ = 0, nk_ = 0, ghost_ = 0;
  std::size_t stride_i_ = 1, stride_j_ = 0, stride_k_ = 0;
  std::vector<T> data_;
};

}  // namespace agcm::grid
