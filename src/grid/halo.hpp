// Ghost-point (halo) exchange for 2-D decomposed 3-D fields.
//
// This is one of the paper's "reusable GCM template modules" (Section 5):
// exchange of ghost-point values at domain-partition boundaries, with the
// physical periodic boundary condition in longitude enforced automatically
// (including the single-column-of-processors case, where the wrap is a
// local copy rather than a message).
#pragma once

#include "comm/mesh2d.hpp"
#include "grid/array3d.hpp"

namespace agcm::grid {

/// Exchanges `width` ghost cells (default: the array's full ghost width) on
/// all four sides of the local block. Longitude wraps periodically; at the
/// north/south domain edges (the poles) ghost rows are left untouched —
/// the dynamical core applies its own polar condition there.
///
/// Collective over the mesh. Corners are filled correctly (two-phase
/// exchange: east/west first, then north/south including the i-ghosts).
void exchange_halo(const comm::Mesh2D& mesh, Array3D<double>& field,
                   int width = -1);

}  // namespace agcm::grid
