// Ghost-point (halo) exchange for 2-D decomposed 3-D fields.
//
// This is one of the paper's "reusable GCM template modules" (Section 5):
// exchange of ghost-point values at domain-partition boundaries, with the
// physical periodic boundary condition in longitude enforced automatically
// (including the single-column-of-processors case, where the wrap is a
// local copy rather than a message).
//
// The exchange runs on the zero-copy pooled transport (docs/transport.md):
// edge strips are packed by cached strip programs (fixed-length memcpy runs
// derived from the array strides) directly into pooled wire buffers, and
// unpacked in place from received payloads. The default per-field mode is
// virtual-time neutral with the historical implementation — same messages,
// same sizes, same charge sequence; `HaloMode::kAggregate` coalesces all
// fields' strips into one message per neighbour per phase (an ablation knob
// that trades messages for bandwidth, like the paper's Section 4 trades).
#pragma once

#include <span>

#include "comm/mesh2d.hpp"
#include "grid/array3d.hpp"

namespace agcm::grid {

/// How a multi-field exchange maps fields onto messages.
enum class HaloMode {
  /// One message per field per neighbour direction (the historical wire
  /// pattern; virtual-time outputs are bitwise those of per-field calls).
  kPerField,
  /// One message per neighbour direction carrying all fields' strips
  /// back-to-back: fewer, larger messages (latency-vs-bandwidth ablation).
  kAggregate,
};

// --- strip programs ---------------------------------------------------------
//
// Every halo side is a "strip": a set of equal-length contiguous memory runs
// fixed by the array shape. Exposed for tests and the transport bench.

/// Elements in a `width`-wide i-strip (east/west edge): width * nj * nk.
std::size_t i_strip_elems(const Array3D<double>& a, int width);

/// Elements in a `width`-wide j-strip including i-ghosts (north/south edge):
/// width * (ni + 2g) * nk.
std::size_t j_strip_elems(const Array3D<double>& a, int width, int g);

/// Packs the i-columns [i_begin, i_begin+width) over j in [0, nj), all k,
/// into `out` (size i_strip_elems), k-outer / j / i-fastest order.
void pack_i_strip(const Array3D<double>& a, int i_begin, int width,
                  std::span<double> out);

/// Inverse of pack_i_strip.
void unpack_i_strip(Array3D<double>& a, int i_begin, int width,
                    std::span<const double> in);

/// Packs the j-rows [j_begin, j_begin+width) spanning i in [-g, ni+g), all
/// k, into `out` (size j_strip_elems), k-outer / j / i-fastest order.
void pack_j_strip(const Array3D<double>& a, int j_begin, int width, int g,
                  std::span<double> out);

/// Inverse of pack_j_strip.
void unpack_j_strip(Array3D<double>& a, int j_begin, int width, int g,
                    std::span<const double> in);

// --- exchanges --------------------------------------------------------------

/// Exchanges `width` ghost cells (default: the array's full ghost width) on
/// all four sides of the local block. Longitude wraps periodically; at the
/// north/south domain edges (the poles) ghost rows are left untouched —
/// the dynamical core applies its own polar condition there.
///
/// Collective over the mesh. Corners are filled correctly (two-phase
/// exchange: east/west first, then north/south including the i-ghosts).
void exchange_halo(const comm::Mesh2D& mesh, Array3D<double>& field,
                   int width = -1);

/// Batched exchange of several fields in one collective sweep. All fields
/// must share a shape. In `kPerField` mode this is bit-identical (data and
/// virtual time) to calling exchange_halo on each field in order; in
/// `kAggregate` mode the fields share one message per neighbour per phase.
void exchange_halos(const comm::Mesh2D& mesh,
                    std::span<Array3D<double>* const> fields, int width = -1,
                    HaloMode mode = HaloMode::kPerField);

}  // namespace agcm::grid
