#include "grid/latlon.hpp"

#include "util/error.hpp"

namespace agcm::grid {

LatLonGrid::LatLonGrid(int nlon, int nlat, int nlev, Planet planet)
    : nlon_(nlon), nlat_(nlat), nlev_(nlev), planet_(planet) {
  check_config(nlon >= 4, "nlon must be >= 4");
  check_config(nlat >= 2, "nlat must be >= 2");
  check_config(nlev >= 1, "nlev must be >= 1");
  dlon_ = 2.0 * std::numbers::pi / nlon_;
  dlat_ = std::numbers::pi / nlat_;
  cos_center_.resize(static_cast<std::size_t>(nlat_));
  cos_vface_.resize(static_cast<std::size_t>(nlat_) + 1);
  for (int j = 0; j < nlat_; ++j)
    cos_center_[static_cast<std::size_t>(j)] = std::cos(lat_center(j));
  for (int j = 0; j <= nlat_; ++j)
    cos_vface_[static_cast<std::size_t>(j)] = std::cos(lat_vface(j));
  // The outermost v-faces sit exactly at the poles; clamp cosine to zero so
  // polar fluxes vanish identically.
  cos_vface_.front() = 0.0;
  cos_vface_.back() = 0.0;
}

double LatLonGrid::lat_center(int j) const {
  AGCM_DBG_ASSERT(j >= 0 && j < nlat_);
  return -0.5 * std::numbers::pi + (j + 0.5) * dlat_;
}

double LatLonGrid::lat_vface(int j) const {
  AGCM_DBG_ASSERT(j >= 0 && j <= nlat_);
  return -0.5 * std::numbers::pi + j * dlat_;
}

double LatLonGrid::lon_center(int i) const {
  AGCM_DBG_ASSERT(i >= 0 && i < nlon_);
  return i * dlon_;
}

double LatLonGrid::dx_m(int j) const {
  return planet_.radius_m * dlon_ * cos_center(j);
}

double LatLonGrid::dy_m() const { return planet_.radius_m * dlat_; }

double LatLonGrid::cell_area_m2(int j) const {
  const double r = planet_.radius_m;
  return r * r * dlon_ *
         (std::sin(lat_vface(j + 1)) - std::sin(lat_vface(j)));
}

bool LatLonGrid::poleward_of(int j, double cutoff_deg) const {
  const double lat_deg = lat_center(j) * 180.0 / std::numbers::pi;
  return std::abs(lat_deg) >= cutoff_deg;
}

}  // namespace agcm::grid
