// Strided raw-pointer views over Array3D storage for the kernel engine.
//
// A FieldView is the flat-pointer contract between the container layer and
// the vectorized kernels in src/kernels/: a base pointer pre-offset to the
// interior origin (0, 0, 0) plus the three element strides. Inner loops
// hoist `view.row(j, k)` into `double* __restrict` locals and walk i with
// unit stride — no per-element `Array3D::at()` call, no ghost-offset
// arithmetic, nothing the compiler cannot vectorize (docs/kernels.md).
//
// Contract:
//   * `base` points at element (0, 0, 0); ghosts live at negative i/j.
//     Valid index ranges are i, j in [-ghost, n + ghost) and k in [0, nk).
//   * `stride_i` is always 1 (longitude is the contiguous direction);
//     `stride_j` may exceed ni + 2*ghost when the row is padded for
//     alignment, so NEVER reconstruct it from the shape — use the view's.
//   * A view borrows; it never owns. It is invalidated by anything that
//     reallocates or reshapes the underlying Array3D.
#pragma once

#include <cstddef>

namespace agcm::grid {

template <typename T>
struct BasicFieldView {
  T* base = nullptr;               ///< &field(0, 0, 0) — ghost pre-offset
  std::ptrdiff_t stride_i = 1;     ///< unit by construction
  std::ptrdiff_t stride_j = 0;     ///< elements between (i,j,k), (i,j+1,k)
  std::ptrdiff_t stride_k = 0;     ///< elements between (i,j,k), (i,j,k+1)
  int ni = 0, nj = 0, nk = 0;      ///< interior extents
  int ghost = 0;                   ///< ghost width in i and j

  /// Pointer to the start of the interior run of row (j, k): element
  /// (0, j, k). Index it with i in [-ghost, ni + ghost).
  T* row(int j, int k) const {
    return base + static_cast<std::ptrdiff_t>(j) * stride_j +
           static_cast<std::ptrdiff_t>(k) * stride_k;
  }

  /// Element access, same index convention as Array3D::at (no bounds
  /// checks: views exist so the hot loops can skip them).
  T& at(int i, int j, int k) const { return row(j, k)[i]; }
};

using FieldView = BasicFieldView<double>;
using ConstFieldView = BasicFieldView<const double>;

}  // namespace agcm::grid
