#include "grid/halo.hpp"

#include <cstring>

#include "comm/packed.hpp"

namespace agcm::grid {

namespace {

constexpr int kTagEast = 201;   // data travelling eastward
constexpr int kTagWest = 202;   // data travelling westward
constexpr int kTagNorth = 203;  // data travelling northward
constexpr int kTagSouth = 204;  // data travelling southward

/// Cached strip program for one field shape: every halo side decomposes
/// into equal-length contiguous runs whose geometry depends only on
/// (ni, nj, nk, ghost, width). Computed once per exchange and shared by all
/// fields in a batch (they are required to have the same shape).
struct HaloProgram {
  int g;   ///< exchange width
  int ni, nj, nk;
  std::size_t i_elems;  ///< east/west strip:  g * nj * nk
  std::size_t j_elems;  ///< north/south strip: g * (ni + 2g) * nk

  HaloProgram(const Array3D<double>& a, int width)
      : g(width), ni(a.ni()), nj(a.nj()), nk(a.nk()),
        i_elems(i_strip_elems(a, width)),
        j_elems(j_strip_elems(a, width, width)) {}

  std::size_t i_bytes() const { return i_elems * sizeof(double); }
  std::size_t j_bytes() const { return j_elems * sizeof(double); }
};

/// Periodic longitude wrap when the whole latitude circle lives on one
/// processor column: both i-ghost strips are local copies.
void wrap_longitude_local(Array3D<double>& f, int g) {
  const std::size_t run = static_cast<std::size_t>(g) * sizeof(double);
  for (int k = 0; k < f.nk(); ++k)
    for (int j = 0; j < f.nj(); ++j) {
      std::memcpy(&f.at(-g, j, k), &f.at(f.ni() - g, j, k), run);
      std::memcpy(&f.at(f.ni(), j, k), &f.at(0, j, k), run);
    }
}

/// Phase 1 (east/west, periodic) for one field over pooled wire buffers.
/// The message pattern, sizes and virtual-clock charge sequence are exactly
/// those of the historical copy-path implementation; only the host-side
/// staging changed (strips are packed once, straight into the wire buffer).
void exchange_east_west(const comm::Mesh2D& mesh, Array3D<double>& f,
                        const HaloProgram& prog) {
  const comm::Communicator& world = mesh.world();
  auto& clock = world.context().clock();
  const int g = prog.g;

  if (mesh.cols() == 1) {
    wrap_longitude_local(f, g);
    clock.memory_traffic(static_cast<double>(2 * prog.i_elems) *
                         sizeof(double));
    return;
  }
  // Send my east edge eastward; it becomes the east neighbour's west
  // ghost. Symmetrically westward.
  comm::PackedWriter east_edge = world.packer(prog.i_bytes());
  pack_i_strip(f, f.ni() - g, g, east_edge.append<double>(prog.i_elems));
  comm::PackedWriter west_edge = world.packer(prog.i_bytes());
  pack_i_strip(f, 0, g, west_edge.append<double>(prog.i_elems));
  clock.memory_traffic(static_cast<double>(2 * prog.i_elems) * sizeof(double));
  world.send_packed(mesh.east(), kTagEast, std::move(east_edge));
  world.send_packed(mesh.west(), kTagWest, std::move(west_edge));
  {
    comm::PackedReader from_west = world.recv_packed(mesh.west(), kTagEast);
    unpack_i_strip(f, -g, g, from_west.view<double>(prog.i_elems));
  }
  {
    comm::PackedReader from_east = world.recv_packed(mesh.east(), kTagWest);
    unpack_i_strip(f, f.ni(), g, from_east.view<double>(prog.i_elems));
  }
  clock.memory_traffic(static_cast<double>(2 * prog.i_elems) * sizeof(double));
}

/// Phase 2 (north/south, non-periodic) for one field; rows run south->north.
void exchange_north_south(const comm::Mesh2D& mesh, Array3D<double>& f,
                          const HaloProgram& prog) {
  const comm::Communicator& world = mesh.world();
  auto& clock = world.context().clock();
  const int g = prog.g;
  const auto north = mesh.north();
  const auto south = mesh.south();

  if (north) {
    comm::PackedWriter to_north = world.packer(prog.j_bytes());
    pack_j_strip(f, f.nj() - g, g, g, to_north.append<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(prog.j_elems) * sizeof(double));
    world.send_packed(*north, kTagNorth, std::move(to_north));
  }
  if (south) {
    comm::PackedWriter to_south = world.packer(prog.j_bytes());
    pack_j_strip(f, 0, g, g, to_south.append<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(prog.j_elems) * sizeof(double));
    world.send_packed(*south, kTagSouth, std::move(to_south));
  }
  if (south) {
    comm::PackedReader from_south = world.recv_packed(*south, kTagNorth);
    unpack_j_strip(f, -g, g, g, from_south.view<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(prog.j_elems) * sizeof(double));
  }
  if (north) {
    comm::PackedReader from_north = world.recv_packed(*north, kTagSouth);
    unpack_j_strip(f, f.nj(), g, g, from_north.view<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(prog.j_elems) * sizeof(double));
  }
}

/// Aggregate mode: every message carries all fields' strips back-to-back
/// (field order = batch order), so each neighbour direction costs one
/// message latency regardless of the field count. Virtual time is
/// *intentionally* different from per-field mode — this is the ablation
/// knob, not the default path.
void exchange_aggregate(const comm::Mesh2D& mesh,
                        std::span<Array3D<double>* const> fields,
                        const HaloProgram& prog) {
  const comm::Communicator& world = mesh.world();
  auto& clock = world.context().clock();
  const int g = prog.g;
  const auto nf = fields.size();

  // Phase 1: east/west (longitude), periodic.
  if (mesh.cols() == 1) {
    for (Array3D<double>* f : fields) wrap_longitude_local(*f, g);
    clock.memory_traffic(static_cast<double>(2 * nf * prog.i_elems) *
                         sizeof(double));
  } else {
    comm::PackedWriter east_edges = world.packer(nf * prog.i_bytes());
    comm::PackedWriter west_edges = world.packer(nf * prog.i_bytes());
    for (Array3D<double>* f : fields) {
      pack_i_strip(*f, f->ni() - g, g, east_edges.append<double>(prog.i_elems));
      pack_i_strip(*f, 0, g, west_edges.append<double>(prog.i_elems));
    }
    clock.memory_traffic(static_cast<double>(2 * nf * prog.i_elems) *
                         sizeof(double));
    world.send_packed(mesh.east(), kTagEast, std::move(east_edges));
    world.send_packed(mesh.west(), kTagWest, std::move(west_edges));
    {
      comm::PackedReader from_west = world.recv_packed(mesh.west(), kTagEast);
      for (Array3D<double>* f : fields)
        unpack_i_strip(*f, -g, g, from_west.view<double>(prog.i_elems));
    }
    {
      comm::PackedReader from_east = world.recv_packed(mesh.east(), kTagWest);
      for (Array3D<double>* f : fields)
        unpack_i_strip(*f, f->ni(), g, from_east.view<double>(prog.i_elems));
    }
    clock.memory_traffic(static_cast<double>(2 * nf * prog.i_elems) *
                         sizeof(double));
  }

  // Phase 2: north/south (latitude), non-periodic.
  const auto north = mesh.north();
  const auto south = mesh.south();
  if (north) {
    comm::PackedWriter to_north = world.packer(nf * prog.j_bytes());
    for (Array3D<double>* f : fields)
      pack_j_strip(*f, f->nj() - g, g, g, to_north.append<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(nf * prog.j_elems) *
                         sizeof(double));
    world.send_packed(*north, kTagNorth, std::move(to_north));
  }
  if (south) {
    comm::PackedWriter to_south = world.packer(nf * prog.j_bytes());
    for (Array3D<double>* f : fields)
      pack_j_strip(*f, 0, g, g, to_south.append<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(nf * prog.j_elems) *
                         sizeof(double));
    world.send_packed(*south, kTagSouth, std::move(to_south));
  }
  if (south) {
    comm::PackedReader from_south = world.recv_packed(*south, kTagNorth);
    for (Array3D<double>* f : fields)
      unpack_j_strip(*f, -g, g, g, from_south.view<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(nf * prog.j_elems) *
                         sizeof(double));
  }
  if (north) {
    comm::PackedReader from_north = world.recv_packed(*north, kTagSouth);
    for (Array3D<double>* f : fields)
      unpack_j_strip(*f, f->nj(), g, g, from_north.view<double>(prog.j_elems));
    clock.memory_traffic(static_cast<double>(nf * prog.j_elems) *
                         sizeof(double));
  }
}

}  // namespace

std::size_t i_strip_elems(const Array3D<double>& a, int width) {
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(a.nj()) *
         static_cast<std::size_t>(a.nk());
}

std::size_t j_strip_elems(const Array3D<double>& a, int width, int g) {
  return static_cast<std::size_t>(width) *
         static_cast<std::size_t>(a.ni() + 2 * g) *
         static_cast<std::size_t>(a.nk());
}

void pack_i_strip(const Array3D<double>& a, int i_begin, int width,
                  std::span<double> out) {
  AGCM_DBG_ASSERT(out.size() == i_strip_elems(a, width));
  const std::size_t run = static_cast<std::size_t>(width) * sizeof(double);
  double* dst = out.data();
  for (int k = 0; k < a.nk(); ++k)
    for (int j = 0; j < a.nj(); ++j) {
      std::memcpy(dst, &a.at(i_begin, j, k), run);  // i is the unit stride
      dst += width;
    }
}

void unpack_i_strip(Array3D<double>& a, int i_begin, int width,
                    std::span<const double> in) {
  AGCM_DBG_ASSERT(in.size() == i_strip_elems(a, width));
  const std::size_t run = static_cast<std::size_t>(width) * sizeof(double);
  const double* src = in.data();
  for (int k = 0; k < a.nk(); ++k)
    for (int j = 0; j < a.nj(); ++j) {
      std::memcpy(&a.at(i_begin, j, k), src, run);
      src += width;
    }
}

void pack_j_strip(const Array3D<double>& a, int j_begin, int width, int g,
                  std::span<double> out) {
  AGCM_DBG_ASSERT(out.size() == j_strip_elems(a, width, g));
  const int row_elems = a.ni() + 2 * g;
  const std::size_t run = static_cast<std::size_t>(row_elems) * sizeof(double);
  double* dst = out.data();
  for (int k = 0; k < a.nk(); ++k)
    for (int dj = 0; dj < width; ++dj) {
      std::memcpy(dst, &a.at(-g, j_begin + dj, k), run);
      dst += row_elems;
    }
}

void unpack_j_strip(Array3D<double>& a, int j_begin, int width, int g,
                    std::span<const double> in) {
  AGCM_DBG_ASSERT(in.size() == j_strip_elems(a, width, g));
  const int row_elems = a.ni() + 2 * g;
  const std::size_t run = static_cast<std::size_t>(row_elems) * sizeof(double);
  const double* src = in.data();
  for (int k = 0; k < a.nk(); ++k)
    for (int dj = 0; dj < width; ++dj) {
      std::memcpy(&a.at(-g, j_begin + dj, k), src, run);
      src += row_elems;
    }
}

void exchange_halo(const comm::Mesh2D& mesh, Array3D<double>& field,
                   int width) {
  Array3D<double>* fields[] = {&field};
  exchange_halos(mesh, fields, width, HaloMode::kPerField);
}

void exchange_halos(const comm::Mesh2D& mesh,
                    std::span<Array3D<double>* const> fields, int width,
                    HaloMode mode) {
  if (fields.empty()) return;
  AGCM_ASSERT(fields[0] != nullptr);
  const Array3D<double>& first = *fields[0];
  const int g = width < 0 ? first.ghost() : width;
  check_config(g >= 1 && g <= first.ghost(),
               "halo width must be in [1, ghost]");
  for (Array3D<double>* f : fields) {
    AGCM_ASSERT(f != nullptr);
    check_config(f->same_shape(first),
                 "exchange_halos: all fields must share a shape");
  }
  const HaloProgram prog(first, g);

  if (mode == HaloMode::kAggregate) {
    exchange_aggregate(mesh, fields, prog);
    return;
  }
  // Per-field mode: bitwise the historical behaviour — each field performs
  // the full two-phase exchange before the next one starts.
  for (Array3D<double>* f : fields) {
    exchange_east_west(mesh, *f, prog);
    exchange_north_south(mesh, *f, prog);
  }
}

}  // namespace agcm::grid
