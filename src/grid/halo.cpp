#include "grid/halo.hpp"

#include <vector>

namespace agcm::grid {

namespace {

constexpr int kTagEast = 201;   // data travelling eastward
constexpr int kTagWest = 202;   // data travelling westward
constexpr int kTagNorth = 203;  // data travelling northward
constexpr int kTagSouth = 204;  // data travelling southward

/// Packs the i-columns [i_begin, i_begin+width) over j in [0, nj), all k.
std::vector<double> pack_i_strip(const Array3D<double>& a, int i_begin,
                                 int width) {
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(width) *
              static_cast<std::size_t>(a.nj()) *
              static_cast<std::size_t>(a.nk()));
  for (int k = 0; k < a.nk(); ++k)
    for (int j = 0; j < a.nj(); ++j)
      for (int di = 0; di < width; ++di) buf.push_back(a.at(i_begin + di, j, k));
  return buf;
}

void unpack_i_strip(Array3D<double>& a, int i_begin, int width,
                    std::span<const double> buf) {
  std::size_t pos = 0;
  for (int k = 0; k < a.nk(); ++k)
    for (int j = 0; j < a.nj(); ++j)
      for (int di = 0; di < width; ++di) a.at(i_begin + di, j, k) = buf[pos++];
}

/// Packs j-rows [j_begin, j_begin+width) spanning i in [-g, ni+g), all k.
std::vector<double> pack_j_strip(const Array3D<double>& a, int j_begin,
                                 int width, int g) {
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(width) *
              static_cast<std::size_t>(a.ni() + 2 * g) *
              static_cast<std::size_t>(a.nk()));
  for (int k = 0; k < a.nk(); ++k)
    for (int dj = 0; dj < width; ++dj)
      for (int i = -g; i < a.ni() + g; ++i)
        buf.push_back(a.at(i, j_begin + dj, k));
  return buf;
}

void unpack_j_strip(Array3D<double>& a, int j_begin, int width, int g,
                    std::span<const double> buf) {
  std::size_t pos = 0;
  for (int k = 0; k < a.nk(); ++k)
    for (int dj = 0; dj < width; ++dj)
      for (int i = -g; i < a.ni() + g; ++i)
        a.at(i, j_begin + dj, k) = buf[pos++];
}

}  // namespace

void exchange_halo(const comm::Mesh2D& mesh, Array3D<double>& field,
                   int width) {
  const int g = width < 0 ? field.ghost() : width;
  check_config(g >= 1 && g <= field.ghost(),
               "halo width must be in [1, ghost]");
  const comm::Communicator& world = mesh.world();
  auto& clock = world.context().clock();

  // Phase 1: east/west (longitude), periodic.
  if (mesh.cols() == 1) {
    // Periodic wrap is entirely local.
    for (int k = 0; k < field.nk(); ++k)
      for (int j = 0; j < field.nj(); ++j)
        for (int di = 0; di < g; ++di) {
          field.at(-g + di, j, k) = field.at(field.ni() - g + di, j, k);
          field.at(field.ni() + di, j, k) = field.at(di, j, k);
        }
    clock.memory_traffic(
        static_cast<double>(2 * g * field.nj() * field.nk()) * sizeof(double));
  } else {
    // Send my east edge eastward; it becomes the east neighbour's west
    // ghost. Symmetrically westward.
    const auto east_edge = pack_i_strip(field, field.ni() - g, g);
    const auto west_edge = pack_i_strip(field, 0, g);
    clock.memory_traffic(static_cast<double>(east_edge.size() +
                                             west_edge.size()) *
                         sizeof(double));
    world.send<double>(mesh.east(), kTagEast, east_edge);
    world.send<double>(mesh.west(), kTagWest, west_edge);
    std::vector<double> from_west(east_edge.size());
    std::vector<double> from_east(west_edge.size());
    world.recv<double>(mesh.west(), kTagEast, from_west);
    world.recv<double>(mesh.east(), kTagWest, from_east);
    unpack_i_strip(field, -g, g, from_west);
    unpack_i_strip(field, field.ni(), g, from_east);
    clock.memory_traffic(static_cast<double>(from_west.size() +
                                             from_east.size()) *
                         sizeof(double));
  }

  // Phase 2: north/south (latitude), non-periodic. Rows run south->north.
  const auto north = mesh.north();
  const auto south = mesh.south();
  std::vector<double> to_north, to_south;
  if (north) {
    to_north = pack_j_strip(field, field.nj() - g, g, g);
    clock.memory_traffic(static_cast<double>(to_north.size()) * sizeof(double));
    world.send<double>(*north, kTagNorth, to_north);
  }
  if (south) {
    to_south = pack_j_strip(field, 0, g, g);
    clock.memory_traffic(static_cast<double>(to_south.size()) * sizeof(double));
    world.send<double>(*south, kTagSouth, to_south);
  }
  if (south) {
    std::vector<double> from_south(
        static_cast<std::size_t>(g) *
        static_cast<std::size_t>(field.ni() + 2 * g) *
        static_cast<std::size_t>(field.nk()));
    world.recv<double>(*south, kTagNorth, from_south);
    unpack_j_strip(field, -g, g, g, from_south);
    clock.memory_traffic(static_cast<double>(from_south.size()) *
                         sizeof(double));
  }
  if (north) {
    std::vector<double> from_north(
        static_cast<std::size_t>(g) *
        static_cast<std::size_t>(field.ni() + 2 * g) *
        static_cast<std::size_t>(field.nk()));
    world.recv<double>(*north, kTagSouth, from_north);
    unpack_j_strip(field, field.nj(), g, g, from_north);
    clock.memory_traffic(static_cast<double>(from_north.size()) *
                         sizeof(double));
  }
}

}  // namespace agcm::grid
