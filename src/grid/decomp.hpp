// Block domain decomposition of the horizontal grid over the 2-D process
// mesh. Handles uneven divisions (the paper's 8 x 30 mesh over 144
// longitudes gives blocks of 4 and 5 columns).
#pragma once

#include <vector>

#include "comm/mesh2d.hpp"

namespace agcm::grid {

/// 1-D block partition of `n` points over `p` blocks; the first `n % p`
/// blocks get one extra point.
class Partition1D {
 public:
  Partition1D(int n, int p);

  int n() const { return n_; }
  int blocks() const { return p_; }
  int start(int block) const;
  int size(int block) const;
  int end(int block) const { return start(block) + size(block); }
  /// Which block owns global index g.
  int owner(int g) const;

 private:
  int n_, p_;
};

/// The local box of one node: global offsets and extents in lon (i) and
/// lat (j). All vertical layers are local (2-D decomposition).
struct LocalBox {
  int i0 = 0;  ///< global longitude index of local i = 0
  int ni = 0;
  int j0 = 0;  ///< global latitude index of local j = 0
  int nj = 0;
};

/// 2-D decomposition binding a grid to a process mesh.
class Decomp2D {
 public:
  /// mesh rows partition latitudes, mesh cols partition longitudes.
  Decomp2D(int nlon, int nlat, int mesh_rows, int mesh_cols);

  const Partition1D& lon_partition() const { return lon_; }
  const Partition1D& lat_partition() const { return lat_; }

  LocalBox box(comm::MeshCoord coord) const;
  /// Mesh coordinate that owns global point (i, j).
  comm::MeshCoord owner(int gi, int gj) const;

  int nlon() const { return lon_.n(); }
  int nlat() const { return lat_.n(); }

 private:
  Partition1D lon_;
  Partition1D lat_;
};

}  // namespace agcm::grid
