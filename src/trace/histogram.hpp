// Log-binned histogram for streaming percentile estimates.
//
// The MetricsRegistry's distributions used to carry Welford moments only
// (count/mean/stddev/min/max) — enough for symmetric distributions, useless
// for the tails the paper's analysis actually cares about (the slowest
// ranks ARE the load imbalance). LogHistogram adds p50/p95/p99 at bounded
// memory: samples land in geometric bins with kSubBins bins per octave
// (power of two), so any positive value maps to bin
//   floor(log2(v) * kSubBins)
// and a quantile query walks the cumulative counts and returns the
// geometric midpoint of the target bin, clamped to the observed [min, max].
//
// Properties the tests rely on:
//  * Order independence — bins are pure counts, so concurrent observers
//    produce bit-identical percentiles regardless of interleaving (unlike
//    Welford's mean, whose low bits depend on insertion order).
//  * Bounded relative error — the returned quantile is within a factor of
//    2^(1/(2*kSubBins)) (~4.4% for kSubBins = 8) of the true nearest-rank
//    order statistic, because both lie in the same bin whose bounds are a
//    factor 2^(1/kSubBins) apart.
//  * Bounded memory — the bin map can never exceed ~kSubBins bins per
//    octave of observed dynamic range, independent of sample count.
//
// Non-positive samples (times and counts are non-negative; zeros happen)
// are tracked in a dedicated bucket that sorts before every positive bin.
#pragma once

#include <cstdint>
#include <map>

namespace agcm::trace {

class LogHistogram {
 public:
  /// Bins per octave. 8 keeps worst-case quantile error under ~4.4%.
  static constexpr int kSubBins = 8;

  void add(double value);
  void merge(const LogHistogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Number of distinct non-empty bins (bounded-memory witness).
  std::size_t bin_count() const {
    return bins_.size() + (nonpos_count_ > 0 ? 1u : 0u);
  }

  /// Nearest-rank quantile estimate, `q` in [0, 100]. The target rank is
  ///   round((count - 1) * q / 100)
  /// (0-based; ties round up) — the same rule the test oracle applies to a
  /// sorted copy of the samples. Returns 0 when empty.
  double percentile(double q) const;

  /// The exact index rule percentile() targets, exposed so oracles can
  /// match it: round((count - 1) * q / 100), clamped to [0, count-1].
  static std::uint64_t target_rank(std::uint64_t count, double q);

 private:
  static int bin_index(double positive_value);
  static double bin_representative(int index);

  std::map<int, std::uint64_t> bins_;  ///< positive samples by log bin
  std::uint64_t nonpos_count_ = 0;     ///< samples <= 0
  double nonpos_min_ = 0.0, nonpos_max_ = 0.0;
  std::uint64_t count_ = 0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace agcm::trace
