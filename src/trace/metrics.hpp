// Process-wide metrics registry: named per-rank counters, per-rank gauges
// and merged distributions.
//
// The registry complements the Tracer (trace/tracer.hpp): spans answer
// "where did the virtual time go", counters answer "how much traffic /
// work flowed through a subsystem" — messages and bytes per rank from
// `comm`, migrated items from `loadbalance`, executed column flops from
// `physics`. Counters are keyed by (metric name, rank) so cross-rank
// merges (totals, per-rank tables, the paper's load_imbalance metric) fall
// out of one snapshot.
//
// Thread model: rank threads record concurrently; every mutation takes one
// process-wide mutex (correctness over micro-optimisation — recording is
// gated on trace::enabled(), so the lock is never touched when
// observability is off). All recording methods are no-ops while disabled.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "trace/histogram.hpp"
#include "trace/json.hpp"
#include "util/stats.hpp"

namespace agcm::trace {

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Drops every recorded metric. Must not race with recording.
  void reset();

  // --- recording (no-ops while trace::enabled() is false) ------------------

  /// Adds `delta` to counter `name` for `rank` (monotone accumulator).
  void add(std::string_view name, int rank, double delta = 1.0);

  /// Sets gauge `name` for `rank` (last value wins).
  void set_gauge(std::string_view name, int rank, double value);

  /// Feeds one sample into the merged distribution `name`: Welford stats
  /// for the moments plus a log-binned histogram for p50/p95/p99, merged
  /// across all ranks. The histogram side is order-independent, so
  /// percentiles are deterministic even under concurrent recording.
  void observe(std::string_view name, double value);

  // --- snapshot ------------------------------------------------------------

  /// Sum of counter `name` across ranks (0 when absent).
  double total(const std::string& name) const;

  /// Per-rank counter or gauge values, sorted by rank.
  std::vector<std::pair<int, double>> per_rank(const std::string& name) const;

  /// Merged distribution for `name` (empty stats when absent).
  RunningStats distribution(const std::string& name) const;

  /// Log-binned histogram of the merged distribution (empty when absent).
  LogHistogram histogram(const std::string& name) const;

  /// Streaming percentile of distribution `name`; `q` in [0, 100]
  /// (0 when absent). See LogHistogram for the accuracy contract.
  double percentile(const std::string& name, double q) const;

  /// All known metric names (counters, gauges, distributions), sorted.
  std::vector<std::string> names() const;

  /// Full snapshot: {"counters": {name: {"total": x, "per_rank": {...}}},
  /// "gauges": {...}, "distributions": {name: {count, mean, stddev, min,
  /// max, p50, p95, p99}}}.
  JsonValue to_json() const;

 private:
  MetricsRegistry() = default;

  using PerRank = std::map<int, double>;

  struct Distribution {
    RunningStats stats;
    LogHistogram hist;
  };

  mutable std::mutex mutex_;
  std::map<std::string, PerRank> counters_;
  std::map<std::string, PerRank> gauges_;
  std::map<std::string, Distribution> distributions_;
};

}  // namespace agcm::trace
