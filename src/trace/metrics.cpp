#include "trace/metrics.hpp"

#include <algorithm>

#include "trace/tracer.hpp"

namespace agcm::trace {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  distributions_.clear();
}

void MetricsRegistry::add(std::string_view name, int rank, double delta) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  counters_[std::string(name)][rank] += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, int rank,
                                double value) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  gauges_[std::string(name)][rank] = value;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  Distribution& dist = distributions_[std::string(name)];
  dist.stats.add(value);
  dist.hist.add(value);
}

double MetricsRegistry::total(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0.0;
  double sum = 0.0;
  for (const auto& [rank, value] : it->second) sum += value;
  return sum;
}

std::vector<std::pair<int, double>> MetricsRegistry::per_rank(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  const std::map<std::string, PerRank>* source = &counters_;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = gauges_.find(name);
    if (it == gauges_.end()) return {};
    source = &gauges_;
  }
  (void)source;
  return {it->second.begin(), it->second.end()};
}

RunningStats MetricsRegistry::distribution(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? RunningStats{} : it->second.stats;
}

LogHistogram MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? LogHistogram{} : it->second.hist;
}

double MetricsRegistry::percentile(const std::string& name, double q) const {
  std::lock_guard lock(mutex_);
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? 0.0 : it->second.hist.percentile(q);
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, _] : counters_) out.push_back(name);
  for (const auto& [name, _] : gauges_) out.push_back(name);
  for (const auto& [name, _] : distributions_) out.push_back(name);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  JsonValue root = JsonValue::object();

  auto per_rank_json = [](const PerRank& values) {
    JsonValue obj = JsonValue::object();
    double sum = 0.0;
    for (const auto& [rank, value] : values) {
      obj.set(std::to_string(rank), value);
      sum += value;
    }
    JsonValue entry = JsonValue::object();
    entry.set("total", sum);
    entry.set("per_rank", std::move(obj));
    return entry;
  };

  JsonValue counters = JsonValue::object();
  for (const auto& [name, values] : counters_)
    counters.set(name, per_rank_json(values));
  root.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, values] : gauges_)
    gauges.set(name, per_rank_json(values));
  root.set("gauges", std::move(gauges));

  JsonValue distributions = JsonValue::object();
  for (const auto& [name, dist] : distributions_) {
    const RunningStats& stats = dist.stats;
    JsonValue entry = JsonValue::object();
    entry.set("count", static_cast<std::uint64_t>(stats.count()));
    entry.set("mean", stats.mean());
    entry.set("stddev", stats.stddev());
    entry.set("min", stats.min());
    entry.set("max", stats.max());
    entry.set("p50", dist.hist.percentile(50.0));
    entry.set("p95", dist.hist.percentile(95.0));
    entry.set("p99", dist.hist.percentile(99.0));
    distributions.set(name, std::move(entry));
  }
  root.set("distributions", std::move(distributions));
  return root;
}

}  // namespace agcm::trace
