#include "trace/tracer.hpp"

#include <algorithm>

namespace agcm::trace {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() {
  ranks_.resize(static_cast<std::size_t>(kMaxRanks));
}

void Tracer::begin_run(int nranks) {
  nranks_ = std::min(nranks, kMaxRanks);
  for (auto& buf : ranks_) {
    if (buf) {
      buf->events.clear();
      buf->open.clear();
    }
  }
}

Tracer::RankBuffer* Tracer::buffer(int rank) {
  if (rank < 0 || rank >= kMaxRanks) return nullptr;
  auto& slot = ranks_[static_cast<std::size_t>(rank)];
  // Lazy allocation is safe: only the owning rank thread touches its slot.
  if (!slot) slot = std::make_unique<RankBuffer>();
  return slot.get();
}

const Tracer::RankBuffer* Tracer::buffer(int rank) const {
  if (rank < 0 || rank >= kMaxRanks) return nullptr;
  return ranks_[static_cast<std::size_t>(rank)].get();
}

void Tracer::begin_span(int rank, std::string_view name, double t,
                        const TimeSplit& at) {
  if (!enabled()) return;
  RankBuffer* buf = buffer(rank);
  if (!buf) return;
  Event event;
  event.name.assign(name);
  event.t = t;
  event.split = at;
  event.kind = EventKind::kSpanBegin;
  event.depth = static_cast<std::int32_t>(buf->open.size());
  buf->open.push_back(buf->events.size());
  buf->events.push_back(std::move(event));
}

void Tracer::end_span(int rank, double t, const TimeSplit& at) {
  if (!enabled()) return;
  RankBuffer* buf = buffer(rank);
  if (!buf || buf->open.empty()) return;  // unmatched end: drop
  const std::size_t begin_index = buf->open.back();
  buf->open.pop_back();
  const Event& begin = buf->events[begin_index];
  Event event;
  event.name = begin.name;
  event.t = t;
  event.split = at;
  event.kind = EventKind::kSpanEnd;
  event.depth = begin.depth;
  buf->events.push_back(std::move(event));
}

void Tracer::instant(int rank, std::string_view name, double t) {
  if (!enabled()) return;
  RankBuffer* buf = buffer(rank);
  if (!buf) return;
  Event event;
  event.name.assign(name);
  event.t = t;
  event.kind = EventKind::kInstant;
  event.depth = static_cast<std::int32_t>(buf->open.size());
  buf->events.push_back(std::move(event));
}

void Tracer::counter(int rank, std::string_view name, double t, double value) {
  if (!enabled()) return;
  RankBuffer* buf = buffer(rank);
  if (!buf) return;
  Event event;
  event.name.assign(name);
  event.t = t;
  event.value = value;
  event.kind = EventKind::kCounter;
  event.depth = static_cast<std::int32_t>(buf->open.size());
  buf->events.push_back(std::move(event));
}

const std::vector<Event>& Tracer::events(int rank) const {
  static const std::vector<Event> kEmpty;
  const RankBuffer* buf = buffer(rank);
  return buf ? buf->events : kEmpty;
}

std::vector<Event> Tracer::take_events(int rank) {
  if (rank < 0 || rank >= kMaxRanks) return {};
  auto& slot = ranks_[static_cast<std::size_t>(rank)];
  if (!slot) return {};
  std::vector<Event> out = std::move(slot->events);
  slot->events.clear();  // moved-from is valid-but-unspecified; make it empty
  slot->open.clear();    // any still-open spans are dropped, like spans()
  return out;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::vector<SpanRecord> out;
  for (int rank = 0; rank < kMaxRanks; ++rank) {
    const RankBuffer* buf = buffer(rank);
    if (!buf || buf->events.empty()) continue;
    // Match begin/end pairs with a local stack; emit in begin order.
    std::vector<std::size_t> stack;
    std::vector<SpanRecord> rank_spans;
    std::vector<std::size_t> record_of_begin(buf->events.size(), 0);
    for (std::size_t i = 0; i < buf->events.size(); ++i) {
      const Event& event = buf->events[i];
      if (event.kind == EventKind::kSpanBegin) {
        SpanRecord record;
        record.name = event.name;
        record.rank = rank;
        record.depth = event.depth;
        record.begin = event.t;
        record.end = event.t;
        record.split = {};  // filled at the matching end
        record_of_begin[i] = rank_spans.size();
        stack.push_back(i);
        rank_spans.push_back(std::move(record));
      } else if (event.kind == EventKind::kSpanEnd && !stack.empty()) {
        const std::size_t begin_index = stack.back();
        stack.pop_back();
        SpanRecord& record = rank_spans[record_of_begin[begin_index]];
        record.end = event.t;
        record.split = event.split - buf->events[begin_index].split;
      }
    }
    // Drop unterminated spans (still on the stack).
    if (!stack.empty()) {
      std::vector<bool> dead(rank_spans.size(), false);
      for (const std::size_t begin_index : stack)
        dead[record_of_begin[begin_index]] = true;
      std::vector<SpanRecord> kept;
      kept.reserve(rank_spans.size());
      for (std::size_t i = 0; i < rank_spans.size(); ++i)
        if (!dead[i]) kept.push_back(std::move(rank_spans[i]));
      rank_spans = std::move(kept);
    }
    out.insert(out.end(), std::make_move_iterator(rank_spans.begin()),
               std::make_move_iterator(rank_spans.end()));
  }
  return out;
}

std::size_t Tracer::total_events() const {
  std::size_t n = 0;
  for (int rank = 0; rank < kMaxRanks; ++rank) {
    const RankBuffer* buf = buffer(rank);
    if (buf) n += buf->events.size();
  }
  return n;
}

}  // namespace agcm::trace
