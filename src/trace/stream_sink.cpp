#include "trace/stream_sink.hpp"

#include <stdexcept>

#include "trace/json.hpp"

namespace agcm::trace {

namespace {
constexpr double kSecToTraceUs = 1.0e6;  ///< virtual seconds -> trace "us"
}  // namespace

StreamingTraceSink::StreamingTraceSink(std::string path,
                                       std::size_t chunk_bytes)
    : path_(std::move(path)), chunk_bytes_(chunk_bytes) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("StreamingTraceSink: cannot open " + path_);
  }
  buffer_.reserve(chunk_bytes_ + 4096);
}

StreamingTraceSink::~StreamingTraceSink() { close(); }

void StreamingTraceSink::append(const std::string& text) {
  buffer_ += text;
  if (buffer_.size() >= chunk_bytes_) flush_buffer();
}

void StreamingTraceSink::flush_buffer() {
  if (buffer_.empty() || !file_) return;
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  bytes_written_ += buffer_.size();
  buffer_.clear();
}

void StreamingTraceSink::emit_event_json(const std::string& body) {
  append(first_event_ ? "\n  " : ",\n  ");
  first_event_ = false;
  append(body);
  ++events_written_;
}

void StreamingTraceSink::begin(int nranks) {
  if (began_) return;
  began_ = true;
  append("{\"traceEvents\": [");

  // Metadata: name the process and one thread per rank — identical in shape
  // to export.cpp's chrome_trace().
  {
    JsonValue meta = JsonValue::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", 0);
    JsonValue args = JsonValue::object();
    args.set("name", "virtual multicomputer");
    meta.set("args", std::move(args));
    emit_event_json(meta.dump());
  }
  const int n = nranks > 0 ? nranks : 1;
  for (int rank = 0; rank < n; ++rank) {
    JsonValue meta = JsonValue::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", rank);
    JsonValue args = JsonValue::object();
    args.set("name", "rank " + std::to_string(rank));
    meta.set("args", std::move(args));
    emit_event_json(meta.dump());
  }
}

void StreamingTraceSink::drain_rank(int rank, std::vector<Event> events) {
  // Stack-match begin/end pairs exactly like Tracer::spans(); emit complete
  // ("X") events in begin order, instants and counters inline. Spans still
  // open at drain time never see their end event and are dropped.
  std::vector<std::size_t> stack;
  std::vector<char> matched(events.size(), 0);
  std::vector<std::size_t> end_of_begin(events.size(), 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind == EventKind::kSpanBegin) {
      stack.push_back(i);
    } else if (e.kind == EventKind::kSpanEnd && !stack.empty()) {
      const std::size_t begin_index = stack.back();
      stack.pop_back();
      matched[begin_index] = 1;
      end_of_begin[begin_index] = i;
    }
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind == EventKind::kSpanBegin) {
      if (!matched[i]) continue;  // unterminated: drop
      const Event& end = events[end_of_begin[i]];
      const TimeSplit split = end.split - e.split;
      JsonValue event = JsonValue::object();
      event.set("name", e.name);
      event.set("cat", "virtual");
      event.set("ph", "X");
      event.set("ts", e.t * kSecToTraceUs);
      event.set("dur", (end.t - e.t) * kSecToTraceUs);
      event.set("pid", 0);
      event.set("tid", rank);
      JsonValue args = JsonValue::object();
      args.set("compute_sec", split.compute);
      args.set("overhead_sec", split.overhead);
      args.set("wait_sec", split.wait);
      event.set("args", std::move(args));
      emit_event_json(event.dump());
      ++spans_written_;
    } else if (e.kind == EventKind::kInstant) {
      JsonValue event = JsonValue::object();
      event.set("name", e.name);
      event.set("cat", "virtual");
      event.set("ph", "i");
      event.set("s", "t");  // thread-scoped instant
      event.set("ts", e.t * kSecToTraceUs);
      event.set("pid", 0);
      event.set("tid", rank);
      emit_event_json(event.dump());
    } else if (e.kind == EventKind::kCounter) {
      JsonValue event = JsonValue::object();
      event.set("name", e.name);
      event.set("cat", "virtual");
      event.set("ph", "C");
      event.set("ts", e.t * kSecToTraceUs);
      event.set("pid", 0);
      event.set("tid", rank);
      JsonValue args = JsonValue::object();
      args.set("value", e.value);
      event.set("args", std::move(args));
      emit_event_json(event.dump());
    }
  }
}

void StreamingTraceSink::drain(Tracer& tracer) {
  if (!began_) begin(tracer.nranks());
  for (int rank = 0; rank < Tracer::kMaxRanks; ++rank) {
    std::vector<Event> events = tracer.take_events(rank);
    if (events.empty()) continue;
    drain_rank(rank, std::move(events));
  }
}

void StreamingTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  if (!began_) {
    began_ = true;
    append("{\"traceEvents\": [");
  }
  append(
      "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"clock\": "
      "\"virtual\", \"note\": \"timestamps are deterministic virtual seconds "
      "(shown as us), not host time\"}}\n");
  flush_buffer();
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace agcm::trace
