// Trace exporters: Chrome trace JSON, flat CSV, and the aggregate
// per-phase table.
//
// Three views of the same per-rank virtual-time events (trace/tracer.hpp):
//  * chrome_trace_json — the Chrome Trace Event Format, loadable in
//    chrome://tracing and https://ui.perfetto.dev. Virtual seconds map to
//    trace microseconds; one trace "thread" per rank; span args carry the
//    compute/overhead/wait split so the paper's Fig. 1 breakdown can be
//    read straight off a span.
//  * trace_csv — one line per completed span for spreadsheet/pandas use.
//  * aggregate_phases / phase_table — the paper's table form: per phase
//    name, call counts, per-rank virtual-time totals (mean/max), the
//    compute/overhead/wait split, and the paper's load-imbalance metric
//    (max-avg)/avg over per-rank totals. Built on util/table + util/stats.
#pragma once

#include <string>
#include <vector>

#include "trace/json.hpp"
#include "trace/tracer.hpp"
#include "util/table.hpp"

namespace agcm::trace {

/// Cross-rank aggregate of all spans sharing one phase name.
struct PhaseStats {
  std::string name;
  std::uint64_t calls = 0;       ///< completed spans across all ranks
  int ranks_touched = 0;         ///< ranks with at least one such span
  double total_sec = 0.0;        ///< sum of span durations over all ranks
  double mean_rank_sec = 0.0;    ///< mean over ranks of per-rank totals
  double max_rank_sec = 0.0;     ///< max  over ranks of per-rank totals
  TimeSplit split;               ///< summed breakdown deltas
  double imbalance = 0.0;        ///< (max-avg)/avg of per-rank totals
};

/// Aggregates every completed span by phase name. Ranks that never entered
/// a phase contribute zero-load entries to that phase's imbalance (the
/// paper's convention: an idle rank is the imbalance). The rank universe is
/// Tracer::nranks() from the last begin_run. Nested spans aggregate under
/// their own names; hierarchical names ("dynamics.filter" inside
/// "model.step") keep the containment readable.
std::vector<PhaseStats> aggregate_phases(const Tracer& tracer);

/// Renders the aggregate as a util/table (sorted by total time,
/// descending).
Table phase_table(const std::vector<PhaseStats>& phases,
                  const std::string& title = "Per-phase virtual time");

/// JSON form of the aggregate (array of phase objects).
JsonValue phases_json(const std::vector<PhaseStats>& phases);

/// Chrome Trace Event Format document (JSON object with "traceEvents").
/// Spans become complete ("X") events, counters "C" events, instants "i"
/// events; rank r is trace thread r of process 0.
JsonValue chrome_trace(const Tracer& tracer);
std::string chrome_trace_json(const Tracer& tracer);
void write_chrome_trace(const Tracer& tracer, const std::string& path);

/// Flat CSV: rank,name,depth,begin_s,end_s,duration_s,compute_s,
/// overhead_s,wait_s — one line per completed span.
std::string trace_csv(const Tracer& tracer);
void write_trace_csv(const Tracer& tracer, const std::string& path);

}  // namespace agcm::trace
