// Bounded-memory streaming Chrome-trace writer.
//
// write_chrome_trace (export.hpp) builds the whole trace document in memory
// before writing — fine for a single run, hopeless for a parameter sweep
// that traces dozens of cells: the Tracer's per-rank buffers and the JSON
// tree both grow without bound. StreamingTraceSink inverts the flow: the
// launcher thread calls drain() between runs (or between sweep cells),
// which MOVES each rank's events out of the Tracer via Tracer::take_events,
// serialises the matched spans / instants / counters straight into a
// chunk-buffered file append, and discards them. Steady-state memory is
// one rank's events plus the chunk buffer, independent of sweep length.
//
// The emitted file is the same Chrome Trace Event Format document
// export.cpp produces (header metadata, "X"/"i"/"C" events, footer with
// displayTimeUnit + otherData), just written incrementally:
//
//   StreamingTraceSink sink("TRACE_sweep.json");
//   sink.begin(nranks);            // header + process/thread metadata
//   for (cell : sweep) {
//     Tracer::instance().begin_run(nranks);
//     machine.run(...);            // ranks record as usual
//     sink.drain(Tracer::instance());  // move out + append + free
//   }
//   sink.close();                  // footer; file is valid JSON from here
//
// Threading contract mirrors the Tracer's read accessors: drain() must be
// called from the launcher thread between runs, never while rank threads
// are recording. Spans still open at drain time are dropped, exactly as
// Tracer::spans() drops unterminated spans.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace agcm::trace {

class StreamingTraceSink {
 public:
  /// Opens `path` for writing. Events are buffered and flushed to the file
  /// whenever the buffer exceeds `chunk_bytes` (default 1 MiB).
  explicit StreamingTraceSink(std::string path,
                              std::size_t chunk_bytes = std::size_t{1} << 20);
  ~StreamingTraceSink();

  StreamingTraceSink(const StreamingTraceSink&) = delete;
  StreamingTraceSink& operator=(const StreamingTraceSink&) = delete;

  /// Writes the document header and process/thread metadata for `nranks`
  /// ranks. Must be called exactly once, before the first drain().
  void begin(int nranks);

  /// Moves every recorded event out of `tracer` (all ranks), appends the
  /// serialised events to the file, and leaves the tracer's buffers empty
  /// (tracer.total_events() == 0 afterwards). Callable any number of times.
  void drain(Tracer& tracer);

  /// Writes the footer and closes the file. Idempotent; also invoked by
  /// the destructor so the file is always syntactically complete.
  void close();

  // --- observability about the observability --------------------------------
  std::size_t spans_written() const { return spans_written_; }
  std::size_t events_written() const { return events_written_; }
  std::size_t bytes_written() const { return bytes_written_; }

 private:
  void append(const std::string& text);
  void flush_buffer();
  void emit_event_json(const std::string& body);
  void drain_rank(int rank, std::vector<Event> events);

  std::string path_;
  std::size_t chunk_bytes_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  bool began_ = false;
  bool closed_ = false;
  bool first_event_ = true;
  std::size_t spans_written_ = 0;
  std::size_t events_written_ = 0;
  std::size_t bytes_written_ = 0;
};

}  // namespace agcm::trace
