#include "trace/export.hpp"

#include <algorithm>
#include <map>

#include "util/format.hpp"
#include "util/stats.hpp"

namespace agcm::trace {

std::vector<PhaseStats> aggregate_phases(const Tracer& tracer) {
  const std::vector<SpanRecord> all = tracer.spans();

  struct Accumulator {
    std::uint64_t calls = 0;
    TimeSplit split;
    std::map<int, double> per_rank;  ///< rank -> summed duration
  };
  std::map<std::string, Accumulator> by_name;
  int max_rank = -1;
  for (const SpanRecord& span : all) {
    Accumulator& acc = by_name[span.name];
    acc.calls += 1;
    acc.split.compute += span.split.compute;
    acc.split.overhead += span.split.overhead;
    acc.split.wait += span.split.wait;
    acc.per_rank[span.rank] += span.duration();
    max_rank = std::max(max_rank, span.rank);
  }
  // The rank universe: prefer the run's declared size so ranks that never
  // entered a phase count as zero load in the imbalance.
  const int nranks = std::max(tracer.nranks(), max_rank + 1);

  std::vector<PhaseStats> out;
  out.reserve(by_name.size());
  for (const auto& [name, acc] : by_name) {
    PhaseStats stats;
    stats.name = name;
    stats.calls = acc.calls;
    stats.ranks_touched = static_cast<int>(acc.per_rank.size());
    stats.split = acc.split;

    std::vector<double> loads(static_cast<std::size_t>(std::max(nranks, 1)),
                              0.0);
    for (const auto& [rank, seconds] : acc.per_rank) {
      if (rank >= 0 && rank < static_cast<int>(loads.size()))
        loads[static_cast<std::size_t>(rank)] = seconds;
      stats.total_sec += seconds;
    }
    stats.mean_rank_sec = mean(loads);
    stats.max_rank_sec = max_value(loads);
    stats.imbalance = load_imbalance(loads);
    out.push_back(std::move(stats));
  }
  std::sort(out.begin(), out.end(), [](const PhaseStats& a,
                                       const PhaseStats& b) {
    return a.total_sec != b.total_sec ? a.total_sec > b.total_sec
                                      : a.name < b.name;
  });
  return out;
}

Table phase_table(const std::vector<PhaseStats>& phases,
                  const std::string& title) {
  Table table(title, {"Phase", "Calls", "Ranks", "Mean/rank s", "Max/rank s",
                      "Compute s", "Overhead s", "Wait s", "Imbalance"});
  for (const PhaseStats& p : phases) {
    table.add_row({p.name, std::to_string(p.calls),
                   std::to_string(p.ranks_touched),
                   Table::num(p.mean_rank_sec, 6), Table::num(p.max_rank_sec, 6),
                   Table::num(p.split.compute, 6),
                   Table::num(p.split.overhead, 6), Table::num(p.split.wait, 6),
                   Table::pct(p.imbalance, 1)});
  }
  return table;
}

JsonValue phases_json(const std::vector<PhaseStats>& phases) {
  JsonValue out = JsonValue::array();
  for (const PhaseStats& p : phases) {
    JsonValue entry = JsonValue::object();
    entry.set("name", p.name);
    entry.set("calls", static_cast<std::uint64_t>(p.calls));
    entry.set("ranks", p.ranks_touched);
    entry.set("total_sec", p.total_sec);
    entry.set("mean_rank_sec", p.mean_rank_sec);
    entry.set("max_rank_sec", p.max_rank_sec);
    entry.set("compute_sec", p.split.compute);
    entry.set("overhead_sec", p.split.overhead);
    entry.set("wait_sec", p.split.wait);
    entry.set("imbalance", p.imbalance);
    out.push_back(std::move(entry));
  }
  return out;
}

namespace {
constexpr double kSecToTraceUs = 1.0e6;  ///< virtual seconds -> trace "us"
}  // namespace

JsonValue chrome_trace(const Tracer& tracer) {
  JsonValue events = JsonValue::array();

  // Metadata: name the process and one thread per rank.
  {
    JsonValue meta = JsonValue::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", 0);
    JsonValue args = JsonValue::object();
    args.set("name", "virtual multicomputer");
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }
  const int nranks = std::max(tracer.nranks(), 1);
  for (int rank = 0; rank < nranks; ++rank) {
    JsonValue meta = JsonValue::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", rank);
    JsonValue args = JsonValue::object();
    args.set("name", "rank " + std::to_string(rank));
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }

  // Spans as complete ("X") events with the breakdown split in args.
  for (const SpanRecord& span : tracer.spans()) {
    JsonValue event = JsonValue::object();
    event.set("name", span.name);
    event.set("cat", "virtual");
    event.set("ph", "X");
    event.set("ts", span.begin * kSecToTraceUs);
    event.set("dur", span.duration() * kSecToTraceUs);
    event.set("pid", 0);
    event.set("tid", span.rank);
    JsonValue args = JsonValue::object();
    args.set("compute_sec", span.split.compute);
    args.set("overhead_sec", span.split.overhead);
    args.set("wait_sec", span.split.wait);
    event.set("args", std::move(args));
    events.push_back(std::move(event));
  }

  // Instants and counter samples.
  for (int rank = 0; rank < Tracer::kMaxRanks; ++rank) {
    for (const Event& e : tracer.events(rank)) {
      if (e.kind == EventKind::kInstant) {
        JsonValue event = JsonValue::object();
        event.set("name", e.name);
        event.set("cat", "virtual");
        event.set("ph", "i");
        event.set("s", "t");  // thread-scoped instant
        event.set("ts", e.t * kSecToTraceUs);
        event.set("pid", 0);
        event.set("tid", rank);
        events.push_back(std::move(event));
      } else if (e.kind == EventKind::kCounter) {
        JsonValue event = JsonValue::object();
        event.set("name", e.name);
        event.set("cat", "virtual");
        event.set("ph", "C");
        event.set("ts", e.t * kSecToTraceUs);
        event.set("pid", 0);
        event.set("tid", rank);
        JsonValue args = JsonValue::object();
        args.set("value", e.value);
        event.set("args", std::move(args));
        events.push_back(std::move(event));
      }
    }
  }

  JsonValue root = JsonValue::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::object();
  other.set("clock", "virtual");
  other.set(
      "note",
      "timestamps are deterministic virtual seconds (shown as us), not host "
      "time");
  root.set("otherData", std::move(other));
  return root;
}

std::string chrome_trace_json(const Tracer& tracer) {
  return chrome_trace(tracer).dump();
}

void write_chrome_trace(const Tracer& tracer, const std::string& path) {
  write_text_file(path, chrome_trace_json(tracer));
}

std::string trace_csv(const Tracer& tracer) {
  std::string out =
      "rank,name,depth,begin_s,end_s,duration_s,compute_s,overhead_s,wait_s\n";
  for (const SpanRecord& span : tracer.spans()) {
    out += std::to_string(span.rank);
    out += ',';
    // Names are dotted identifiers; quote defensively anyway. CSV escaping
    // doubles embedded quotes (RFC 4180), so a name like say["x"] survives
    // a round-trip through spreadsheet tooling.
    out += '"';
    for (const char c : span.name) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    out += ',';
    out += std::to_string(span.depth);
    for (const double v : {span.begin, span.end, span.duration(),
                           span.split.compute, span.split.overhead,
                           span.split.wait}) {
      out += ',';
      out += JsonValue::number_repr(v);
    }
    out += '\n';
  }
  return out;
}

void write_trace_csv(const Tracer& tracer, const std::string& path) {
  write_text_file(path, trace_csv(tracer));
}

}  // namespace agcm::trace
